"""Section 4 temperature validation — 27 / 60 / 90 C.

The paper repeats its Monte Carlo functionality check at three
temperatures and reports correct conversion everywhere with results
"substantially similar" to the 27 C tables.
"""

from benchmarks.paper_data import PAPER_MC_TEMPS_C
from repro.analysis import monte_carlo_over_temperature, sweep_temperature
from repro.units import format_eng


def _measure():
    nominal = {
        (vddi, vddo): sweep_temperature("sstvs", vddi, vddo,
                                        temperatures=PAPER_MC_TEMPS_C)
        for (vddi, vddo) in ((0.8, 1.2), (1.2, 0.8))
    }
    mc = monte_carlo_over_temperature("sstvs", 0.8, 1.2, runs=5,
                                      temperatures=PAPER_MC_TEMPS_C)
    return nominal, mc


def test_temperature_validation(benchmark):
    nominal, mc = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print("\n=== SS-TVS vs temperature (nominal process) ===")
    for (vddi, vddo), points in nominal.items():
        print(f"-- {vddi} V -> {vddo} V --")
        for p in points:
            m = p.metrics
            print(f"  T={p.temperature_c:5.1f} C  "
                  f"dr={format_eng(m.delay_rise, 's', 3):>8s} "
                  f"df={format_eng(m.delay_fall, 's', 3):>8s} "
                  f"Lh={format_eng(m.leakage_high, 'A', 3):>8s} "
                  f"Ll={format_eng(m.leakage_low, 'A', 3):>8s} "
                  f"func={m.functional}")

    print("=== MC functional yield per temperature (0.8 -> 1.2 V) ===")
    for temp, result in mc.items():
        print(f"  T={temp:5.1f} C  yield={result.functional_yield * 100:.0f}%")

    # Functional at every temperature, nominal and under variation.
    for points in nominal.values():
        assert all(p.metrics.functional for p in points)
    for result in mc.values():
        assert result.functional_yield == 1.0

    # Leakage must grow with temperature (subthreshold physics).
    for points in nominal.values():
        leaks = [p.metrics.leakage_high for p in points]
        assert leaks[-1] > leaks[0]
