"""Figure 7 — SS-TVS layout area (published: 4.47 um^2).

Our analytical estimator (device area x calibrated overhead) must land
on the published figure, and the per-cell comparison table shows where
each design spends its silicon.
"""

from benchmarks.paper_data import PAPER_AREA_UM2
from repro.cells import (
    add_combined_vs, add_cvs, add_inverter, add_ssvs_khan, add_sstvs,
)
from repro.layout import estimate_cell_area
from repro.pdk import Pdk

CELLS = (("inverter", add_inverter), ("cvs", add_cvs),
         ("ssvs_khan", add_ssvs_khan), ("combined_vs", add_combined_vs),
         ("sstvs", add_sstvs))


def _measure():
    pdk = Pdk()
    return {name: estimate_cell_area(builder, pdk)
            for name, builder in CELLS}


def test_layout_areas(benchmark):
    areas = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print("\n=== Cell-area estimates (Figure 7) ===")
    for name, est in areas.items():
        print(f"  {name:12s} {est.total_area_um2:6.2f} um^2 "
              f"({est.device_count} devices)")
    print(f"  paper SS-TVS {PAPER_AREA_UM2:6.2f} um^2 "
          f"(0.837 um x 5.355 um)")

    sstvs = areas["sstvs"].total_area_um2
    assert abs(sstvs - PAPER_AREA_UM2) / PAPER_AREA_UM2 < 0.15
    # The SS-TVS costs area relative to a bare CVS cell — the price of
    # single-supply true shifting (MC dominates).
    assert sstvs > areas["cvs"].total_area_um2
