"""Shared helpers for the benchmark suite.

Environment knobs (all optional):

* ``REPRO_MC_RUNS`` — Monte Carlo sample count for Tables 3/4
  (default 25; the paper used 1000 — set 1000 to match exactly).
* ``REPRO_GRID_STEP`` — VDDI/VDDO grid step in volts for Figures 8/9
  and the functional sweep (default 0.1; the paper used 0.005).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.core.metrics import (  # noqa: E402
    METRIC_FIELDS, METRIC_LABELS, METRIC_UNITS,
)
from repro.units import format_eng  # noqa: E402


def mc_runs() -> int:
    return int(os.environ.get("REPRO_MC_RUNS", "25"))


def grid_step() -> float:
    return float(os.environ.get("REPRO_GRID_STEP", "0.1"))


def print_table(title: str, ours_sstvs, ours_combined, paper_sstvs,
                paper_combined) -> None:
    """Side-by-side table: our measurements vs the paper's."""
    print(f"\n=== {title} ===")
    header = (f"{'Performance Parameter':<24s} {'SS-TVS':>12s} "
              f"{'Combined':>12s} {'paper SS-TVS':>13s} "
              f"{'paper Comb.':>12s} {'ratio':>7s} {'paper':>7s}")
    print(header)
    print("-" * len(header))
    for name in METRIC_FIELDS:
        unit = METRIC_UNITS[name]
        ours_a = getattr(ours_sstvs, name)
        ours_b = getattr(ours_combined, name)
        ref_a = getattr(paper_sstvs, name)
        ref_b = getattr(paper_combined, name)
        ratio = ours_b / ours_a if ours_a else float("nan")
        ref_ratio = ref_b / ref_a if ref_a == ref_a and ref_a else \
            float("nan")
        print(f"{METRIC_LABELS[name]:<24s} "
              f"{format_eng(ours_a, unit, 3):>12s} "
              f"{format_eng(ours_b, unit, 3):>12s} "
              f"{format_eng(ref_a, unit, 3):>13s} "
              f"{format_eng(ref_b, unit, 3):>12s} "
              f"{ratio:>6.1f}x {ref_ratio:>6.1f}x")


def print_mc_table(title: str, result_sstvs, result_combined) -> None:
    print(f"\n=== {title} ===")
    header = (f"{'Performance Parameter':<24s} "
              f"{'SSTVS mu':>11s} {'SSTVS sig':>11s} "
              f"{'Comb mu':>11s} {'Comb sig':>11s}")
    print(header)
    print("-" * len(header))
    for name in METRIC_FIELDS:
        unit = METRIC_UNITS[name]
        print(f"{METRIC_LABELS[name]:<24s} "
              f"{format_eng(getattr(result_sstvs.statistics.mean, name), unit, 3):>11s} "
              f"{format_eng(getattr(result_sstvs.statistics.std, name), unit, 3):>11s} "
              f"{format_eng(getattr(result_combined.statistics.mean, name), unit, 3):>11s} "
              f"{format_eng(getattr(result_combined.statistics.std, name), unit, 3):>11s}")
    print(f"{'Functional yield':<24s} "
          f"{result_sstvs.functional_yield * 100:>10.1f}% "
          f"{'':>11s} {result_combined.functional_yield * 100:>10.1f}%")
