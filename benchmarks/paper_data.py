"""Reference numbers from the paper's evaluation section.

All values transcribed from Tables 1-4 and the running text of
"A Single-supply True Voltage Level Shifter" (DATE 2008). These are the
*paper's* numbers (BSIM4 / HSPICE, the authors' sizing); the benches
print them next to our measurements so the shape comparison is explicit.

Units: seconds, watts, amperes.
"""

from repro.core.metrics import ShifterMetrics

#: Table 1 — low-to-high (0.8 V -> 1.2 V), 27 C.
TABLE1_SSTVS = ShifterMetrics(
    delay_rise=22.0e-12, delay_fall=33.3e-12,
    power_rise=float("nan"), power_fall=float("nan"),
    leakage_high=20.8e-9, leakage_low=3.6e-9)

TABLE1_COMBINED = ShifterMetrics(
    delay_rise=122.6e-12, delay_fall=50.5e-12,
    power_rise=float("nan"), power_fall=float("nan"),
    leakage_high=157.2e-9, leakage_low=71.1e-9)

#: Table 2 — high-to-low (1.2 V -> 0.8 V), 27 C.
TABLE2_SSTVS = ShifterMetrics(
    delay_rise=34.9e-12, delay_fall=15.7e-12,
    power_rise=float("nan"), power_fall=float("nan"),
    leakage_high=7.3e-9, leakage_low=3.9e-9)

TABLE2_COMBINED = ShifterMetrics(
    delay_rise=46.5e-12, delay_fall=35.2e-12,
    power_rise=float("nan"), power_fall=float("nan"),
    leakage_high=32.5e-9, leakage_low=36.3e-9)

#: Headline relative claims (combined / SS-TVS), from the abstract and
#: Section 4. Keyed by (direction, metric).
PAPER_RATIOS = {
    ("low_to_high", "delay_rise"): 5.5,
    ("low_to_high", "delay_fall"): 1.5,
    ("low_to_high", "leakage_high"): 7.5,
    ("low_to_high", "leakage_low"): 19.5,
    ("high_to_low", "delay_rise"): 1.3,
    ("high_to_low", "delay_fall"): 2.2,
    ("high_to_low", "leakage_high"): 4.4,
    ("high_to_low", "leakage_low"): 9.3,
}

#: Figure 7 layout area.
PAPER_AREA_UM2 = 4.47

#: The DVS grid of Figures 8-9 and the functional sweep.
PAPER_VDD_RANGE = (0.8, 1.4)

#: Monte Carlo setup of Tables 3-4.
PAPER_MC_RUNS = 1000
PAPER_MC_TEMPS_C = (27.0, 60.0, 90.0)
