"""Table 1 — Low to High Level Shifting (0.8 V -> 1.2 V, 27 C).

Regenerates the paper's Table 1: the six performance parameters for the
SS-TVS and the combined VS, printed next to the published values.

Shape claims checked (see EXPERIMENTS.md for the discussion of the two
delay rows that do not reproduce under our worst-case stimulus):

* both designs functional;
* SS-TVS leaks less than the combined VS in both output states, with
  the output-low state (idle under-driven inverter in the combined VS)
  worse by a large factor — the paper's headline 19.5x.
"""

from benchmarks.conftest import print_table
from benchmarks.paper_data import TABLE1_COMBINED, TABLE1_SSTVS
from repro.core import LevelShifter

VDDI, VDDO = 0.8, 1.2


def _measure():
    sstvs = LevelShifter("sstvs").characterize(VDDI, VDDO)
    combined = LevelShifter("combined").characterize(VDDI, VDDO)
    return sstvs, combined


def test_table1_low_to_high(benchmark):
    sstvs, combined = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_table("Table 1: Low to High Level Shifting (0.8 V -> 1.2 V)",
                sstvs, combined, TABLE1_SSTVS, TABLE1_COMBINED)

    assert sstvs.functional and combined.functional
    # Leakage ordering: SS-TVS wins both states.
    assert sstvs.leakage_high < combined.leakage_high
    assert sstvs.leakage_low < combined.leakage_low
    # The headline claim: the combined VS's idle inverter path leaks
    # catastrophically in low-to-high mode (paper: 19.5x; our
    # contention-level measurement is far larger).
    assert combined.leakage_low / sstvs.leakage_low > 10.0
