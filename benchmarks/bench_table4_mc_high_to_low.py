"""Table 4 — Monte Carlo, high-to-low (1.2 V -> 0.8 V, 27 C).

Same methodology as Table 3 in the opposite direction. Default 25
samples (REPRO_MC_RUNS to raise; paper used 1000).
"""

from benchmarks.conftest import mc_runs, print_mc_table
from repro.analysis import MonteCarloConfig, run_monte_carlo

VDDI, VDDO = 1.2, 0.8


def _measure():
    config = MonteCarloConfig(runs=mc_runs(), seed=20080310)
    sstvs = run_monte_carlo("sstvs", VDDI, VDDO, config)
    combined = run_monte_carlo("combined", VDDI, VDDO, config)
    return sstvs, combined


def test_table4_monte_carlo_high_to_low(benchmark):
    sstvs, combined = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_mc_table(
        f"Table 4: Process-variation MC, 1.2 V -> 0.8 V, 27 C "
        f"({mc_runs()} runs; paper used 1000)", sstvs, combined)

    assert sstvs.functional_yield == 1.0
    assert combined.functional_yield == 1.0
    # Mean leakage ordering survives variation (paper Table 4).
    assert (sstvs.statistics.mean.leakage_high
            < combined.statistics.mean.leakage_high)
