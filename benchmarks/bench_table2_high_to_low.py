"""Table 2 — High to Low Level Shifting (1.2 V -> 0.8 V, 27 C).

Regenerates the paper's Table 2 and checks the reproducible shape
claims: functionality, the SS-TVS's lower output-high leakage (paper:
4.4x) and its faster falling output (paper: 2.2x).
"""

from benchmarks.conftest import print_table
from benchmarks.paper_data import TABLE2_COMBINED, TABLE2_SSTVS
from repro.core import LevelShifter

VDDI, VDDO = 1.2, 0.8


def _measure():
    sstvs = LevelShifter("sstvs").characterize(VDDI, VDDO)
    combined = LevelShifter("combined").characterize(VDDI, VDDO)
    return sstvs, combined


def test_table2_high_to_low(benchmark):
    sstvs, combined = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_table("Table 2: High to Low Level Shifting (1.2 V -> 0.8 V)",
                sstvs, combined, TABLE2_SSTVS, TABLE2_COMBINED)

    assert sstvs.functional and combined.functional
    # SS-TVS leaks less with the output high (paper: 4.4x).
    assert sstvs.leakage_high < combined.leakage_high
    # SS-TVS's falling output is faster (paper: 2.2x) — the NOR pulls
    # down directly while the combined VS pays TG + cell + mux.
    assert sstvs.delay_fall < combined.delay_fall
