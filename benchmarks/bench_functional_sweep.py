"""Section 4 functional sweep — every (VDDI, VDDO) pair converts.

"We varied VDDI and VDDO voltage values from 0.8V to 1.4V ... Our
SS-TVS was able to translate the voltage level efficiently for all
VDDI and VDDO combinations."

Also demonstrates, for contrast, that the one-way SS-VS baseline fails
exactly where the paper says it must (high-to-low pairs).
"""

from benchmarks.conftest import grid_step
from repro.analysis import SweepGrid, validate_functionality


def test_functional_sweep_sstvs(benchmark):
    report = benchmark.pedantic(
        lambda: validate_functionality(
            "sstvs", SweepGrid.with_step(grid_step())),
        rounds=1, iterations=1)
    print(f"\n=== Functional sweep (step {grid_step()} V) ===")
    print(report.summary())
    assert report.all_passed, report.summary()


def test_one_way_shifter_fails_somewhere(benchmark):
    report = benchmark.pedantic(
        lambda: validate_functionality("ssvs_puri",
                                       SweepGrid.with_step(0.3)),
        rounds=1, iterations=1)
    print(report.summary())
    # The Puri-style SS-VS [13] has the limited range the paper (and
    # [6]) criticize: its threshold-dropped virtual rail cannot drive
    # the latch at low VDDO, so part of the grid must fail — the gap
    # the SS-TVS closes.
    assert not report.all_passed
