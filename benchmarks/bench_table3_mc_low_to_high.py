"""Table 3 — Monte Carlo, low-to-high (0.8 V -> 1.2 V, 27 C).

The paper runs 1000 samples varying every device's W/L (sigma = 3.34 %
of Lmin) and Vt (sigma = 3.34 % of nominal), reporting mean/sigma of
all six metrics for both designs, and that every sample converted
correctly. Default here is 25 samples (REPRO_MC_RUNS to raise).

Shape claims checked:

* 100 % functional yield for the SS-TVS (the paper's key robustness
  claim);
* the SS-TVS's delay variability (sigma/mu) is not worse than the
  combined VS's (the paper reports "much lower" sigma for the SS-TVS).
"""

from benchmarks.conftest import mc_runs, print_mc_table
from repro.analysis import MonteCarloConfig, run_monte_carlo

VDDI, VDDO = 0.8, 1.2


def _measure():
    config = MonteCarloConfig(runs=mc_runs(), seed=20080310)
    sstvs = run_monte_carlo("sstvs", VDDI, VDDO, config)
    combined = run_monte_carlo("combined", VDDI, VDDO, config)
    return sstvs, combined


def test_table3_monte_carlo_low_to_high(benchmark):
    sstvs, combined = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_mc_table(
        f"Table 3: Process-variation MC, 0.8 V -> 1.2 V, 27 C "
        f"({mc_runs()} runs; paper used 1000)", sstvs, combined)

    assert sstvs.functional_yield == 1.0
    assert combined.functional_yield == 1.0
    # Relative delay spread: SS-TVS no worse than the combined VS.
    rel_sstvs = (sstvs.statistics.std.delay_fall
                 / sstvs.statistics.mean.delay_fall)
    rel_combined = (combined.statistics.std.delay_fall
                    / combined.statistics.mean.delay_fall)
    assert rel_sstvs < rel_combined * 2.0
