"""Figure 8 — rising delay of the SS-TVS over the VDDI x VDDO grid.

The paper sweeps both supplies over [0.8 V, 1.4 V] (5 mV steps) and
shows the rising delay changing smoothly over the whole plane with no
functional failures. Default grid step here is 0.1 V (REPRO_GRID_STEP
to refine); the same sweep also feeds Figure 9 (cached).

Shape claims checked: full-grid functionality and smoothness (no
adjacent-cell delay cliff).
"""

from benchmarks.conftest import grid_step
from benchmarks.paper_data import PAPER_VDD_RANGE
from repro.analysis import SweepGrid, render_surface_ascii, sweep_delay_surface

_CACHE = {}


def shared_surface():
    """One sweep serves Figures 8 and 9."""
    step = grid_step()
    if step not in _CACHE:
        _CACHE[step] = sweep_delay_surface("sstvs",
                                           SweepGrid.with_step(step))
    return _CACHE[step]


def test_fig8_rising_delay_surface(benchmark):
    surface = benchmark.pedantic(shared_surface, rounds=1, iterations=1)
    print(f"\n=== Figure 8: SS-TVS rising delay [ps] over "
          f"VDDI x VDDO = {PAPER_VDD_RANGE} (step {grid_step()} V) ===")
    print(render_surface_ascii(surface, "rise"))

    assert surface.functional_fraction == 1.0
    assert surface.is_smooth(factor=6.0)
    # Delays stay in a sane envelope across the whole plane.
    assert surface.worst_rise() < 2e-9
