"""Figure 9 — falling delay of the SS-TVS over the VDDI x VDDO grid.

Companion to Figure 8 (the sweep result is shared/cached). The paper's
claim: the falling delay also varies smoothly over the whole operating
plane.
"""

from benchmarks.bench_fig8_rising_delay_surface import shared_surface
from benchmarks.conftest import grid_step
from benchmarks.paper_data import PAPER_VDD_RANGE
from repro.analysis import render_surface_ascii


def test_fig9_falling_delay_surface(benchmark):
    surface = benchmark.pedantic(shared_surface, rounds=1, iterations=1)
    print(f"\n=== Figure 9: SS-TVS falling delay [ps] over "
          f"VDDI x VDDO = {PAPER_VDD_RANGE} (step {grid_step()} V) ===")
    print(render_surface_ascii(surface, "fall"))

    assert surface.functional_fraction == 1.0
    assert surface.is_smooth(factor=6.0)
    assert surface.worst_fall() < 2e-9
