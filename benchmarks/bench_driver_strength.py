"""Extension: why our rising delay differs from the paper's Table 1.

The SS-TVS discharges node2 *into the input node* (M1's source is the
input — the paper says so explicitly). The input driver must sink that
charge, so with the paper's same-sized 0.8 V driver the discharge
current is capped near the driver's sink capability and the rising
delay floors around ~350 ps in our substrate. Scaling the driver lifts
the cap and the delay drops steeply — strong evidence the Table-1
rising-delay mismatch is a testbench-coupling effect, not a topology
error (see EXPERIMENTS.md, T1 discussion).
"""

from repro.core import characterize
from repro.pdk import Pdk

SCALES = (1.0, 2.0, 4.0, 8.0)


def _measure():
    pdk = Pdk()
    return {scale: characterize(pdk, "sstvs", 0.8, 1.2,
                                driver_scale=scale)
            for scale in SCALES}


def test_driver_strength_sets_rising_delay(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print("\n=== SS-TVS delay vs input-driver strength "
          "(0.8 V -> 1.2 V) ===")
    print(f"{'driver':>8s} {'delay_rise':>11s} {'delay_fall':>11s}")
    for scale, m in results.items():
        print(f"{scale:>7.1f}x {m.delay_rise * 1e12:>9.1f}ps "
              f"{m.delay_fall * 1e12:>9.1f}ps")

    assert all(m.functional for m in results.values())
    # Monotone improvement with driver strength...
    delays = [results[s].delay_rise for s in SCALES]
    assert all(b < a for a, b in zip(delays, delays[1:]))
    # ...and a large total factor: the 1x driver is the bottleneck.
    assert delays[0] / delays[-1] > 2.0
