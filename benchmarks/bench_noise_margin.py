"""Extension: DC transfer curves and noise margins of the shifters.

Not a paper table, but the natural DC companion to its transient
results: the SS-TVS must be a *restoring* stage (full VDDO output swing
with above-unity gain) for any input domain. The bench also documents
the cell's asymmetric (latch-mediated) input thresholds.
"""

from repro.analysis import extract_vtc


def _measure():
    return {
        ("sstvs", 0.8, 1.2): extract_vtc("sstvs", 0.8, 1.2, points=61),
        ("sstvs", 1.2, 0.8): extract_vtc("sstvs", 1.2, 0.8, points=61),
        ("inverter", 1.2, 0.8): extract_vtc("inverter", 1.2, 0.8,
                                            points=61),
        ("cvs", 0.8, 1.2): extract_vtc("cvs", 0.8, 1.2, points=61),
    }


def test_vtc_noise_margins(benchmark):
    curves = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print("\n=== DC transfer curves ===")
    print(f"{'cell':>9s} {'VDDI':>5s} {'VDDO':>5s} {'VOH':>6s} "
          f"{'VOL':>6s} {'Vsw':>6s} {'NML':>6s} {'NMH':>6s} regen")
    for (kind, vddi, vddo), vtc in curves.items():
        print(f"{kind:>9s} {vddi:>5.2f} {vddo:>5.2f} {vtc.voh:>6.3f} "
              f"{vtc.vol:>6.3f} {vtc.switching_point:>6.3f} "
              f"{vtc.nml:>6.3f} {vtc.nmh:>6.3f} {vtc.regenerative()}")

    for (kind, vddi, vddo), vtc in curves.items():
        # Full output swing: the defining property of a level shifter.
        assert vtc.voh > 0.93 * vddo, (kind, vddi, vddo)
        assert vtc.vol < 0.07 * vddo, (kind, vddi, vddo)
        assert vtc.regenerative(), (kind, vddi, vddo)

    # The SS-TVS's falling-input threshold is low (M1 needs the input
    # a threshold below ctrl) — the asymmetry the bench documents.
    assert curves[("sstvs", 0.8, 1.2)].switching_point < 0.4
