"""Extension: PVT corner bracketing of the SS-TVS.

The paper validates with per-device Monte Carlo; this bench adds the
industrial corner view (TT/FF/SS/FS/SF x temperature). It documents a
genuine finding of the reproduction: the fully-systematic +3-sigma SS
corner starves M1's gate overdrive in the low-to-high direction —
a margin the paper's per-device-independent MC (which essentially never
lands all devices at +3 sigma simultaneously) does not exercise.
"""

from repro.analysis import pvt_report


def _measure():
    up = pvt_report("sstvs", 0.8, 1.2, temperatures=(27.0, 90.0))
    down = pvt_report("sstvs", 1.2, 0.8, temperatures=(27.0, 90.0))
    return up, down


def test_pvt_corner_bracketing(benchmark):
    up, down = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(up.pretty())
    print(down.pretty())

    # Typical silicon works at every temperature, both directions.
    for report in (up, down):
        tt_points = [p for p in report.points if p.corner == "tt"]
        assert all(p.metrics.functional for p in tt_points)
    # The high-to-low direction (strong ctrl drive) survives every
    # corner.
    assert down.all_functional
    # FF leaks more than TT at matched temperature (physics check).
    ff = [p for p in down.points
          if p.corner == "ff" and p.temperature_c == 27.0][0]
    tt = [p for p in down.points
          if p.corner == "tt" and p.temperature_c == 27.0][0]
    assert ff.metrics.leakage_high > tt.metrics.leakage_high
    # The documented SS weakness in the low-to-high direction: either
    # non-functional or severely degraded (see EXPERIMENTS.md).
    ss_up = [p for p in up.points if p.corner == "ss"]
    assert any((not p.metrics.functional)
               or p.metrics.delay_rise > 450e-12 for p in ss_up)
