"""Ablation benches for the SS-TVS's design choices (DESIGN.md §5).

The paper motivates three device-flavor decisions:

1. high-Vt M4/M6 "to reduce leakage currents";
2. low-Vt M8 so ctrl "can charge to a sufficiently large voltage
   value ... also helps in increasing the voltage translation range";
3. the MC hold capacitor "selected to be large enough".

Each ablation swaps one choice and measures the consequence.
"""

from repro.cells.sstvs import SstvsSizing
from repro.core import LevelShifter
from repro.units import format_eng


def test_ablation_high_vt_m4_m6(benchmark):
    """Nominal-Vt M4/M6 must raise static leakage."""
    def measure():
        stock = LevelShifter("sstvs").characterize(0.8, 1.2)
        ablated = LevelShifter("sstvs", sizing=SstvsSizing(
            flavor_overrides={"m4": "nominal", "m6": "nominal"})
        ).characterize(0.8, 1.2)
        return stock, ablated

    stock, ablated = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n=== Ablation: M4/M6 high-Vt -> nominal (0.8 -> 1.2 V) ===")
    for label, m in (("high-Vt (paper)", stock), ("nominal", ablated)):
        print(f"  {label:18s} Lh={format_eng(m.leakage_high, 'A', 3):>9s} "
              f"Ll={format_eng(m.leakage_low, 'A', 3):>9s} "
              f"dr={format_eng(m.delay_rise, 's', 3):>9s}")
    assert ablated.functional
    total_stock = stock.leakage_high + stock.leakage_low
    total_ablated = ablated.leakage_high + ablated.leakage_low
    assert total_ablated > total_stock


def test_ablation_low_vt_m8(benchmark):
    """Nominal-Vt M8 must shrink the working range: ctrl cannot charge
    high enough when both rails are low."""
    from repro.analysis import SweepGrid, validate_functionality

    def measure():
        stock = validate_functionality("sstvs", SweepGrid.with_step(0.3))
        ablated = validate_functionality(
            "sstvs", SweepGrid.with_step(0.3),
            sizing=SstvsSizing(flavor_overrides={"m8": "nominal"}))
        return stock, ablated

    stock, ablated = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n=== Ablation: M8 low-Vt -> nominal ===")
    print("  stock:   " + stock.summary())
    print("  ablated: " + ablated.summary())
    assert stock.all_passed
    assert ablated.passed < stock.passed, \
        "nominal-Vt M8 should lose grid coverage"


def test_ablation_mc_size(benchmark):
    """Shrinking MC must cost rising-edge integrity or delay: the ctrl
    charge sags more under the M1 gate-coupling hit."""
    def measure():
        results = {}
        for scale, w, l in (("stock", 1.5e-6, 0.25e-6),
                            ("half", 0.75e-6, 0.25e-6),
                            ("tiny", 0.3e-6, 0.15e-6)):
            sizing = SstvsSizing(w_mc=w, l_mc=l)
            results[scale] = LevelShifter(
                "sstvs", sizing=sizing).characterize(0.8, 1.2)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n=== Ablation: MC hold-capacitor size (0.8 -> 1.2 V) ===")
    for label, m in results.items():
        print(f"  MC={label:6s} dr={format_eng(m.delay_rise, 's', 3):>9s} "
              f"func={m.functional}")
    assert results["stock"].functional
    # A tiny MC either fails outright or measurably slows the rise.
    tiny = results["tiny"]
    assert (not tiny.functional
            or tiny.delay_rise > results["stock"].delay_rise * 0.9)
