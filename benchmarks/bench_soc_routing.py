"""Figures 2-3 — the SoC-level motivation, quantified.

Four modules at 0.8/1.0/1.2/1.4 V exchanging signal bundles (the
paper's multi-voltage system), with one domain running DVS. The
planner compares shifter-insertion strategies on supply routing,
control wiring, cell area, leakage, and DVS feasibility.

Shape claims: CVS needs extra supply rails (the congestion the paper
describes); the combined VS eliminates rails but needs control wires;
the SS-TVS needs neither; one-way strategies are infeasible under DVS.
"""

from repro.soc import (
    COMBINED_STRATEGY, CVS_STRATEGY, Crossing, DvsSchedule,
    INVERTER_STRATEGY, Module, SSTVS_STRATEGY, SSVS_STRATEGY,
    ShifterPlanner, Soc, VoltageDomain,
)


def paper_soc() -> Soc:
    modules = [
        Module("m08", VoltageDomain("v08", DvsSchedule(
            ((0.0, 0.8), (10.0, 1.1), (20.0, 0.8)))), x=0, y=0),
        Module("m10", VoltageDomain.fixed("v10", 1.0), x=300, y=0),
        Module("m12", VoltageDomain.fixed("v12", 1.2), x=0, y=300),
        Module("m14", VoltageDomain.fixed("v14", 1.4), x=300, y=300),
    ]
    crossings = [
        Crossing("m08", "m10", 8), Crossing("m10", "m08", 8),
        Crossing("m08", "m12", 4), Crossing("m12", "m14", 4),
        Crossing("m14", "m08", 4), Crossing("m10", "m14", 2),
        Crossing("m12", "m08", 4),
    ]
    return Soc(modules, crossings)


def _measure():
    planner = ShifterPlanner(paper_soc())
    return planner.compare()


def test_soc_strategy_comparison(benchmark):
    reports = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print("\n=== Multi-voltage SoC: shifter-insertion strategies ===")
    for report in reports.values():
        print("  " + report.summary())

    cvs = reports[CVS_STRATEGY]
    combined = reports[COMBINED_STRATEGY]
    sstvs = reports[SSTVS_STRATEGY]

    # Figures 2 vs 3: dual-supply shifting forces extra rails.
    assert cvs.extra_supply_rails > 0
    assert sstvs.extra_supply_rails == 0
    # The combined VS trades rails for control wiring; SS-TVS needs
    # neither.
    assert combined.control_wires > 0
    assert sstvs.control_wires == 0
    assert sstvs.total_wiring_area < cvs.total_wiring_area
    # Static one-way strategies break under DVS.
    assert not reports[INVERTER_STRATEGY].feasible
    assert not reports[SSVS_STRATEGY].feasible
    # And the SS-TVS fleet leaks less than the combined-VS fleet.
    assert sstvs.leakage < combined.leakage
