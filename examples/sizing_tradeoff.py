#!/usr/bin/env python3
"""Reproduce the paper's sizing flow: delay vs leakage tradeoff.

"The devices of our SS-TVS were sized considering the tradeoff between
speed and leakage power." This example runs the coordinate-descent
sizing optimizer under two different objectives — speed-weighted and
leakage-weighted — and shows how the resulting cells trade the two
metrics, plus the sizing-sensitivity matrix that explains *why*.

Run:  python examples/sizing_tradeoff.py
"""

from repro.analysis import metric_sensitivities, render_sensitivity_table
from repro.cells.sstvs import SstvsSizing
from repro.core import LevelShifter
from repro.core.characterize import StimulusPlan
from repro.opt import Objective, SizingOptimizer
from repro.units import format_eng

FAST_PLAN = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


def describe(label: str, sizing: SstvsSizing) -> None:
    metrics = LevelShifter("sstvs", sizing=sizing).characterize(
        0.8, 1.2, plan=FAST_PLAN)
    print(f"  {label:<18s} dr={format_eng(metrics.delay_rise, 's', 3):>8s} "
          f"df={format_eng(metrics.delay_fall, 's', 3):>8s} "
          f"Lh={format_eng(metrics.leakage_high, 'A', 3):>8s} "
          f"Ll={format_eng(metrics.leakage_low, 'A', 3):>8s}")


def main() -> None:
    print("Sizing sensitivities at 0.8 V -> 1.2 V "
          "(d log metric / d log knob):")
    sens = metric_sensitivities("sstvs", 0.8, 1.2,
                                knobs=("w_m1", "w_mc", "w_nor_n"),
                                plan=FAST_PLAN)
    print(render_sensitivity_table(sens))

    print("\nBaseline (paper-flow sizing):")
    describe("stock", SstvsSizing())

    for label, objective in (
            ("speed-weighted", Objective(w_delay=3.0, w_leakage=0.3)),
            ("leakage-weighted", Objective(w_delay=0.3, w_leakage=3.0))):
        print(f"\nOptimizing with the {label} objective "
              "(coordinate descent, both shift directions)...")
        optimizer = SizingOptimizer(
            corners=[(0.8, 1.2), (1.2, 0.8)], objective=objective,
            knobs=("w_m1", "w_m2", "w_nor_n"), plan=FAST_PLAN)
        result = optimizer.run(rounds=1)
        print(f"  {result.evaluations} characterizations, cost "
              f"{result.initial_cost:.3f} -> {result.best_cost:.3f} "
              f"({result.improvement:.1%} better)")
        describe(label, result.best_sizing)

    print("\nThe two objectives pull the same knobs in opposite "
          "directions — the tradeoff the paper's sizing resolved by "
          "hand.")


if __name__ == "__main__":
    main()
