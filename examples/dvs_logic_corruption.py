#!/usr/bin/env python3
"""Logic-level demonstration of DVS corruption and the SS-TVS fix.

An event-driven 4-value simulation of a data path crossing a DVS
boundary: when the source domain's supply drops below the destination's
(minus an inverter threshold), a plain-inverter level shifter starts
emitting X — unknown values that propagate into the receiver. The
SS-TVS model stays clean through the same supply schedule.

Run:  python examples/dvs_logic_corruption.py
"""

from repro.logicsim import (
    LogicSimulator, SupplyState, buffer, inverter, level_shifter,
)


def run_scenario(kind: str) -> LogicSimulator:
    supplies = SupplyState()
    supplies.set("cpu", 1.2)
    supplies.set("dsp", 1.0)
    sim = LogicSimulator(supplies)
    sim.add(inverter("drv", "data", "q1", delay=10e-12))
    sim.add(level_shifter("ls", kind, "q1", "q2", supplies,
                          "cpu", "dsp", delay=60e-12))
    sim.add(buffer("rx", "q2", "out", delay=10e-12))

    # Traffic pattern plus a DVS schedule on the CPU domain.
    sim.set_input("data", "0")
    for i, t in enumerate((1e-9, 2e-9, 4e-9, 5e-9, 7e-9, 8e-9)):
        sim.schedule_input(t, "data", "1" if i % 2 == 0 else "0")
    sim.schedule_supply(3e-9, "cpu", 0.6)   # deep DVS dip
    sim.schedule_supply(6e-9, "cpu", 1.2)   # restore
    sim.run(10e-9)
    return sim


def print_trace(sim: LogicSimulator, label: str) -> None:
    print(f"\n--- {label} ---")
    for change in sim.changes("out"):
        marker = "  <-- CORRUPTED" if change.value == "x" else ""
        print(f"  t={change.time * 1e9:5.2f} ns  out={change.value}"
              f"{marker}")
    verdict = ("CORRUPTED during the DVS dip"
               if sim.saw_unknown("out") else "clean throughout")
    print(f"  receiver data: {verdict}")


def main() -> None:
    print("DVS schedule: cpu 1.2 V -> 0.6 V @3 ns -> 1.2 V @6 ns; "
          "dsp fixed at 1.0 V")
    print_trace(run_scenario("inverter"),
                "inverter as level shifter (static down-shift choice)")
    print_trace(run_scenario("sstvs"),
                "SS-TVS as level shifter (true, direction-free)")
    print("\nThe static choice breaks the moment the domain "
          "relationship flips — the paper's motivating failure, "
          "reproduced at the logic level.")


if __name__ == "__main__":
    main()
