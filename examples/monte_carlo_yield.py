#!/usr/bin/env python3
"""Monte Carlo yield and variability study (paper Tables 3-4).

Samples process variation (W/L/Vt per device, the paper's sigmas) and
reports per-metric mean/sigma plus a text histogram of the rising
delay. Pass a run count as the first argument (default 40; the paper
used 1000).

Run:  python examples/monte_carlo_yield.py [runs]
"""

import sys

import numpy as np

from repro.analysis import MonteCarloConfig, run_monte_carlo
from repro.units import format_eng


def text_histogram(values, bins: int = 12, width: int = 40) -> str:
    counts, edges = np.histogram(values, bins=bins)
    peak = max(counts.max(), 1)
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {format_eng(lo, 's', 3):>9s} - "
                     f"{format_eng(hi, 's', 3):>9s} |{bar} {count}")
    return "\n".join(lines)


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    config = MonteCarloConfig(runs=runs, seed=20080310)

    for vddi, vddo in ((0.8, 1.2), (1.2, 0.8)):
        print(f"\n### SS-TVS Monte Carlo, {vddi} V -> {vddo} V, "
              f"{runs} samples ###")

        done = [0]

        def progress(index, metrics, done=done):
            done[0] += 1
            if done[0] % max(runs // 8, 1) == 0:
                print(f"  ... {done[0]}/{runs}")

        result = run_monte_carlo("sstvs", vddi, vddo, config,
                                 progress=progress)
        stats = result.statistics
        print(stats.pretty(f"Statistics ({runs} runs):"))
        delays = [s.delay_rise for s in result.samples if s.functional]
        print("Rising-delay distribution:")
        print(text_histogram(delays))
        print(f"Functional yield: {result.functional_yield * 100:.1f}% "
              f"(paper: 100% over 1000 runs)")


if __name__ == "__main__":
    main()
