#!/usr/bin/env python3
"""Quickstart: characterize the SS-TVS against the combined VS.

Builds the paper's testbench (same-sized driver inverter, 1 fF load),
runs the worst-case-sequence transient plus seeded leakage solves, and
prints Table-1/Table-2-style comparisons for both shift directions.

Run:  python examples/quickstart.py
"""

from repro import LevelShifter
from repro.core.metrics import METRIC_FIELDS, METRIC_LABELS, METRIC_UNITS
from repro.units import format_eng


def compare(vddi: float, vddo: float) -> None:
    print(f"\n### {vddi} V -> {vddo} V "
          f"({'low-to-high' if vddi < vddo else 'high-to-low'}) ###")
    sstvs = LevelShifter("sstvs").characterize(vddi, vddo)
    combined = LevelShifter("combined").characterize(vddi, vddo)

    print(f"{'Performance Parameter':<24s} {'SS-TVS':>12s} "
          f"{'Combined VS':>12s} {'advantage':>10s}")
    for name in METRIC_FIELDS:
        ours = getattr(sstvs, name)
        theirs = getattr(combined, name)
        unit = METRIC_UNITS[name]
        ratio = theirs / ours if ours else float("nan")
        print(f"{METRIC_LABELS[name]:<24s} "
              f"{format_eng(ours, unit, 3):>12s} "
              f"{format_eng(theirs, unit, 3):>12s} {ratio:>9.2f}x")
    print(f"{'Functional':<24s} {str(sstvs.functional):>12s} "
          f"{str(combined.functional):>12s}")
    print("(advantage > 1 means the SS-TVS is better on that row; the "
          "combined VS also needs an extra routed control signal)")


def main() -> None:
    print("SS-TVS reproduction quickstart "
          "(DATE 2008, Garg/Mallarapu/Khatri)")
    compare(0.8, 1.2)   # Table 1 conditions
    compare(1.2, 0.8)   # Table 2 conditions


if __name__ == "__main__":
    main()
