#!/usr/bin/env python3
"""Delay surfaces over the DVS voltage grid (paper Figures 8-9).

Sweeps VDDI and VDDO over [0.8 V, 1.4 V] and renders the SS-TVS's
rising and falling delays as text heat tables, verifying functionality
at every point. Pass a grid step in volts as the first argument
(default 0.1; the paper used 0.005).

Run:  python examples/delay_surface.py [step]
"""

import sys

from repro.analysis import (
    SweepGrid, render_surface_ascii, sweep_delay_surface,
)


def main() -> None:
    step = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    grid = SweepGrid.with_step(step)
    total = grid.vddi_values.size * grid.vddo_values.size
    print(f"Sweeping {total} (VDDI, VDDO) pairs at {step} V steps...")

    done = [0]

    def progress(i, j, q, done=done):
        done[0] += 1
        if done[0] % max(total // 10, 1) == 0:
            print(f"  ... {done[0]}/{total}")

    surface = sweep_delay_surface("sstvs", grid, progress=progress)

    print("\n=== Figure 8: rising delay [ps] ===")
    print(render_surface_ascii(surface, "rise"))
    print("\n=== Figure 9: falling delay [ps] ===")
    print(render_surface_ascii(surface, "fall"))
    print(f"\nFunctional everywhere: "
          f"{surface.functional_fraction * 100:.0f}% of pairs "
          f"(paper: all combinations convert correctly)")
    print(f"Smooth surfaces: {surface.is_smooth()}")


if __name__ == "__main__":
    main()
