#!/usr/bin/env python3
"""SoC-level study: what level-shifter strategy costs at the floorplan.

Recreates the paper's Figures 2-3 scenario — four voltage islands
(0.8/1.0/1.2/1.4 V), one of them running DVS — and compares five
shifter-insertion strategies on supply routing, control wiring, cell
area, leakage, and DVS feasibility.

Run:  python examples/dvs_soc_planner.py
"""

from repro.soc import (
    Crossing, DvsSchedule, Module, ShifterPlanner, Soc, VoltageDomain,
    relationship_flips,
)


def build_soc() -> Soc:
    cpu = Module("cpu", VoltageDomain("vcpu", DvsSchedule(
        ((0.0, 1.2), (4.0, 0.8), (9.0, 1.4), (14.0, 1.0)))),
        x=0, y=0, width=400, height=400)
    dsp = Module("dsp", VoltageDomain.fixed("vdsp", 1.0),
                 x=500, y=0, width=300, height=300)
    io_block = Module("io", VoltageDomain.fixed("vio", 1.4),
                      x=500, y=400, width=200, height=200)
    always_on = Module("aon", VoltageDomain.fixed("vaon", 0.8),
                       x=0, y=500, width=200, height=150)
    crossings = [
        Crossing("cpu", "dsp", 16), Crossing("dsp", "cpu", 16),
        Crossing("cpu", "io", 8), Crossing("io", "cpu", 8),
        Crossing("aon", "cpu", 4), Crossing("cpu", "aon", 4),
        Crossing("dsp", "io", 2),
    ]
    return Soc([cpu, dsp, io_block, always_on], crossings)


def main() -> None:
    soc = build_soc()
    print("Domain-relationship analysis (flips under DVS):")
    cpu = soc.modules["cpu"].domain.schedule
    for name in ("dsp", "io", "aon"):
        other = soc.modules[name].domain.schedule
        flips = relationship_flips(cpu, other)
        print(f"  cpu <-> {name}: supply ordering flips {flips} time(s)"
              f"{'  -> needs a TRUE shifter' if flips else ''}")

    print("\nPlanning all strategies (leakage via circuit "
          "characterization; this simulates each unique domain pair)...")
    planner = ShifterPlanner(soc)
    for report in planner.compare().values():
        print("  " + report.summary())

    print("\nReading: the CVS burns wiring area on extra supply rails; "
          "the combined VS burns control wires and leaks through its "
          "idle path; static one-way cells are infeasible once DVS "
          "flips a domain pair; the SS-TVS needs only the local rail.")


if __name__ == "__main__":
    main()
