#!/usr/bin/env python3
"""Static timing of a domain-crossing path, with NLDM characterization.

Builds a small timing library by SPICE-level characterization (delay
and output-transition tables over input slew x output load), then times
a realistic path: a 0.8 V driver chain, the SS-TVS at the domain
boundary, and a 1.2 V receiver chain with fanout — the flow a physical
design team would run on a multi-voltage SoC.

Run:  python examples/timing_crossing_path.py
"""

from repro.core.libchar import characterize_cell, write_liberty
from repro.pdk import Pdk
from repro.sta import GateNetlist, StaEngine, TimingLibrary

SLEWS = (20e-12, 80e-12, 200e-12)
LOADS = (0.5e-15, 2e-15, 8e-15)


def main() -> None:
    pdk = Pdk()
    print("Characterizing library cells (SPICE in the loop)...")
    library = TimingLibrary()
    for name, kind, vddi, vddo in (
            ("inv_08", "inverter", 0.8, 0.8),
            ("inv_12", "inverter", 1.2, 1.2),
            ("sstvs_08_12", "sstvs", 0.8, 1.2)):
        cell = characterize_cell(kind, pdk, vddi, vddo,
                                 slews=SLEWS, loads=LOADS)
        library.add(name, cell)
        print(f"  {name}: cell_rise "
              f"{cell.arc.cell_rise.values.min() * 1e12:.1f}"
              f"-{cell.arc.cell_rise.values.max() * 1e12:.1f} ps, "
              f"Cin {cell.input_capacitance * 1e15:.2f} fF")

    netlist = GateNetlist("crossing_path")
    netlist.add_primary_input("a")
    netlist.add_instance("u1", "inv_08", "a", "n1")
    netlist.add_instance("u2", "inv_08", "n1", "n2")
    netlist.add_instance("ls", "sstvs_08_12", "n2", "n3")
    netlist.add_instance("u3", "inv_12", "n3", "n4")
    netlist.add_instance("u4", "inv_12", "n4", "y")
    # Fanout on the shifter output and some boundary wire.
    netlist.add_instance("obs1", "inv_12", "n3", "z1")
    netlist.add_instance("obs2", "inv_12", "n3", "z2")
    netlist.add_primary_output("y")
    netlist.set_wire_cap("n2", 1.5e-15)   # wire to the domain boundary

    report = StaEngine(netlist, library).run(input_slew=60e-12)
    print()
    print(report.pretty())
    shifter = [s for s in report.critical_path if s.instance == "ls"][0]
    share = shifter.delay / report.worst_arrival * 100
    print(f"\nThe level shifter contributes {share:.0f}% of the path "
          f"delay — the price of the domain crossing.")

    lib_text = write_liberty([library.cell("sstvs_08_12")])
    print(f"\n.lib excerpt ({len(lib_text.splitlines())} lines total):")
    print("\n".join(lib_text.splitlines()[:14]))


if __name__ == "__main__":
    main()
