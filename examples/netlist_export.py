#!/usr/bin/env python3
"""Export the SS-TVS testbench as a SPICE deck and round-trip it.

Demonstrates the netlist layer: build the characterization bench with
the cell library, serialize it to a SPICE deck (readable by standard
simulators for the supported element subset), re-parse it with the
bundled parser, and confirm both circuits agree at DC.

Run:  python examples/netlist_export.py [output.sp]
"""

import sys

from repro.core import InputStep, build_testbench
from repro.netlist import parse_deck, write_deck
from repro.pdk import Pdk
from repro.spice import OperatingPoint


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "sstvs_bench.sp"
    steps = [InputStep(1e-9, True), InputStep(4e-9, False)]
    circuit, probes = build_testbench(Pdk(), "sstvs", 0.8, 1.2, steps)
    print(circuit.summary())

    deck = write_deck(circuit)
    with open(out_path, "w") as handle:
        handle.write(deck)
    print(f"Wrote {len(deck.splitlines())} deck lines to {out_path}")

    clone = parse_deck(deck, title_line=True)
    op_original = OperatingPoint(circuit).run()
    op_clone = OperatingPoint(clone).run()
    v_out_a = op_original[probes.out_node]
    v_out_b = op_clone[probes.out_node]
    print(f"DC V(out): original {v_out_a:.4f} V, "
          f"re-parsed {v_out_b:.4f} V "
          f"(delta {abs(v_out_a - v_out_b) * 1e6:.2f} uV)")
    assert abs(v_out_a - v_out_b) < 1e-3, "round trip disagreed"
    print("Round trip OK.")


if __name__ == "__main__":
    main()
