"""Analytical cell-area estimation (paper Figure 7).

The paper reports a Virtuoso layout of the SS-TVS measuring
0.837 um x 5.355 um = 4.47 um^2. Without a polygon layout tool we
estimate cell area analytically from device dimensions:

    area = overhead * sum_i W_i * (L_i + 2 * L_diff)

where ``L_diff`` accounts for source/drain diffusion and the overhead
factor captures contact/spacing/wiring area on top of raw device area.
The factor is calibrated once (OVERHEAD = 2.4) so the default-sized
SS-TVS lands at the published figure; the same factor is then applied
to every cell, which is the standard transistor-count-dominated
approximation for comparing small cells in one technology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pdk.ptm90 import Pdk
from repro.spice import Circuit
from repro.spice.devices import Mosfet

#: Diffusion extension on each side of the gate [m].
DIFFUSION = 1.0e-7

#: Calibrated wiring/spacing overhead factor (see module docstring).
OVERHEAD = 2.4

#: The paper's published SS-TVS layout numbers [m, m^2].
PAPER_SSTVS_WIDTH = 0.837e-6
PAPER_SSTVS_HEIGHT = 5.355e-6
PAPER_SSTVS_AREA = 4.47e-12


@dataclass(frozen=True)
class AreaEstimate:
    """Cell-area estimate with a row-layout aspect guess."""

    device_area: float    #: raw active area [m^2]
    total_area: float     #: with overhead [m^2]
    width: float          #: estimated cell width [m]
    height: float         #: estimated cell height [m]
    device_count: int

    @property
    def total_area_um2(self) -> float:
        return self.total_area * 1e12


def estimate_mosfet_area(device: Mosfet) -> float:
    """Active area of one transistor including diffusion [m^2]."""
    return device.w * (device.l + 2.0 * DIFFUSION) * device.m


def estimate_circuit_area(circuit: Circuit,
                          cell_height: float = PAPER_SSTVS_HEIGHT,
                          overhead: float = OVERHEAD) -> AreaEstimate:
    """Estimate the layout area of all MOSFETs in ``circuit``.

    ``cell_height`` fixes the row height (the paper's tall-and-narrow
    SS-TVS cell is the default); width follows from the area.
    """
    mosfets = [d for d in circuit if isinstance(d, Mosfet)]
    device_area = sum(estimate_mosfet_area(m) for m in mosfets)
    total = device_area * overhead
    width = total / cell_height if cell_height > 0 else 0.0
    return AreaEstimate(device_area=device_area, total_area=total,
                        width=width, height=cell_height,
                        device_count=len(mosfets))


def estimate_cell_area(builder, pdk: Pdk | None = None, **builder_kwargs
                       ) -> AreaEstimate:
    """Area of one library cell built in isolation.

    ``builder`` is any ``add_*`` cell function from :mod:`repro.cells`;
    required pin arguments are filled with placeholder nodes.
    """
    import inspect

    pdk = pdk or Pdk()
    circuit = Circuit("area_probe")
    signature = inspect.signature(builder)
    kwargs = dict(builder_kwargs)
    placeholder = {"inp": "in", "out": "out", "vdd": "vdd", "vddo": "vdd",
                   "vddi": "vddi", "in_a": "a", "in_b": "b", "a": "a",
                   "b": "b", "en": "en", "en_b": "enb", "sel": "sel",
                   "sel_b": "selb", "in0": "a", "in1": "b"}
    for parameter in signature.parameters.values():
        if parameter.name in ("circuit", "pdk", "name") or \
                parameter.name in kwargs:
            continue
        if parameter.default is inspect.Parameter.empty:
            try:
                kwargs[parameter.name] = placeholder[parameter.name]
            except KeyError:
                raise TypeError(
                    f"no placeholder for required pin {parameter.name!r} "
                    f"of {builder.__name__}") from None
    builder(circuit, pdk, "cell", **kwargs)
    return estimate_circuit_area(circuit)
