"""Analytical layout-area models."""

from repro.layout.area import (
    AreaEstimate, DIFFUSION, OVERHEAD, PAPER_SSTVS_AREA,
    PAPER_SSTVS_HEIGHT, PAPER_SSTVS_WIDTH, estimate_cell_area,
    estimate_circuit_area, estimate_mosfet_area,
)

__all__ = [
    "AreaEstimate",
    "estimate_cell_area",
    "estimate_circuit_area",
    "estimate_mosfet_area",
    "DIFFUSION",
    "OVERHEAD",
    "PAPER_SSTVS_AREA",
    "PAPER_SSTVS_WIDTH",
    "PAPER_SSTVS_HEIGHT",
]
