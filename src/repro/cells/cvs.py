"""Conventional (dual-supply) voltage level shifter — the paper's Figure 1.

A differential cascode voltage switch: a VDDI-domain inverter generates
the complement, and a cross-coupled PMOS pair in the VDDO domain
restores full swing. Non-inverting. Requires *both* supplies routed to
the cell — the wiring cost the single-supply designs eliminate.
"""

from __future__ import annotations

from repro.cells.inverter import add_inverter


def add_cvs(circuit, pdk, name: str, inp: str, out: str, vddi: str,
            vddo: str, gnd: str = "0", wn: float = 0.6e-6,
            wp: float = 0.15e-6, lp: float = 0.2e-6,
            l: float | None = None) -> dict:
    """Add a conventional level shifter; returns probe/device names.

    Operation (paper Section 1): with ``inp`` at VDDI (``b`` low), MN1
    pulls the internal node low, turning MP2 on, which pulls ``out`` to
    VDDO; with ``inp`` low, MN2 pulls ``out`` low and MP1 restores the
    internal node.
    """
    b = f"{name}.b"
    x1 = f"{name}.x1"
    devices = {}
    devices.update(add_inverter(circuit, pdk, f"{name}.invin", inp, b,
                                vddi, gnd, l=l))
    devices["mn1"] = circuit.add(pdk.mosfet(
        f"{name}.mn1", x1, inp, gnd, gnd, "n", wn, l)).name
    devices["mn2"] = circuit.add(pdk.mosfet(
        f"{name}.mn2", out, b, gnd, gnd, "n", wn, l)).name
    # The cross-coupled PMOS pair is deliberately weak and long: the
    # low-swing-driven NMOS pull-downs must win the ratioed fight to
    # flip the latch (standard DCVS sizing).
    devices["mp1"] = circuit.add(pdk.mosfet(
        f"{name}.mp1", x1, out, vddo, vddo, "p", wp, lp)).name
    devices["mp2"] = circuit.add(pdk.mosfet(
        f"{name}.mp2", out, x1, vddo, vddo, "p", wp, lp)).name
    devices["nodes"] = {"b": b, "x1": x1}
    return devices
