"""Transmission gate and TG-based 2:1 multiplexer.

The combined VS of the paper's Figure 6 places a transmission gate on
the input side and a multiplexer on the output side; these builders
provide both.
"""

from __future__ import annotations

from repro.pdk.ptm90 import NOMINAL

WN_DEFAULT = 0.2e-6
WP_DEFAULT = 0.4e-6


def add_transmission_gate(circuit, pdk, name: str, a: str, b: str,
                          en: str, en_b: str, vdd: str, gnd: str = "0",
                          wn: float = WN_DEFAULT, wp: float = WP_DEFAULT,
                          l: float | None = None) -> dict:
    """Add a TG between ``a`` and ``b``; conducting when en=1, en_b=0.

    PMOS bulk ties to ``vdd`` (single-supply convention), NMOS bulk to
    ``gnd``.
    """
    devices = {
        "mn": circuit.add(pdk.mosfet(f"{name}.mn", a, en, b, gnd, "n",
                                     wn, l, NOMINAL)).name,
        "mp": circuit.add(pdk.mosfet(f"{name}.mp", a, en_b, b, vdd, "p",
                                     wp, l, NOMINAL)).name,
    }
    return devices


def add_mux2(circuit, pdk, name: str, in0: str, in1: str, sel: str,
             sel_b: str, out: str, vdd: str, gnd: str = "0",
             wn: float = WN_DEFAULT, wp: float = WP_DEFAULT,
             l: float | None = None) -> dict:
    """Add a TG-based mux: ``out = in1 if sel else in0``.

    ``sel``/``sel_b`` must be full-swing complements in the ``vdd``
    domain (the combined VS's external control signal).
    """
    devices = {}
    devices.update({f"tg0_{k}": v for k, v in add_transmission_gate(
        circuit, pdk, f"{name}.tg0", in0, out, sel_b, sel, vdd, gnd,
        wn, wp, l).items()})
    devices.update({f"tg1_{k}": v for k, v in add_transmission_gate(
        circuit, pdk, f"{name}.tg1", in1, out, sel, sel_b, vdd, gnd,
        wn, wp, l).items()})
    return devices
