"""The paper's comparison baseline: the "combined VS" of Figure 6.

An inverter (the best level shifter when VDDI > VDDO) and a Khan-style
single-supply level shifter [6] (best when VDDI < VDDO) in parallel,
with a transmission gate on the input side and a 2:1 multiplexer on the
output side selecting the appropriate path. The select signal is an
*external control input* that must know the domain relationship — the
requirement the SS-TVS eliminates.

Behavioral consequences the paper reports, which this structure
reproduces:

* delay = input TG + selected cell + output mux (slower than SS-TVS);
* leakage = both paths leak regardless of which one is selected: in
  low-to-high mode the idle inverter sees an under-driven PMOS and
  leaks heavily; in high-to-low mode the idle SS-VS contributes;
* an extra control signal (sel/sel_b) must be routed.
"""

from __future__ import annotations

from repro.cells.inverter import add_inverter
from repro.cells.passgate import add_mux2, add_transmission_gate
from repro.cells.ssvs import add_ssvs_khan


def add_combined_vs(circuit, pdk, name: str, inp: str, out: str,
                    vddo: str, sel: str, sel_b: str, gnd: str = "0",
                    l: float | None = None) -> dict:
    """Add the combined VS; ``sel`` high selects the SS-VS (low-to-high)
    path, low selects the inverter (high-to-low) path.

    Both paths stay connected to the input (through always-on
    transmission gates), so both contribute leakage — matching the
    paper's measurement setup, where the combined cell's leakage far
    exceeds either constituent alone.
    """
    a = f"{name}.a"      # inverter path input, after its TG
    b = f"{name}.b"      # SS-VS path input, after its TG
    y_inv = f"{name}.yinv"
    y_ls = f"{name}.yls"

    devices = {}
    # Near-minimum device sizes throughout, reflecting the paper's use
    # of the (small) sizes published in [6] for the SS-VS and matching
    # drive for the glue cells. The three-stage signal path (input TG,
    # shifter cell, output mux) is what makes the combined VS slow.
    devices.update({f"tga_{k}": v for k, v in add_transmission_gate(
        circuit, pdk, f"{name}.tga", inp, a, vddo, gnd, vddo, gnd,
        wn=0.12e-6, wp=0.24e-6, l=l).items()})
    devices.update({f"tgb_{k}": v for k, v in add_transmission_gate(
        circuit, pdk, f"{name}.tgb", inp, b, vddo, gnd, vddo, gnd,
        wn=0.12e-6, wp=0.24e-6, l=l).items()})
    devices.update({f"inv_{k}": v for k, v in add_inverter(
        circuit, pdk, f"{name}.inv", a, y_inv, vddo, gnd,
        wn=0.15e-6, wp=0.3e-6, l=l).items()})
    devices.update({f"ls_{k}": v for k, v in add_ssvs_khan(
        circuit, pdk, f"{name}.ls", b, y_ls, vddo, gnd, l=l).items()})
    devices.update({f"mux_{k}": v for k, v in add_mux2(
        circuit, pdk, f"{name}.mux", y_inv, y_ls, sel, sel_b, out,
        vddo, gnd, wn=0.12e-6, wp=0.24e-6, l=l).items()})
    devices["nodes"] = {"a": a, "b": b, "y_inv": y_inv, "y_ls": y_ls}
    return devices
