"""Static CMOS inverter cell builder."""

from __future__ import annotations

from repro.pdk.ptm90 import NOMINAL

#: Default device widths [m]: 2:1 P:N for roughly balanced drive.
WN_DEFAULT = 0.2e-6
WP_DEFAULT = 0.4e-6


def add_inverter(circuit, pdk, name: str, inp: str, out: str, vdd: str,
                 gnd: str = "0", wn: float = WN_DEFAULT,
                 wp: float = WP_DEFAULT, l: float | None = None,
                 flavor_n: str = NOMINAL, flavor_p: str = NOMINAL) -> dict:
    """Add an inverter ``out = not inp`` powered from ``vdd``.

    Returns a mapping of role -> device name for probing and ablation.

    Note the paper's key observation: an inverter is itself the best
    *high-to-low* level shifter, but when its input swing (VDDI) is
    below its supply (VDDO) the PMOS never fully turns off and the cell
    leaks heavily — the motivation for the SS-TVS.
    """
    mn = circuit.add(pdk.mosfet(f"{name}.mn", out, inp, gnd, gnd, "n",
                                wn, l, flavor_n))
    mp = circuit.add(pdk.mosfet(f"{name}.mp", out, inp, vdd, vdd, "p",
                                wp, l, flavor_p))
    return {"mn": mn.name, "mp": mp.name}
