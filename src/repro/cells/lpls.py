"""Low-power level shifters after Kumar/Arya/Pandey (arXiv 1011.0507).

The source paper surveys low-power DCVS-derived shifters; its
transistor-level figures are not available in this environment, so the
two cells here are reconstructions from the published operating
descriptions (the same methodology as the SS-VS reconstructions in
:mod:`repro.cells.ssvs`; DESIGN.md documents every assumption).

* **Split-pull-up DCVS** (:func:`add_lpls_split`): the classic CVS's
  short-circuit current flows while a low-swing-driven NMOS fights a
  fully-on cross-coupled PMOS. Splitting each pull-up into two series
  PMOS, the extra device gated by the *input* (true side) or its
  complement (output side), starves the pull-up exactly during the
  fight: the blocking device sees ``Vgs = VDDI - VDDO`` instead of
  ``-VDDO``, cutting the crowbar current without touching the static
  states. Non-inverting, dual-supply like the CVS it improves on.

* **Pass-gate shifter** (:func:`add_lpls_pass`): the minimal-area
  alternative — an always-on NMOS pass device (gate tied to VDDO)
  admits the input up to ``min(VDDI, VDDO - Vtn)``; a VDDO inverter
  senses the attenuated level; a weak PMOS keeper closes the loop,
  restoring the internal node to full VDDO whenever the output is low
  so the inverter leaks only subthreshold current in the high state.
  Inverting, single-supply, four transistors.
"""

from __future__ import annotations

from repro.cells.inverter import add_inverter


def add_lpls_split(circuit, pdk, name: str, inp: str, out: str,
                   vddi: str, vddo: str, gnd: str = "0",
                   wn: float = 0.6e-6, wp: float = 0.3e-6,
                   lp: float = 0.15e-6,
                   l: float | None = None) -> dict:
    """Add a split-pull-up DCVS shifter; returns probe/device names.

    Same latch skeleton and sizing discipline as
    :func:`repro.cells.cvs.add_cvs` (pull-downs must win the ratioed
    fight), but each pull-up is two series PMOS: the latch device
    (gate = opposite latch node) in series with the contention blocker
    (gate = the input phase that is high while that side's pull-down
    is fighting). The series devices are drawn at twice the CVS pull-up
    width and shorter length so the *static* pull-up strength matches
    the CVS while the *dynamic* fight is much weaker.
    """
    b = f"{name}.b"
    x1 = f"{name}.x1"
    p1 = f"{name}.p1"
    p2 = f"{name}.p2"
    devices = {}
    devices.update(add_inverter(circuit, pdk, f"{name}.invin", inp, b,
                                vddi, gnd, l=l))
    devices["mn1"] = circuit.add(pdk.mosfet(
        f"{name}.mn1", x1, inp, gnd, gnd, "n", wn, l)).name
    devices["mn2"] = circuit.add(pdk.mosfet(
        f"{name}.mn2", out, b, gnd, gnd, "n", wn, l)).name
    devices["mp1a"] = circuit.add(pdk.mosfet(
        f"{name}.mp1a", p1, out, vddo, vddo, "p", wp, lp)).name
    devices["mp1b"] = circuit.add(pdk.mosfet(
        f"{name}.mp1b", x1, inp, p1, vddo, "p", wp, lp)).name
    devices["mp2a"] = circuit.add(pdk.mosfet(
        f"{name}.mp2a", p2, x1, vddo, vddo, "p", wp, lp)).name
    devices["mp2b"] = circuit.add(pdk.mosfet(
        f"{name}.mp2b", out, b, p2, vddo, "p", wp, lp)).name
    devices["nodes"] = {"b": b, "x1": x1, "p1": p1, "p2": p2}
    return devices


def add_lpls_pass(circuit, pdk, name: str, inp: str, out: str,
                  vddo: str, gnd: str = "0", w_pass: float = 0.6e-6,
                  w_keep: float = 0.12e-6, l_keep: float = 0.2e-6,
                  l: float | None = None) -> dict:
    """Add a pass-gate level shifter (inverting, single supply).

    The pass NMOS's gate is wired to the VDDO rail node itself, so the
    internal node ``a`` tracks ``min(VDDI, VDDO - Vtn)``; the keeper is
    deliberately weak and long so the pass device wins the only ratioed
    fight (pulling ``a`` back down on a falling input).
    """
    a = f"{name}.a"
    devices = {}
    devices["mpass"] = circuit.add(pdk.mosfet(
        f"{name}.mpass", a, vddo, inp, gnd, "n", w_pass, l)).name
    devices.update({f"inv_{k}": v for k, v in add_inverter(
        circuit, pdk, f"{name}.inv1", a, out, vddo, gnd, l=l).items()})
    devices["mkeep"] = circuit.add(pdk.mosfet(
        f"{name}.mkeep", a, out, vddo, vddo, "p", w_keep, l_keep)).name
    devices["nodes"] = {"a": a}
    return devices
