"""The paper's contribution: the single-supply **true** voltage level
shifter (SS-TVS), Figure 4.

The cell converts between voltage domains in *either* direction using
only the output-domain supply VDDO and no control signal. It is
inverting; the polarity inversion is absorbed by downstream logic, as
the paper notes.

Topology (reconstructed from the paper's Section 3 operating
description — the original figure's net connections are not legible in
the available text; DESIGN.md documents the reconstruction):

* Output stage: ``out = NOR(in, node2)`` powered from VDDO. With
  ``in`` high, node2 is driven to full VDDO, so the NOR's second PMOS
  is hard-off and the transient leakage path through the in-driven PMOS
  (only partially off when VDDI < VDDO) is cut — exactly the mechanism
  the paper describes.
* node2 generator: M6 (high-Vt NMOS, gate = in) pulls ``node1`` low,
  turning on M3 (PMOS) which charges node2 to VDDO; M5 (PMOS, gate =
  node2) recharges node1 when node2 falls — a half-latch on
  node1/node2. M4 (high-Vt NMOS, gate = out) is the static keeper
  holding node2 low while the input is low.
* Discharge device: M1 (NMOS, gate = ctrl, source = in) dumps node2's
  charge *into the input node* when the input falls. Because ctrl
  charges to a value at least one threshold below the input's high
  level, M1 never turns on while the input is high — regardless of
  whether VDDI is above or below VDDO. This is what makes the shifter
  *true*, and the min(VDDI, ...) cap on ctrl is what makes it safe at
  every corner of the DVS grid.
* ctrl network: M8 (low-Vt NMOS follower: drain = VDDO, gate = in)
  charges ctrl toward ``(Vin_high - Vt_M8) / n`` when the input is
  high, self-capped by the input's own level — the realization of the
  paper's ``min(VDDI, VDDO - Vt_M8)`` expression. The cap is
  load-bearing twice over: it keeps M1 off while the input is high,
  and it bounds the charge M1 steals from the *rising* input (an
  uncapped ctrl would hold M1 on hard enough to fight the driver and
  deadlock the input edge at high VDDO). When the input is the higher
  rail, M8 instead passes the full VDDO level (the paper's scenario-2
  ``min(VDDO, ...)``). M7 (high-Vt diode from the input) is the
  auxiliary scenario-2 charger; its gate falls with the input, so it
  adds no static path when idle. M2 — a low-Vt PMOS pass with gate =
  out (low-Vt because it must pass mid-rail levels against body
  effect) — connects the network to the MC hold capacitor exactly
  while the input is high, and isolates ctrl as soon as the output
  rises; ctrl only needs to survive (on MC's gate capacitance, against
  the coupling hit of the falling input through M1's Cgs) until the
  output transition completes. The paper describes this race and MC's
  sizing role verbatim.
* MC: NMOS gate capacitor holding the ctrl charge.

High-Vt devices (M4, M6, and here also M7) cut static leakage paths;
the low-Vt M8 extends the working range when VDDI and VDDO are low and
close to each other (paper Section 3). Flavor deviations from the
paper's text (M7 high-Vt instead of nominal, M2 low-Vt instead of
nominal) are calibrations against our EKV substrate and are documented
in DESIGN.md with the ablations that justify them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cells.gates import add_nor2
from repro.pdk.ptm90 import HIGH_VT, LOW_VT, NOMINAL


@dataclass(frozen=True)
class SstvsSizing:
    """Device widths [m] for the SS-TVS (lengths default to drawn L).

    The defaults were sized, like the paper's, for the delay/leakage
    trade-off at the 0.8 V <-> 1.2 V operating pair.
    """

    w_m1: float = 0.70e-6   #: node2 discharge NMOS (must beat M3)
    w_m2: float = 0.50e-6   #: ctrl pass PMOS, gate = out
    w_m3: float = 0.12e-6   #: node2 pull-up PMOS (weak: not delay-critical)
    l_m3: float = 0.60e-6   #: long-channel M3 weakens the M1 contention
    w_m4: float = 0.12e-6   #: node2 keeper NMOS (high-Vt)
    w_m5: float = 0.15e-6   #: node1 restore PMOS (regeneration trigger)
    l_m5: float = 0.15e-6
    w_m6: float = 0.40e-6   #: node1 pull-down NMOS (high-Vt; beats M5)
    w_m7: float = 0.10e-6   #: auxiliary ctrl charger, diode from input
    l_m7: float = 0.30e-6
    w_m8: float = 0.30e-6   #: main ctrl charger from VDDO (low-Vt)
    w_mc: float = 1.50e-6   #: MC hold capacitor width
    l_mc: float = 0.25e-6   #: MC hold capacitor length
    w_nor_n: float = 0.30e-6
    w_nor_p: float = 0.40e-6

    #: Optional flavor overrides, used by the ablation benches
    #: (e.g. {"m4": "nominal"} to study the high-Vt choice).
    flavor_overrides: dict = field(default_factory=dict)

    def flavor(self, device: str, default: str) -> str:
        return self.flavor_overrides.get(device, default)


def add_sstvs(circuit, pdk, name: str, inp: str, out: str, vddo: str,
              gnd: str = "0", sizing: SstvsSizing | None = None,
              l: float | None = None) -> dict:
    """Add an SS-TVS between ``inp`` (any domain) and ``out`` (VDDO).

    Returns device names plus a ``"nodes"`` entry with the internal
    node names (node1, node2, ctrl, y) for probing.
    """
    s = sizing or SstvsSizing()
    node1 = f"{name}.node1"
    node2 = f"{name}.node2"
    ctrl = f"{name}.ctrl"
    y = f"{name}.y"

    devices = {}
    # Output NOR: in (first/bottom PMOS input) and node2.
    devices.update({f"nor_{k}": v for k, v in add_nor2(
        circuit, pdk, f"{name}.nor", inp, node2, out, vddo, gnd,
        wn=s.w_nor_n, wp=s.w_nor_p, l=l).items()})

    # node1 / node2 half-latch. M3 and M5 are deliberately weak and
    # long: node2's rise is not delay-critical (the NOR's in-input
    # already forced the output low), and weakness is what lets M1 and
    # M6 win the ratioed fights.
    devices["m6"] = circuit.add(pdk.mosfet(
        f"{name}.m6", node1, inp, gnd, gnd, "n", s.w_m6, l,
        s.flavor("m6", HIGH_VT))).name
    devices["m3"] = circuit.add(pdk.mosfet(
        f"{name}.m3", node2, node1, vddo, vddo, "p", s.w_m3, s.l_m3,
        s.flavor("m3", NOMINAL))).name
    devices["m5"] = circuit.add(pdk.mosfet(
        f"{name}.m5", node1, node2, vddo, vddo, "p", s.w_m5, s.l_m5,
        s.flavor("m5", NOMINAL))).name
    devices["m4"] = circuit.add(pdk.mosfet(
        f"{name}.m4", node2, out, gnd, gnd, "n", s.w_m4, l,
        s.flavor("m4", HIGH_VT))).name

    # Discharge device: gate = ctrl, source = input node. Wide, because
    # its gate overdrive is only ctrl - Vt when the domains are close.
    devices["m1"] = circuit.add(pdk.mosfet(
        f"{name}.m1", node2, ctrl, inp, gnd, "n", s.w_m1, l,
        s.flavor("m1", NOMINAL))).name

    # ctrl charging network and hold capacitor. M8 is the low-Vt
    # follower from VDDO (gate on node2, full VDDO swing); M7 is a
    # nominal-Vt diode from the input (off when the input is low, so
    # it adds no static path). Neither device can *discharge* y at the
    # input fall — M7's gate drops with the input and M8 only sources
    # from VDDO — so ctrl rides through the transition. M2, a PMOS pass
    # (gate = out, so it is on exactly while the input is high),
    # connects the network to MC while the output is low
    # and isolates ctrl as soon as the output rises, exactly the
    # turn-off race the paper describes.
    devices["m8"] = circuit.add(pdk.mosfet(
        f"{name}.m8", vddo, inp, y, gnd, "n", s.w_m8, l,
        s.flavor("m8", LOW_VT))).name
    devices["m7"] = circuit.add(pdk.mosfet(
        f"{name}.m7", inp, inp, y, gnd, "n", s.w_m7, s.l_m7,
        s.flavor("m7", HIGH_VT))).name
    devices["m2"] = circuit.add(pdk.mosfet(
        f"{name}.m2", ctrl, out, y, vddo, "p", s.w_m2, l,
        s.flavor("m2", LOW_VT))).name
    devices["mc"] = circuit.add(pdk.mosfet(
        f"{name}.mc", gnd, ctrl, gnd, gnd, "n", s.w_mc, s.l_mc,
        s.flavor("mc", NOMINAL))).name

    devices["nodes"] = {"node1": node1, "node2": node2, "ctrl": ctrl,
                        "y": y}
    return devices
