"""Ultra-low-power level shifter with a current-mirror input sense.

Reconstruction of the 22 nm ULPLS of arXiv 2302.08553, which detects
input swings down to tens of millivolts. The published claim rests on
sensing the input in the *current* domain instead of the voltage
domain: a low-Vt input NMOS converts even a subthreshold gate swing
into decades of drain-current change, a PMOS mirror amplifies it, and
only then does a conventional inverter restore rails. The
transistor-level figure is not available in this environment; the
reconstruction (documented in DESIGN.md) follows the operating
description:

* **M1** (low-Vt NMOS, gate = input): the sense device. At millivolt
  inputs it operates purely in subthreshold, where
  ``Id ~ exp(Vgs / (n Vt))`` — the near-ideal slope of the lv22 node
  is exactly what makes a 70 mV swing produce a usable current ratio.
* **MP1/MP2** (PMOS diode + mirror, 1:4): amplify M1's sink current
  into a VDDO-referred pull-up on the mirror output ``y``.
* **MLOAD** (weak, long, high-Vt NMOS, gate tied to the VDDO rail):
  the always-on current reference ``y`` is compared against. The
  minimum detectable input is set by where the mirrored M1 current
  crosses this reference.
* **MRST** (weak, long PMOS, gate = input): with the input low it
  parks the mirror gate ``x`` at full VDDO, turning the mirror hard
  off so the low state burns only leakage; with the input high it is
  mostly off (``Vgs = VDDI - VDDO``) and merely adds a known offset to
  the sensed current.
* Output inverter ``y -> out`` (VDDO): rail restoration. Overall
  polarity is inverting, like the SS-TVS.

The cost — static mirror current while the input is high — is the
textbook price of current-mode sensing; the leaderboard's power
columns make it visible next to the latch-based cells.
"""

from __future__ import annotations

from repro.cells.inverter import add_inverter
from repro.pdk.ptm90 import HIGH_VT, LOW_VT


def add_ulpls(circuit, pdk, name: str, inp: str, out: str, vddo: str,
              gnd: str = "0", w_sense: float = 1.0e-6,
              w_diode: float = 0.15e-6, w_mirror: float = 0.6e-6,
              w_load: float = 0.1e-6, l_load: float = 0.5e-6,
              w_rst: float = 0.2e-6, l_rst: float = 0.2e-6,
              l: float | None = None) -> dict:
    """Add a current-mirror ULPLS (inverting, single supply)."""
    x = f"{name}.x"
    y = f"{name}.y"
    devices = {}
    devices["m1"] = circuit.add(pdk.mosfet(
        f"{name}.m1", x, inp, gnd, gnd, "n", w_sense, l, LOW_VT)).name
    devices["mp1"] = circuit.add(pdk.mosfet(
        f"{name}.mp1", x, x, vddo, vddo, "p", w_diode, l)).name
    devices["mp2"] = circuit.add(pdk.mosfet(
        f"{name}.mp2", y, x, vddo, vddo, "p", w_mirror, l)).name
    devices["mrst"] = circuit.add(pdk.mosfet(
        f"{name}.mrst", x, inp, vddo, vddo, "p", w_rst, l_rst)).name
    devices["mload"] = circuit.add(pdk.mosfet(
        f"{name}.mload", y, vddo, gnd, gnd, "n", w_load, l_load,
        HIGH_VT)).name
    devices.update({f"inv_{k}": v for k, v in add_inverter(
        circuit, pdk, f"{name}.inv1", y, out, vddo, gnd, l=l).items()})
    devices["nodes"] = {"x": x, "y": y}
    return devices
