"""Plugin registry for DUT cells: the only place that knows a kind.

Every layer that used to switch on ``kind == ...`` strings — testbench
construction, library characterization, VTC extraction, the batched and
sharded campaign paths, the CLI's argument choices — now resolves the
kind through this registry. A :class:`CellSpec` carries everything
those layers need declaratively:

* a *normalized builder*: every cell, whatever its native ``add_*``
  signature, builds through the same
  ``(circuit, pdk, name, inp, out, vddo_node, vddi_node, sizing)``
  adapter;
* the cell's polarity (``inverting``), domain requirements
  (``uses_vddi_rail`` for dual-supply cells, ``needs_select`` for
  externally steered ones), device count and sizing type;
* provenance metadata naming the source publication.

Registering a new topology makes it a first-class citizen everywhere
at once — benches, Monte Carlo, corners, the liberty writer, the
leaderboard, ``repro check --cells`` — with zero edits outside its own
module. Unknown kinds fail with the live registry listing, never a
hardcoded tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import AnalysisError


@dataclass(frozen=True)
class CellSpec:
    """Descriptor for one registered DUT cell.

    Attributes:
        name: registry key (the classic ``kind`` string).
        build: normalized builder
            ``(circuit, pdk, name, inp, out, vddo_node, vddi_node,
            sizing) -> dict`` returning the cell's device/node map.
        inverting: output polarity (False for e.g. the CVS).
        uses_vddi_rail: the cell needs the input-domain supply routed
            in (the wiring cost single-supply designs eliminate).
        needs_select: the cell needs external direction-select sources
            (``sel``/``selb`` nodes) on the bench.
        device_count: transistor count of the default-sized cell.
        sizing_type: dataclass accepted as the ``sizing`` argument, or
            None when the cell has no sizing knobs.
        area_probe: the native ``add_*`` builder handed to
            :func:`repro.layout.area.estimate_cell_area` (pin names are
            filled from its signature), or None to skip area reports.
        provenance: source publication / section for the topology.
        description: one-line human summary for listings.
    """

    name: str
    build: Callable
    inverting: bool = True
    uses_vddi_rail: bool = False
    needs_select: bool = False
    device_count: int = 0
    sizing_type: type | None = None
    area_probe: Callable | None = None
    provenance: str = ""
    description: str = ""

    def select_levels(self, vddi: float, vddo: float) -> tuple:
        """(sel, selb) levels steering a ``needs_select`` cell.

        Select the level-up path for a low-to-high shift, the inverter
        path otherwise — the combined VS convention from the paper.
        """
        sel = vddo if vddi < vddo else 0.0
        return sel, vddo - sel


_CELLS: dict[str, CellSpec] = {}


def register_cell(spec: CellSpec, replace: bool = False) -> CellSpec:
    """Register a cell; re-registration requires ``replace=True``."""
    if not spec.name:
        raise AnalysisError("cell name must be non-empty")
    if spec.name in _CELLS and not replace:
        raise AnalysisError(
            f"cell {spec.name!r} is already registered; pass "
            f"replace=True to override it")
    _CELLS[spec.name] = spec
    return spec


def get_cell(kind: str) -> CellSpec:
    """Look a cell up by kind; unknown kinds list the live registry."""
    try:
        return _CELLS[kind]
    except KeyError:
        raise AnalysisError(
            f"unknown DUT kind {kind!r}; registered cells: "
            f"{', '.join(cell_names())}") from None


def cell_names() -> tuple:
    """Registered cell names, in registration order."""
    return tuple(_CELLS)


def build_dut(circuit, pdk, kind: str, inp: str, out: str,
              vddo_node: str, vddi_node: str, sizing=None) -> dict:
    """Instantiate one registered DUT; returns its device/node map."""
    return get_cell(kind).build(circuit, pdk, "dut", inp, out,
                                vddo_node, vddi_node, sizing)


def dut_is_inverting(kind: str) -> bool:
    """Polarity of a registered DUT."""
    return get_cell(kind).inverting


def add_select_sources(circuit, kind: str, vddi: float,
                       vddo: float) -> bool:
    """Add the external direction-select sources a cell requires.

    Benches call this once before building the DUT; it is a no-op for
    self-directed cells. Returns whether sources were added.
    """
    spec = get_cell(kind)
    if not spec.needs_select:
        return False
    from repro.spice.devices import VoltageSource
    sel_level, selb_level = spec.select_levels(vddi, vddo)
    circuit.add(VoltageSource("vsel", "sel", "0", dc=sel_level))
    circuit.add(VoltageSource("vselb", "selb", "0", dc=selb_level))
    return True


# ---------------------------------------------------------------------------
# Built-in registrations (the paper's cells plus the extension zoo).
# Normalized-builder adapters absorb each native signature's quirks so
# every other layer sees one construction path.


def _register_builtin_cells() -> None:
    from repro.cells.combined_vs import add_combined_vs
    from repro.cells.cvs import add_cvs
    from repro.cells.inverter import add_inverter
    from repro.cells.lpls import add_lpls_pass, add_lpls_split
    from repro.cells.sstvs import SstvsSizing, add_sstvs
    from repro.cells.ssvs import add_ssvs_khan, add_ssvs_puri
    from repro.cells.ulpls import add_ulpls

    def _build_sstvs(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_sstvs(circuit, pdk, name, inp, out, vddo,
                         sizing=sizing if isinstance(sizing, SstvsSizing)
                         else None)

    def _build_combined(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_combined_vs(circuit, pdk, name, inp, out, vddo,
                               "sel", "selb")

    def _build_inverter(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_inverter(circuit, pdk, name, inp, out, vddo)

    def _build_ssvs_khan(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_ssvs_khan(circuit, pdk, name, inp, out, vddo)

    def _build_ssvs_puri(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_ssvs_puri(circuit, pdk, name, inp, out, vddo)

    def _build_cvs(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_cvs(circuit, pdk, name, inp, out, vddi, vddo)

    def _build_lpls_split(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_lpls_split(circuit, pdk, name, inp, out, vddi, vddo)

    def _build_lpls_pass(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_lpls_pass(circuit, pdk, name, inp, out, vddo)

    def _build_ulpls(circuit, pdk, name, inp, out, vddo, vddi, sizing):
        return add_ulpls(circuit, pdk, name, inp, out, vddo)

    register_cell(CellSpec(
        name="sstvs", build=_build_sstvs, inverting=True,
        device_count=13, sizing_type=SstvsSizing, area_probe=add_sstvs,
        provenance="DATE 2008, Figure 4 (the paper's contribution)",
        description="single-supply true VS: bidirectional, no select"))
    register_cell(CellSpec(
        name="combined", build=_build_combined, inverting=True,
        needs_select=True, device_count=18, area_probe=add_combined_vs,
        provenance="DATE 2008, Figure 3 (combined VS baseline)",
        description="mux of SS-VS and inverter paths, external select"))
    register_cell(CellSpec(
        name="inverter", build=_build_inverter, inverting=True,
        device_count=2, area_probe=add_inverter,
        provenance="reference gate (paper Tables 1-4 baseline column)",
        description="plain VDDO inverter, the do-nothing baseline"))
    register_cell(CellSpec(
        name="ssvs_khan", build=_build_ssvs_khan, inverting=True,
        device_count=8, area_probe=add_ssvs_khan,
        provenance="Khan et al. [6] (paper Section 2 reconstruction)",
        description="single-supply VS with feedback rail keeper"))
    register_cell(CellSpec(
        name="ssvs_puri", build=_build_ssvs_puri, inverting=True,
        device_count=7, area_probe=add_ssvs_puri,
        provenance="Puri et al. [13] (paper Section 2 reconstruction)",
        description="single-supply VS on a diode-dropped virtual rail"))
    register_cell(CellSpec(
        name="cvs", build=_build_cvs, inverting=False,
        uses_vddi_rail=True, device_count=6, area_probe=add_cvs,
        provenance="DATE 2008, Figure 1 (conventional dual-supply VS)",
        description="DCVS level shifter, needs both supplies routed"))
    register_cell(CellSpec(
        name="lpls_split", build=_build_lpls_split, inverting=False,
        uses_vddi_rail=True, device_count=8, area_probe=add_lpls_split,
        provenance="arXiv 1011.0507 (Kumar/Arya/Pandey), "
                   "contention-split DCVS variant",
        description="DCVS with input-gated split pull-ups cutting "
                    "crowbar contention"))
    register_cell(CellSpec(
        name="lpls_pass", build=_build_lpls_pass, inverting=True,
        device_count=4, area_probe=add_lpls_pass,
        provenance="arXiv 1011.0507 (Kumar/Arya/Pandey), "
                   "pass-transistor variant",
        description="NMOS pass gate + keeper half-latch, 4 devices"))
    register_cell(CellSpec(
        name="ulpls", build=_build_ulpls, inverting=True,
        device_count=7, area_probe=add_ulpls,
        provenance="arXiv 2302.08553 (22 nm ULPLS), current-mirror "
                   "input sense",
        description="current-mirror shifter detecting sub-threshold "
                    "input swings"))


_register_builtin_cells()
