"""Single-supply (non-true) level shifters: Puri et al. [13] and the
improved Khan et al. [6] style.

Neither reference circuit's transistor-level schematic is available in
this environment, so both are reconstructed from their published
descriptions (see DESIGN.md, substitutions table):

* **Puri style** [13]: a CVS-like half-latch whose input inverter is
  powered from a *virtual rail* one diode-connected-NMOS threshold below
  VDDO. The VT drop aligns the inverter's PMOS gate overdrive with the
  reduced input swing, cutting the leakage an ordinary inverter would
  exhibit — but the range is limited and leakage grows once
  ``VDDO - VDDI`` exceeds a threshold (exactly the critique in the
  paper's Section 2).

* **Khan style** [6]: adds a feedback keeper PMOS that restores the
  virtual rail to full VDDO while the input is low, removing the
  contention/leakage of that state and extending the working range.
  This is the paper's comparison baseline ("best known previous
  approach" for VDDI < VDDO).

Both are *inverting* as built here (output taken from the n1 side of
the latch), matching the paper's note that its comparison method has
the same inverting polarity as the SS-TVS.
"""

from __future__ import annotations

from repro.cells.inverter import add_inverter
from repro.pdk.ptm90 import HIGH_VT, LOW_VT


def add_ssvs_puri(circuit, pdk, name: str, inp: str, out: str, vddo: str,
                  gnd: str = "0", l: float | None = None) -> dict:
    """Add a Puri-style [13] single-supply level shifter (inverting)."""
    vvdd = f"{name}.vvdd"
    inb = f"{name}.inb"
    xout = f"{name}.xout"
    devices = {}
    devices["mdiode"] = circuit.add(pdk.mosfet(
        f"{name}.mdiode", vddo, vddo, vvdd, gnd, "n", 0.4e-6, l)).name
    devices.update({f"inv_{k}": v for k, v in add_inverter(
        circuit, pdk, f"{name}.inv1", inp, inb, vvdd, gnd, l=l).items()})
    devices["mn1"] = circuit.add(pdk.mosfet(
        f"{name}.mn1", out, inp, gnd, gnd, "n", 0.6e-6, l)).name
    devices["mno"] = circuit.add(pdk.mosfet(
        f"{name}.mno", xout, inb, gnd, gnd, "n", 0.6e-6, l)).name
    devices["mp1"] = circuit.add(pdk.mosfet(
        f"{name}.mp1", out, xout, vddo, vddo, "p", 0.12e-6, 0.2e-6)).name
    devices["mpo"] = circuit.add(pdk.mosfet(
        f"{name}.mpo", xout, out, vddo, vddo, "p", 0.12e-6, 0.2e-6)).name
    devices["nodes"] = {"vvdd": vvdd, "inb": inb, "xout": xout}
    return devices


def add_ssvs_khan(circuit, pdk, name: str, inp: str, out: str, vddo: str,
                  gnd: str = "0", l: float | None = None) -> dict:
    """Add a Khan-style [6] single-supply level shifter (inverting).

    Compared to the Puri structure, the keeper PMOS (gate = latch right
    side ``xout``) pulls the virtual rail to full VDDO whenever the
    input is low, so the input inverter then drives its NMOS load with
    a full-VDDO gate and leaks only subthreshold current. With the
    input high, the keeper releases and the diode-limited rail keeps
    the input inverter's PMOS near its cut-off edge — leakage well
    below a plain inverter's contention current, but (as the paper
    reports for [6]) clearly above the SS-TVS.
    """
    vvdd = f"{name}.vvdd"
    inb = f"{name}.inb"
    xout = f"{name}.xout"
    devices = {}
    # Low-Vt rail diode: keeps the virtual-rail floor a full NMOS
    # threshold above ground even at VDDO = 0.8 V, so the input
    # inverter can still flip the latch — the range extension [6]
    # claims over [13].
    devices["mdiode"] = circuit.add(pdk.mosfet(
        f"{name}.mdiode", vddo, vddo, vvdd, gnd, "n", 0.4e-6, l,
        LOW_VT)).name
    devices["mkeep"] = circuit.add(pdk.mosfet(
        f"{name}.mkeep", vvdd, xout, vddo, vddo, "p", 0.3e-6, l)).name
    devices.update({f"inv_{k}": v for k, v in add_inverter(
        circuit, pdk, f"{name}.inv1", inp, inb, vvdd, gnd, l=l).items()})
    # Pull-downs must overpower the deliberately weak cross-coupled
    # PMOS pair to flip the half-latch (standard DCVS ratioing).
    devices["mn1"] = circuit.add(pdk.mosfet(
        f"{name}.mn1", out, inp, gnd, gnd, "n", 0.6e-6, l)).name
    devices["mno"] = circuit.add(pdk.mosfet(
        f"{name}.mno", xout, inb, gnd, gnd, "n", 0.6e-6, l)).name
    devices["mp1"] = circuit.add(pdk.mosfet(
        f"{name}.mp1", out, xout, vddo, vddo, "p", 0.12e-6, 0.2e-6)).name
    devices["mpo"] = circuit.add(pdk.mosfet(
        f"{name}.mpo", xout, out, vddo, vddo, "p", 0.12e-6, 0.2e-6)).name
    devices["nodes"] = {"vvdd": vvdd, "inb": inb, "xout": xout}
    return devices
