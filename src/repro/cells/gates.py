"""Two-input static CMOS gates: NOR2 and NAND2.

The SS-TVS output stage is a NOR2 whose PMOS widths are doubled to
compensate the series stack, which (per the paper) balances the rise and
fall delays and gives the shifter the drive of a minimum inverter.
"""

from __future__ import annotations

from repro.pdk.ptm90 import NOMINAL

WN_DEFAULT = 0.2e-6
#: Series PMOS devices are doubled to match a 0.4 um inverter PMOS.
WP_SERIES_DEFAULT = 0.8e-6
WP_DEFAULT = 0.4e-6
WN_SERIES_DEFAULT = 0.4e-6


def add_nor2(circuit, pdk, name: str, in_a: str, in_b: str, out: str,
             vdd: str, gnd: str = "0", wn: float = WN_DEFAULT,
             wp: float = WP_SERIES_DEFAULT, l: float | None = None,
             flavor_n: str = NOMINAL, flavor_p: str = NOMINAL) -> dict:
    """Add ``out = not (in_a or in_b)``.

    The PMOS stack runs vdd -(gate in_b)- mid -(gate in_a)- out, so the
    transistor whose gate is driven by ``in_a`` is adjacent to the
    output — matching the paper's discussion of the transient leakage
    path through the in-driven PMOS of the SS-TVS NOR.
    """
    mid = f"{name}.pmid"
    devices = {
        "mp_b": circuit.add(pdk.mosfet(f"{name}.mp_b", mid, in_b, vdd, vdd,
                                       "p", wp, l, flavor_p)).name,
        "mp_a": circuit.add(pdk.mosfet(f"{name}.mp_a", out, in_a, mid, vdd,
                                       "p", wp, l, flavor_p)).name,
        "mn_a": circuit.add(pdk.mosfet(f"{name}.mn_a", out, in_a, gnd, gnd,
                                       "n", wn, l, flavor_n)).name,
        "mn_b": circuit.add(pdk.mosfet(f"{name}.mn_b", out, in_b, gnd, gnd,
                                       "n", wn, l, flavor_n)).name,
    }
    return devices


def add_nand2(circuit, pdk, name: str, in_a: str, in_b: str, out: str,
              vdd: str, gnd: str = "0", wn: float = WN_SERIES_DEFAULT,
              wp: float = WP_DEFAULT, l: float | None = None,
              flavor_n: str = NOMINAL, flavor_p: str = NOMINAL) -> dict:
    """Add ``out = not (in_a and in_b)``."""
    mid = f"{name}.nmid"
    devices = {
        "mp_a": circuit.add(pdk.mosfet(f"{name}.mp_a", out, in_a, vdd, vdd,
                                       "p", wp, l, flavor_p)).name,
        "mp_b": circuit.add(pdk.mosfet(f"{name}.mp_b", out, in_b, vdd, vdd,
                                       "p", wp, l, flavor_p)).name,
        "mn_a": circuit.add(pdk.mosfet(f"{name}.mn_a", out, in_a, mid, gnd,
                                       "n", wn, l, flavor_n)).name,
        "mn_b": circuit.add(pdk.mosfet(f"{name}.mn_b", mid, in_b, gnd, gnd,
                                       "n", wn, l, flavor_n)).name,
    }
    return devices
