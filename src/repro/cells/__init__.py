"""Cell library: primitive gates and every level shifter in the study.

Shifter cells are *registered plugins*: importing this package
registers the built-in zoo with :mod:`repro.cells.registry`, and every
consumer (benches, campaigns, the CLI) resolves kinds through
:func:`repro.cells.registry.get_cell` rather than hardcoded branches.
"""

from repro.cells.inverter import add_inverter
from repro.cells.gates import add_nand2, add_nor2
from repro.cells.passgate import add_mux2, add_transmission_gate
from repro.cells.cvs import add_cvs
from repro.cells.ssvs import add_ssvs_khan, add_ssvs_puri
from repro.cells.sstvs import SstvsSizing, add_sstvs
from repro.cells.combined_vs import add_combined_vs
from repro.cells.lpls import add_lpls_pass, add_lpls_split
from repro.cells.ulpls import add_ulpls
from repro.cells.registry import (
    CellSpec, add_select_sources, build_dut, cell_names, dut_is_inverting,
    get_cell, register_cell,
)

__all__ = [
    "add_inverter",
    "add_nand2",
    "add_nor2",
    "add_mux2",
    "add_transmission_gate",
    "add_cvs",
    "add_ssvs_khan",
    "add_ssvs_puri",
    "add_sstvs",
    "SstvsSizing",
    "add_combined_vs",
    "add_lpls_split",
    "add_lpls_pass",
    "add_ulpls",
    "CellSpec",
    "register_cell",
    "get_cell",
    "cell_names",
    "build_dut",
    "dut_is_inverting",
    "add_select_sources",
]
