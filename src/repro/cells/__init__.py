"""Cell library: primitive gates and every level shifter in the study."""

from repro.cells.inverter import add_inverter
from repro.cells.gates import add_nand2, add_nor2
from repro.cells.passgate import add_mux2, add_transmission_gate
from repro.cells.cvs import add_cvs
from repro.cells.ssvs import add_ssvs_khan, add_ssvs_puri
from repro.cells.sstvs import SstvsSizing, add_sstvs
from repro.cells.combined_vs import add_combined_vs

__all__ = [
    "add_inverter",
    "add_nand2",
    "add_nor2",
    "add_mux2",
    "add_transmission_gate",
    "add_cvs",
    "add_ssvs_khan",
    "add_ssvs_puri",
    "add_sstvs",
    "SstvsSizing",
    "add_combined_vs",
]
