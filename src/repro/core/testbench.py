"""Testbench construction for level-shifter characterization.

The bench replicates the paper's measurement setup (Section 4):

* the device under test is driven by a same-sized inverter powered from
  the *input* domain supply VDDI, itself driven by an ideal PWL source
  (so the DUT sees realistic edges and — crucial for the SS-TVS, whose
  M1 dumps charge into the input node — a realistic driver impedance);
* the DUT output carries a fixed 1 fF load;
* the DUT's single supply VDDO is a dedicated source so leakage and
  switching power are measured on it alone, excluding the driver;
* the combined VS additionally receives its external select signal,
  set according to whether the shift is low-to-high or high-to-low.

All DUT kinds used by the experiments are built through one registry so
benches, tests and Monte Carlo all share the construction path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cells import add_inverter
from repro.cells.registry import (
    add_select_sources, build_dut, cell_names, dut_is_inverting,
)
from repro.errors import AnalysisError
from repro.spice import Circuit
from repro.spice.devices import Capacitor, Pwl, VoltageSource

#: Well-known kind identifiers (the paper's cells). The registry — not
#: these constants — is the source of truth; they exist so call sites
#: read as prose.
SSTVS = "sstvs"
COMBINED = "combined"
INVERTER = "inverter"
SSVS_KHAN = "ssvs_khan"
SSVS_PURI = "ssvs_puri"
CVS = "cvs"


def __getattr__(name: str):
    # KINDS is computed, not stored: late-registered cells appear in it
    # automatically, so argparse choices, sweep-all campaigns, and the
    # test matrix track the live registry.
    if name == "KINDS":
        return cell_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Default output load, from the paper ("loaded with a fixed
#: capacitance of 1 fF").
LOAD_CAP = 1e-15

#: Ideal-source edge slew feeding the driver inverter [s].
SOURCE_SLEW = 5e-12


@dataclass(frozen=True)
class InputStep:
    """One input edge: at ``time`` the DUT input goes to ``high``."""

    time: float
    high: bool


@dataclass
class TestbenchProbes:
    """Node/source names to observe in analyses."""

    in_node: str = "in"
    out_node: str = "out"
    dut_supply: str = "vdut"
    driver_supply: str = "vdrv"
    source: str = "vsrc"
    internal: dict = field(default_factory=dict)


def input_source_pwl(steps: Sequence[InputStep], vddi: float,
                     slew: float = SOURCE_SLEW) -> Pwl:
    """PWL for the ideal source so the DUT input follows ``steps``.

    The driver inverter inverts, so the source gets the complement of
    each requested input level.
    """
    if not steps:
        raise AnalysisError("at least one input step is required")
    ordered = sorted(steps, key=lambda s: s.time)
    first = ordered[0]
    # Source level producing the pre-t0 input state: input low (high
    # source) before the first rising step and vice versa.
    points = [(1e-15, vddi if first.high else 0.0)]
    for step in ordered:
        if step.time <= points[-1][0]:
            raise AnalysisError("input steps must be strictly increasing "
                                "in time and after t=0")
        level = 0.0 if step.high else vddi
        points.append((step.time, points[-1][1]))
        points.append((step.time + slew, level))
    return Pwl(points)


def build_testbench(pdk, kind: str, vddi: float, vddo: float,
                    steps: Sequence[InputStep],
                    load_cap: float = LOAD_CAP,
                    sizing=None,
                    driver_scale: float = 1.0
                    ) -> tuple[Circuit, TestbenchProbes]:
    """Build the full characterization bench around one DUT.

    Args:
        driver_scale: multiplier on the driver inverter's device widths
            (1.0 = the paper's same-sized driver). Used by the
            driver-strength study; the SS-TVS's rising edge discharges
            node2 *through the input node*, so the driver's sink
            strength is on the critical path.

    Returns the circuit and the probe-name bundle.
    """
    if vddi <= 0 or vddo <= 0:
        raise AnalysisError("supply voltages must be positive")
    if driver_scale <= 0:
        raise AnalysisError("driver_scale must be positive")
    circuit = Circuit(f"{kind}_tb_{vddi:.3f}_to_{vddo:.3f}")
    probes = TestbenchProbes()

    circuit.add(VoltageSource(probes.dut_supply, "vddo", "0", dc=vddo))
    circuit.add(VoltageSource(probes.driver_supply, "vddi", "0", dc=vddi))
    circuit.add(VoltageSource(probes.source, "src", "0",
                              shape=input_source_pwl(steps, vddi)))
    from repro.cells.inverter import WN_DEFAULT, WP_DEFAULT
    add_inverter(circuit, pdk, "driver", "src", probes.in_node, "vddi",
                 wn=WN_DEFAULT * driver_scale,
                 wp=WP_DEFAULT * driver_scale)

    # Externally steered cells (the combined VS) get their
    # direction-select sources from the registry's shared helper.
    add_select_sources(circuit, kind, vddi, vddo)

    probes.internal = build_dut(circuit, pdk, kind, probes.in_node,
                                probes.out_node, "vddo", "vddi", sizing)
    circuit.add(Capacitor("cload", probes.out_node, "0", load_cap))
    return circuit, probes
