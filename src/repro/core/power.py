"""Per-device energy breakdown over transient windows.

The paper reports only total switching power; this extension attributes
the drawn energy to individual devices so design questions like "where
does the SS-TVS's rising-edge energy go?" are answerable. Device
currents are re-evaluated from the stored transient states (the same
analytic equations the solver used), then integrated with the trapezoid
rule over the window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.spice.devices.mosfet import Mosfet
from repro.spice.probes import device_currents
from repro.units import format_eng


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy accounting for one transient window."""

    t_start: float
    t_stop: float
    supply_energy: float          #: energy drawn from the named supply [J]
    device_dissipation: dict      #: name -> integral of |i * v_ds| [J]

    @property
    def window(self) -> float:
        return self.t_stop - self.t_start

    @property
    def average_power(self) -> float:
        return self.supply_energy / self.window

    def top_consumers(self, count: int = 5) -> list:
        items = sorted(self.device_dissipation.items(),
                       key=lambda kv: -kv[1])
        return items[:count]

    def pretty(self, title: str = "") -> str:
        lines = [title] if title else []
        lines.append(f"  window {format_eng(self.window, 's', 3)}, "
                     f"supply energy "
                     f"{format_eng(self.supply_energy, 'J', 3)} "
                     f"(avg {format_eng(self.average_power, 'W', 3)})")
        for name, energy in self.top_consumers():
            share = (energy / self.supply_energy * 100
                     if self.supply_energy else 0.0)
            lines.append(f"    {name:<18s} "
                         f"{format_eng(energy, 'J', 3):>9s} "
                         f"({share:5.1f}% of supply energy)")
        return "\n".join(lines)


def _mosfet_vds(device: Mosfet, x: np.ndarray) -> float:
    d, _, s, _ = device.node_indices
    vd = x[d] if d >= 0 else 0.0
    vs = x[s] if s >= 0 else 0.0
    return float(vd - vs)


def energy_breakdown(result, supply_name: str, t_start: float,
                     t_stop: float, max_samples: int = 400
                     ) -> EnergyBreakdown:
    """Integrate supply energy and per-MOSFET dissipation over a window.

    Args:
        result: a :class:`~repro.spice.transient.TransientResult`.
        supply_name: the voltage source whose delivered energy to count.
        max_samples: cap on the number of stored states re-evaluated
            (device evaluation is the expensive part); the window is
            subsampled evenly beyond it.
    """
    if t_stop <= t_start:
        raise AnalysisError("empty energy window")
    circuit = result.circuit
    mask = (result.times >= t_start) & (result.times <= t_stop)
    indices = np.nonzero(mask)[0]
    if indices.size < 2:
        raise AnalysisError("window contains fewer than two samples")
    if indices.size > max_samples:
        indices = indices[np.linspace(0, indices.size - 1, max_samples)
                          .astype(int)]
    times = result.times[indices]

    supply_voltage = circuit.device(supply_name).value(t_start)
    branch = circuit.branch_index(supply_name)

    mosfets = [d for d in circuit.devices_of_type(Mosfet)
               if "#" not in d.name]
    dissipation = {m.name: np.zeros(times.size) for m in mosfets}
    supply_current = np.zeros(times.size)

    for k, idx in enumerate(indices):
        x = result.state_at(float(result.times[idx]))
        supply_current[k] = -float(x[branch])
        currents = device_currents(circuit, x)
        for m in mosfets:
            dissipation[m.name][k] = abs(currents[m.name]
                                         * _mosfet_vds(m, x))

    supply_energy = float(np.trapezoid(supply_current, times)
                          * supply_voltage)
    device_energy = {name: float(np.trapezoid(p, times))
                     for name, p in dissipation.items()}
    return EnergyBreakdown(t_start=float(times[0]),
                           t_stop=float(times[-1]),
                           supply_energy=supply_energy,
                           device_dissipation=device_energy)
