"""Core public API for the SS-TVS reproduction."""

from repro.core.characterize import (
    QuickDelays, StimulusPlan, characterize, characterize_kinds,
    quick_delays, run_stimulus, worst_leakage,
)
from repro.core.metrics import (
    METRIC_FIELDS, METRIC_LABELS, METRIC_UNITS, MetricStatistics,
    ShifterMetrics, aggregate,
)
from repro.core.shifter import LevelShifter
from repro.core.testbench import (
    COMBINED, CVS, INVERTER, KINDS, SSTVS, SSVS_KHAN, SSVS_PURI,
    InputStep, TestbenchProbes, build_testbench, dut_is_inverting,
)

__all__ = [
    "LevelShifter",
    "ShifterMetrics",
    "MetricStatistics",
    "aggregate",
    "METRIC_FIELDS",
    "METRIC_LABELS",
    "METRIC_UNITS",
    "StimulusPlan",
    "characterize",
    "characterize_kinds",
    "worst_leakage",
    "quick_delays",
    "run_stimulus",
    "QuickDelays",
    "InputStep",
    "TestbenchProbes",
    "build_testbench",
    "dut_is_inverting",
    "KINDS",
    "SSTVS",
    "COMBINED",
    "INVERTER",
    "SSVS_KHAN",
    "SSVS_PURI",
    "CVS",
]
