"""Result dataclasses for level-shifter characterization."""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.units import format_eng

#: The six performance parameters of the paper's Tables 1-4, in order.
METRIC_FIELDS = (
    "delay_rise", "delay_fall", "power_rise", "power_fall",
    "leakage_high", "leakage_low",
)

#: Display units per metric, matching the paper's table rows.
METRIC_UNITS = {
    "delay_rise": "s", "delay_fall": "s",
    "power_rise": "W", "power_fall": "W",
    "leakage_high": "A", "leakage_low": "A",
}

#: Paper row labels per metric.
METRIC_LABELS = {
    "delay_rise": "Delay Rise",
    "delay_fall": "Delay Fall",
    "power_rise": "Power Rise",
    "power_fall": "Power Fall",
    "leakage_high": "Leakage Current High",
    "leakage_low": "Leakage Current Low",
}


@dataclass(frozen=True)
class ShifterMetrics:
    """One characterization run's results.

    Attributes:
        delay_rise: worst-case 50 %-to-50 % delay for a rising output [s].
        delay_fall: same for a falling output [s].
        power_rise: average VDDO-supply power over the rising-output
            switching window [W].
        power_fall: same for the falling-output window [W].
        leakage_high: static VDDO-supply current with the output high [A].
        leakage_low: same with the output low [A].
        functional: whether the output settled to correct full-swing
            levels after every stimulus edge.
    """

    delay_rise: float
    delay_fall: float
    power_rise: float
    power_fall: float
    leakage_high: float
    leakage_low: float
    functional: bool = True

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in METRIC_FIELDS}

    def ratio_to(self, other: "ShifterMetrics") -> dict[str, float]:
        """Per-metric ratio other/self — "how many times better we are".

        Matches the paper's headline phrasing ("7.5x lower leakage"
        means combined/sstvs = 7.5).
        """
        return {name: getattr(other, name) / getattr(self, name)
                for name in METRIC_FIELDS}

    def pretty(self, title: str = "") -> str:
        lines = [title] if title else []
        for name in METRIC_FIELDS:
            unit = METRIC_UNITS[name]
            lines.append(f"  {METRIC_LABELS[name]:<22s} "
                         f"{format_eng(getattr(self, name), unit)}")
        lines.append(f"  {'Functional':<22s} {self.functional}")
        return "\n".join(lines)


@dataclass(frozen=True)
class MetricStatistics:
    """Mean and standard deviation per metric over a Monte Carlo set."""

    mean: ShifterMetrics
    std: ShifterMetrics
    runs: int
    functional_yield: float

    def pretty(self, title: str = "") -> str:
        lines = [title] if title else []
        lines.append(f"  runs={self.runs}  "
                     f"yield={self.functional_yield * 100:.1f}%")
        for name in METRIC_FIELDS:
            unit = METRIC_UNITS[name]
            lines.append(
                f"  {METRIC_LABELS[name]:<22s} "
                f"mu={format_eng(getattr(self.mean, name), unit):>10s}  "
                f"sigma={format_eng(getattr(self.std, name), unit):>10s}")
        return "\n".join(lines)


def aggregate(samples: list[ShifterMetrics]) -> MetricStatistics:
    """Mean/sigma statistics over a list of metric samples.

    Non-functional samples are *included* in the statistics (the paper
    reports 100 % functionality, so this only matters for ablations) but
    tracked via ``functional_yield``. Raises ValueError on empty input.
    """
    import numpy as np

    if not samples:
        raise ValueError("cannot aggregate zero samples")
    arrays = {name: np.asarray([getattr(s, name) for s in samples])
              for name in METRIC_FIELDS}
    mean = ShifterMetrics(**{k: float(np.mean(v)) for k, v in arrays.items()},
                          functional=all(s.functional for s in samples))
    std = ShifterMetrics(**{k: float(np.std(v, ddof=1)) if len(samples) > 1
                            else 0.0 for k, v in arrays.items()},
                         functional=True)
    yield_frac = sum(1 for s in samples if s.functional) / len(samples)
    return MetricStatistics(mean=mean, std=std, runs=len(samples),
                            functional_yield=yield_frac)
