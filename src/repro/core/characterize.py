"""Characterization flows: delay, switching power, leakage, function.

The measurement methodology mirrors the paper's Section 4:

* **Delays** are 50 %-to-50 % input-to-output delays, reported as the
  *worst case over the input sequence*. The paper identifies the worst
  case for the rising output: an input high phase too short to fully
  charge the ctrl node, weakening M1's gate drive on the following
  input fall. The default stimulus therefore exercises each output edge
  twice — once after a long (fully settled) opposite phase and once
  after a short one — and reports the maximum per edge.
* **Switching power** is the average power drawn from the DUT's VDDO
  supply over a fixed window following the input edge that causes the
  output transition (driver and ideal sources excluded).
* **Leakage** is the static VDDO supply current, read from the settled
  tail of each logic state's quiet window (equivalent to a SPICE ``.op``
  at that state, but guaranteed to be on the *reached* state of the
  latch nodes rather than an arbitrary DC solution).
* **Functionality** requires the output to settle to within tolerance
  of the correct rail after every edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import ShifterMetrics
from repro.core.testbench import (
    InputStep, build_testbench, dut_is_inverting,
)
from repro.errors import AnalysisError, ConvergenceError, MeasurementError
from repro.spice.newton import NewtonOptions, newton_solve
from repro.spice.transient import Transient, TransientOptions
from repro.spice.waveform import FALL, RISE, propagation_delay


@dataclass(frozen=True)
class StimulusPlan:
    """Timing of the characterization stimulus.

    The input pattern is::

        reset pulse --(settle)--> RISE A --(hold)--> FALL B --(hold)-->
        RISE C --(short)--> FALL D --(hold)--> end

    The reset pulse (a brief input-high excursion early in the settle
    phase) knocks every latch in the DUT into its driven state: a cold
    DC operating point of a cross-coupled structure can legitimately
    converge on a metastable middle solution, and the input-high state
    is the one every shifter in this study drives unconditionally.

    Edges A/C drive the output's falling transitions (inverting DUT),
    edges B/D its rising ones; D follows a deliberately short high
    phase (the paper's worst case for the rising delay).
    """

    settle: float = 4e-9
    hold: float = 3e-9
    short: float = 0.8e-9
    reset_rise: float = 0.2e-9
    reset_fall: float = 2.2e-9
    power_window: float = 0.5e-9
    leakage_window: float = 0.5e-9
    #: Output must be within this fraction of the rail to count as
    #: settled/correct.
    level_tolerance: float = 0.08

    @property
    def t_rise_a(self) -> float:
        return self.settle

    @property
    def t_fall_b(self) -> float:
        return self.settle + self.hold

    @property
    def t_rise_c(self) -> float:
        return self.settle + 2 * self.hold

    @property
    def t_fall_d(self) -> float:
        return self.settle + 2 * self.hold + self.short

    @property
    def t_stop(self) -> float:
        return self.t_fall_d + self.hold

    def steps(self) -> list[InputStep]:
        return [InputStep(self.reset_rise, True),
                InputStep(self.reset_fall, False),
                InputStep(self.t_rise_a, True),
                InputStep(self.t_fall_b, False),
                InputStep(self.t_rise_c, True),
                InputStep(self.t_fall_d, False)]

    def validate(self) -> None:
        if min(self.settle, self.hold, self.short, self.reset_rise) <= 0:
            raise AnalysisError("stimulus phases must be positive")
        if not self.reset_rise < self.reset_fall < self.settle:
            raise AnalysisError("reset pulse must fit inside settle phase")
        if self.power_window >= self.hold:
            raise AnalysisError("power window must fit inside hold phase")


def _default_transient_options() -> TransientOptions:
    return TransientOptions(h_max=50e-12, dv_max=0.05)


def run_stimulus(pdk, kind: str, vddi: float, vddo: float,
                 plan: StimulusPlan, load_cap: float = 1e-15,
                 sizing=None, transient_options=None,
                 driver_scale: float = 1.0):
    """Build the bench, run the transient, return (result, probes)."""
    plan.validate()
    circuit, probes = build_testbench(pdk, kind, vddi, vddo, plan.steps(),
                                      load_cap=load_cap, sizing=sizing,
                                      driver_scale=driver_scale)
    options = transient_options or _default_transient_options()
    result = Transient(circuit, plan.t_stop, options).run()
    return result, probes


def characterize(pdk, kind: str, vddi: float, vddo: float,
                 plan: StimulusPlan | None = None,
                 load_cap: float = 1e-15, sizing=None,
                 transient_options=None,
                 driver_scale: float = 1.0) -> ShifterMetrics:
    """Full six-metric characterization of one shifter at one corner.

    A simulation that fails to converge (far outside the DUT's working
    range, or a pathological Monte Carlo sample) is reported as a
    non-functional sample with NaN metrics rather than raised.
    """
    plan = plan or StimulusPlan()
    try:
        result, probes = run_stimulus(pdk, kind, vddi, vddo, plan,
                                      load_cap=load_cap, sizing=sizing,
                                      transient_options=transient_options,
                                      driver_scale=driver_scale)
    except ConvergenceError:
        return _NONFUNCTIONAL
    return _metrics_from_result(result, probes, kind, vddi, vddo, plan)


#: The convergence-failure sentinel: NaN metrics, not functional.
_NONFUNCTIONAL = ShifterMetrics(
    float("nan"), float("nan"), float("nan"), float("nan"),
    float("nan"), float("nan"), functional=False)


def _metrics_from_result(result, probes, kind: str, vddi: float,
                         vddo: float, plan: StimulusPlan,
                         leakage=None) -> ShifterMetrics:
    """Extract the six metrics from a completed stimulus transient.

    Shared verbatim by :func:`characterize` and
    :func:`characterize_batch`: a batched lane whose waveforms are
    bitwise the serial ones therefore yields bitwise-identical metrics.

    ``leakage`` optionally carries the two static-current probes
    (at ``t_rise_a - 30ps`` then ``t_fall_b - 30ps``) precomputed by a
    batched DC pass; a ``None`` slot falls back to the serial solve.
    """
    w_in = result.wave(probes.in_node)
    w_out = result.wave(probes.out_node)
    i_dut = result.supply_current(probes.dut_supply)

    inverting = dut_is_inverting(kind)
    v_in_mid = vddi / 2.0
    v_out_mid = vddo / 2.0
    out_rise_in_edge = FALL if inverting else RISE
    out_fall_in_edge = RISE if inverting else FALL

    def edge_delay(t_edge: float, in_edge: str, out_edge: str) -> float:
        return propagation_delay(w_in, w_out, v_in_mid, v_out_mid,
                                 in_edge, out_edge,
                                 after=t_edge - 0.05e-9)

    # Input rises at A/C, falls at B/D. Map to output edges by polarity.
    in_rise_times = (plan.t_rise_a, plan.t_rise_c)
    in_fall_times = (plan.t_fall_b, plan.t_fall_d)
    out_rise_times = in_fall_times if inverting else in_rise_times
    out_fall_times = in_rise_times if inverting else in_fall_times
    try:
        delay_rise = max(edge_delay(t, out_rise_in_edge, RISE)
                         for t in out_rise_times)
        delay_fall = max(edge_delay(t, out_fall_in_edge, FALL)
                         for t in out_fall_times)
    except MeasurementError:
        # The output never crossed its midpoint: non-functional sample.
        return _NONFUNCTIONAL

    def window_power(t_edge: float) -> float:
        return vddo * i_dut.average(t_edge, t_edge + plan.power_window)

    power_rise = window_power(out_rise_times[0])
    power_fall = window_power(out_fall_times[0])

    # Leakage: a true DC solve of the bench *seeded from the reached
    # transient state* just before the next edge. Seeding pins the
    # latch nodes to the state the circuit actually occupies (a cold DC
    # solve of a latch can settle on the wrong branch), while the DC
    # solve itself removes the slow subthreshold settling tails that
    # would contaminate a windowed transient average. With an inverting
    # DUT the output is HIGH while the input is low (the initial settle
    # phase) and LOW while it is high (phase A..B).
    def static_current(t_probe: float) -> float:
        seed = result.state_at(t_probe)
        # Small damping steps keep Newton from hopping between latch
        # branches when the seed sits next to a regenerative loop.
        try:
            x = newton_solve(result.circuit, seed, time=t_probe,
                             options=NewtonOptions(max_step_v=0.04,
                                                   max_iterations=400))
            return -float(x[result.circuit.branch_index(probes.dut_supply)])
        except ConvergenceError:
            # Fall back to the windowed transient average; slightly
            # contaminated by slow settling tails but always defined.
            return i_dut.average(t_probe - plan.leakage_window + 30e-12,
                                 t_probe)

    first, second = leakage if leakage is not None else (None, None)
    if first is None:
        first = static_current(plan.t_rise_a - 30e-12)
    if second is None:
        second = static_current(plan.t_fall_b - 30e-12)
    if inverting:
        leakage_high, leakage_low = first, second
    else:
        leakage_low, leakage_high = first, second

    tol = plan.level_tolerance * vddo
    if inverting:
        high_ok = w_out.value_at(plan.t_rise_a - 30e-12) >= vddo - tol
        low_ok = abs(w_out.value_at(plan.t_fall_b - 30e-12)) <= tol
        final_ok = w_out.value_at(plan.t_stop) >= vddo - tol
    else:
        low_ok = abs(w_out.value_at(plan.t_rise_a - 30e-12)) <= tol
        high_ok = w_out.value_at(plan.t_fall_b - 30e-12) >= vddo - tol
        final_ok = abs(w_out.value_at(plan.t_stop)) <= tol
    functional = bool(high_ok and low_ok and final_ok)

    return ShifterMetrics(
        delay_rise=delay_rise, delay_fall=delay_fall,
        power_rise=power_rise, power_fall=power_fall,
        leakage_high=leakage_high, leakage_low=leakage_low,
        functional=functional)


def characterize_batch(lanes, transient_options=None) -> list:
    """Characterize N same-topology corners in one batched transient.

    ``lanes`` is a sequence of ``(pdk, kind, vddi, vddo, plan,
    load_cap, sizing, driver_scale)`` tuples — :func:`characterize`'s
    arguments, one tuple per lane. Monte Carlo lanes differ only in
    their :class:`~repro.pdk.variation.VariedPdk` (and possibly the
    supplies), which is exactly the same-topology case
    :class:`~repro.spice.batch.LaneGroup` accepts.

    Returns one entry per lane: a :class:`ShifterMetrics` on success, a
    :class:`~repro.runtime.experiment.BatchPointFailure` where the
    bench could not even be built (the experiment engine quarantines
    those, matching what the serial path's raised exception would do).
    Lanes whose transient stalls come back as the NaN non-functional
    metrics — the same convention :func:`characterize` uses for
    :class:`ConvergenceError`.

    If the lanes cannot be stacked (mixed topologies, opaque devices),
    every lane falls back to the serial :func:`characterize` — the
    downgrade is per-call and silent, so callers never need to know
    which path ran.
    """
    from repro.runtime.experiment import BatchPointFailure
    from repro.spice.batch import BatchTransient, BatchUnsupported

    built = []       # (lane_pos, circuit, probes, lane_args)
    results: list = [None] * len(lanes)
    for pos, lane in enumerate(lanes):
        pdk, kind, vddi, vddo, plan, load_cap, sizing, driver_scale = lane
        plan = plan or StimulusPlan()
        try:
            plan.validate()
            circuit, probes = build_testbench(
                pdk, kind, vddi, vddo, plan.steps(), load_cap=load_cap,
                sizing=sizing, driver_scale=driver_scale)
        except Exception as exc:  # noqa: BLE001 - quarantined per lane
            results[pos] = BatchPointFailure(stage="build", error=str(exc))
            continue
        built.append((pos, circuit, probes,
                      (kind, vddi, vddo, plan)))
    if not built:
        return results

    options = transient_options or _default_transient_options()
    try:
        batch = BatchTransient([c for _, c, _, _ in built],
                               [args[3].t_stop for _, _, _, args in built],
                               options)
    except BatchUnsupported:
        for pos, lane in enumerate(lanes):
            if results[pos] is None:
                (pdk, kind, vddi, vddo, plan, load_cap, sizing,
                 driver_scale) = lane
                results[pos] = characterize(
                    pdk, kind, vddi, vddo, plan=plan, load_cap=load_cap,
                    sizing=sizing, transient_options=transient_options,
                    driver_scale=driver_scale)
        return results

    bres = batch.run()
    leakage = _batched_leakage(batch.group, bres, built)
    for k, (pos, _, probes, (kind, vddi, vddo, plan)) in enumerate(built):
        if not bres.ok(k):
            results[pos] = _NONFUNCTIONAL
            continue
        results[pos] = _metrics_from_result(bres.lane(k), probes, kind,
                                            vddi, vddo, plan,
                                            leakage=leakage[k])
    return results


def _batched_leakage(group, bres, built) -> list:
    """Both static-current probes for every live lane, two batched DC
    solves total instead of two serial Newton runs per lane.

    A converged lane's supply current is bitwise the serial
    ``static_current`` value (same seed, same time, same options, lane
    replay per the batch equivalence contract). Non-converged slots stay
    None and :func:`_metrics_from_result` re-runs the serial solve —
    which fails identically and lands on the windowed-average fallback.
    """
    pairs = [[None, None] for _ in built]
    live = [k for k in range(len(built)) if bres.ok(k)]
    if not live:
        return pairs
    opts = NewtonOptions(max_step_v=0.04, max_iterations=400)
    for slot in (0, 1):
        times = []
        seeds = []
        for k in live:
            plan = built[k][3][3]
            t = (plan.t_rise_a if slot == 0 else plan.t_fall_b) - 30e-12
            times.append(t)
            seeds.append(bres.lane(k).state_at(t))
        res = group.newton(np.asarray(live, dtype=np.intp),
                           np.asarray(seeds, dtype=float),
                           times=times, integrators=[None] * len(live),
                           options=opts)
        for pos, k in enumerate(live):
            if res.converged[pos]:
                circuit, probes = built[k][1], built[k][2]
                pairs[k][slot] = -float(
                    res.x[pos][circuit.branch_index(probes.dut_supply)])
    return pairs


@dataclass(frozen=True)
class QuickDelays:
    """Lightweight result for voltage-grid sweeps (Figures 8/9)."""

    delay_rise: float
    delay_fall: float
    functional: bool


def quick_delays(pdk, kind: str, vddi: float, vddo: float,
                 settle: float = 3.0e-9, hold: float = 2.5e-9,
                 sizing=None, transient_options=None) -> QuickDelays:
    """One rise + one fall delay with a two-edge stimulus, for sweeps.

    Uses the long-charge edges only (the paper's surface plots show the
    delay trend across the voltage grid, not the worst-case sequence),
    which keeps the 169-point grid sweeps tractable.
    """
    # Reset pulse first: see StimulusPlan on latch metastability. The
    # pulse is long enough for the SS-TVS ctrl node to charge, so the
    # recovery edge completes before the measurement window.
    steps, t_rise, t_fall, t_stop = _quick_steps(settle, hold)
    circuit, probes = build_testbench(pdk, kind, vddi, vddo, steps,
                                      sizing=sizing)
    options = transient_options or _default_transient_options()
    try:
        result = Transient(circuit, t_stop, options).run()
    except ConvergenceError:
        return QuickDelays(float("nan"), float("nan"), False)
    return _quick_from_result(result, probes, kind, vddi, vddo,
                              t_rise, t_fall, hold)


def _quick_steps(settle: float, hold: float
                 ) -> tuple[list[InputStep], float, float, float]:
    """The two-edge quick stimulus; shared serial/batched."""
    t_rise = settle
    t_fall = settle + hold
    t_stop = t_fall + hold
    steps = [InputStep(0.2e-9, True), InputStep(1.8e-9, False),
             InputStep(t_rise, True), InputStep(t_fall, False)]
    return steps, t_rise, t_fall, t_stop


def _quick_from_result(result, probes, kind: str, vddi: float,
                       vddo: float, t_rise: float, t_fall: float,
                       hold: float) -> QuickDelays:
    """Delay/functionality extraction shared by serial and batched."""
    w_in = result.wave(probes.in_node)
    w_out = result.wave(probes.out_node)
    inverting = dut_is_inverting(kind)
    try:
        if inverting:
            d_fall = propagation_delay(w_in, w_out, vddi / 2, vddo / 2,
                                       RISE, FALL, after=t_rise - 0.05e-9)
            d_rise = propagation_delay(w_in, w_out, vddi / 2, vddo / 2,
                                       FALL, RISE, after=t_fall - 0.05e-9)
        else:
            d_rise = propagation_delay(w_in, w_out, vddi / 2, vddo / 2,
                                       RISE, RISE, after=t_rise - 0.05e-9)
            d_fall = propagation_delay(w_in, w_out, vddi / 2, vddo / 2,
                                       FALL, FALL, after=t_fall - 0.05e-9)
    except MeasurementError:
        return QuickDelays(float("nan"), float("nan"), False)

    tol = 0.08 * vddo
    high_sample = t_rise - 30e-12 if inverting else t_fall + hold * 0.9
    low_sample = t_fall - 30e-12 if inverting else t_rise - 30e-12
    functional = (w_out.value_at(high_sample) >= vddo - tol
                  and abs(w_out.value_at(low_sample)) <= tol)
    return QuickDelays(d_rise, d_fall, bool(functional))


def quick_delays_batch(lanes, transient_options=None) -> list:
    """Batched :func:`quick_delays` over N same-topology grid points.

    ``lanes`` is a sequence of ``(pdk, kind, vddi, vddo, settle, hold,
    sizing)`` tuples. Same contract as :func:`characterize_batch`:
    per-lane :class:`QuickDelays` (stalled lanes are the NaN
    non-functional value), :class:`BatchPointFailure` where the bench
    cannot be built, transparent all-serial fallback when the lanes
    cannot be stacked.
    """
    from repro.runtime.experiment import BatchPointFailure
    from repro.spice.batch import BatchTransient, BatchUnsupported

    built = []
    results: list = [None] * len(lanes)
    for pos, lane in enumerate(lanes):
        pdk, kind, vddi, vddo, settle, hold, sizing = lane
        steps, t_rise, t_fall, t_stop = _quick_steps(settle, hold)
        try:
            circuit, probes = build_testbench(pdk, kind, vddi, vddo,
                                              steps, sizing=sizing)
        except Exception as exc:  # noqa: BLE001 - quarantined per lane
            results[pos] = BatchPointFailure(stage="build", error=str(exc))
            continue
        built.append((pos, circuit, probes,
                      (kind, vddi, vddo, t_rise, t_fall, t_stop, hold)))
    if not built:
        return results

    options = transient_options or _default_transient_options()
    try:
        batch = BatchTransient([c for _, c, _, _ in built],
                               [args[5] for _, _, _, args in built],
                               options)
    except BatchUnsupported:
        for pos, lane in enumerate(lanes):
            if results[pos] is None:
                pdk, kind, vddi, vddo, settle, hold, sizing = lane
                results[pos] = quick_delays(
                    pdk, kind, vddi, vddo, settle=settle, hold=hold,
                    sizing=sizing, transient_options=transient_options)
        return results

    bres = batch.run()
    for k, (pos, _, probes, args) in enumerate(built):
        kind, vddi, vddo, t_rise, t_fall, _, hold = args
        if not bres.ok(k):
            results[pos] = QuickDelays(float("nan"), float("nan"), False)
            continue
        results[pos] = _quick_from_result(bres.lane(k), probes, kind,
                                          vddi, vddo, t_rise, t_fall,
                                          hold)
    return results


#: Experiment name for multi-kind characterization campaigns.
CHARACTERIZE_EXPERIMENT = "characterize"


def _kind_measure(params: tuple) -> ShifterMetrics:
    """Characterize one kind; shared by serial and pool paths."""
    kind, vddi, vddo, pdk, plan, load_cap, sizing, driver_scale = params
    return characterize(pdk, kind, vddi, vddo, plan=plan,
                        load_cap=load_cap, sizing=sizing,
                        driver_scale=driver_scale)


def characterize_kinds_spec(kinds, vddi: float, vddo: float, pdk=None,
                            plan: StimulusPlan | None = None,
                            load_cap: float = 1e-15, sizing=None,
                            driver_scale: float = 1.0,
                            workers: int = 1,
                            chunk_size: int | None = None):
    """Describe a multi-kind characterization campaign declaratively."""
    from repro.runtime.experiment import ExperimentPoint, ExperimentSpec
    if pdk is None:
        from repro.pdk import Pdk
        pdk = Pdk()
    points = [ExperimentPoint(kind, (kind, vddi, vddo, pdk, plan,
                                     load_cap, sizing, driver_scale))
              for kind in kinds]
    return ExperimentSpec(
        name=CHARACTERIZE_EXPERIMENT, measure=_kind_measure,
        points=points, stage="characterize", codec="metrics",
        workers=workers, chunk_size=chunk_size,
        metadata={"experiment": "characterize", "kinds": list(kinds),
                  "vddi": vddi, "vddo": vddo,
                  "pdk_node": getattr(pdk, "node", "ptm90")})


def characterize_kinds(kinds, vddi: float, vddo: float, pdk=None,
                       plan: StimulusPlan | None = None,
                       load_cap: float = 1e-15, sizing=None,
                       driver_scale: float = 1.0, workers: int = 1,
                       chunk_size: int | None = None, resume=None,
                       store=None,
                       run_id: str | None = None, cache=None) -> dict:
    """Characterize several kinds at one operating point.

    Returns ``kind -> ShifterMetrics``, in the order given. Routed
    through the unified experiment engine, so ``workers > 1``
    parallelizes over kinds and ``store=`` persists the run with a
    provenance manifest. A kind whose bench escapes the solver's retry
    ladder comes back as a non-functional NaN entry (matching
    :func:`characterize`'s own convergence-failure convention).
    """
    from repro.runtime.experiment import run_experiment
    spec = characterize_kinds_spec(kinds, vddi, vddo, pdk=pdk, plan=plan,
                                   load_cap=load_cap, sizing=sizing,
                                   driver_scale=driver_scale,
                                   workers=workers, chunk_size=chunk_size)
    resultset = run_experiment(spec, resume=resume, store=store,
                               run_id=run_id, cache=cache)
    nan = float("nan")
    return {row.index: row.value if row.ok else ShifterMetrics(
                nan, nan, nan, nan, nan, nan, functional=False)
            for row in resultset.rows}


def worst_leakage(pdk, kind: str, vddi: float, vddo: float,
                  cache=None) -> float:
    """Worst-state static leakage [A] of one cell at one pair.

    Routed through the experiment engine so a :class:`SolveCache`
    passed as ``cache`` serves repeat queries bitwise-identically to a
    live solve — the shifter planner and the floorplanner cost leakage
    through here, sharing cache entries with ``characterize_kinds``
    campaigns at the same operating point.
    """
    metrics = characterize_kinds([kind], vddi, vddo, pdk=pdk,
                                 cache=cache)[kind]
    return max(metrics.leakage_high, metrics.leakage_low)
