"""High-level facade: :class:`LevelShifter`.

This is the primary entry point for library users::

    from repro.core import LevelShifter

    shifter = LevelShifter("sstvs")
    metrics = shifter.characterize(vddi=0.8, vddo=1.2)
    print(metrics.pretty("SS-TVS, 0.8 V -> 1.2 V"))
"""

from __future__ import annotations

from repro.core.characterize import (
    QuickDelays, StimulusPlan, characterize, quick_delays,
)
from repro.cells.registry import get_cell
from repro.core.metrics import ShifterMetrics
from repro.pdk import Pdk


class LevelShifter:
    """One shifter kind bound to a PDK and optional sizing.

    Args:
        kind: any registered cell name (see
            :func:`repro.cells.registry.cell_names`), e.g. ``"sstvs"``.
        pdk: device factory; defaults to the nominal 27 C PDK.
        sizing: optional sizing dataclass matching the cell's
            ``sizing_type`` (e.g. :class:`~repro.cells.sstvs.SstvsSizing`
            for the SS-TVS).
    """

    def __init__(self, kind: str, pdk: Pdk | None = None, sizing=None):
        get_cell(kind)  # unknown kinds fail with the registry listing
        self.kind = kind
        self.pdk = pdk or Pdk()
        self.sizing = sizing

    def characterize(self, vddi: float, vddo: float,
                     plan: StimulusPlan | None = None,
                     load_cap: float = 1e-15,
                     transient_options=None) -> ShifterMetrics:
        """Full six-metric characterization at one (VDDI, VDDO) pair."""
        return characterize(self.pdk, self.kind, vddi, vddo, plan=plan,
                            load_cap=load_cap, sizing=self.sizing,
                            transient_options=transient_options)

    def quick_delays(self, vddi: float, vddo: float, **kwargs) -> QuickDelays:
        """Rise/fall delay + functionality with the short sweep stimulus."""
        return quick_delays(self.pdk, self.kind, vddi, vddo,
                            sizing=self.sizing, **kwargs)

    def at_temperature(self, temperature_c: float) -> "LevelShifter":
        """Same shifter on a PDK re-targeted to another temperature."""
        return LevelShifter(self.kind, self.pdk.at_temperature(temperature_c),
                            self.sizing)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LevelShifter {self.kind} @ {self.pdk.temperature_c} C>"
