"""Liberty-style (NLDM) cell characterization.

Standard-cell flows describe a cell's timing as tables of delay and
output transition over (input transition, output load). This module
generates those tables by direct SPICE-level simulation — the DUT input
is driven by a PWL ramp of controlled slew (not through the paper's
driver inverter, which fixes the slew), and each (slew, load) grid
point gets one rising and one falling measurement.

The tables feed :mod:`repro.sta`, the small static-timing engine used
by the SoC-level studies, and can be exported as a ``.lib``-like text
block for inspection.

Level-shifter caveat: a shifter's input and output swings differ, so
the "input transition" axis is defined on the input domain swing and
thresholds scale per-domain (30/70 % for transition, 50 % for delay) —
the same convention multi-voltage liberty files use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cells.registry import (
    add_select_sources, build_dut, dut_is_inverting,
)
from repro.errors import AnalysisError, MeasurementError
from repro.spice import Circuit, Transient
from repro.spice.devices import Capacitor, Pwl, VoltageSource
from repro.spice.transient import TransientOptions
from repro.spice.waveform import FALL, RISE, propagation_delay

#: Default characterization axes.
DEFAULT_SLEWS = (20e-12, 80e-12, 200e-12)
DEFAULT_LOADS = (0.5e-15, 2e-15, 8e-15)

#: Transition-time measurement thresholds (fraction of the rail).
TRANSITION_LOW = 0.3
TRANSITION_HIGH = 0.7


@dataclass
class NldmTable:
    """One 2-D lookup table: rows = input slew, cols = output load."""

    slews: np.ndarray
    loads: np.ndarray
    values: np.ndarray   #: shape (len(slews), len(loads))

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation with edge clamping (liberty style)."""
        slew = float(np.clip(slew, self.slews[0], self.slews[-1]))
        load = float(np.clip(load, self.loads[0], self.loads[-1]))
        i = int(np.clip(np.searchsorted(self.slews, slew) - 1, 0,
                        len(self.slews) - 2))
        j = int(np.clip(np.searchsorted(self.loads, load) - 1, 0,
                        len(self.loads) - 2))
        s0, s1 = self.slews[i], self.slews[i + 1]
        l0, l1 = self.loads[j], self.loads[j + 1]
        fs = (slew - s0) / (s1 - s0) if s1 > s0 else 0.0
        fl = (load - l0) / (l1 - l0) if l1 > l0 else 0.0
        v = self.values
        return float(
            v[i, j] * (1 - fs) * (1 - fl) + v[i + 1, j] * fs * (1 - fl)
            + v[i, j + 1] * (1 - fs) * fl + v[i + 1, j + 1] * fs * fl)

    def max_value(self) -> float:
        return float(np.nanmax(self.values))


@dataclass
class TimingArc:
    """One input-to-output arc of a characterized cell."""

    cell_rise: NldmTable          #: delay to a rising output [s]
    cell_fall: NldmTable          #: delay to a falling output [s]
    rise_transition: NldmTable    #: output rise transition [s]
    fall_transition: NldmTable    #: output fall transition [s]
    inverting: bool = True


@dataclass
class CellCharacterization:
    """A characterized cell: one timing arc plus pin capacitance."""

    name: str
    kind: str
    vddi: float
    vddo: float
    arc: TimingArc
    input_capacitance: float
    slews: tuple = ()
    loads: tuple = ()


def _input_pwl(vddi: float, slew: float, t_rise: float,
               t_fall: float) -> Pwl:
    """Ramped stimulus: reset pulse, then the measured rise and fall.

    The leading pulse initializes any internal latches (a cold DC solve
    of a cross-coupled structure can sit on a metastable branch — see
    :class:`repro.core.characterize.StimulusPlan`).
    """
    reset_slew = min(slew, 50e-12)
    return Pwl([
        (1e-12, 0.0),
        (0.2e-9, 0.0), (0.2e-9 + reset_slew, vddi),
        (1.5e-9, vddi), (1.5e-9 + reset_slew, 0.0),
        (t_rise, 0.0), (t_rise + slew, vddi),
        (t_fall, vddi), (t_fall + slew, 0.0),
    ])


def _estimate_input_capacitance(circuit: Circuit, in_node: str) -> float:
    """Sum gate/overlap capacitance looking into the input pin."""
    from repro.spice.devices import Capacitor as Cap
    total = 0.0
    circuit.finalize()
    for device in circuit.devices_of_type(Cap):
        if in_node in device.nodes:
            total += device.capacitance
    return total


def _grid_measure(params: tuple) -> dict:
    """Characterize one (slew, load) grid point; serial or pooled."""
    kind, vddi, vddo, slew, load, settle, pdk, sizing = params
    t_rise = settle
    t_fall = settle + 3e-9
    t_stop = t_fall + 3e-9
    circuit = Circuit(f"lib_{kind}")
    circuit.add(VoltageSource("vdut", "vddo", "0", dc=vddo))
    circuit.add(VoltageSource("vsrc", "in", "0",
                              shape=_input_pwl(vddi, slew,
                                               t_rise, t_fall)))
    build_dut(circuit, pdk, kind, "in", "out", "vddo", "vddi", sizing)
    add_select_sources(circuit, kind, vddi, vddo)
    circuit.add(Capacitor("cload", "out", "0", float(load)))
    input_cap = _estimate_input_capacitance(circuit, "in")
    options = TransientOptions(h_max=50e-12, dv_max=0.05)
    result = Transient(circuit, t_stop, options).run()
    w_in = result.wave("in")
    w_out = result.wave("out")

    inverting = dut_is_inverting(kind)
    in_edge_for_rise = FALL if inverting else RISE
    in_edge_for_fall = RISE if inverting else FALL
    t_out_rise_after = t_fall if inverting else t_rise
    t_out_fall_after = t_rise if inverting else t_fall
    try:
        return {
            "cell_rise": propagation_delay(
                w_in, w_out, vddi / 2, vddo / 2, in_edge_for_rise,
                RISE, after=t_out_rise_after - 0.05e-9),
            "cell_fall": propagation_delay(
                w_in, w_out, vddi / 2, vddo / 2, in_edge_for_fall,
                FALL, after=t_out_fall_after - 0.05e-9),
            "rise_transition": w_out.transition_time(
                TRANSITION_LOW * vddo, TRANSITION_HIGH * vddo, RISE,
                after=t_out_rise_after - 0.05e-9),
            "fall_transition": w_out.transition_time(
                TRANSITION_LOW * vddo, TRANSITION_HIGH * vddo, FALL,
                after=t_out_fall_after - 0.05e-9),
            "input_capacitance": input_cap,
        }
    except MeasurementError as error:
        raise AnalysisError(
            f"{kind} failed characterization at slew="
            f"{slew:.3g}, load={load:.3g}: {error}") from error


def libchar_spec(kind: str, vddi: float, vddo: float, pdk,
                 slews: Sequence[float] = DEFAULT_SLEWS,
                 loads: Sequence[float] = DEFAULT_LOADS,
                 settle: float = 3e-9, sizing=None, workers: int = 1,
                 chunk_size: int | None = None):
    """Describe an NLDM grid characterization declaratively."""
    from repro.runtime.experiment import ExperimentPoint, ExperimentSpec
    slews = np.asarray(sorted(slews), dtype=float)
    loads = np.asarray(sorted(loads), dtype=float)
    if slews.size < 2 or loads.size < 2:
        raise AnalysisError("need at least 2 slews and 2 loads")
    points = [ExperimentPoint((i, j), (kind, vddi, vddo, float(slew),
                                       float(load), settle, pdk, sizing))
              for i, slew in enumerate(slews)
              for j, load in enumerate(loads)]
    return ExperimentSpec(
        name="libchar", measure=_grid_measure, points=points,
        stage="nldm", codec="json", workers=workers,
        chunk_size=chunk_size,
        metadata={"experiment": "libchar", "kind": kind, "vddi": vddi,
                  "vddo": vddo, "slews": [float(s) for s in slews],
                  "loads": [float(c) for c in loads],
                  "pdk_node": getattr(pdk, "node", "ptm90")})


def characterize_cell(kind: str, pdk, vddi: float, vddo: float,
                      slews: Sequence[float] = DEFAULT_SLEWS,
                      loads: Sequence[float] = DEFAULT_LOADS,
                      settle: float = 3e-9,
                      sizing=None, workers: int = 1,
                      chunk_size: int | None = None,
                      store=None,
                      run_id: str | None = None,
                      cache=None) -> CellCharacterization:
    """Build the NLDM tables for one cell at one voltage pair.

    The (slew, load) grid is run through the unified experiment engine;
    ``workers > 1`` distributes grid points over a process pool with
    tables identical to a serial run. A grid point that fails raises
    :class:`AnalysisError` (NLDM tables cannot carry holes), as before.
    """
    from repro.runtime.experiment import run_experiment
    slews = np.asarray(sorted(slews), dtype=float)
    loads = np.asarray(sorted(loads), dtype=float)
    spec = libchar_spec(kind, vddi, vddo, pdk, slews=slews, loads=loads,
                        settle=settle, sizing=sizing, workers=workers,
                        chunk_size=chunk_size)
    resultset = run_experiment(spec, store=store, run_id=run_id,
                               cache=cache)
    failures = resultset.sample_failures()
    if failures:
        f = failures[0]
        raise AnalysisError(f.error.split(": ", 1)[-1]
                            if f.error.startswith("AnalysisError: ")
                            else f.error)

    shape = (slews.size, loads.size)
    tables = {key: np.full(shape, np.nan) for key in
              ("cell_rise", "cell_fall", "rise_transition",
               "fall_transition")}
    inverting = dut_is_inverting(kind)
    input_cap = None
    for row in resultset.rows:
        i, j = row.index
        for key in tables:
            tables[key][i, j] = row.value[key]
        if input_cap is None:
            input_cap = row.value["input_capacitance"]

    arc = TimingArc(
        cell_rise=NldmTable(slews, loads, tables["cell_rise"]),
        cell_fall=NldmTable(slews, loads, tables["cell_fall"]),
        rise_transition=NldmTable(slews, loads,
                                  tables["rise_transition"]),
        fall_transition=NldmTable(slews, loads,
                                  tables["fall_transition"]),
        inverting=inverting)
    return CellCharacterization(
        name=f"{kind}_{vddi:.2f}_{vddo:.2f}".replace(".", "p"),
        kind=kind, vddi=vddi, vddo=vddo, arc=arc,
        input_capacitance=float(input_cap or 0.0),
        slews=tuple(slews), loads=tuple(loads))


def write_liberty(cells: Sequence[CellCharacterization],
                  library_name: str = "repro_lvl") -> str:
    """Render characterizations as a ``.lib``-like text block.

    The output follows liberty's structure (lu_table_template, cell,
    pin, timing groups) closely enough for human inspection and
    round-trip testing; it is not a validated EDA-tool input.
    """
    if not cells:
        raise AnalysisError("no cells to write")
    first = cells[0]
    lines = [f"library ({library_name}) {{",
             '  time_unit : "1ns";',
             '  capacitive_load_unit (1, pf);',
             f"  lu_table_template (tmpl_{len(first.slews)}x"
             f"{len(first.loads)}) {{",
             "    variable_1 : input_net_transition;",
             "    variable_2 : total_output_net_capacitance;",
             f"    index_1 (\"{', '.join(f'{s * 1e9:.4g}' for s in first.slews)}\");",
             f"    index_2 (\"{', '.join(f'{c * 1e12:.4g}' for c in first.loads)}\");",
             "  }"]

    def table_block(label: str, table: NldmTable) -> list[str]:
        rows = [f"      {label} (tmpl_{len(table.slews)}x"
                f"{len(table.loads)}) {{"]
        rows.append("        values ( \\")
        for i in range(table.slews.size):
            row = ", ".join(f"{v * 1e9:.5f}" for v in table.values[i])
            tail = ", \\" if i < table.slews.size - 1 else " \\"
            rows.append(f'          "{row}"{tail}')
        rows.append("        );")
        rows.append("      }")
        return rows

    for cell in cells:
        lines.append(f"  cell ({cell.name}) {{")
        lines.append(f"    pin (A) {{ direction : input; capacitance : "
                     f"{cell.input_capacitance * 1e12:.5f}; }}")
        lines.append("    pin (Y) {")
        lines.append("      direction : output;")
        sense = "negative_unate" if cell.arc.inverting else \
            "positive_unate"
        lines.append("      timing () {")
        lines.append("        related_pin : \"A\";")
        lines.append(f"        timing_sense : {sense};")
        lines.extend(table_block("cell_rise", cell.arc.cell_rise))
        lines.extend(table_block("rise_transition",
                                 cell.arc.rise_transition))
        lines.extend(table_block("cell_fall", cell.arc.cell_fall))
        lines.extend(table_block("fall_transition",
                                 cell.arc.fall_transition))
        lines.append("      }")
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"
