"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses distinguish netlist construction problems, parse
errors, solver failures, and measurement failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CircuitError(ReproError):
    """Invalid circuit construction (unknown node, duplicate device, ...)."""


class NetlistError(ReproError):
    """A SPICE netlist could not be lexed or parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ConvergenceError(ReproError):
    """The nonlinear solver failed to converge.

    Attributes:
        iterations: iterations spent by the best (closest) attempt.
        residual: that attempt's final residual proxy [V], if known.
        report: the :class:`~repro.runtime.report.SolveReport` (or
            :class:`~repro.runtime.report.TransientReport`) recording
            every retry strategy tried before giving up, when the error
            escaped the full retry ladder rather than a single solve.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None, report=None):
        self.iterations = iterations
        self.residual = residual
        self.report = report
        super().__init__(message)

    @property
    def attempts(self) -> list:
        """Per-attempt history (empty when no report was attached)."""
        return list(getattr(self.report, "attempts", ()) or ())


class AnalysisError(ReproError):
    """An analysis was configured incorrectly or failed to complete."""


class MeasurementError(ReproError):
    """A waveform measurement could not be evaluated (no crossing, ...)."""


class ModelError(ReproError):
    """Invalid device-model parameters."""
