"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses distinguish netlist construction problems, parse
errors, solver failures, and measurement failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CircuitError(ReproError):
    """Invalid circuit construction (unknown node, duplicate device, ...)."""


class NetlistError(ReproError):
    """A SPICE netlist could not be lexed or parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ConvergenceError(ReproError):
    """The nonlinear solver failed to converge."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        self.iterations = iterations
        self.residual = residual
        super().__init__(message)


class AnalysisError(ReproError):
    """An analysis was configured incorrectly or failed to complete."""


class MeasurementError(ReproError):
    """A waveform measurement could not be evaluated (no crossing, ...)."""


class ModelError(ReproError):
    """Invalid device-model parameters."""
