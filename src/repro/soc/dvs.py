"""DVS schedule generation and domain-pair statistics.

Generators for the schedule shapes the DVS literature the paper cites
uses (step workloads, periodic race-to-idle, random walks over a
voltage ladder), plus pairwise statistics that quantify how often a
true level shifter is *required* on an SoC: the fraction of time, and
the number of flips, for which a static direction choice would be
wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.soc.domain import DvsSchedule, relationship_flips

#: The paper's DVS voltage ladder [V].
DEFAULT_LADDER = (0.8, 1.0, 1.2, 1.4)


def periodic_schedule(high: float, low: float, period: float,
                      duty: float = 0.5, cycles: int = 4,
                      start: float = 0.0) -> DvsSchedule:
    """Race-to-idle style: ``high`` for duty*period, then ``low``."""
    if not 0.0 < duty < 1.0:
        raise AnalysisError("duty must be in (0, 1)")
    if period <= 0 or cycles < 1:
        raise AnalysisError("need positive period and >= 1 cycle")
    points = []
    for k in range(cycles):
        t0 = start + k * period
        points.append((t0, high))
        points.append((t0 + duty * period, low))
    return DvsSchedule(tuple(points))


def random_walk_schedule(rng: np.random.Generator,
                         ladder=DEFAULT_LADDER, steps: int = 8,
                         dwell: float = 5.0,
                         start_index: int | None = None) -> DvsSchedule:
    """Random walk over a voltage ladder with fixed dwell times.

    Models a governor reacting to an unpredictable workload: each dwell
    the voltage moves up, down, or holds, clamped to the ladder.
    """
    if steps < 1:
        raise AnalysisError("need at least one step")
    ladder = sorted(ladder)
    index = (rng.integers(0, len(ladder))
             if start_index is None else int(start_index))
    index = int(np.clip(index, 0, len(ladder) - 1))
    points = [(0.0, ladder[index])]
    for k in range(1, steps):
        index = int(np.clip(index + rng.integers(-1, 2), 0,
                            len(ladder) - 1))
        points.append((k * dwell, ladder[index]))
    # Collapse consecutive holds into one point.
    collapsed = [points[0]]
    for t, v in points[1:]:
        if v != collapsed[-1][1]:
            collapsed.append((t, v))
    return DvsSchedule(tuple(collapsed))


@dataclass(frozen=True)
class PairStatistics:
    """How a domain pair behaves over a time horizon."""

    flips: int
    fraction_up: float      #: time fraction with Va < Vb (needs up-shift)
    fraction_down: float    #: time fraction with Va > Vb
    fraction_equal: float
    needs_true_shifter: bool

    def summary(self) -> str:
        return (f"flips={self.flips}, up={self.fraction_up:.0%}, "
                f"down={self.fraction_down:.0%}, "
                f"equal={self.fraction_equal:.0%}"
                + (", TRUE shifter required"
                   if self.needs_true_shifter else ""))


def pair_statistics(a: DvsSchedule, b: DvsSchedule,
                    horizon: float) -> PairStatistics:
    """Time-weighted relationship statistics over [0, horizon]."""
    if horizon <= 0:
        raise AnalysisError("horizon must be positive")
    times = sorted(set([0.0, horizon] +
                       [t for t in a.change_times() if t < horizon] +
                       [t for t in b.change_times() if t < horizon]))
    up = down = equal = 0.0
    for t0, t1 in zip(times, times[1:]):
        va, vb = a.voltage_at(t0), b.voltage_at(t0)
        span = t1 - t0
        if abs(va - vb) < 1e-12:
            equal += span
        elif va < vb:
            up += span
        else:
            down += span
    flips = relationship_flips(a, b)
    return PairStatistics(
        flips=flips,
        fraction_up=up / horizon,
        fraction_down=down / horizon,
        fraction_equal=equal / horizon,
        needs_true_shifter=(flips > 0 or (up > 0 and down > 0)))


def true_shifter_demand(schedules: dict, horizon: float) -> dict:
    """Pairwise statistics for every ordered domain pair.

    Returns ``{(name_a, name_b): PairStatistics}`` for a != b.
    """
    result = {}
    names = sorted(schedules)
    for a in names:
        for b in names:
            if a != b:
                result[(a, b)] = pair_statistics(schedules[a],
                                                 schedules[b], horizon)
    return result
