"""Crossing-energy model for the SoC planner.

Extends the static (area/wiring/leakage) strategy comparison with a
dynamic-energy estimate: each crossing's shifters burn per-edge
switching energy proportional to their characterized per-edge power,
times the signal's toggle rate, integrated over a DVS time horizon.
Leakage energy integrates the static currents over the same horizon.

Times are in seconds here (the planner's floorplan units stay
micrometres); toggle rates in edges per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import characterize
from repro.errors import AnalysisError
from repro.pdk import Pdk
from repro.soc.planner import Soc
from repro.units import format_eng

#: Window used by the characterization power metric [s]; the per-edge
#: energy is power * window.
POWER_WINDOW = 0.5e-9


@dataclass
class EnergyReport:
    strategy: str
    horizon: float
    dynamic_energy: float = 0.0    #: [J]
    leakage_energy: float = 0.0    #: [J]
    per_crossing: dict = field(default_factory=dict)

    @property
    def total_energy(self) -> float:
        return self.dynamic_energy + self.leakage_energy

    def summary(self) -> str:
        return (f"{self.strategy:>8s}: total "
                f"{format_eng(self.total_energy, 'J', 3)} "
                f"(dynamic {format_eng(self.dynamic_energy, 'J', 3)}, "
                f"leakage {format_eng(self.leakage_energy, 'J', 3)}) "
                f"over {format_eng(self.horizon, 's', 3)}")


class CrossingEnergyModel:
    """Energy accounting for one shifter strategy on one SoC."""

    def __init__(self, soc: Soc, pdk: Pdk | None = None):
        self.soc = soc
        self.pdk = pdk or Pdk()
        self._cache: dict = {}

    def _metrics(self, kind: str, vddi: float, vddo: float):
        key = (kind, round(vddi, 3), round(vddo, 3))
        if key not in self._cache:
            self._cache[key] = characterize(self.pdk, kind, vddi, vddo)
        return self._cache[key]

    def report(self, kind: str, toggle_rates: dict,
               horizon: float) -> EnergyReport:
        """Energy for strategy ``kind`` given per-crossing toggle rates.

        Args:
            toggle_rates: mapping (source, destination) -> edges/s for
                each crossing in the SoC (missing pairs default to 0).
            horizon: accounting period [s].
        """
        if horizon <= 0:
            raise AnalysisError("horizon must be positive")
        report = EnergyReport(strategy=kind, horizon=horizon)
        for crossing in self.soc.crossings:
            src = self.soc.modules[crossing.source]
            dst = self.soc.modules[crossing.destination]
            vddi = src.domain.schedule.voltage_at(0.0)
            vddo = dst.domain.schedule.voltage_at(0.0)
            metrics = self._metrics(kind, vddi, vddo)
            if not metrics.functional:
                raise AnalysisError(
                    f"{kind} is non-functional on crossing "
                    f"{crossing.source}->{crossing.destination}")
            rate = toggle_rates.get(
                (crossing.source, crossing.destination), 0.0)
            edge_energy = 0.5 * (metrics.power_rise
                                 + metrics.power_fall) * POWER_WINDOW
            dynamic = (edge_energy * rate * horizon * crossing.signals)
            leak_power = 0.5 * (metrics.leakage_high
                                + metrics.leakage_low) * vddo
            leakage = leak_power * horizon * crossing.signals
            report.dynamic_energy += dynamic
            report.leakage_energy += leakage
            report.per_crossing[(crossing.source,
                                 crossing.destination)] = (dynamic,
                                                           leakage)
        return report

    def compare(self, kinds, toggle_rates: dict,
                horizon: float) -> dict:
        return {kind: self.report(kind, toggle_rates, horizon)
                for kind in kinds}
