"""Level-shifter insertion planning for a multi-voltage SoC.

Quantifies the paper's Figures 2-3 motivation: with conventional
dual-supply shifters (CVS), every destination module must have the
supply rail of *each* source domain routed to it; with single-supply
shifters, only local supplies are needed. The combined VS additionally
needs a routed direction-control signal per domain pair, and the
SS-TVS needs nothing beyond the local rail.

The planner walks the crossing list and, per strategy, accounts for:

* extra supply rails entering each module (count and Manhattan routed
  length from the source module, weighted by a power-rail width);
* extra control wires (combined VS only);
* shifter cell area (from :mod:`repro.layout`);
* static leakage (from cached :mod:`repro.core` characterizations at
  each domain pair's voltages);
* feasibility under DVS: a strategy that assumes a fixed direction
  (plain inverter or one-way SS-VS without a control) is infeasible
  for pairs whose relationship flips.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.cells.registry import get_cell
from repro.core import worst_leakage
from repro.errors import AnalysisError
from repro.layout import estimate_cell_area
from repro.pdk import Pdk
from repro.soc.domain import Crossing, Module, relationship_flips

CVS_STRATEGY = "cvs"
COMBINED_STRATEGY = "combined"
SSTVS_STRATEGY = "sstvs"
#: Static one-way strategies, included to demonstrate DVS infeasibility:
#: a plain inverter only handles VDDI > VDDO, the one-way SS-VS only
#: VDDI < VDDO. Any domain pair whose relationship flips breaks them.
INVERTER_STRATEGY = "inverter"
SSVS_STRATEGY = "ssvs"
STRATEGIES = (CVS_STRATEGY, COMBINED_STRATEGY, SSTVS_STRATEGY,
              INVERTER_STRATEGY, SSVS_STRATEGY)

#: Strategy -> registered cell kind; every cell property the planner
#: costs (area probe, rail/select wiring needs, leakage bench) comes
#: from the :mod:`repro.cells.registry` spec, never hand-rolled here.
STRATEGY_CELLS = {CVS_STRATEGY: "cvs", COMBINED_STRATEGY: "combined",
                  SSTVS_STRATEGY: "sstvs",
                  INVERTER_STRATEGY: "inverter",
                  SSVS_STRATEGY: "ssvs_khan"}

#: Assumed width of a routed supply rail vs a signal wire [um].
POWER_RAIL_WIDTH = 2.0
SIGNAL_WIDTH = 0.2


@dataclass
class PlanReport:
    """Costs of one shifter-insertion strategy on one SoC."""

    strategy: str
    feasible: bool = True
    infeasible_pairs: list = field(default_factory=list)
    shifter_count: int = 0
    extra_supply_rails: int = 0
    supply_route_length: float = 0.0   #: [um]
    supply_route_area: float = 0.0     #: [um^2]
    control_wires: int = 0
    control_route_length: float = 0.0  #: [um]
    shifter_area: float = 0.0          #: [um^2]
    leakage: float = 0.0               #: [A] total static, worst state

    @property
    def total_wiring_area(self) -> float:
        return (self.supply_route_area
                + self.control_route_length * SIGNAL_WIDTH)

    def summary(self) -> str:
        status = "feasible" if self.feasible else "INFEASIBLE"
        return (f"{self.strategy:>8s}: {status}, "
                f"{self.shifter_count} shifters, "
                f"{self.extra_supply_rails} extra rails "
                f"({self.supply_route_length:.0f} um routed), "
                f"{self.control_wires} control wires, "
                f"cell area {self.shifter_area:.2f} um^2, "
                f"wiring area {self.total_wiring_area:.1f} um^2, "
                f"leakage {self.leakage * 1e9:.1f} nA")


def manhattan(a: Module, b: Module) -> float:
    ax, ay = a.center()
    bx, by = b.center()
    return abs(ax - bx) + abs(ay - by)


class Soc:
    """A floorplanned multi-voltage SoC with inter-module crossings."""

    def __init__(self, modules: list[Module], crossings: list[Crossing]):
        names = [m.name for m in modules]
        if len(set(names)) != len(names):
            raise AnalysisError("module names must be unique")
        self.modules = {m.name: m for m in modules}
        for crossing in crossings:
            for end in (crossing.source, crossing.destination):
                if end not in self.modules:
                    raise AnalysisError(f"unknown module {end!r}")
        self.crossings = list(crossings)

    def graph(self) -> "nx.DiGraph":
        """Module connectivity as a directed multigraph-ish DiGraph."""
        g = nx.DiGraph()
        for module in self.modules.values():
            g.add_node(module.name, module=module)
        for crossing in self.crossings:
            if g.has_edge(crossing.source, crossing.destination):
                g[crossing.source][crossing.destination]["signals"] += \
                    crossing.signals
            else:
                g.add_edge(crossing.source, crossing.destination,
                           signals=crossing.signals)
        return g

    def domain_pairs(self):
        """Unique (source domain, destination domain) pairs crossed."""
        pairs = {}
        for crossing in self.crossings:
            src = self.modules[crossing.source].domain
            dst = self.modules[crossing.destination].domain
            pairs[(src.name, dst.name)] = (src, dst)
        return pairs


class ShifterPlanner:
    """Costs each insertion strategy on a given SoC."""

    def __init__(self, soc: Soc, pdk: Pdk | None = None,
                 characterize_leakage: bool = True, cache=None):
        self.soc = soc
        self.pdk = pdk or Pdk()
        self.characterize_leakage = characterize_leakage
        #: Optional :class:`repro.runtime.cache.SolveCache`: leakage
        #: characterizations are keyed content-addressed and replayed
        #: bitwise on warm plans instead of re-paying every solve.
        self.cache = cache
        self._leakage_cache: dict = {}
        self._area_cache: dict = {}

    # -- cost components ---------------------------------------------------

    def _cell_area_um2(self, strategy: str) -> float:
        if strategy not in self._area_cache:
            spec = get_cell(STRATEGY_CELLS[strategy])
            self._area_cache[strategy] = estimate_cell_area(
                spec.area_probe, self.pdk).total_area_um2
        return self._area_cache[strategy]

    def _leakage(self, strategy: str, vddi: float, vddo: float) -> float:
        """Worst-state static leakage of one shifter at a voltage pair."""
        if not self.characterize_leakage:
            return 0.0
        kind = STRATEGY_CELLS[strategy]
        key = (kind, round(vddi, 3), round(vddo, 3))
        if key not in self._leakage_cache:
            self._leakage_cache[key] = worst_leakage(
                self.pdk, kind, vddi, vddo, cache=self.cache)
        return self._leakage_cache[key]

    # -- planning -----------------------------------------------------------

    def plan(self, strategy: str) -> PlanReport:
        if strategy not in STRATEGIES:
            raise AnalysisError(f"unknown strategy {strategy!r}; "
                                f"expected one of {STRATEGIES}")
        report = PlanReport(strategy=strategy)
        spec = get_cell(STRATEGY_CELLS[strategy])
        rails_routed: set = set()
        control_routed: set = set()

        for crossing in self.soc.crossings:
            src = self.soc.modules[crossing.source]
            dst = self.soc.modules[crossing.destination]
            distance = manhattan(src, dst)
            report.shifter_count += crossing.signals
            report.shifter_area += (crossing.signals
                                    * self._cell_area_um2(strategy))

            # Representative voltages for leakage costing: the initial
            # schedule point of each domain.
            vddi = src.domain.schedule.voltage_at(0.0)
            vddo = dst.domain.schedule.voltage_at(0.0)
            report.leakage += (crossing.signals
                               * self._leakage(strategy, vddi, vddo))

            flips = relationship_flips(src.domain.schedule,
                                       dst.domain.schedule)

            if spec.uses_vddi_rail:
                # The destination needs the source domain's rail.
                rail = (src.domain.name, dst.name)
                if rail not in rails_routed:
                    rails_routed.add(rail)
                    report.extra_supply_rails += 1
                    report.supply_route_length += distance
                    report.supply_route_area += distance * POWER_RAIL_WIDTH
            elif spec.needs_select:
                # Single supply, but a direction-control wire per
                # domain pair entering the destination; under DVS the
                # control must be recomputed and re-routed from
                # whatever knows both voltages (modeled as the source).
                control = (src.domain.name, dst.name)
                if control not in control_routed:
                    control_routed.add(control)
                    report.control_wires += 1
                    report.control_route_length += distance
            elif strategy == INVERTER_STRATEGY:
                # Only valid when VDDI > VDDO at all times.
                always_down = (src.domain.schedule.min_voltage
                               >= dst.domain.schedule.max_voltage)
                if flips or not always_down:
                    report.infeasible_pairs.append(
                        (crossing.source, crossing.destination))
            elif strategy == SSVS_STRATEGY:
                # One-way low-to-high shifter: VDDI < VDDO required.
                always_up = (src.domain.schedule.max_voltage
                             <= dst.domain.schedule.min_voltage)
                if flips or not always_up:
                    report.infeasible_pairs.append(
                        (crossing.source, crossing.destination))
            elif strategy == SSTVS_STRATEGY:
                # True shifter: nothing extra, works through flips.
                pass

        report.feasible = not report.infeasible_pairs
        return report

    def compare(self) -> dict[str, PlanReport]:
        """Plan all strategies; returns reports keyed by strategy."""
        return {strategy: self.plan(strategy) for strategy in STRATEGIES}
