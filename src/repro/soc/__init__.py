"""SoC-level multi-voltage modeling and shifter-insertion planning."""

from repro.soc.domain import (
    Crossing, DvsSchedule, Module, VoltageDomain, relationship_flips,
)
from repro.soc.dvs import (
    DEFAULT_LADDER, PairStatistics, pair_statistics, periodic_schedule,
    random_walk_schedule, true_shifter_demand,
)
from repro.soc.energy import CrossingEnergyModel, EnergyReport
from repro.soc.planner import (
    COMBINED_STRATEGY, CVS_STRATEGY, INVERTER_STRATEGY, PlanReport,
    STRATEGIES, STRATEGY_CELLS, SSTVS_STRATEGY, SSVS_STRATEGY,
    ShifterPlanner, Soc, manhattan,
)

__all__ = [
    "Crossing",
    "DvsSchedule",
    "Module",
    "VoltageDomain",
    "relationship_flips",
    "Soc",
    "ShifterPlanner",
    "PlanReport",
    "manhattan",
    "STRATEGIES",
    "STRATEGY_CELLS",
    "CVS_STRATEGY",
    "COMBINED_STRATEGY",
    "SSTVS_STRATEGY",
    "INVERTER_STRATEGY",
    "SSVS_STRATEGY",
    "DEFAULT_LADDER",
    "PairStatistics",
    "pair_statistics",
    "periodic_schedule",
    "random_walk_schedule",
    "true_shifter_demand",
    "CrossingEnergyModel",
    "EnergyReport",
]
