"""Multi-voltage SoC modeling: domains, DVS schedules, modules.

The paper motivates the SS-TVS with SoCs whose blocks sit in separate
voltage domains, each possibly running dynamic voltage scaling, so the
relationship between any two domains' supplies changes over time
(Figures 2-3). This module provides the behavioral model those
floorplan-level experiments run on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import AnalysisError


@dataclass(frozen=True)
class DvsSchedule:
    """Piecewise-constant supply-voltage schedule.

    ``points`` is a sorted list of (time, voltage); the voltage holds
    from its time until the next point. Times are arbitrary units
    (the SoC study only compares orderings and durations).
    """

    points: tuple

    def __post_init__(self):
        if not self.points:
            raise AnalysisError("DVS schedule needs at least one point")
        times = [t for t, _ in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise AnalysisError("DVS schedule times must increase")
        for _, v in self.points:
            if v <= 0:
                raise AnalysisError("DVS voltages must be positive")

    @classmethod
    def constant(cls, voltage: float) -> "DvsSchedule":
        return cls(points=((0.0, float(voltage)),))

    def voltage_at(self, t: float) -> float:
        times = [p[0] for p in self.points]
        index = max(bisect_right(times, t) - 1, 0)
        return self.points[index][1]

    def change_times(self) -> list[float]:
        return [t for t, _ in self.points[1:]]

    @property
    def min_voltage(self) -> float:
        return min(v for _, v in self.points)

    @property
    def max_voltage(self) -> float:
        return max(v for _, v in self.points)


@dataclass
class VoltageDomain:
    """A named supply domain with a DVS schedule."""

    name: str
    schedule: DvsSchedule

    @classmethod
    def fixed(cls, name: str, voltage: float) -> "VoltageDomain":
        return cls(name, DvsSchedule.constant(voltage))


@dataclass
class Module:
    """An SoC block: a domain plus a floorplan position and size."""

    name: str
    domain: VoltageDomain
    x: float = 0.0          #: floorplan position [um]
    y: float = 0.0
    width: float = 100.0    #: footprint [um]
    height: float = 100.0

    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)


@dataclass(frozen=True)
class Crossing:
    """A bundle of signals from one module to another."""

    source: str         #: source module name
    destination: str    #: destination module name
    signals: int = 1

    def __post_init__(self):
        if self.signals < 1:
            raise AnalysisError("crossing needs at least one signal")
        if self.source == self.destination:
            raise AnalysisError("crossing must span two modules")


def relationship_flips(a: DvsSchedule, b: DvsSchedule) -> int:
    """How often the sign of (Va - Vb) changes over both schedules.

    A nonzero count means no static choice between an inverter and a
    one-way level shifter can serve this domain pair — the paper's
    motivation for a *true* shifter.
    """
    times = sorted(set([0.0] + a.change_times() + b.change_times()))
    signs = []
    for t in times:
        diff = a.voltage_at(t) - b.voltage_at(t)
        signs.append(0 if abs(diff) < 1e-12 else (1 if diff > 0 else -1))
    flips = 0
    previous = signs[0]
    for sign in signs[1:]:
        if sign != 0 and previous != 0 and sign != previous:
            flips += 1
        if sign != 0:
            previous = sign
    return flips
