"""Finite-difference sensitivity of shifter metrics to sizing knobs.

Complements the Monte Carlo engine: where MC answers "how much does
everything vary together", sensitivity answers "which knob moves this
metric" — useful for the ablation studies and for resizing the cell to
another operating pair.

Each knob is a field of :class:`~repro.cells.sstvs.SstvsSizing`; the
metric derivative is estimated with a central difference of the full
characterization at perturbed sizings.

The driver is a thin spec builder over the unified experiment engine:
each knob is one experiment point (two characterizations), so
``workers > 1`` distributes knobs over a process pool with results
bitwise identical to a serial run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from repro.cells.registry import get_cell
from repro.cells.sstvs import SstvsSizing
from repro.core.characterize import StimulusPlan, characterize
from repro.core.metrics import METRIC_FIELDS
from repro.errors import AnalysisError
from repro.pdk import Pdk
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, ResultSet, run_experiment,
)

#: Sizing fields that are widths/lengths (perturbable).
SIZING_KNOBS = tuple(f.name for f in fields(SstvsSizing)
                     if f.name.startswith(("w_", "l_")))

#: Experiment name shared by specs, result sets, and stored manifests.
EXPERIMENT_NAME = "sensitivity"


@dataclass(frozen=True)
class Sensitivity:
    """Normalized sensitivities of every metric to one knob.

    ``values[metric]`` is d(log metric)/d(log knob): +1.0 means a 10 %
    knob increase raises the metric ~10 %.
    """

    knob: str
    nominal: float
    values: dict

    def dominant_metric(self) -> str:
        return max(self.values, key=lambda k: abs(self.values[k]))


def _measure(params: tuple) -> Sensitivity:
    """Central-difference one knob; shared by serial and pool paths."""
    (knob, relative_step, kind, vddi, vddo, pdk, base, plan) = params
    nominal = getattr(base, knob)
    up = replace(base, **{knob: nominal * (1 + relative_step)})
    down = replace(base, **{knob: nominal * (1 - relative_step)})
    m_up = characterize(pdk, kind, vddi, vddo, plan=plan, sizing=up)
    m_down = characterize(pdk, kind, vddi, vddo, plan=plan, sizing=down)
    values = {}
    for metric in METRIC_FIELDS:
        hi = getattr(m_up, metric)
        lo = getattr(m_down, metric)
        if hi > 0 and lo > 0:
            values[metric] = (math.log(hi / lo)
                              / math.log((1 + relative_step)
                                         / (1 - relative_step)))
        else:
            values[metric] = float("nan")
    return Sensitivity(knob=knob, nominal=nominal, values=values)


def sensitivity_spec(kind: str, vddi: float, vddo: float,
                     knobs=SIZING_KNOBS, relative_step: float = 0.15,
                     pdk: Pdk | None = None,
                     base_sizing: SstvsSizing | None = None,
                     plan: StimulusPlan | None = None,
                     workers: int = 1,
                     chunk_size: int | None = None) -> ExperimentSpec:
    """Describe a sensitivity campaign declaratively (validates args)."""
    if get_cell(kind).sizing_type is not SstvsSizing:
        raise AnalysisError(
            f"sensitivities are defined for the sstvs sizing knobs; "
            f"{kind!r} takes no SstvsSizing")
    if not 0 < relative_step < 0.5:
        raise AnalysisError("relative_step must be in (0, 0.5)")
    unknown = [k for k in knobs if k not in SIZING_KNOBS]
    if unknown:
        raise AnalysisError(f"unknown sizing knobs: {unknown}")
    pdk = pdk or Pdk()
    base = base_sizing or SstvsSizing()
    points = [ExperimentPoint(knob, (knob, relative_step, kind, vddi,
                                     vddo, pdk, base, plan))
              for knob in knobs]
    return ExperimentSpec(
        name=EXPERIMENT_NAME, measure=_measure, points=points,
        stage="characterize", codec="sensitivity",
        workers=workers, chunk_size=chunk_size,
        metadata={"experiment": "sensitivity", "kind": kind,
                  "vddi": vddi, "vddo": vddo, "knobs": list(knobs),
                  "relative_step": relative_step,
                  "pdk_node": getattr(pdk, "node", "ptm90")})


def sensitivities_from_resultset(resultset: ResultSet
                                 ) -> dict[str, Sensitivity]:
    """Assemble the classic knob->Sensitivity mapping from engine rows.

    A quarantined knob raises, as the legacy serial loop would have.
    """
    failures = resultset.sample_failures()
    if failures:
        f = failures[0]
        raise AnalysisError(
            f"sensitivity for knob {f.index!r} failed: [{f.stage}] "
            f"{f.error}")
    return {row.index: row.value for row in resultset.rows}


def metric_sensitivities(kind: str, vddi: float, vddo: float,
                         knobs=SIZING_KNOBS, relative_step: float = 0.15,
                         pdk: Pdk | None = None,
                         base_sizing: SstvsSizing | None = None,
                         plan: StimulusPlan | None = None,
                         workers: int = 1,
                         chunk_size: int | None = None,
                         resume: ResultSet | None = None,
                         store=None, run_id: str | None = None,
                         cache=None
                         ) -> dict[str, Sensitivity]:
    """Central-difference log-log sensitivities for each knob.

    Only meaningful for the ``"sstvs"`` kind (the sizing dataclass is
    the SS-TVS's); other kinds raise.
    """
    spec = sensitivity_spec(kind, vddi, vddo, knobs=knobs,
                            relative_step=relative_step, pdk=pdk,
                            base_sizing=base_sizing, plan=plan,
                            workers=workers, chunk_size=chunk_size)
    resultset = run_experiment(spec, resume=resume, store=store,
                               run_id=run_id, cache=cache)
    return sensitivities_from_resultset(resultset)


def render_sensitivity_table(sensitivities: dict) -> str:
    """Text matrix: knobs x metrics."""
    header = f"{'knob':<10s}" + "".join(f"{m:>14s}" for m in METRIC_FIELDS)
    lines = [header, "-" * len(header)]
    for knob, sens in sensitivities.items():
        row = f"{knob:<10s}" + "".join(
            f"{sens.values[m]:>14.2f}" for m in METRIC_FIELDS)
        lines.append(row)
    return "\n".join(lines)
