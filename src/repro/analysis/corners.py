"""PVT corner reporting: process corners x temperatures.

The paper validates with Monte Carlo at three temperatures; corner
bracketing (TT/FF/SS/FS/SF at each temperature) is the complementary
industrial signoff view this extension adds. The report shows every
metric at every PVT point and flags functional failures.

The driver is a thin spec builder over the unified experiment engine:
:func:`pvt_spec` enumerates the (corner, temperature) points, the
engine runs them, and :func:`report_from_resultset` folds the rows
into a :class:`PvtReport` (quarantined points become non-functional
NaN entries, as before).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.characterize import StimulusPlan, characterize
from repro.core.metrics import METRIC_FIELDS, ShifterMetrics
from repro.errors import AnalysisError
from repro.pdk import CORNER_SHIFTS, CornerPdk
from repro.runtime.campaign import CampaignDiagnostics, SampleFailure
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, ResultSet, run_experiment,
)
from repro.units import format_eng

DEFAULT_CORNERS = tuple(sorted(CORNER_SHIFTS))
DEFAULT_TEMPS = (27.0, 90.0)

#: Experiment name shared by specs, result sets, and stored manifests.
EXPERIMENT_NAME = "pvt"


@dataclass
class PvtPoint:
    corner: str
    temperature_c: float
    metrics: ShifterMetrics


@dataclass
class PvtReport:
    kind: str
    vddi: float
    vddo: float
    points: list = field(default_factory=list)
    #: PVT points whose simulation escaped the solver's retry ladder;
    #: they still appear in ``points`` as non-functional NaN entries.
    failures: list[SampleFailure] = field(default_factory=list)
    #: Artifact-store run id, when the campaign was persisted.
    run_id: str | None = None

    @property
    def all_functional(self) -> bool:
        return all(p.metrics.functional for p in self.points)

    @property
    def quarantined(self) -> list[tuple[str, float]]:
        """``(corner, temperature)`` pairs of quarantined points."""
        return [f.index for f in self.failures]

    def diagnostics(self) -> CampaignDiagnostics:
        return CampaignDiagnostics(total=len(self.points),
                                   succeeded=(len(self.points)
                                              - len(self.failures)),
                                   failures=list(self.failures))

    def worst(self, metric: str) -> PvtPoint:
        if metric not in METRIC_FIELDS:
            raise AnalysisError(f"unknown metric {metric!r}")
        candidates = [p for p in self.points if p.metrics.functional]
        if not candidates:
            raise AnalysisError("no functional PVT points")
        return max(candidates, key=lambda p: getattr(p.metrics, metric))

    def spread(self, metric: str) -> float:
        """max/min ratio of a metric across functional points."""
        values = [getattr(p.metrics, metric) for p in self.points
                  if p.metrics.functional]
        if not values or min(values) <= 0:
            return float("nan")
        return max(values) / min(values)

    def pretty(self) -> str:
        lines = [f"PVT report: {self.kind}, {self.vddi} V -> "
                 f"{self.vddo} V"]
        header = (f"  {'corner':<6s} {'T[C]':>6s} {'d_rise':>9s} "
                  f"{'d_fall':>9s} {'leak_hi':>9s} {'leak_lo':>9s} "
                  f"{'func':>5s}")
        lines.append(header)
        for p in self.points:
            m = p.metrics
            lines.append(
                f"  {p.corner:<6s} {p.temperature_c:>6.1f} "
                f"{format_eng(m.delay_rise, 's', 3):>9s} "
                f"{format_eng(m.delay_fall, 's', 3):>9s} "
                f"{format_eng(m.leakage_high, 'A', 3):>9s} "
                f"{format_eng(m.leakage_low, 'A', 3):>9s} "
                f"{str(m.functional):>5s}")
        if self.failures:
            lines.append(f"  quarantined {len(self.failures)} point(s): "
                         + ", ".join(f"{c}@{t:g}C"
                                     for c, t in self.quarantined))
        return "\n".join(lines)


def _measure(params: tuple) -> ShifterMetrics:
    """Characterize one PVT point; shared by serial and pool paths."""
    corner, temp, kind, vddi, vddo, plan, sizing, node = params
    pdk = CornerPdk(corner, temperature_c=temp, node=node)
    return characterize(pdk, kind, vddi, vddo, plan=plan, sizing=sizing)


def pvt_spec(kind: str, vddi: float, vddo: float,
             corners=DEFAULT_CORNERS, temperatures=DEFAULT_TEMPS,
             plan: StimulusPlan | None = None, sizing=None,
             workers: int = 1,
             chunk_size: int | None = None,
             pdk_node: str = "ptm90") -> ExperimentSpec:
    """Describe a PVT-corner campaign declaratively."""
    points = [ExperimentPoint((corner, float(temp)),
                              (corner, float(temp), kind, vddi, vddo,
                               plan, sizing, pdk_node))
              for corner in corners for temp in temperatures]
    return ExperimentSpec(
        name=EXPERIMENT_NAME, measure=_measure, points=points,
        stage="characterize", codec="metrics",
        workers=workers, chunk_size=chunk_size,
        metadata={"experiment": "pvt", "kind": kind, "vddi": vddi,
                  "vddo": vddo, "corners": list(corners),
                  "temperatures": [float(t) for t in temperatures],
                  "pdk_node": pdk_node})


def report_from_resultset(resultset: ResultSet,
                          kind: str | None = None,
                          vddi: float | None = None,
                          vddo: float | None = None) -> PvtReport:
    """Assemble the classic report type from typed engine rows."""
    meta = resultset.metadata
    report = PvtReport(
        kind=kind if kind is not None else meta.get("kind", "?"),
        vddi=vddi if vddi is not None else meta.get("vddi", float("nan")),
        vddo=vddo if vddo is not None else meta.get("vddo", float("nan")),
        run_id=resultset.run_id)
    nan = float("nan")
    for row in resultset.rows:
        corner, temp = row.index
        if not row.ok:
            report.failures.append(row.failure())
            metrics = ShifterMetrics(nan, nan, nan, nan, nan, nan,
                                     functional=False)
        else:
            metrics = row.value
        report.points.append(PvtPoint(corner, temp, metrics))
    return report


def pvt_report(kind: str, vddi: float, vddo: float,
               corners=DEFAULT_CORNERS, temperatures=DEFAULT_TEMPS,
               plan: StimulusPlan | None = None,
               sizing=None, workers: int = 1,
               chunk_size: int | None = None,
               resume: ResultSet | None = None,
               store=None, run_id: str | None = None,
               cache=None, pdk_node: str = "ptm90") -> PvtReport:
    """Characterize at every (corner, temperature) combination.

    ``workers > 1`` distributes PVT points over a process pool; the
    report lists points in the same (corner-major) order either way.
    """
    spec = pvt_spec(kind, vddi, vddo, corners=corners,
                    temperatures=temperatures, plan=plan, sizing=sizing,
                    workers=workers, chunk_size=chunk_size,
                    pdk_node=pdk_node)
    resultset = run_experiment(spec, resume=resume, store=store,
                               run_id=run_id, cache=cache)
    return report_from_resultset(resultset, kind=kind, vddi=vddi,
                                 vddo=vddo)
