"""Monte Carlo characterization engine (paper Tables 3 and 4).

The paper runs 1000 Monte Carlo samples per direction, varying every
device's W, L and Vt independently (sigmas in
:class:`~repro.pdk.variation.VariationSpec`) at a given temperature,
and reports mean and standard deviation of all six metrics plus the
observation that every sample converted correctly.

:func:`run_monte_carlo` reproduces that flow. Each sample builds a
fresh testbench through a :class:`~repro.pdk.variation.VariedPdk`
seeded from a :class:`numpy.random.SeedSequence` child, so results are
reproducible and samples are independent. The same master seed gives
the *same process instances* to each shifter kind (paired comparison),
because each kind re-derives per-sample seeds from the sample index
alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.characterize import StimulusPlan, characterize
from repro.core.metrics import MetricStatistics, ShifterMetrics, aggregate
from repro.errors import AnalysisError
from repro.pdk.variation import VariationSpec, VariedPdk


@dataclass
class MonteCarloConfig:
    """Settings for a Monte Carlo characterization run."""

    runs: int = 200
    seed: int = 20080310  # DATE 2008 week, for flavor
    temperature_c: float = 27.0
    spec: VariationSpec = field(default_factory=VariationSpec)
    plan: StimulusPlan = field(default_factory=StimulusPlan)

    def validate(self) -> None:
        if self.runs < 1:
            raise AnalysisError("Monte Carlo needs at least one run")


@dataclass
class MonteCarloResult:
    """All samples plus aggregate statistics."""

    kind: str
    vddi: float
    vddo: float
    samples: list[ShifterMetrics]
    statistics: MetricStatistics

    @property
    def functional_yield(self) -> float:
        return self.statistics.functional_yield


def run_monte_carlo(kind: str, vddi: float, vddo: float,
                    config: MonteCarloConfig | None = None,
                    sizing=None,
                    progress=None) -> MonteCarloResult:
    """Characterize ``kind`` over ``config.runs`` process samples.

    Args:
        progress: optional callable ``(index, metrics)`` invoked after
            each sample (used by benches for live output).
    """
    config = config or MonteCarloConfig()
    config.validate()
    samples: list[ShifterMetrics] = []
    for index in range(config.runs):
        rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, index]))
        pdk = VariedPdk(rng, config.spec,
                        temperature_c=config.temperature_c)
        metrics = characterize(pdk, kind, vddi, vddo, plan=config.plan,
                               sizing=sizing)
        samples.append(metrics)
        if progress is not None:
            progress(index, metrics)
    return MonteCarloResult(kind=kind, vddi=vddi, vddo=vddo,
                            samples=samples,
                            statistics=aggregate(samples))
