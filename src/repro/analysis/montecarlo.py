"""Monte Carlo characterization engine (paper Tables 3 and 4).

The paper runs 1000 Monte Carlo samples per direction, varying every
device's W, L and Vt independently (sigmas in
:class:`~repro.pdk.variation.VariationSpec`) at a given temperature,
and reports mean and standard deviation of all six metrics plus the
observation that every sample converted correctly.

:func:`run_monte_carlo` reproduces that flow. Each sample builds a
fresh testbench through a :class:`~repro.pdk.variation.VariedPdk`
seeded from a :class:`numpy.random.SeedSequence` child, so results are
reproducible and samples are independent. The same master seed gives
the *same process instances* to each shifter kind (paired comparison),
because each kind re-derives per-sample seeds from the sample index
alone.

The driver is a thin spec builder over the unified experiment engine
(:mod:`repro.runtime.experiment`): :func:`monte_carlo_spec` describes
the campaign declaratively, :func:`run_experiment` executes it with
workers / quarantine / fault injection / Ctrl-C partials / seed-stable
resume, and :func:`result_from_resultset` assembles the classic
:class:`MonteCarloResult` from the typed rows. Pass ``store=`` to
persist the run (rows + provenance manifest) and ``resume=`` either a
previous in-memory result or a result set reloaded from the artifact
store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.characterize import (
    StimulusPlan, characterize, characterize_batch,
)
from repro.core.metrics import MetricStatistics, ShifterMetrics, aggregate
from repro.errors import AnalysisError
from repro.pdk.variation import VariationSpec, VariedPdk
from repro.runtime.campaign import CampaignDiagnostics, SampleFailure
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, ResultRow, ResultSet, run_experiment,
)
from repro.runtime.faults import FaultPlan

#: Experiment name shared by specs, result sets, and stored manifests.
EXPERIMENT_NAME = "Monte Carlo"


@dataclass
class MonteCarloConfig:
    """Settings for a Monte Carlo characterization run."""

    runs: int = 200
    seed: int = 20080310  # DATE 2008 week, for flavor
    temperature_c: float = 27.0
    spec: VariationSpec = field(default_factory=VariationSpec)
    plan: StimulusPlan = field(default_factory=StimulusPlan)
    #: Deterministic fault injection for resilience testing.
    faults: FaultPlan | None = None
    #: Abort (AnalysisError) once this many samples have been
    #: quarantined; None = never abort, quarantine everything.
    max_failures: int | None = None
    #: Process-pool width; 1 (the default) runs serially in-process.
    #: Parallel results are bitwise identical to serial ones because
    #: per-sample seeds derive from the sample index alone. Campaigns
    #: with a fault plan are forced serial (plans count firings in
    #: mutable in-process state).
    workers: int = 1
    #: Samples per pool submission; None picks ~4 chunks per worker.
    chunk_size: int | None = None
    #: Execution backend: None keeps the workers-derived default
    #: ("pool" when workers > 1, else "serial"); "batched" stacks
    #: samples into SPMD lanes (see :mod:`repro.spice.batch`), and
    #: combined with workers > 1 runs sharded-batched (one lane group
    #: per pool task).
    backend: str | None = None
    #: Samples per batched lane group (ignored off the batched
    #: backend). 128 keeps LAPACK calls amortized over enough lanes
    #: without letting lane divergence strand the stack (measured on
    #: the ``repro bench`` MC workload: 128 beats 32 by ~2.3x).
    batch_width: int = 128
    #: Linear-solve kernel: "dense", "sparse" (pattern-reuse LU), or
    #: "auto" (by MNA size); None keeps the ambient default ("auto").
    #: An execution knob: excluded from solve-cache keys, results are
    #: kernel-independent up to the tested ULP bound.
    solver: str | None = None
    #: Registered PDK node every sample's VariedPdk binds to. Part of
    #: the content identity (rides in each point's params and the spec
    #: metadata), so two nodes never share cache entries.
    pdk_node: str = "ptm90"

    def validate(self) -> None:
        if self.runs < 1:
            raise AnalysisError("Monte Carlo needs at least one run")
        if self.max_failures is not None and self.max_failures < 0:
            raise AnalysisError("max_failures must be >= 0 or None")
        if self.workers < 1:
            raise AnalysisError("workers must be >= 1")
        if self.batch_width < 1:
            raise AnalysisError("batch_width must be >= 1")
        from repro.pdk.registry import get_node
        get_node(self.pdk_node)  # unknown nodes fail with the listing


@dataclass
class MonteCarloResult:
    """All samples plus aggregate statistics and failure accounting."""

    kind: str
    vddi: float
    vddo: float
    samples: list[ShifterMetrics]
    #: Statistics over the *successful* samples (None if all failed).
    statistics: MetricStatistics | None
    #: Sample indices of the successful samples, aligned with
    #: ``samples``; lets a partial result be resumed seed-stably.
    completed_indices: list[int] = field(default_factory=list)
    #: Per-sample failures captured instead of raised.
    failures: list[SampleFailure] = field(default_factory=list)
    #: True when the campaign was interrupted (Ctrl-C) mid-run.
    interrupted: bool = False
    #: Artifact-store run id, when the campaign was persisted.
    run_id: str | None = None

    @property
    def quarantined(self) -> list[int]:
        """Sample indices that failed, in campaign order."""
        return [f.index for f in self.failures]

    @property
    def functional_yield(self) -> float:
        """Fraction of *attempted* samples that converted correctly.

        Quarantined samples count as non-functional, so an injected or
        genuine solver escape degrades the yield rather than vanishing.
        """
        total = len(self.samples) + len(self.failures)
        if total == 0:
            return 0.0
        good = sum(1 for s in self.samples if s.functional)
        return good / total

    def diagnostics(self) -> CampaignDiagnostics:
        return CampaignDiagnostics(
            total=len(self.samples) + len(self.failures),
            succeeded=len(self.samples),
            failures=list(self.failures),
            interrupted=self.interrupted)

    def failure_summary(self, limit: int = 10) -> str:
        return self.diagnostics().summary(limit=limit)


def _measure(params: tuple) -> ShifterMetrics:
    """Run one Monte Carlo sample; shared by serial and pool paths.

    Module-level so the process pool can pickle it by reference.
    Derives everything (including randomness) from the params tuple, so
    a pool worker computes bit-for-bit what the serial loop would.
    """
    (index, seed, temperature_c, spec, plan, kind, vddi, vddo,
     sizing, node) = params
    rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
    pdk = VariedPdk(rng, spec, temperature_c=temperature_c, node=node)
    return characterize(pdk, kind, vddi, vddo, plan=plan, sizing=sizing)


def _batch_measure(params_list: list) -> list:
    """Run many Monte Carlo samples as SPMD lanes in one call.

    Each lane's VariedPdk derives from the same per-index seed chain as
    :func:`_measure`, and :func:`characterize_batch` extracts metrics
    from per-lane bitwise-identical waveforms — so a batched sample is
    the same ShifterMetrics the serial path returns, bit for bit.
    """
    lanes = []
    for params in params_list:
        (index, seed, temperature_c, spec, plan, kind, vddi, vddo,
         sizing, node) = params
        rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
        pdk = VariedPdk(rng, spec, temperature_c=temperature_c, node=node)
        lanes.append((pdk, kind, vddi, vddo, plan, 1e-15, sizing, 1.0))
    return characterize_batch(lanes)


def monte_carlo_spec(kind: str, vddi: float, vddo: float,
                     config: MonteCarloConfig | None = None,
                     sizing=None) -> ExperimentSpec:
    """Describe a Monte Carlo campaign declaratively."""
    config = config or MonteCarloConfig()
    config.validate()
    points = [
        ExperimentPoint(index, (index, config.seed, config.temperature_c,
                                config.spec, config.plan, kind, vddi,
                                vddo, sizing, config.pdk_node))
        for index in range(config.runs)
    ]
    return ExperimentSpec(
        name=EXPERIMENT_NAME, measure=_measure, points=points,
        stage="characterize", codec="metrics",
        workers=config.workers, chunk_size=config.chunk_size,
        faults=config.faults, max_failures=config.max_failures,
        seed=config.seed, backend=config.backend,
        batch_measure=_batch_measure, batch_width=config.batch_width,
        solver=config.solver,
        metadata={"experiment": "mc", "kind": kind, "vddi": vddi,
                  "vddo": vddo, "runs": config.runs, "seed": config.seed,
                  "temperature_c": config.temperature_c,
                  "pdk_node": config.pdk_node})


def result_from_resultset(resultset: ResultSet,
                          kind: str | None = None,
                          vddi: float | None = None,
                          vddo: float | None = None) -> MonteCarloResult:
    """Assemble the classic result type from typed engine rows."""
    meta = resultset.metadata
    ok = resultset.ok_rows()
    samples = [row.value for row in ok]
    return MonteCarloResult(
        kind=kind if kind is not None else meta.get("kind", "?"),
        vddi=vddi if vddi is not None else meta.get("vddi", float("nan")),
        vddo=vddo if vddo is not None else meta.get("vddo", float("nan")),
        samples=samples,
        statistics=aggregate(samples) if samples else None,
        completed_indices=[row.index for row in ok],
        failures=resultset.sample_failures(),
        interrupted=resultset.interrupted,
        run_id=resultset.run_id)


def _as_resume(resume) -> ResultSet | None:
    """Accept a previous result in either form (legacy or typed)."""
    if resume is None or isinstance(resume, ResultSet):
        return resume
    rows = [ResultRow(ordinal=index, index=index, status="ok",
                      value=metrics)
            for index, metrics in zip(resume.completed_indices,
                                      resume.samples)]
    rows += [ResultRow(ordinal=f.index, index=f.index, status="err",
                       stage=f.stage, error=f.error)
             for f in resume.failures]
    return ResultSet(name=EXPERIMENT_NAME, codec="metrics", rows=rows)


def run_monte_carlo(kind: str, vddi: float, vddo: float,
                    config: MonteCarloConfig | None = None,
                    sizing=None,
                    progress=None,
                    resume=None,
                    store=None,
                    run_id: str | None = None,
                    cache=None) -> MonteCarloResult:
    """Characterize ``kind`` over ``config.runs`` process samples.

    Args:
        progress: optional callable ``(index, metrics)`` invoked after
            each sample (used by benches for live output). Exceptions
            it raises are isolated — warned once and suppressed — so an
            observability hook can never take down a campaign.
        resume: a previous (partial) :class:`MonteCarloResult` — or a
            :class:`ResultSet` reloaded from the artifact store — for
            the same kind/supplies/config; its completed and
            quarantined samples are carried over and only the remaining
            indices are run. Seed-stable because per-sample seeds
            derive from the sample index.
        store: optional artifact store (or root path) to persist the
            run to; the returned result carries the ``run_id``.

    Returns a partial result (``interrupted=True``) instead of raising
    on KeyboardInterrupt; per-sample errors are quarantined into
    ``failures`` rather than raised.
    """
    spec = monte_carlo_spec(kind, vddi, vddo, config, sizing=sizing)
    resultset = run_experiment(spec, progress=progress,
                               resume=_as_resume(resume), store=store,
                               run_id=run_id, cache=cache)
    return result_from_resultset(resultset, kind=kind, vddi=vddi,
                                 vddo=vddo)
