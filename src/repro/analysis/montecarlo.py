"""Monte Carlo characterization engine (paper Tables 3 and 4).

The paper runs 1000 Monte Carlo samples per direction, varying every
device's W, L and Vt independently (sigmas in
:class:`~repro.pdk.variation.VariationSpec`) at a given temperature,
and reports mean and standard deviation of all six metrics plus the
observation that every sample converted correctly.

:func:`run_monte_carlo` reproduces that flow. Each sample builds a
fresh testbench through a :class:`~repro.pdk.variation.VariedPdk`
seeded from a :class:`numpy.random.SeedSequence` child, so results are
reproducible and samples are independent. The same master seed gives
the *same process instances* to each shifter kind (paired comparison),
because each kind re-derives per-sample seeds from the sample index
alone.

The engine is fault tolerant: a sample whose simulation escapes the
solver's retry ladder (or any other per-sample error) is captured into
a quarantine list instead of aborting the campaign, counted against
``functional_yield``, and reported in the failure summary. Because
per-sample seeds derive from the sample index alone, an interrupted
campaign (Ctrl-C) returns its partial result and can be resumed
seed-stably via the ``resume`` argument. A
:class:`~repro.runtime.faults.FaultPlan` on the config injects
deterministic failures for testing the machinery itself.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.characterize import StimulusPlan, characterize
from repro.core.metrics import MetricStatistics, ShifterMetrics, aggregate
from repro.errors import AnalysisError
from repro.pdk.variation import VariationSpec, VariedPdk
from repro.runtime.campaign import CampaignDiagnostics, SampleFailure
from repro.runtime.faults import FaultPlan, inject
from repro.runtime.parallel import parallel_map


@dataclass
class MonteCarloConfig:
    """Settings for a Monte Carlo characterization run."""

    runs: int = 200
    seed: int = 20080310  # DATE 2008 week, for flavor
    temperature_c: float = 27.0
    spec: VariationSpec = field(default_factory=VariationSpec)
    plan: StimulusPlan = field(default_factory=StimulusPlan)
    #: Deterministic fault injection for resilience testing.
    faults: FaultPlan | None = None
    #: Abort (AnalysisError) once this many samples have been
    #: quarantined; None = never abort, quarantine everything.
    max_failures: int | None = None
    #: Process-pool width; 1 (the default) runs serially in-process.
    #: Parallel results are bitwise identical to serial ones because
    #: per-sample seeds derive from the sample index alone. Campaigns
    #: with a fault plan are forced serial (plans count firings in
    #: mutable in-process state).
    workers: int = 1
    #: Samples per pool submission; None picks ~4 chunks per worker.
    chunk_size: int | None = None

    def validate(self) -> None:
        if self.runs < 1:
            raise AnalysisError("Monte Carlo needs at least one run")
        if self.max_failures is not None and self.max_failures < 0:
            raise AnalysisError("max_failures must be >= 0 or None")
        if self.workers < 1:
            raise AnalysisError("workers must be >= 1")


@dataclass
class MonteCarloResult:
    """All samples plus aggregate statistics and failure accounting."""

    kind: str
    vddi: float
    vddo: float
    samples: list[ShifterMetrics]
    #: Statistics over the *successful* samples (None if all failed).
    statistics: MetricStatistics | None
    #: Sample indices of the successful samples, aligned with
    #: ``samples``; lets a partial result be resumed seed-stably.
    completed_indices: list[int] = field(default_factory=list)
    #: Per-sample failures captured instead of raised.
    failures: list[SampleFailure] = field(default_factory=list)
    #: True when the campaign was interrupted (Ctrl-C) mid-run.
    interrupted: bool = False

    @property
    def quarantined(self) -> list[int]:
        """Sample indices that failed, in campaign order."""
        return [f.index for f in self.failures]

    @property
    def functional_yield(self) -> float:
        """Fraction of *attempted* samples that converted correctly.

        Quarantined samples count as non-functional, so an injected or
        genuine solver escape degrades the yield rather than vanishing.
        """
        total = len(self.samples) + len(self.failures)
        if total == 0:
            return 0.0
        good = sum(1 for s in self.samples if s.functional)
        return good / total

    def diagnostics(self) -> CampaignDiagnostics:
        return CampaignDiagnostics(
            total=len(self.samples) + len(self.failures),
            succeeded=len(self.samples),
            failures=list(self.failures),
            interrupted=self.interrupted)

    def failure_summary(self, limit: int = 10) -> str:
        return self.diagnostics().summary(limit=limit)


def _sample_worker(task: tuple):
    """Run one Monte Carlo sample; shared by serial and pool paths.

    Module-level so the process pool can pickle it by reference.
    Derives everything (including randomness) from the task tuple, so
    a pool worker computes bit-for-bit what the serial loop would.
    Per-sample failures are encoded in the return value rather than
    raised — quarantine must survive the pool boundary.
    """
    (index, seed, temperature_c, spec, plan, kind, vddi, vddo,
     sizing) = task
    rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
    pdk = VariedPdk(rng, spec, temperature_c=temperature_c)
    try:
        metrics = characterize(pdk, kind, vddi, vddo, plan=plan,
                               sizing=sizing)
    except Exception as exc:
        return ("err", index, "characterize",
                f"{type(exc).__name__}: {exc}")
    return ("ok", index, metrics)


def run_monte_carlo(kind: str, vddi: float, vddo: float,
                    config: MonteCarloConfig | None = None,
                    sizing=None,
                    progress=None,
                    resume: MonteCarloResult | None = None
                    ) -> MonteCarloResult:
    """Characterize ``kind`` over ``config.runs`` process samples.

    Args:
        progress: optional callable ``(index, metrics)`` invoked after
            each sample (used by benches for live output). Exceptions
            it raises are isolated — warned once and suppressed — so an
            observability hook can never take down a campaign.
        resume: a previous (partial) result for the same kind/supplies/
            config; its completed and quarantined samples are carried
            over and only the remaining indices are run. Seed-stable
            because per-sample seeds derive from the sample index.

    Returns a partial result (``interrupted=True``) instead of raising
    on KeyboardInterrupt; per-sample errors are quarantined into
    ``failures`` rather than raised.
    """
    config = config or MonteCarloConfig()
    config.validate()
    faults = config.faults

    completed: list[tuple[int, ShifterMetrics]] = []
    failures: list[SampleFailure] = []
    if resume is not None:
        completed.extend(zip(resume.completed_indices, resume.samples))
        failures.extend(resume.failures)
    done = {index for index, _ in completed}
    done.update(f.index for f in failures)

    progress_broken = False
    interrupted = False

    def _quarantine(index: int, stage: str, error: str) -> None:
        failures.append(SampleFailure(index=index, stage=stage,
                                      error=error))
        if (config.max_failures is not None
                and len(failures) > config.max_failures):
            raise AnalysisError(
                f"Monte Carlo aborted: {len(failures)} sample failures "
                f"exceed max_failures={config.max_failures}; last: "
                f"{failures[-1].describe()}")

    def _progress(index: int, metrics: ShifterMetrics) -> None:
        nonlocal progress_broken
        if progress is None or progress_broken:
            return
        try:
            progress(index, metrics)
        except Exception as exc:
            progress_broken = True
            warnings.warn(
                f"Monte Carlo progress callback raised "
                f"{type(exc).__name__}: {exc}; further calls "
                f"suppressed, campaign continues", RuntimeWarning,
                stacklevel=3)

    try:
        if faults is not None:
            # Fault campaigns count firings in mutable in-process state
            # and scope the ambient plan per sample; both are invisible
            # across a pool boundary, so they always run serially.
            for index in range(config.runs):
                if index in done:
                    continue
                if faults.fires("sample_failure", sample=index):
                    _quarantine(index, "injected",
                                "injected sample failure")
                    continue
                rng = np.random.default_rng(
                    np.random.SeedSequence([config.seed, index]))
                pdk = VariedPdk(rng, config.spec,
                                temperature_c=config.temperature_c)
                try:
                    with faults.sample_scope(index), inject(faults):
                        metrics = characterize(pdk, kind, vddi, vddo,
                                               plan=config.plan,
                                               sizing=sizing)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    _quarantine(index, "characterize",
                                f"{type(exc).__name__}: {exc}")
                    continue
                completed.append((index, metrics))
                _progress(index, metrics)
        else:
            tasks = [(index, config.seed, config.temperature_c,
                      config.spec, config.plan, kind, vddi, vddo, sizing)
                     for index in range(config.runs) if index not in done]
            # Serial and parallel share _sample_worker, so a pool run is
            # sample-for-sample identical to workers=1; only the arrival
            # order of results (and progress callbacks) differs.
            for outcome in parallel_map(_sample_worker, tasks,
                                        workers=config.workers,
                                        chunk_size=config.chunk_size):
                if outcome[0] == "ok":
                    _, index, metrics = outcome
                    completed.append((index, metrics))
                    _progress(index, metrics)
                else:
                    _, index, stage, message = outcome
                    _quarantine(index, stage, message)
    except KeyboardInterrupt:
        interrupted = True

    completed.sort(key=lambda pair: pair[0])
    failures.sort(key=lambda f: f.index)
    samples = [metrics for _, metrics in completed]
    indices = [index for index, _ in completed]
    statistics = aggregate(samples) if samples else None
    return MonteCarloResult(kind=kind, vddi=vddi, vddo=vddo,
                            samples=samples, statistics=statistics,
                            completed_indices=indices, failures=failures,
                            interrupted=interrupted)
