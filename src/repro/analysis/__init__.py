"""Experiment harnesses: Monte Carlo, voltage sweeps, temperature,
functional validation."""

from repro.analysis.montecarlo import (
    MonteCarloConfig, MonteCarloResult, run_monte_carlo,
)
from repro.analysis.sweep import (
    DelaySurface, SweepGrid, VDD_MAX, VDD_MIN, render_surface_ascii,
    sweep_delay_surface,
)
from repro.analysis.temperature import (
    PAPER_TEMPERATURES, TemperaturePoint, monte_carlo_over_temperature,
    sweep_temperature,
)
from repro.analysis.functional import FunctionalReport, validate_functionality
from repro.analysis.noise_margin import (
    VtcReport, VtcResult, extract_vtc, vtc_report,
)
from repro.analysis.corners import (
    DEFAULT_CORNERS, DEFAULT_TEMPS, PvtPoint, PvtReport, pvt_report,
)
from repro.analysis.sensitivity import (
    SIZING_KNOBS, Sensitivity, metric_sensitivities,
    render_sensitivity_table,
)
from repro.analysis.leaderboard import (
    LEADERBOARD_SCHEMA, build_leaderboard, load_leaderboard,
    rank_leaderboard, render_leaderboard, write_leaderboard,
)

__all__ = [
    "MonteCarloConfig",
    "MonteCarloResult",
    "run_monte_carlo",
    "DelaySurface",
    "SweepGrid",
    "VDD_MIN",
    "VDD_MAX",
    "sweep_delay_surface",
    "render_surface_ascii",
    "PAPER_TEMPERATURES",
    "TemperaturePoint",
    "sweep_temperature",
    "monte_carlo_over_temperature",
    "FunctionalReport",
    "validate_functionality",
    "VtcReport",
    "VtcResult",
    "extract_vtc",
    "vtc_report",
    "PvtReport",
    "PvtPoint",
    "pvt_report",
    "DEFAULT_CORNERS",
    "DEFAULT_TEMPS",
    "Sensitivity",
    "metric_sensitivities",
    "render_sensitivity_table",
    "SIZING_KNOBS",
    "LEADERBOARD_SCHEMA",
    "build_leaderboard",
    "load_leaderboard",
    "rank_leaderboard",
    "render_leaderboard",
    "write_leaderboard",
]
