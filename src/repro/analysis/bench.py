"""Reproducible performance benchmarks (``repro bench``).

Two fixed workloads track the simulation core's throughput across PRs:

* **mc** — ``run_monte_carlo("sstvs", 0.8, 1.2)`` at a configurable
  sample count (100 for the headline number), serial and with a
  process pool;
* **sweep** — the Figure-8 delay surface
  (``sweep_delay_surface("sstvs", SweepGrid.with_step(0.1))``),
  single-threaded, which isolates the assembly-caching speedup from
  parallelism;
* **tracer** — :func:`bench_tracer_overhead`, a fixed DC-solve loop run
  with tracing disabled / NullTracer / CollectingTracer back to back,
  guarding the telemetry layer's zero-cost-when-disabled contract
  (NullTracer ≤ :data:`TRACER_OVERHEAD_TOLERANCE` over disabled);
* **cache_hit** — :func:`bench_cache_hit`, the same Monte Carlo run
  cold then warm against a fresh content-addressed solve cache
  (:mod:`repro.runtime.cache`): reports the warm-pass hit rate, the
  cold/warm wall-time ratio, and asserts the warm samples are bitwise
  identical to the cold ones;
* **floorplan_scale** — :func:`bench_floorplan_scale`, the
  generate → assign → anneal → sign-off pipeline at 50/200/800 blocks
  with a fixed move budget, timing each stage separately so annealer
  throughput and STA/netlist scaling regress independently.

Each workload records wall time and, for in-process runs, the global
Newton counters from :func:`repro.spice.newton.solve_stats` as a
solves-per-second rate (pool workers count in their own processes, so
parallel runs report wall time only). Results serialize to a
``BENCH_*.json`` trajectory file embedding the measured pre-PR2
baselines, and :func:`check_regression` turns the file into a guard:
``repro bench --check`` fails when solves/sec drops more than 30%
below the stored baseline.
"""

from __future__ import annotations

import gc
import json
import time
from datetime import datetime, timezone

from repro.spice.newton import reset_solve_stats, solve_stats

#: JSON schema tag for a single suite record.
BENCH_SCHEMA = "repro-bench-v1"

#: JSON schema tag for a multi-entry trajectory file (appended runs).
BENCH_TRAJECTORY_SCHEMA = "repro-bench-trajectory-v1"

#: Wall times measured on this PR's parent commit (serial engine,
#: per-iteration full re-stamp) for the two headline workloads.
PRE_PR2_BASELINE = {
    "mc100_serial_wall_s": 103.78970726900025,
    "fig8_sweep_wall_s": 37.56612051900038,
}

#: ``--check`` fails when solves/sec drops below (1 - this) x baseline.
REGRESSION_TOLERANCE = 0.30

#: An ambient NullTracer may cost at most this fraction over the
#: disabled (ambient None) hot path — the telemetry layer's
#: "zero-cost-when-disabled" contract, asserted on every bench run.
TRACER_OVERHEAD_TOLERANCE = 0.02

#: Machine-independent floor on process-pool scaling: the pooled Monte
#: Carlo run must achieve at least this fraction of perfect speedup
#: over the *effective* worker count (``min(workers, usable cores)``).
#: Normalizing by usable cores keeps the guard meaningful everywhere —
#: on a 1-core container "pool beats serial" is impossible, but "pool
#: costs at most 2x its fair share" still is.
POOL_EFFICIENCY_FLOOR = 0.5


def _isolate() -> None:
    """Collect garbage before entering a timed region.

    Workloads in one suite run otherwise contaminate each other: the
    serial campaigns leave enough surviving-then-dying objects behind
    that gen-2 collections fire *inside* the next workload's timed
    region (measured: up to ~25% on ``mc_batched`` when it follows
    ``mc_serial`` in-process). Standard benchmark isolation — each
    timed region starts with an empty collector debt.
    """
    gc.collect()


def _rates(wall_s: float) -> dict:
    # Valid for every backend: pool and sharded-batched workers measure
    # their solve-counter deltas in-process and ship them home with each
    # outcome (see repro.runtime.experiment.engine._stats_delta), so the
    # global counters reflect the whole campaign here too.
    stats = solve_stats()
    return {
        "solves": stats["solves"],
        "newton_iterations": stats["iterations"],
        "solves_per_s": (stats["solves"] / wall_s) if wall_s > 0 else None,
    }


def bench_monte_carlo(runs: int = 100, workers: int = 1,
                      kind: str = "sstvs", vddi: float = 0.8,
                      vddo: float = 1.2, seed: int = 20080310,
                      backend: str | None = None,
                      batch_width: int | None = None,
                      solver: str | None = None) -> dict:
    """Time one Monte Carlo campaign; returns a result record."""
    from repro.analysis.montecarlo import MonteCarloConfig, run_monte_carlo
    config = MonteCarloConfig(runs=runs, seed=seed, workers=workers,
                              backend=backend, solver=solver)
    if batch_width is not None:
        config.batch_width = batch_width
    _isolate()
    reset_solve_stats()
    started = time.perf_counter()
    result = run_monte_carlo(kind, vddi, vddo, config)
    wall_s = time.perf_counter() - started
    record = {
        "workload": "mc",
        "kind": kind,
        "vddi": vddi,
        "vddo": vddo,
        "runs": runs,
        "workers": workers,
        "backend": backend or ("pool" if workers > 1 else "serial"),
        "batch_width": config.batch_width,
        "solver": solver or "auto",
        "wall_s": wall_s,
        "functional_yield": result.functional_yield,
        "quarantined": len(result.failures),
    }
    record.update(_rates(wall_s))
    record["_samples"] = result.samples  # stripped before serialization
    return record


def bench_sweep(step: float = 0.1, workers: int = 1,
                kind: str = "sstvs") -> dict:
    """Time one delay-surface sweep; returns a result record."""
    from repro.analysis.sweep import SweepGrid, sweep_delay_surface
    grid = SweepGrid.with_step(step)
    _isolate()
    reset_solve_stats()
    started = time.perf_counter()
    surface = sweep_delay_surface(kind, grid, workers=workers)
    wall_s = time.perf_counter() - started
    record = {
        "workload": "sweep",
        "kind": kind,
        "step": step,
        "grid_points": int(surface.functional.size),
        "workers": workers,
        "wall_s": wall_s,
        "functional_fraction": surface.functional_fraction,
    }
    record.update(_rates(wall_s))
    return record


def bench_cache_hit(runs: int = 100, kind: str = "sstvs",
                    vddi: float = 0.8, vddo: float = 1.2,
                    seed: int = 20080310) -> dict:
    """Cold-vs-warm Monte Carlo through the content-addressed cache.

    Runs the same campaign twice against a fresh cache in a temporary
    directory: the cold pass populates it (every point a miss + store),
    the warm pass must be served entirely from it. Records both wall
    times, the warm-pass hit rate, and whether the warm samples are
    bitwise identical to the cold ones — the cache's core guarantee.
    """
    import tempfile

    from repro.analysis.montecarlo import MonteCarloConfig, run_monte_carlo
    from repro.runtime.cache import SolveCache

    config = MonteCarloConfig(runs=runs, seed=seed)
    with tempfile.TemporaryDirectory() as root:
        cache = SolveCache(root)
        _isolate()
        reset_solve_stats()
        started = time.perf_counter()
        cold = run_monte_carlo(kind, vddi, vddo, config, cache=cache)
        cold_wall_s = time.perf_counter() - started
        cold_rates = _rates(cold_wall_s)
        _isolate()
        started = time.perf_counter()
        warm = run_monte_carlo(kind, vddi, vddo, config, cache=cache)
        warm_wall_s = time.perf_counter() - started
        stats = cache.stats
    record = {
        "workload": "cache_hit",
        "kind": kind,
        "runs": runs,
        "cold_wall_s": cold_wall_s,
        "warm_wall_s": warm_wall_s,
        "wall_s": cold_wall_s + warm_wall_s,
        "hits": stats.hits,
        "misses": stats.misses,
        "stores": stats.stores,
        "corruptions": stats.corruptions,
        "warm_hit_rate": stats.hits / runs if runs else None,
        "warm_speedup": ((cold_wall_s / warm_wall_s)
                         if warm_wall_s > 0 else None),
        "warm_identical_to_cold": warm.samples == cold.samples,
    }
    # solves/s of the cold (live-solve) pass; the warm pass does no
    # solver work by construction.
    record.update(cold_rates)
    return record


def bench_sparse_crossover(lanes: int = 16, repeats: int = 3,
                           cells: tuple = (1, 2, 4, 8, 12, 16, 24, 32),
                           seed: int = 20080310) -> dict:
    """Locate the dense/sparse linear-kernel crossover by system size.

    Tiles the real sstvs testbench's MNA sparsity pattern into a block
    ladder of ``k`` coupled shifter cells — the chained-workload shape
    ROADMAP items 3-4 target — and times one ``lanes``-wide batched
    solve per size through both kernels: dense LAPACK
    (:func:`repro.spice.batch._solve_stack`) and the pattern-reuse
    sparse LU (:class:`repro.spice.sparse.SparsePlan`). The symbolic
    factorization runs outside the timed region, exactly as campaigns
    amortize it (once per topology, thousands of numeric solves).

    Records per-size wall times, the factor's nonzero count, the first
    size where sparse wins, and :data:`SPARSE_AUTO_THRESHOLD` so a
    drifting machine shows up as a crossover/threshold mismatch in the
    trajectory rather than silent mis-selection.
    """
    import numpy as np

    from repro.core.testbench import InputStep, build_testbench
    from repro.pdk.variation import VariationSpec, VariedPdk
    from repro.spice.assembly import SolverWorkspace
    from repro.spice.batch import _solve_stack
    from repro.spice.sparse import (
        SPARSE_AUTO_THRESHOLD, SparsePlan, structural_pattern,
    )

    rng = np.random.default_rng(seed)
    pdk = VariedPdk(rng, VariationSpec())
    circuit, _ = build_testbench(pdk, "sstvs", 0.8, 1.2,
                                 steps=[InputStep(0.2e-9, True)])
    cell = structural_pattern(SolverWorkspace(circuit).plan)
    nc = cell.shape[0]

    _isolate()
    suite_started = time.perf_counter()
    sizes = []
    for k in cells:
        n = nc * k
        pattern = np.zeros((n, n), dtype=bool)
        for b in range(k):
            lo = b * nc
            pattern[lo:lo + nc, lo:lo + nc] = cell
            if b:  # couple adjacent cells (output drives next input)
                pattern[lo, lo - 1] = pattern[lo - 1, lo] = True
        mats = rng.standard_normal((lanes, n, n)) * pattern
        mats += np.eye(n) * (2.0 * n)
        rhs = rng.standard_normal((lanes, n))
        plan = SparsePlan(pattern)  # symbolic phase: once per topology
        dense_s = min(_timed(lambda: _solve_stack(mats, rhs))
                      for _ in range(repeats))
        sparse_s = min(_timed(lambda: plan.solve(mats, rhs))
                       for _ in range(repeats))
        sizes.append({
            "size": n,
            "cells": k,
            "nnz_factor": plan.nnz_factor,
            "dense_s": dense_s,
            "sparse_s": sparse_s,
            "sparse_vs_dense": dense_s / sparse_s if sparse_s else None,
        })
    crossover = next((entry["size"] for entry in sizes
                      if entry["sparse_s"] < entry["dense_s"]), None)
    return {
        "workload": "sparse_crossover",
        "lanes": lanes,
        "repeats": repeats,
        "cell_size": nc,
        "sizes": sizes,
        "measured_crossover_size": crossover,
        "auto_threshold": SPARSE_AUTO_THRESHOLD,
        "wall_s": time.perf_counter() - suite_started,
    }


def bench_floorplan_scale(sizes: tuple = (50, 200, 800),
                          moves: int = 150, seed: int = 20080310,
                          design_seed: int = 0) -> dict:
    """Time the floorplanner pipeline across design sizes.

    For each block count: generate a synthetic multi-voltage design,
    assign SS-TVS shifters, anneal a fixed (small) move budget, build
    the crossing netlist + synthetic timing library, and sign off
    through the STA engine. Per-size wall times are recorded for each
    stage separately, so a regression in (say) netlist construction —
    the part that used to be quadratic in fanout lookups — is visible
    independently of annealing throughput. The annealing rate is
    reported as evaluated moves per second, which is the cost driver
    at SoC scale (``default_moves`` grows with the block count).
    """
    from repro.floorplan import (
        anneal_floorplan, assign_shifters, build_crossing_netlist,
        build_timing_library, generate_design, signoff_floorplan,
    )

    _isolate()
    suite_started = time.perf_counter()
    entries = []
    for blocks in sizes:
        started = time.perf_counter()
        design = generate_design(blocks=blocks, seed=design_seed)
        assignment = assign_shifters(design, "sstvs",
                                     characterize_leakage=False)
        setup_s = time.perf_counter() - started

        started = time.perf_counter()
        result = anneal_floorplan(design, assignment, seed=seed,
                                  moves=moves)
        anneal_s = time.perf_counter() - started

        started = time.perf_counter()
        netlist, paths = build_crossing_netlist(design, assignment,
                                                result.positions)
        library = build_timing_library(design, assignment)
        report = signoff_floorplan(netlist, paths, library,
                                   required=2e-9)
        signoff_s = time.perf_counter() - started

        entries.append({
            "blocks": blocks,
            "crossings": len(assignment.crossings),
            "setup_s": setup_s,
            "anneal_s": anneal_s,
            "moves_per_s": moves / anneal_s if anneal_s > 0 else None,
            "signoff_s": signoff_s,
            "signoff_ok": report.ok,
            "cost": result.cost,
        })
    return {
        "workload": "floorplan_scale",
        "sizes": entries,
        "moves": moves,
        "wall_s": time.perf_counter() - suite_started,
    }


def _timed(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started


def machine_calibration(repeats: int = 3) -> dict:
    """A fixed LAPACK workload that prices the machine, not the code.

    The shared benchmark container's wall clock swings by tens of
    percent with hypervisor load; this constant-work microbenchmark
    (2000 batched 100x13 solves — the MC workload's kernel shape) is
    recorded alongside every suite entry so a trajectory reader can
    tell a code regression (rate down, calibration flat) from a noisy
    machine (both move together).
    """
    import numpy as np

    rng = np.random.default_rng(0)
    matrices = rng.standard_normal((100, 13, 13)) + np.eye(13) * 5.0
    rhs = rng.standard_normal((100, 13, 1))
    _isolate()
    np.linalg.solve(matrices, rhs)  # warm the gufunc outside the timing

    def pass_once():
        for _ in range(2000):
            np.linalg.solve(matrices, rhs)

    best = min(_timed(pass_once) for _ in range(repeats))
    return {"lapack_fixed_work_s": best, "repeats": repeats}


def check_pool_efficiency(record: dict,
                          floor: float = POOL_EFFICIENCY_FLOOR
                          ) -> list[str]:
    """Assert the machine-independent pool-scaling floor on a suite.

    ``pool_efficiency`` is serial wall time over pooled wall time,
    normalized by the effective worker count — 1.0 is perfect scaling
    on any machine, and the floor is a fraction of perfect rather than
    of serial, so the guard neither lies on many-core boxes nor fails
    spuriously on one-core containers.
    """
    entry = latest_entry(record)
    efficiency = entry.get("speedups", {}).get("pool_efficiency")
    if efficiency is None or efficiency >= floor:
        return []
    workers = entry.get("workloads", {}).get(
        "mc_parallel", {}).get("workers")
    return [f"pool: efficiency {efficiency:.2f} is below the "
            f"{floor:.0%}-of-perfect floor (workers={workers}); the "
            f"process pool is costing more than it contributes"]


def _effective_workers(workers: int) -> int:
    import os
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        usable = os.cpu_count() or 1
    return max(1, min(workers, usable))


def _tracer_overhead_circuits(n: int) -> list:
    """Small nonlinear DC circuits for the tracer-overhead workload.

    Cheap solves on purpose: the cheaper the solve, the larger the
    relative weight of the instrumentation calls, so the ≤2% guard is
    conservative for the real (heavier) workloads.
    """
    from repro.spice import Circuit
    from repro.spice.devices import Diode, Resistor, VoltageSource
    circuits = []
    for k in range(n):
        ckt = Circuit(f"tracer-bench-{k}")
        ckt.add(VoltageSource("v", "a", "0",
                              dc=1.0 + 0.5 * (k % 8) / 8.0))
        ckt.add(Resistor("r", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", "0"))
        ckt.finalize()
        circuits.append(ckt)
    return circuits


def bench_tracer_overhead(solves: int = 200, repeats: int = 3) -> dict:
    """Measure the telemetry layer's instrumentation cost.

    Times the same fixed set of DC solves three ways: tracing disabled
    (ambient tracer is None — the default hot path), with an ambient
    :class:`~repro.runtime.telemetry.NullTracer` (every guard passes
    and every emission call is made, but nothing is recorded), and with
    a :class:`CollectingTracer` (full recording including condition
    estimates). Activation (``trace()`` entry and tracer construction)
    happens once per campaign *point*, not per solve, so it sits
    outside the timed region — what is bounded here is the steady-state
    per-solve cost of the instrumentation sites themselves.

    Each circuit is solved once per mode back to back, with the mode
    order rotating per circuit, and the overhead is the ratio of
    per-mode *median* solve times — per-solve interleaving plus a
    median over hundreds of samples is what survives a noisy shared
    machine, where pass-level wall times can drift by 10–20 %.

    ``null_overhead`` is the fractional cost of the instrumentation
    itself; ``repro bench`` fails when it exceeds
    :data:`TRACER_OVERHEAD_TOLERANCE`.
    """
    from repro.runtime import telemetry
    from repro.spice.op import OperatingPoint

    circuits = _tracer_overhead_circuits(solves)
    for ckt in circuits:  # build assembly plans outside the timed region
        OperatingPoint(ckt).run()

    order = ("disabled", "null", "collecting")
    durations: dict[str, list[float]] = {name: [] for name in order}
    _isolate()
    suite_started = time.perf_counter()
    for _ in range(repeats):
        for k, ckt in enumerate(circuits):
            rotation = order[k % 3:] + order[:k % 3]
            for name in rotation:
                if name == "disabled":
                    started = time.perf_counter()
                    OperatingPoint(ckt).run()
                    durations[name].append(time.perf_counter() - started)
                else:
                    tracer = (telemetry.NullTracer() if name == "null"
                              else telemetry.CollectingTracer())
                    with telemetry.trace(tracer):
                        started = time.perf_counter()
                        OperatingPoint(ckt).run()
                        durations[name].append(
                            time.perf_counter() - started)
    wall_s = time.perf_counter() - suite_started

    medians = {name: _median(values)
               for name, values in durations.items()}
    disabled = medians["disabled"]
    return {
        "workload": "tracer",
        "solves": solves,
        "repeats": repeats,
        "disabled_solve_s": disabled,
        "null_solve_s": medians["null"],
        "collecting_solve_s": medians["collecting"],
        "null_overhead": medians["null"] / disabled - 1.0,
        "collecting_overhead": medians["collecting"] / disabled - 1.0,
        "wall_s": wall_s,
    }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_tracer_overhead(
        record: dict,
        tolerance: float = TRACER_OVERHEAD_TOLERANCE) -> list[str]:
    """Assert the NullTracer overhead bound on a suite record."""
    tracer = latest_entry(record).get("workloads", {}).get("tracer")
    if not tracer:
        return []
    overhead = tracer.get("null_overhead")
    if overhead is None or overhead <= tolerance:
        return []
    return [f"tracer: NullTracer costs {overhead:+.1%} over the "
            f"disabled hot path (tolerance {tolerance:.0%})"]


def run_bench_suite(mc_runs: int = 100, sweep_step: float = 0.1,
                    workers: int = 4) -> dict:
    """Run the full benchmark suite; returns the trajectory record.

    Runs the Monte Carlo workload serially and with ``workers``
    processes (verifying the two produce identical samples), plus the
    single-threaded sweep, and relates the wall times to the stored
    pre-PR2 baselines.
    """
    mc_serial = bench_monte_carlo(runs=mc_runs, workers=1)
    mc_parallel = bench_monte_carlo(runs=mc_runs, workers=workers)
    mc_batched = bench_monte_carlo(runs=mc_runs, backend="batched")
    mc_batched_sharded = bench_monte_carlo(runs=mc_runs, workers=2,
                                           backend="batched")
    # Bitwise cross-backend checks before the sample lists are stripped:
    # every alternative backend must reproduce the serial samples
    # exactly (ShifterMetrics compares float fields with ==).
    serial_samples = mc_serial.pop("_samples")
    mc_parallel["identical_to_serial"] = (
        mc_parallel.pop("_samples") == serial_samples)
    mc_batched["identical_to_serial"] = (
        mc_batched.pop("_samples") == serial_samples)
    mc_batched_sharded["identical_to_serial"] = (
        mc_batched_sharded.pop("_samples") == serial_samples)
    sweep = bench_sweep(step=sweep_step, workers=1)
    tracer = bench_tracer_overhead()
    cache_hit = bench_cache_hit(runs=mc_runs)
    sparse_crossover = bench_sparse_crossover()
    floorplan_scale = bench_floorplan_scale()

    baseline = dict(PRE_PR2_BASELINE)
    speedups = {}
    if mc_runs == 100:
        speedups["mc100_parallel_vs_pre_pr2"] = (
            baseline["mc100_serial_wall_s"] / mc_parallel["wall_s"])
        speedups["mc100_serial_vs_pre_pr2"] = (
            baseline["mc100_serial_wall_s"] / mc_serial["wall_s"])
        speedups["mc100_batched_vs_pre_pr2"] = (
            baseline["mc100_serial_wall_s"] / mc_batched["wall_s"])
    # The batched-vs-serial headline is meaningful at any sample count
    # (both run in this process on the same workload).
    speedups["mc_batched_vs_serial"] = (
        mc_serial["wall_s"] / mc_batched["wall_s"])
    speedups["mc_batched_sharded_vs_serial"] = (
        mc_serial["wall_s"] / mc_batched_sharded["wall_s"])
    if mc_runs == 100:
        speedups["mc100_batched_vs_serial"] = (
            speedups["mc_batched_vs_serial"])
    # Machine-independent pool scaling: fraction of perfect speedup
    # over the workers that can actually run (see POOL_EFFICIENCY_FLOOR).
    speedups["pool_efficiency"] = (
        mc_serial["wall_s"]
        / (mc_parallel["wall_s"] * _effective_workers(workers)))
    if sweep_step == 0.1:
        speedups["fig8_sweep_single_thread_vs_pre_pr2"] = (
            baseline["fig8_sweep_wall_s"] / sweep["wall_s"])
    return {
        "schema": BENCH_SCHEMA,
        "workloads": {
            "mc_serial": mc_serial,
            "mc_parallel": mc_parallel,
            "mc_batched": mc_batched,
            "mc_batched_sharded": mc_batched_sharded,
            "sweep": sweep,
            "tracer": tracer,
            "cache_hit": cache_hit,
            "sparse_crossover": sparse_crossover,
            "floorplan_scale": floorplan_scale,
        },
        "baseline_pre_pr2": baseline,
        "speedups": speedups,
        "machine": machine_calibration(),
    }


def check_regression(current: dict, baseline: dict,
                     tolerance: float = REGRESSION_TOLERANCE) -> list[str]:
    """Compare solves/sec between two trajectory records.

    Returns a list of human-readable regression messages (empty when
    every workload holds up). Only workloads present in both records
    with an in-process ``solves_per_s`` rate are compared.
    """
    problems = []
    current = latest_entry(current)
    baseline = latest_entry(baseline)
    base_workloads = baseline.get("workloads", {})
    for name, record in current.get("workloads", {}).items():
        rate = record.get("solves_per_s")
        base_rate = base_workloads.get(name, {}).get("solves_per_s")
        if rate is None or base_rate is None or base_rate <= 0:
            continue
        floor = (1.0 - tolerance) * base_rate
        if rate < floor:
            problems.append(
                f"{name}: {rate:.1f} solves/s is "
                f"{100.0 * (1.0 - rate / base_rate):.1f}% below the "
                f"baseline {base_rate:.1f} (tolerance {tolerance:.0%})")
    return problems


def write_trajectory(record: dict, path: str) -> None:
    """Serialize a suite record to ``path`` (samples stripped)."""
    clean = json.loads(json.dumps(
        record, default=lambda o: None))  # drop non-serializable leftovers
    with open(path, "w") as handle:
        json.dump(clean, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_trajectory(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def latest_entry(trajectory: dict) -> dict:
    """Most recent suite record in a trajectory (or the record itself).

    Accepts both file formats: a multi-entry trajectory
    (:data:`BENCH_TRAJECTORY_SCHEMA`) and a legacy single-record file
    (:data:`BENCH_SCHEMA`), so ``--check`` works against either.
    """
    if trajectory.get("schema") == BENCH_TRAJECTORY_SCHEMA:
        entries = trajectory.get("entries", [])
        if not entries:
            raise ValueError("bench trajectory has no entries")
        return entries[-1]
    return trajectory


def validate_baseline(trajectory: dict) -> str | None:
    """Check a loaded baseline file is usable for ``--check``.

    Returns None when the file is a valid trajectory
    (:data:`BENCH_TRAJECTORY_SCHEMA`) or legacy single record
    (:data:`BENCH_SCHEMA`) with at least one workload; otherwise an
    actionable message explaining what is wrong. Guarding here keeps
    ``repro bench --check`` from silently "passing" against a file it
    cannot actually compare with (an unknown schema yields an empty
    workload map, which compares clean against anything).
    """
    schema = trajectory.get("schema")
    if schema == BENCH_TRAJECTORY_SCHEMA:
        if not trajectory.get("entries"):
            return ("baseline trajectory has no entries; run "
                    "'repro bench --out <path>' to record one")
        entry = trajectory["entries"][-1]
    elif schema == BENCH_SCHEMA:
        entry = trajectory
    else:
        return (f"unrecognized baseline schema {schema!r} (expected "
                f"{BENCH_SCHEMA!r} or {BENCH_TRAJECTORY_SCHEMA!r}); "
                f"the file may be from an older or newer version — "
                f"re-record it with 'repro bench --out <path>'")
    if not entry.get("workloads"):
        return ("baseline record has no workloads to compare against; "
                "re-record it with 'repro bench --out <path>'")
    return None


def append_trajectory(record: dict, path: str) -> int:
    """Append a suite record to the trajectory at ``path``.

    Creates the file when missing; converts a legacy single-record file
    into the multi-entry format, keeping the old record as the first
    entry. Returns the entry count after appending.
    """
    entries: list[dict] = []
    try:
        existing = load_trajectory(path)
    except (OSError, json.JSONDecodeError):
        existing = None
    if existing is not None:
        if existing.get("schema") == BENCH_TRAJECTORY_SCHEMA:
            entries = list(existing.get("entries", []))
        elif existing.get("workloads"):
            entries = [existing]
    clean = json.loads(json.dumps(record, default=lambda o: None))
    clean["appended_utc"] = datetime.now(timezone.utc).isoformat()
    entries.append(clean)
    with open(path, "w") as handle:
        json.dump({"schema": BENCH_TRAJECTORY_SCHEMA, "entries": entries},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)
