"""Temperature validation (paper Section 4: 27 / 60 / 90 C).

The paper repeats its Monte Carlo functional validation at three
temperatures and reports correct conversion everywhere, with results
"substantially similar" to the 27 C tables. This module provides both
a nominal temperature sweep of the six metrics and a Monte Carlo
repeat at each temperature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.montecarlo import (
    MonteCarloConfig, MonteCarloResult, run_monte_carlo,
)
from repro.core.characterize import characterize
from repro.core.metrics import ShifterMetrics
from repro.pdk import Pdk

#: The paper's validation temperatures [C].
PAPER_TEMPERATURES = (27.0, 60.0, 90.0)


@dataclass
class TemperaturePoint:
    temperature_c: float
    metrics: ShifterMetrics


def sweep_temperature(kind: str, vddi: float, vddo: float,
                      temperatures=PAPER_TEMPERATURES,
                      sizing=None) -> list[TemperaturePoint]:
    """Nominal-process characterization at each temperature."""
    points = []
    for temp in temperatures:
        pdk = Pdk(temperature_c=temp)
        metrics = characterize(pdk, kind, vddi, vddo, sizing=sizing)
        points.append(TemperaturePoint(temp, metrics))
    return points


def monte_carlo_over_temperature(kind: str, vddi: float, vddo: float,
                                 runs: int = 50,
                                 temperatures=PAPER_TEMPERATURES,
                                 seed: int = 20080310,
                                 sizing=None) -> dict[float, MonteCarloResult]:
    """Monte Carlo repeated per temperature (paper's validation)."""
    results = {}
    for temp in temperatures:
        config = MonteCarloConfig(runs=runs, seed=seed,
                                  temperature_c=temp)
        results[temp] = run_monte_carlo(kind, vddi, vddo, config,
                                        sizing=sizing)
    return results
