"""Temperature validation (paper Section 4: 27 / 60 / 90 C).

The paper repeats its Monte Carlo functional validation at three
temperatures and reports correct conversion everywhere, with results
"substantially similar" to the 27 C tables. This module provides both
a nominal temperature sweep of the six metrics and a Monte Carlo
repeat at each temperature.

Both flows route through the unified experiment engine:
:func:`temperature_spec` describes the nominal sweep declaratively
(``workers > 1`` runs temperatures in parallel, bitwise identical to
serial), and :func:`monte_carlo_over_temperature` forwards ``workers``
into each per-temperature Monte Carlo campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.montecarlo import (
    MonteCarloConfig, MonteCarloResult, run_monte_carlo,
)
from repro.core.characterize import characterize
from repro.core.metrics import ShifterMetrics
from repro.pdk import Pdk
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, ResultSet, run_experiment,
)

#: The paper's validation temperatures [C].
PAPER_TEMPERATURES = (27.0, 60.0, 90.0)

#: Experiment name shared by specs, result sets, and stored manifests.
EXPERIMENT_NAME = "temperature"


@dataclass
class TemperaturePoint:
    temperature_c: float
    metrics: ShifterMetrics


def _measure(params: tuple) -> ShifterMetrics:
    """Characterize at one temperature; shared by serial/pool paths."""
    temp, kind, vddi, vddo, sizing, node = params
    pdk = Pdk(temperature_c=temp, node=node)
    return characterize(pdk, kind, vddi, vddo, sizing=sizing)


def temperature_spec(kind: str, vddi: float, vddo: float,
                     temperatures=PAPER_TEMPERATURES, sizing=None,
                     workers: int = 1,
                     chunk_size: int | None = None,
                     pdk_node: str = "ptm90") -> ExperimentSpec:
    """Describe a nominal temperature sweep declaratively."""
    points = [ExperimentPoint(float(temp),
                              (float(temp), kind, vddi, vddo, sizing,
                               pdk_node))
              for temp in temperatures]
    return ExperimentSpec(
        name=EXPERIMENT_NAME, measure=_measure, points=points,
        stage="characterize", codec="metrics",
        workers=workers, chunk_size=chunk_size,
        metadata={"experiment": "temperature", "kind": kind,
                  "vddi": vddi, "vddo": vddo,
                  "temperatures": [float(t) for t in temperatures],
                  "pdk_node": pdk_node})


def points_from_resultset(resultset: ResultSet) -> list[TemperaturePoint]:
    """Assemble the classic point list from typed engine rows.

    Quarantined temperatures appear as non-functional NaN entries so
    the sweep shape is preserved.
    """
    nan = float("nan")
    points = []
    for row in resultset.rows:
        metrics = row.value if row.ok else ShifterMetrics(
            nan, nan, nan, nan, nan, nan, functional=False)
        points.append(TemperaturePoint(row.index, metrics))
    return points


def sweep_temperature(kind: str, vddi: float, vddo: float,
                      temperatures=PAPER_TEMPERATURES,
                      sizing=None, workers: int = 1,
                      chunk_size: int | None = None,
                      resume: ResultSet | None = None,
                      store=None,
                      run_id: str | None = None,
                      cache=None,
                      pdk_node: str = "ptm90") -> list[TemperaturePoint]:
    """Nominal-process characterization at each temperature."""
    spec = temperature_spec(kind, vddi, vddo, temperatures=temperatures,
                            sizing=sizing, workers=workers,
                            chunk_size=chunk_size, pdk_node=pdk_node)
    resultset = run_experiment(spec, resume=resume, store=store,
                               run_id=run_id, cache=cache)
    return points_from_resultset(resultset)


def monte_carlo_over_temperature(kind: str, vddi: float, vddo: float,
                                 runs: int = 50,
                                 temperatures=PAPER_TEMPERATURES,
                                 seed: int = 20080310,
                                 sizing=None, workers: int = 1,
                                 chunk_size: int | None = None,
                                 pdk_node: str = "ptm90"
                                 ) -> dict[float, MonteCarloResult]:
    """Monte Carlo repeated per temperature (paper's validation).

    ``workers`` parallelizes the samples *within* each temperature's
    campaign; per-sample seeds derive from the sample index, so the
    tables match a serial run bitwise.
    """
    results = {}
    for temp in temperatures:
        config = MonteCarloConfig(runs=runs, seed=seed,
                                  temperature_c=temp, workers=workers,
                                  chunk_size=chunk_size,
                                  pdk_node=pdk_node)
        results[temp] = run_monte_carlo(kind, vddi, vddo, config,
                                        sizing=sizing)
    return results
