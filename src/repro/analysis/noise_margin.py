"""Voltage-transfer-curve extraction and static noise margins.

A level shifter's DC robustness is captured by its VTC: the output
levels (VOH/VOL), the input thresholds where the small-signal gain
crosses -1 (VIL/VIH), and the resulting noise margins

    NML = VIL - VOL(driver),   NMH = VOH(driver) - VIH

referred to the *input domain's* levels (the driver swings 0..VDDI).
The curve comes from a DC sweep of the characterization bench with the
DUT input driven directly (the latch state is pinned by sweeping from
the input-high side, where every shifter in the study is driven
unconditionally).

:func:`extract_vtc` is the single-point kernel; :func:`vtc_report`
surveys a list of supply pairs through the unified experiment engine
(``workers``, quarantine, artifact persistence) and summarizes the
margins per pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cells.registry import (
    add_select_sources, build_dut, dut_is_inverting,
)
from repro.errors import AnalysisError, MeasurementError
from repro.pdk import Pdk
from repro.runtime.campaign import SampleFailure
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, ResultSet, run_experiment,
)
from repro.spice import Circuit, DcSweep
from repro.spice.devices import VoltageSource

#: Experiment name shared by specs, result sets, and stored manifests.
EXPERIMENT_NAME = "vtc"

#: Default supply pairs for a VTC survey: up-shift, down-shift, unity.
DEFAULT_PAIRS = ((0.8, 1.2), (1.2, 0.8), (1.0, 1.0))


@dataclass(frozen=True)
class VtcResult:
    """Voltage transfer curve plus extracted figures of merit."""

    vin: np.ndarray
    vout: np.ndarray
    vddi: float
    vddo: float
    inverting: bool
    voh: float          #: output high level [V]
    vol: float          #: output low level [V]
    vil: float          #: input low threshold (gain = -1) [V]
    vih: float          #: input high threshold [V]
    switching_point: float  #: input where vout crosses vddo/2 [V]

    @property
    def nml(self) -> float:
        """Low noise margin, input-domain referred."""
        return self.vil - 0.0

    @property
    def nmh(self) -> float:
        """High noise margin, input-domain referred."""
        return self.vddi - self.vih

    @property
    def output_swing(self) -> float:
        return self.voh - self.vol

    def regenerative(self) -> bool:
        """Peak |gain| > 1: required for restoring logic."""
        gain = np.gradient(self.vout, self.vin)
        return bool(np.max(np.abs(gain)) > 1.0)


def extract_vtc(kind: str, vddi: float, vddo: float,
                pdk: Pdk | None = None, points: int = 121,
                sizing=None) -> VtcResult:
    """DC-sweep the shifter input and extract VTC figures of merit."""
    if points < 11:
        raise AnalysisError("need at least 11 sweep points")
    pdk = pdk or Pdk()
    circuit = Circuit(f"vtc_{kind}")
    circuit.add(VoltageSource("vdut", "vddo", "0", dc=vddo))
    circuit.add(VoltageSource("vdrv", "vddi", "0", dc=vddi))
    circuit.add(VoltageSource("vin", "in", "0", dc=vddi))
    build_dut(circuit, pdk, kind, "in", "out", "vddo", "vddi", sizing)
    add_select_sources(circuit, kind, vddi, vddo)

    # Sweep from the input-high side: that state is driven
    # unconditionally by every DUT, so the latch is pinned correctly
    # and continuation carries the solution branch down the sweep.
    values = np.linspace(vddi, 0.0, points)
    sweep = DcSweep(circuit, "vin", values).run()
    vout = sweep.voltages("out")
    # Re-order ascending in vin for the measurements.
    vin_asc = values[::-1].copy()
    vout_asc = vout[::-1].copy()

    inverting = dut_is_inverting(kind)
    voh = float(np.max(vout_asc))
    vol = float(np.min(vout_asc))

    gain = np.gradient(vout_asc, vin_asc)
    unity = np.nonzero(np.abs(gain) >= 1.0)[0]
    if unity.size == 0:
        raise MeasurementError(
            f"{kind} VTC has no unity-gain region at "
            f"({vddi}, {vddo}) — not a restoring transfer curve")
    vil = float(vin_asc[unity[0]])
    vih = float(vin_asc[unity[-1]])

    mid = vddo / 2.0
    crossing = np.nonzero(np.diff(np.sign(vout_asc - mid)))[0]
    if crossing.size == 0:
        raise MeasurementError(f"{kind} VTC never crosses VDDO/2")
    i = int(crossing[0])
    frac = (mid - vout_asc[i]) / (vout_asc[i + 1] - vout_asc[i])
    switching = float(vin_asc[i] + frac * (vin_asc[i + 1] - vin_asc[i]))

    return VtcResult(vin=vin_asc, vout=vout_asc, vddi=vddi, vddo=vddo,
                     inverting=inverting, voh=voh, vol=vol, vil=vil,
                     vih=vih, switching_point=switching)


@dataclass
class VtcReport:
    """VTC survey over several supply pairs."""

    kind: str
    #: ``(vddi, vddo) -> VtcResult`` for the pairs that extracted.
    results: dict = field(default_factory=dict)
    #: Pairs whose DC sweep failed (quarantined, not raised).
    failures: list[SampleFailure] = field(default_factory=list)
    #: Artifact-store run id, when the campaign was persisted.
    run_id: str | None = None

    @property
    def all_regenerative(self) -> bool:
        return bool(self.results) and all(
            vtc.regenerative() for vtc in self.results.values())

    def worst_margin(self) -> float:
        """Smallest noise margin (NML or NMH) over all pairs [V]."""
        margins = [m for vtc in self.results.values()
                   for m in (vtc.nml, vtc.nmh)]
        return min(margins) if margins else float("nan")

    def pretty(self) -> str:
        lines = [f"VTC survey: {self.kind}"]
        lines.append(f"  {'VDDI':>5s} {'VDDO':>5s} {'VOH':>6s} "
                     f"{'VOL':>6s} {'NML':>6s} {'NMH':>6s} {'regen':>5s}")
        for (vddi, vddo), vtc in sorted(self.results.items()):
            lines.append(
                f"  {vddi:>5.2f} {vddo:>5.2f} {vtc.voh:>6.3f} "
                f"{vtc.vol:>6.3f} {vtc.nml:>6.3f} {vtc.nmh:>6.3f} "
                f"{str(vtc.regenerative()):>5s}")
        for f in self.failures:
            vddi, vddo = f.index
            lines.append(f"  {vddi:>5.2f} {vddo:>5.2f} QUARANTINED "
                         f"[{f.stage}] {f.error}")
        return "\n".join(lines)


def _measure(params: tuple) -> VtcResult:
    """Extract one pair's VTC; shared by serial and pool paths."""
    vddi, vddo, kind, pdk, points, sizing = params
    return extract_vtc(kind, vddi, vddo, pdk=pdk, points=points,
                       sizing=sizing)


def vtc_spec(kind: str, pairs=DEFAULT_PAIRS, pdk: Pdk | None = None,
             points: int = 121, sizing=None, workers: int = 1,
             chunk_size: int | None = None) -> ExperimentSpec:
    """Describe a VTC survey declaratively."""
    if points < 11:
        raise AnalysisError("need at least 11 sweep points")
    spec_points = [
        ExperimentPoint((float(vddi), float(vddo)),
                        (float(vddi), float(vddo), kind, pdk, points,
                         sizing))
        for vddi, vddo in pairs
    ]
    return ExperimentSpec(
        name=EXPERIMENT_NAME, measure=_measure, points=spec_points,
        stage="extract_vtc", codec="vtc",
        workers=workers, chunk_size=chunk_size,
        metadata={"experiment": "vtc", "kind": kind,
                  "pairs": [[float(a), float(b)] for a, b in pairs],
                  "points": points,
                  "pdk_node": getattr(pdk, "node", "ptm90")})


def report_from_resultset(resultset: ResultSet,
                          kind: str | None = None) -> VtcReport:
    """Assemble the survey report from typed engine rows."""
    report = VtcReport(
        kind=kind if kind is not None
        else resultset.metadata.get("kind", "?"),
        run_id=resultset.run_id)
    for row in resultset.rows:
        if row.ok:
            report.results[row.index] = row.value
        else:
            report.failures.append(row.failure())
    return report


def vtc_report(kind: str, pairs=DEFAULT_PAIRS, pdk: Pdk | None = None,
               points: int = 121, sizing=None, workers: int = 1,
               chunk_size: int | None = None,
               resume: ResultSet | None = None,
               store=None, run_id: str | None = None,
               cache=None) -> VtcReport:
    """Survey the VTC over several supply pairs.

    ``workers > 1`` distributes pairs over a process pool; per-pair
    results are identical to a serial run. A pair whose DC sweep fails
    (e.g. no unity-gain region) is quarantined into ``failures``
    instead of raising, so one degenerate pair doesn't sink the survey.
    """
    spec = vtc_spec(kind, pairs=pairs, pdk=pdk, points=points,
                    sizing=sizing, workers=workers, chunk_size=chunk_size)
    resultset = run_experiment(spec, resume=resume, store=store,
                               run_id=run_id, cache=cache)
    return report_from_resultset(resultset, kind=kind)
