"""Voltage-transfer-curve extraction and static noise margins.

A level shifter's DC robustness is captured by its VTC: the output
levels (VOH/VOL), the input thresholds where the small-signal gain
crosses -1 (VIL/VIH), and the resulting noise margins

    NML = VIL - VOL(driver),   NMH = VOH(driver) - VIH

referred to the *input domain's* levels (the driver swings 0..VDDI).
The curve comes from a DC sweep of the characterization bench with the
DUT input driven directly (the latch state is pinned by sweeping from
the input-high side, where every shifter in the study is driven
unconditionally).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.testbench import build_dut, dut_is_inverting
from repro.errors import AnalysisError, MeasurementError
from repro.pdk import Pdk
from repro.spice import Circuit, DcSweep
from repro.spice.devices import VoltageSource


@dataclass(frozen=True)
class VtcResult:
    """Voltage transfer curve plus extracted figures of merit."""

    vin: np.ndarray
    vout: np.ndarray
    vddi: float
    vddo: float
    inverting: bool
    voh: float          #: output high level [V]
    vol: float          #: output low level [V]
    vil: float          #: input low threshold (gain = -1) [V]
    vih: float          #: input high threshold [V]
    switching_point: float  #: input where vout crosses vddo/2 [V]

    @property
    def nml(self) -> float:
        """Low noise margin, input-domain referred."""
        return self.vil - 0.0

    @property
    def nmh(self) -> float:
        """High noise margin, input-domain referred."""
        return self.vddi - self.vih

    @property
    def output_swing(self) -> float:
        return self.voh - self.vol

    def regenerative(self) -> bool:
        """Peak |gain| > 1: required for restoring logic."""
        gain = np.gradient(self.vout, self.vin)
        return bool(np.max(np.abs(gain)) > 1.0)


def extract_vtc(kind: str, vddi: float, vddo: float,
                pdk: Pdk | None = None, points: int = 121,
                sizing=None) -> VtcResult:
    """DC-sweep the shifter input and extract VTC figures of merit."""
    if points < 11:
        raise AnalysisError("need at least 11 sweep points")
    pdk = pdk or Pdk()
    circuit = Circuit(f"vtc_{kind}")
    circuit.add(VoltageSource("vdut", "vddo", "0", dc=vddo))
    circuit.add(VoltageSource("vdrv", "vddi", "0", dc=vddi))
    circuit.add(VoltageSource("vin", "in", "0", dc=vddi))
    build_dut(circuit, pdk, kind, "in", "out", "vddo", "vddi", sizing)
    if kind == "combined":
        sel = vddo if vddi < vddo else 0.0
        circuit.add(VoltageSource("vsel", "sel", "0", dc=sel))
        circuit.add(VoltageSource("vselb", "selb", "0", dc=vddo - sel))

    # Sweep from the input-high side: that state is driven
    # unconditionally by every DUT, so the latch is pinned correctly
    # and continuation carries the solution branch down the sweep.
    values = np.linspace(vddi, 0.0, points)
    sweep = DcSweep(circuit, "vin", values).run()
    vout = sweep.voltages("out")
    # Re-order ascending in vin for the measurements.
    vin_asc = values[::-1].copy()
    vout_asc = vout[::-1].copy()

    inverting = dut_is_inverting(kind)
    voh = float(np.max(vout_asc))
    vol = float(np.min(vout_asc))

    gain = np.gradient(vout_asc, vin_asc)
    unity = np.nonzero(np.abs(gain) >= 1.0)[0]
    if unity.size == 0:
        raise MeasurementError(
            f"{kind} VTC has no unity-gain region at "
            f"({vddi}, {vddo}) — not a restoring transfer curve")
    vil = float(vin_asc[unity[0]])
    vih = float(vin_asc[unity[-1]])

    mid = vddo / 2.0
    crossing = np.nonzero(np.diff(np.sign(vout_asc - mid)))[0]
    if crossing.size == 0:
        raise MeasurementError(f"{kind} VTC never crosses VDDO/2")
    i = int(crossing[0])
    frac = (mid - vout_asc[i]) / (vout_asc[i + 1] - vout_asc[i])
    switching = float(vin_asc[i] + frac * (vin_asc[i + 1] - vin_asc[i]))

    return VtcResult(vin=vin_asc, vout=vout_asc, vddi=vddi, vddo=vddo,
                     inverting=inverting, voh=voh, vol=vol, vil=vil,
                     vih=vih, switching_point=switching)
