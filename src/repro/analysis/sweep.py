"""VDDI x VDDO delay-surface sweeps (paper Figures 8 and 9).

The paper sweeps both supplies from 0.8 V to 1.4 V (5 mV steps in the
paper; configurable here — the benches default to 50 mV, which resolves
the same surfaces at tractable cost) and plots the rising and falling
delays, demonstrating smooth behaviour and full-range functionality.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.characterize import quick_delays
from repro.errors import AnalysisError
from repro.pdk import Pdk
from repro.runtime.campaign import CampaignDiagnostics, SampleFailure
from repro.runtime.parallel import parallel_map

#: The paper's DVS operating range [V].
VDD_MIN = 0.8
VDD_MAX = 1.4


@dataclass
class SweepGrid:
    """Rectangular (VDDI, VDDO) grid."""

    vddi_values: np.ndarray = field(
        default_factory=lambda: np.round(np.arange(VDD_MIN, VDD_MAX + 1e-9,
                                                   0.05), 4))
    vddo_values: np.ndarray = field(
        default_factory=lambda: np.round(np.arange(VDD_MIN, VDD_MAX + 1e-9,
                                                   0.05), 4))

    @classmethod
    def with_step(cls, step: float) -> "SweepGrid":
        if step <= 0:
            raise AnalysisError("grid step must be positive")
        values = np.round(np.arange(VDD_MIN, VDD_MAX + 1e-9, step), 4)
        return cls(vddi_values=values, vddo_values=values.copy())


@dataclass
class DelaySurface:
    """Rise/fall delay and functionality over the grid.

    ``rise[i, j]`` is the rising delay at ``vddi_values[i]``,
    ``vddo_values[j]`` (NaN where non-functional).
    """

    vddi_values: np.ndarray
    vddo_values: np.ndarray
    rise: np.ndarray
    fall: np.ndarray
    functional: np.ndarray
    #: Grid points whose simulation escaped the solver's retry ladder
    #: (quarantined as non-functional NaN cells instead of raised).
    failures: list[SampleFailure] = field(default_factory=list)

    @property
    def functional_fraction(self) -> float:
        return float(np.mean(self.functional))

    @property
    def quarantined(self) -> list[tuple[int, int]]:
        """Grid positions ``(i, j)`` of quarantined points."""
        return [f.index for f in self.failures]

    def diagnostics(self) -> CampaignDiagnostics:
        total = int(self.functional.size)
        return CampaignDiagnostics(total=total,
                                   succeeded=total - len(self.failures),
                                   failures=list(self.failures))

    def failure_summary(self, limit: int = 10) -> str:
        return self.diagnostics().summary(limit=limit)

    def worst_rise(self) -> float:
        return float(np.nanmax(self.rise))

    def worst_fall(self) -> float:
        return float(np.nanmax(self.fall))

    def is_smooth(self, factor: float = 4.0) -> bool:
        """No adjacent-cell delay jump larger than ``factor``x.

        A loose smoothness check matching the paper's qualitative claim
        that delays "change smoothly with changing VDDI and VDDO".
        """
        for surface in (self.rise, self.fall):
            for axis in (0, 1):
                a = np.swapaxes(surface, 0, axis)
                ratio = a[1:] / a[:-1]
                ratio = ratio[np.isfinite(ratio)]
                if ratio.size and (np.max(ratio) > factor
                                   or np.min(ratio) < 1.0 / factor):
                    return False
        return True


def _cell_worker(task: tuple):
    """Simulate one grid cell; shared by the serial and pool paths."""
    i, j, vddi, vddo, kind, pdk, sizing = task
    try:
        q = quick_delays(pdk, kind, vddi, vddo, sizing=sizing)
    except Exception as exc:
        return ("err", i, j, f"{type(exc).__name__}: {exc}")
    return ("ok", i, j, q)


def sweep_delay_surface(kind: str, grid: SweepGrid | None = None,
                        pdk: Pdk | None = None, sizing=None,
                        progress=None, workers: int = 1,
                        chunk_size: int | None = None) -> DelaySurface:
    """Run :func:`quick_delays` over the grid; returns the surfaces.

    ``workers > 1`` distributes grid cells over a process pool; cell
    results are identical to a serial run, but ``progress`` fires in
    completion order (with the cell indices attached) rather than
    row-major order.
    """
    grid = grid or SweepGrid()
    pdk = pdk or Pdk()
    shape = (grid.vddi_values.size, grid.vddo_values.size)
    rise = np.full(shape, np.nan)
    fall = np.full(shape, np.nan)
    functional = np.zeros(shape, dtype=bool)
    failures: list[SampleFailure] = []
    progress_broken = False
    tasks = [(i, j, float(vddi), float(vddo), kind, pdk, sizing)
             for i, vddi in enumerate(grid.vddi_values)
             for j, vddo in enumerate(grid.vddo_values)]
    for outcome in parallel_map(_cell_worker, tasks, workers=workers,
                                chunk_size=chunk_size):
        if outcome[0] == "err":
            _, i, j, message = outcome
            failures.append(SampleFailure(
                index=(i, j), stage="quick_delays", error=message))
            continue
        _, i, j, q = outcome
        rise[i, j] = q.delay_rise
        fall[i, j] = q.delay_fall
        functional[i, j] = q.functional
        if progress is not None and not progress_broken:
            try:
                progress(i, j, q)
            except Exception as exc:
                progress_broken = True
                warnings.warn(
                    f"sweep progress callback raised "
                    f"{type(exc).__name__}: {exc}; further calls "
                    f"suppressed, sweep continues", RuntimeWarning,
                    stacklevel=2)
    failures.sort(key=lambda f: f.index)
    return DelaySurface(grid.vddi_values.copy(), grid.vddo_values.copy(),
                        rise, fall, functional, failures=failures)


def render_surface_ascii(surface: DelaySurface, which: str = "rise",
                         width: int = 6) -> str:
    """Text rendering of a delay surface in picoseconds (for benches)."""
    data = surface.rise if which == "rise" else surface.fall
    header = "VDDI\\VDDO " + " ".join(
        f"{v:>{width}.2f}" for v in surface.vddo_values)
    lines = [header]
    for i, vddi in enumerate(surface.vddi_values):
        cells = " ".join(
            f"{data[i, j] * 1e12:>{width}.1f}" if np.isfinite(data[i, j])
            else " " * (width - 4) + "FAIL"
            for j in range(surface.vddo_values.size))
        lines.append(f"{vddi:>9.2f} {cells}")
    return "\n".join(lines)
