"""VDDI x VDDO delay-surface sweeps (paper Figures 8 and 9).

The paper sweeps both supplies from 0.8 V to 1.4 V (5 mV steps in the
paper; configurable here — the benches default to 50 mV, which resolves
the same surfaces at tractable cost) and plots the rising and falling
delays, demonstrating smooth behaviour and full-range functionality.

The driver is a thin spec builder over the unified experiment engine:
:func:`sweep_spec` enumerates the grid cells, the engine runs them
(workers / quarantine / Ctrl-C partials / resume), and
:func:`surface_from_resultset` folds the typed rows back into the
classic :class:`DelaySurface`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.characterize import quick_delays
from repro.errors import AnalysisError
from repro.pdk import Pdk
from repro.runtime.campaign import CampaignDiagnostics, SampleFailure
from repro.runtime.experiment import (
    ExperimentPoint, ExperimentSpec, ResultSet, run_experiment,
)

#: The paper's DVS operating range [V].
VDD_MIN = 0.8
VDD_MAX = 1.4

#: Experiment name shared by specs, result sets, and stored manifests.
EXPERIMENT_NAME = "sweep"


@dataclass
class SweepGrid:
    """Rectangular (VDDI, VDDO) grid."""

    vddi_values: np.ndarray = field(
        default_factory=lambda: np.round(np.arange(VDD_MIN, VDD_MAX + 1e-9,
                                                   0.05), 4))
    vddo_values: np.ndarray = field(
        default_factory=lambda: np.round(np.arange(VDD_MIN, VDD_MAX + 1e-9,
                                                   0.05), 4))

    @classmethod
    def with_step(cls, step: float) -> "SweepGrid":
        if step <= 0:
            raise AnalysisError("grid step must be positive")
        values = np.round(np.arange(VDD_MIN, VDD_MAX + 1e-9, step), 4)
        return cls(vddi_values=values, vddo_values=values.copy())


@dataclass
class DelaySurface:
    """Rise/fall delay and functionality over the grid.

    ``rise[i, j]`` is the rising delay at ``vddi_values[i]``,
    ``vddo_values[j]`` (NaN where non-functional).
    """

    vddi_values: np.ndarray
    vddo_values: np.ndarray
    rise: np.ndarray
    fall: np.ndarray
    functional: np.ndarray
    #: Grid points whose simulation escaped the solver's retry ladder
    #: (quarantined as non-functional NaN cells instead of raised).
    failures: list[SampleFailure] = field(default_factory=list)
    #: Artifact-store run id, when the campaign was persisted.
    run_id: str | None = None

    @property
    def functional_fraction(self) -> float:
        return float(np.mean(self.functional))

    @property
    def quarantined(self) -> list[tuple[int, int]]:
        """Grid positions ``(i, j)`` of quarantined points."""
        return [f.index for f in self.failures]

    def diagnostics(self) -> CampaignDiagnostics:
        total = int(self.functional.size)
        return CampaignDiagnostics(total=total,
                                   succeeded=total - len(self.failures),
                                   failures=list(self.failures))

    def failure_summary(self, limit: int = 10) -> str:
        return self.diagnostics().summary(limit=limit)

    def worst_rise(self) -> float:
        return float(np.nanmax(self.rise))

    def worst_fall(self) -> float:
        return float(np.nanmax(self.fall))

    def is_smooth(self, factor: float = 4.0) -> bool:
        """No adjacent-cell delay jump larger than ``factor``x.

        A loose smoothness check matching the paper's qualitative claim
        that delays "change smoothly with changing VDDI and VDDO".
        """
        for surface in (self.rise, self.fall):
            for axis in (0, 1):
                a = np.swapaxes(surface, 0, axis)
                ratio = a[1:] / a[:-1]
                ratio = ratio[np.isfinite(ratio)]
                if ratio.size and (np.max(ratio) > factor
                                   or np.min(ratio) < 1.0 / factor):
                    return False
        return True


def _measure(params: tuple):
    """Simulate one grid cell; shared by the serial and pool paths."""
    vddi, vddo, kind, pdk, sizing = params
    return quick_delays(pdk, kind, vddi, vddo, sizing=sizing)


def sweep_spec(kind: str, grid: SweepGrid | None = None,
               pdk: Pdk | None = None, sizing=None, workers: int = 1,
               chunk_size: int | None = None) -> ExperimentSpec:
    """Describe a delay-surface sweep declaratively."""
    grid = grid or SweepGrid()
    pdk = pdk or Pdk()
    points = [ExperimentPoint((i, j), (float(vddi), float(vddo), kind,
                                       pdk, sizing))
              for i, vddi in enumerate(grid.vddi_values)
              for j, vddo in enumerate(grid.vddo_values)]
    return ExperimentSpec(
        name=EXPERIMENT_NAME, measure=_measure, points=points,
        stage="quick_delays", codec="quick_delays",
        workers=workers, chunk_size=chunk_size,
        metadata={"experiment": "sweep", "kind": kind,
                  "vddi_values": [float(v) for v in grid.vddi_values],
                  "vddo_values": [float(v) for v in grid.vddo_values],
                  "pdk_node": getattr(pdk, "node", "ptm90")})


def grid_from_resultset(resultset: ResultSet) -> SweepGrid:
    """Recover the grid a stored sweep ran over (from its metadata)."""
    meta = resultset.metadata
    if "vddi_values" not in meta or "vddo_values" not in meta:
        raise AnalysisError("result set has no sweep grid metadata")
    return SweepGrid(
        vddi_values=np.asarray(meta["vddi_values"], dtype=float),
        vddo_values=np.asarray(meta["vddo_values"], dtype=float))


def surface_from_resultset(resultset: ResultSet,
                           grid: SweepGrid | None = None) -> DelaySurface:
    """Assemble the classic surface type from typed engine rows."""
    grid = grid or grid_from_resultset(resultset)
    shape = (grid.vddi_values.size, grid.vddo_values.size)
    rise = np.full(shape, np.nan)
    fall = np.full(shape, np.nan)
    functional = np.zeros(shape, dtype=bool)
    failures: list[SampleFailure] = []
    for row in resultset.rows:
        i, j = row.index
        if not row.ok:
            failures.append(row.failure())
            continue
        q = row.value
        rise[i, j] = q.delay_rise
        fall[i, j] = q.delay_fall
        functional[i, j] = q.functional
    return DelaySurface(grid.vddi_values.copy(), grid.vddo_values.copy(),
                        rise, fall, functional, failures=failures,
                        run_id=resultset.run_id)


def sweep_delay_surface(kind: str, grid: SweepGrid | None = None,
                        pdk: Pdk | None = None, sizing=None,
                        progress=None, workers: int = 1,
                        chunk_size: int | None = None,
                        resume: ResultSet | None = None,
                        store=None,
                        run_id: str | None = None,
                        cache=None) -> DelaySurface:
    """Run :func:`quick_delays` over the grid; returns the surfaces.

    ``workers > 1`` distributes grid cells over a process pool; cell
    results are identical to a serial run, but ``progress`` fires in
    completion order (with the cell indices attached) rather than
    row-major order. ``store`` persists the run; ``resume`` accepts a
    result set reloaded from the artifact store and fills in only the
    missing cells.
    """
    grid = grid or SweepGrid()
    spec = sweep_spec(kind, grid, pdk=pdk, sizing=sizing, workers=workers,
                      chunk_size=chunk_size)
    engine_progress = None
    if progress is not None:
        def engine_progress(index, q):
            progress(index[0], index[1], q)
    resultset = run_experiment(spec, progress=engine_progress,
                               resume=resume, store=store, run_id=run_id,
                               cache=cache)
    return surface_from_resultset(resultset, grid)


def render_surface_ascii(surface: DelaySurface, which: str = "rise",
                         width: int = 6) -> str:
    """Text rendering of a delay surface in picoseconds (for benches)."""
    data = surface.rise if which == "rise" else surface.fall
    header = "VDDI\\VDDO " + " ".join(
        f"{v:>{width}.2f}" for v in surface.vddo_values)
    lines = [header]
    for i, vddi in enumerate(surface.vddi_values):
        cells = " ".join(
            f"{data[i, j] * 1e12:>{width}.1f}" if np.isfinite(data[i, j])
            else " " * (width - 4) + "FAIL"
            for j in range(surface.vddo_values.size))
        lines.append(f"{vddi:>9.2f} {cells}")
    return "\n".join(lines)
