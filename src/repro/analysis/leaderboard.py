"""Standing cell x node x corner leaderboard.

``repro bench --leaderboard`` characterizes every registered cell on
every registered PDK node at every process corner (each node's
canonical up-shift pair) and folds the results into one versioned
artifact: the six metrics per (cell, node, corner), plus per
(cell, node) the estimated area and the minimum detectable input
supply (the lowest VDDI the cell still converts from, found by a
descending scan at the typical corner).

The artifact is a plain dict (schema ``repro-leaderboard-v1``) written
atomically by :func:`write_leaderboard`; re-running against an
existing file bumps its ``version`` so trend diffs are first-class.
Because cells and nodes come from the registries, a third-party
topology or node registered at import time appears on the next
leaderboard run with no changes here.
"""

from __future__ import annotations

import json
import os

from repro.cells.registry import cell_names, get_cell
from repro.core.characterize import StimulusPlan, characterize
from repro.core.metrics import METRIC_FIELDS
from repro.errors import AnalysisError
from repro.pdk import CornerPdk
from repro.pdk.corners import CORNER_SHIFTS
from repro.pdk.registry import get_node, node_fingerprint, node_names
from repro.units import format_eng

#: Artifact schema tag.
LEADERBOARD_SCHEMA = "repro-leaderboard-v1"

#: All registered corners, typical first (stable render order).
DEFAULT_CORNERS = ("tt",) + tuple(
    c for c in sorted(CORNER_SHIFTS) if c != "tt")

#: Granularity of the minimum-detectable-input scan [V].
MIN_VDDI_STEP = 0.05


def _min_detectable_vddi(cell: str, node, plan, step: float) -> float:
    """Lowest VDDI (typical corner) the cell still converts from.

    Scans downward from the node's canonical VDDI until conversion
    fails (well below the rated range — this is the discriminating
    figure for sense-amplifier-style cells); returns the last
    functional supply, or NaN if even the canonical pair fails.
    """
    vddo = float(node.default_pair[1])
    best = float("nan")
    vddi = float(node.default_pair[0])
    floor = step - 1e-12
    while vddi >= floor:
        try:
            metrics = characterize(CornerPdk("tt", node=node.name),
                                   cell, vddi, vddo, plan=plan)
        except Exception:
            break
        if not metrics.functional:
            break
        best = vddi
        vddi = round(vddi - step, 6)
    return best


def _cell_area(cell: str, node_name: str):
    """(area_um2, device_count) from the registry's area probe."""
    from repro.layout import estimate_cell_area
    from repro.pdk.registry import make_pdk
    spec = get_cell(cell)
    if spec.area_probe is None:
        return float("nan"), spec.device_count
    est = estimate_cell_area(spec.area_probe, make_pdk(node_name))
    return est.total_area_um2, est.device_count


def build_leaderboard(cells=None, nodes=None, corners=None,
                      plan: StimulusPlan | None = None,
                      min_vddi_step: float = MIN_VDDI_STEP,
                      progress=None) -> dict:
    """Characterize cells x nodes x corners into the artifact dict.

    Args default to *everything registered*; pass subsets to scope a
    quick look. ``progress`` is an optional ``(label) -> None`` hook
    fired before each (cell, node, corner) characterization.
    """
    cells = tuple(cells) if cells else cell_names()
    nodes = tuple(nodes) if nodes else node_names()
    corners = tuple(corners) if corners else DEFAULT_CORNERS
    for corner in corners:
        if corner not in CORNER_SHIFTS:
            raise AnalysisError(
                f"unknown corner {corner!r}; known corners: "
                f"{', '.join(sorted(CORNER_SHIFTS))}")
    unknown_cells = [c for c in cells if c not in cell_names()]
    if unknown_cells:
        get_cell(unknown_cells[0])  # raises with the live listing

    node_info = {}
    for name in nodes:
        node = get_node(name)  # raises with the live listing
        node_info[name] = {
            "fingerprint": node_fingerprint(name),
            "vddi": float(node.default_pair[0]),
            "vddo": float(node.default_pair[1]),
            "vdd_min": node.vdd_min,
            "vdd_max": node.vdd_max,
            "description": node.description,
        }

    entries = []
    summaries = {}
    for name in nodes:
        node = get_node(name)
        vddi, vddo = (float(v) for v in node.default_pair)
        for cell in cells:
            for corner in corners:
                if progress is not None:
                    progress(f"{cell}@{name}/{corner}")
                entry = {"cell": cell, "node": name, "corner": corner,
                         "vddi": vddi, "vddo": vddo}
                try:
                    metrics = characterize(
                        CornerPdk(corner, node=name), cell, vddi, vddo,
                        plan=plan)
                except Exception as exc:
                    entry["error"] = f"{type(exc).__name__}: {exc}"
                    entry["functional"] = False
                else:
                    for field in METRIC_FIELDS:
                        entry[field] = getattr(metrics, field)
                    entry["functional"] = bool(metrics.functional)
                entries.append(entry)
            if progress is not None:
                progress(f"{cell}@{name} area / min-VDDI scan")
            area, devices = _cell_area(cell, name)
            summaries[f"{cell}@{name}"] = {
                "cell": cell, "node": name,
                "area_um2": area, "device_count": devices,
                "min_detectable_vddi": _min_detectable_vddi(
                    cell, node, plan, min_vddi_step),
                "provenance": get_cell(cell).provenance,
            }

    return {
        "schema": LEADERBOARD_SCHEMA,
        "version": 1,
        "cells": list(cells),
        "nodes": node_info,
        "corners": list(corners),
        "entries": entries,
        "summaries": summaries,
    }


def rank_leaderboard(board: dict, node: str,
                     metric: str = "delay_rise") -> list:
    """Typical-corner ranking of one node's functional cells."""
    if metric not in METRIC_FIELDS:
        raise AnalysisError(f"unknown metric {metric!r}")
    rows = [e for e in board["entries"]
            if e["node"] == node and e["corner"] == "tt"
            and e.get("functional")]
    return sorted(rows, key=lambda e: e[metric])


def render_leaderboard(board: dict) -> str:
    """Text tables: per node, typical-corner metrics plus worst-corner
    delay spread, area and the min-VDDI scan result."""
    lines = []
    for name, info in board["nodes"].items():
        lines.append(f"node {name}: {info['vddi']:g} V -> "
                     f"{info['vddo']:g} V  [{info['fingerprint']}]")
        lines.append(
            f"  {'cell':<11s} {'d_rise':>9s} {'d_fall':>9s} "
            f"{'power':>9s} {'leak_hi':>9s} {'worst_d':>9s} "
            f"{'area':>7s} {'minVDDI':>8s} {'func':>4s}")
        for entry in rank_leaderboard(board, name):
            cell = entry["cell"]
            cell_entries = [e for e in board["entries"]
                            if e["node"] == name and e["cell"] == cell
                            and e.get("functional")]
            worst = max((max(e["delay_rise"], e["delay_fall"])
                         for e in cell_entries), default=float("nan"))
            summary = board["summaries"][f"{cell}@{name}"]
            min_vddi = summary["min_detectable_vddi"]
            lines.append(
                f"  {cell:<11s} "
                f"{format_eng(entry['delay_rise'], 's', 3):>9s} "
                f"{format_eng(entry['delay_fall'], 's', 3):>9s} "
                f"{format_eng(entry['power_rise'], 'W', 3):>9s} "
                f"{format_eng(entry['leakage_high'], 'A', 3):>9s} "
                f"{format_eng(worst, 's', 3):>9s} "
                f"{summary['area_um2']:>6.2f} "
                f"{min_vddi:>7.2f}V "
                f"{len(cell_entries):>3d}c")
        broken = sorted({e["cell"] for e in board["entries"]
                         if e["node"] == name and not e.get("functional")})
        if broken:
            lines.append(f"  non-functional corners on: "
                         f"{', '.join(broken)}")
        lines.append("")
    return "\n".join(lines).rstrip()


def write_leaderboard(board: dict, path: str) -> dict:
    """Atomically write the artifact, bumping ``version`` over any
    existing file at ``path``; returns the written dict."""
    previous_version = 0
    if os.path.exists(path):
        try:
            with open(path) as handle:
                previous = json.load(handle)
            previous_version = int(previous.get("version", 0))
        except (OSError, ValueError):
            previous_version = 0
    board = dict(board)
    board["version"] = previous_version + 1
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(board, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return board


def load_leaderboard(path: str) -> dict:
    """Read an artifact back, validating its schema tag."""
    with open(path) as handle:
        board = json.load(handle)
    if board.get("schema") != LEADERBOARD_SCHEMA:
        raise AnalysisError(
            f"{path} is not a leaderboard artifact "
            f"(schema {board.get('schema')!r})")
    return board
