"""Full-grid functional validation (paper Section 4).

"We varied VDDI and VDDO voltage values from 0.8V to 1.4V ... and
simulated our SS-TVS for all VDDI and VDDO combinations. Our SS-TVS
was able to translate the voltage level efficiently for all
combinations."

:func:`validate_functionality` re-runs that claim on a configurable
grid and returns the failing pairs (expected: none for the SS-TVS).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sweep import SweepGrid
from repro.core.characterize import quick_delays
from repro.pdk import Pdk
from repro.runtime.campaign import SampleFailure
from repro.runtime.parallel import parallel_map


@dataclass
class FunctionalReport:
    kind: str
    total: int = 0
    passed: int = 0
    failures: list = field(default_factory=list)
    #: Pairs whose simulation escaped the solver's retry ladder (also
    #: counted in ``failures`` as non-converting).
    solver_escapes: list = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total and self.total > 0

    def summary(self) -> str:
        status = "PASS" if self.all_passed else "FAIL"
        text = (f"[{status}] {self.kind}: {self.passed}/{self.total} "
                f"(VDDI, VDDO) pairs convert correctly")
        if self.failures:
            pairs = ", ".join(f"({a:.2f}, {b:.2f})" for a, b in
                              self.failures[:10])
            text += f"; failing pairs: {pairs}"
            if len(self.failures) > 10:
                text += f" (+{len(self.failures) - 10} more)"
        if self.solver_escapes:
            text += (f"; {len(self.solver_escapes)} pair(s) quarantined "
                     f"after solver escape")
        return text


def _pair_worker(task: tuple):
    """Validate one (VDDI, VDDO) pair; shared by serial and pool paths."""
    order, vddi, vddo, kind, pdk, sizing = task
    try:
        q = quick_delays(pdk, kind, vddi, vddo, sizing=sizing)
    except Exception as exc:
        return ("err", order, vddi, vddo,
                f"{type(exc).__name__}: {exc}")
    return ("ok", order, vddi, vddo, q.functional)


def validate_functionality(kind: str, grid: SweepGrid | None = None,
                           pdk: Pdk | None = None, sizing=None,
                           workers: int = 1,
                           chunk_size: int | None = None
                           ) -> FunctionalReport:
    """Check correct level conversion at every grid point.

    ``workers > 1`` distributes pairs over a process pool; the report
    is identical to a serial run (results are re-sorted into row-major
    grid order before accounting).
    """
    grid = grid or SweepGrid.with_step(0.1)
    pdk = pdk or Pdk()
    report = FunctionalReport(kind=kind)
    tasks = [(order, float(vddi), float(vddo), kind, pdk, sizing)
             for order, (vddi, vddo) in enumerate(
                 (vi, vo) for vi in grid.vddi_values
                 for vo in grid.vddo_values)]
    outcomes = sorted(
        parallel_map(_pair_worker, tasks, workers=workers,
                     chunk_size=chunk_size),
        key=lambda o: o[1])
    for outcome in outcomes:
        report.total += 1
        if outcome[0] == "err":
            _, _, vddi, vddo, message = outcome
            report.failures.append((vddi, vddo))
            report.solver_escapes.append(SampleFailure(
                index=(vddi, vddo), stage="quick_delays", error=message))
            continue
        _, _, vddi, vddo, functional = outcome
        if functional:
            report.passed += 1
        else:
            report.failures.append((vddi, vddo))
    return report
