"""Full-grid functional validation (paper Section 4).

"We varied VDDI and VDDO voltage values from 0.8V to 1.4V ... and
simulated our SS-TVS for all VDDI and VDDO combinations. Our SS-TVS
was able to translate the voltage level efficiently for all
combinations."

:func:`validate_functionality` re-runs that claim on a configurable
grid and returns the failing pairs (expected: none for the SS-TVS).
The driver is a thin spec builder over the unified experiment engine:
:func:`functional_spec` enumerates the pairs, the engine runs them,
and :func:`report_from_resultset` folds the rows into a
:class:`FunctionalReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sweep import SweepGrid
from repro.core.characterize import quick_delays, quick_delays_batch
from repro.pdk import Pdk
from repro.runtime.campaign import SampleFailure
from repro.runtime.experiment import (
    BatchPointFailure, ExperimentPoint, ExperimentSpec, ResultSet,
    run_experiment,
)

#: Experiment name shared by specs, result sets, and stored manifests.
EXPERIMENT_NAME = "functional"


@dataclass
class FunctionalReport:
    kind: str
    total: int = 0
    passed: int = 0
    failures: list = field(default_factory=list)
    #: Pairs whose simulation escaped the solver's retry ladder (also
    #: counted in ``failures`` as non-converting).
    solver_escapes: list = field(default_factory=list)
    #: Artifact-store run id, when the campaign was persisted.
    run_id: str | None = None

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total and self.total > 0

    def summary(self) -> str:
        status = "PASS" if self.all_passed else "FAIL"
        text = (f"[{status}] {self.kind}: {self.passed}/{self.total} "
                f"(VDDI, VDDO) pairs convert correctly")
        if self.failures:
            pairs = ", ".join(f"({a:.2f}, {b:.2f})" for a, b in
                              self.failures[:10])
            text += f"; failing pairs: {pairs}"
            if len(self.failures) > 10:
                text += f" (+{len(self.failures) - 10} more)"
        if self.solver_escapes:
            text += (f"; {len(self.solver_escapes)} pair(s) quarantined "
                     f"after solver escape")
        return text


def _measure(params: tuple) -> bool:
    """Validate one (VDDI, VDDO) pair; shared by serial and pool paths."""
    vddi, vddo, kind, pdk, sizing = params
    q = quick_delays(pdk, kind, vddi, vddo, sizing=sizing)
    return bool(q.functional)


def _batch_measure(params_list: list) -> list:
    """Validate many (VDDI, VDDO) pairs as SPMD lanes in one call."""
    lanes = [(pdk, kind, vddi, vddo, 3.0e-9, 2.5e-9, sizing)
             for vddi, vddo, kind, pdk, sizing in params_list]
    return [q if isinstance(q, BatchPointFailure) else bool(q.functional)
            for q in quick_delays_batch(lanes)]


def functional_spec(kind: str, grid: SweepGrid | None = None,
                    pdk: Pdk | None = None, sizing=None,
                    workers: int = 1,
                    chunk_size: int | None = None,
                    backend: str | None = None,
                    batch_width: int = 128,
                    solver: str | None = None) -> ExperimentSpec:
    """Describe a functionality-validation campaign declaratively."""
    grid = grid or SweepGrid.with_step(0.1)
    pdk = pdk or Pdk()
    points = [ExperimentPoint((float(vddi), float(vddo)),
                              (float(vddi), float(vddo), kind, pdk,
                               sizing))
              for vddi in grid.vddi_values
              for vddo in grid.vddo_values]
    return ExperimentSpec(
        name=EXPERIMENT_NAME, measure=_measure, points=points,
        stage="quick_delays", codec="json",
        workers=workers, chunk_size=chunk_size,
        backend=backend, batch_measure=_batch_measure,
        batch_width=batch_width, solver=solver,
        metadata={"experiment": "functional", "kind": kind,
                  "pairs": len(points),
                  "pdk_node": getattr(pdk, "node", "ptm90")})


def report_from_resultset(resultset: ResultSet,
                          kind: str | None = None) -> FunctionalReport:
    """Assemble the classic report type from typed engine rows."""
    report = FunctionalReport(
        kind=kind if kind is not None
        else resultset.metadata.get("kind", "?"),
        run_id=resultset.run_id)
    for row in resultset.rows:
        report.total += 1
        vddi, vddo = row.index
        if not row.ok:
            report.failures.append((vddi, vddo))
            report.solver_escapes.append(row.failure())
            continue
        if row.value:
            report.passed += 1
        else:
            report.failures.append((vddi, vddo))
    return report


def validate_functionality(kind: str, grid: SweepGrid | None = None,
                           pdk: Pdk | None = None, sizing=None,
                           workers: int = 1,
                           chunk_size: int | None = None,
                           backend: str | None = None,
                           batch_width: int = 128,
                           solver: str | None = None,
                           resume: ResultSet | None = None,
                           store=None,
                           run_id: str | None = None,
                           cache=None) -> FunctionalReport:
    """Check correct level conversion at every grid point.

    ``workers > 1`` distributes pairs over a process pool;
    ``backend="batched"`` stacks pairs into SPMD lanes instead (and
    with ``workers > 1`` runs sharded-batched). The report is identical
    to a serial run either way (rows come back in row-major grid order,
    and batched lane waveforms are bitwise the serial ones);
    ``solver`` picks the linear kernel without entering the cache key.
    """
    spec = functional_spec(kind, grid, pdk=pdk, sizing=sizing,
                           workers=workers, chunk_size=chunk_size,
                           backend=backend, batch_width=batch_width,
                           solver=solver)
    resultset = run_experiment(spec, resume=resume, store=store,
                               run_id=run_id, cache=cache)
    return report_from_resultset(resultset, kind=kind)
