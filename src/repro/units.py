"""SI-suffix number parsing and engineering-notation formatting.

SPICE netlists and circuit literature use suffixed numbers such as ``1n``
(nano), ``2.5meg`` (mega), or ``0.12u`` (micro). This module converts those
strings to floats and formats floats back into readable engineering
notation for reports and tables.

The suffix set follows SPICE conventions, so ``m`` is *milli* and ``meg``
is *mega* (case-insensitive). Trailing unit names after the suffix (for
example ``10pF`` or ``1.2ns``) are tolerated and ignored, as in SPICE.
"""

from __future__ import annotations

import math
import re

from repro.errors import NetlistError

#: SPICE magnitude suffixes, longest first so ``meg``/``mil`` win over ``m``.
_SUFFIXES = (
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
)

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Z%]*)\s*$"
)


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style suffixed number into a float.

    Accepts plain numbers (``"1e-9"``), suffixed numbers (``"1n"``,
    ``"2.5MEG"``), suffixed numbers with trailing unit letters
    (``"10pF"``, ``"0.5ns"``), and numeric types (returned as float).

    Raises:
        NetlistError: if ``text`` is not a recognizable number.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if match is None:
        raise NetlistError(f"cannot parse numeric value {text!r}")
    mantissa = float(match.group(1))
    tail = match.group(2).lower()
    if not tail:
        return mantissa
    for suffix, scale in _SUFFIXES:
        if tail.startswith(suffix):
            return mantissa * scale
    # A bare unit such as "V" or "F" with no magnitude suffix.
    if tail.isalpha() or tail == "%":
        if tail == "%":
            return mantissa * 1e-2
        return mantissa
    raise NetlistError(f"cannot parse numeric value {text!r}")


#: Engineering prefixes; 1e6 is spelled ``meg`` because SPICE parsing
#: is case-insensitive and a bare ``M`` would read back as milli.
_ENG_PREFIXES = {
    -18: "a", -15: "f", -12: "p", -9: "n", -6: "u", -3: "m",
    0: "", 3: "k", 6: "meg", 9: "G", 12: "T",
}


def format_eng(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` in engineering notation with an SI prefix.

    >>> format_eng(2.2e-11, "F")
    '22pF'
    >>> format_eng(0.0, "V")
    '0V'
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g}{unit}"
    exponent = int(math.floor(math.log10(abs(value)) / 3.0) * 3)
    exponent = max(-18, min(12, exponent))
    scaled = value / 10.0 ** exponent
    text = f"{scaled:.{digits}g}"
    return f"{text}{_ENG_PREFIXES[exponent]}{unit}"


def format_si_table(value: float, unit: str) -> str:
    """Format a value for result tables: three significant digits plus unit."""
    return format_eng(value, unit, digits=3)
