"""Deterministic fault injection for the solver stack.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers the
solvers consult at well-defined points: the Newton loop asks before
each iteration (``singular_jacobian`` / ``nan_residual`` /
``iteration_exhaustion``), the transient engine asks before each step
(``timestep_stall``), and campaign drivers ask before each sample
(``sample_failure``). Everything is counter-based and seedless, so a
fault at sample 42 fires at sample 42 — every run, which is what makes
the fallback ladder and the quarantine paths *testable*.

Plans can be threaded explicitly (``solve_dc(..., faults=plan)``) or
activated ambiently for a region of code::

    with inject(plan):
        run_monte_carlo(...)

Injected faults are forced at the *mechanism* level where possible (the
Jacobian really is singular, the residual really is NaN) so the genuine
error-handling paths run, not shortcuts around them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import AnalysisError

#: Faults drawn inside the Newton iteration.
SOLVE_FAULT_KINDS = ("singular_jacobian", "nan_residual",
                     "iteration_exhaustion")

#: Chaos faults drawn by the storage and scheduling layers (the solve
#: cache, the campaign service, and their journals):
#:
#: * ``worker_crash`` — a service chunk worker dies mid-chunk. The
#:   ``strategy`` field selects the failure mode: ``"kill"`` (default
#:   when unset: SIGKILL-style ``os._exit`` after half the chunk),
#:   ``"hang"`` (stop heartbeating so the watchdog must intervene) or
#:   ``"torn"`` (die halfway through writing a result line, leaving a
#:   torn record for the salvager).
#: * ``cache_corrupt`` — flip one byte of a cache entry *after* it has
#:   been committed (bitrot / torn overwrite); the next read must
#:   quarantine it.
#: * ``cache_torn_write`` — crash between writing the temp file and the
#:   atomic rename: the temp is left behind, the entry never becomes
#:   visible.
#: * ``stale_lock`` — a previous writer "crashed" holding the cache
#:   lock: a lock file with a mismatched process start-time is planted
#:   so the reclaim path has to run.
#: * ``journal_disk_full`` — one journal append fails with ENOSPC; the
#:   journal must degrade (keep serving, stop persisting) instead of
#:   failing the campaign.
CHAOS_FAULT_KINDS = ("worker_crash", "cache_corrupt", "cache_torn_write",
                     "stale_lock", "journal_disk_full")

#: All recognised fault kinds.
FAULT_KINDS = (SOLVE_FAULT_KINDS + ("timestep_stall", "sample_failure")
               + CHAOS_FAULT_KINDS)

_UNSET = object()


@dataclass
class FaultSpec:
    """One deterministic trigger.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        strategy: restrict to one retry-ladder strategy (``"newton"``,
            ``"gmin"``, ``"source"``, ``"transient"``); None = any.
        sample_index: restrict to one campaign sample index; None = any
            (a spec with a sample_index never fires outside a campaign
            sample scope).
        time_window: restrict to transient times ``(t0, t1)``; None =
            any (a spec with a window never fires on time-less solves).
        count: how many times the spec may fire; None = unlimited.
    """

    kind: str
    strategy: str | None = None
    sample_index: int | None = None
    time_window: tuple[float, float] | None = None
    count: int | None = 1
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise AnalysisError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.count is not None and self.count < 1:
            raise AnalysisError("fault count must be >= 1 or None")

    @property
    def exhausted(self) -> bool:
        return self.count is not None and self.fired >= self.count

    def matches(self, fault_kind: str, strategy: str | None,
                sample: int | None, time: float | None) -> bool:
        if fault_kind != self.kind or self.exhausted:
            return False
        if self.strategy is not None and strategy != self.strategy:
            return False
        if self.sample_index is not None and sample != self.sample_index:
            return False
        if self.time_window is not None:
            if time is None:
                return False
            t0, t1 = self.time_window
            if not t0 <= time <= t1:
                return False
        return True


@dataclass
class FaultEvent:
    """Log entry for one fired fault."""

    kind: str
    strategy: str | None
    sample: int | None
    time: float | None

    def describe(self) -> str:
        parts = [self.kind]
        if self.strategy is not None:
            parts.append(f"strategy={self.strategy}")
        if self.sample is not None:
            parts.append(f"sample={self.sample}")
        if self.time is not None:
            parts.append(f"t={self.time:.3e}")
        return " ".join(parts)


class FaultPlan:
    """An ordered set of fault triggers plus a log of what fired."""

    def __init__(self, specs=()):
        self.specs: list[FaultSpec] = list(specs)
        self.log: list[FaultEvent] = []
        self._sample: int | None = None

    @classmethod
    def fail_samples(cls, indices) -> "FaultPlan":
        """Plan that hard-fails the given campaign sample indices."""
        return cls(FaultSpec("sample_failure", sample_index=int(i))
                   for i in indices)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def fires(self, kind: str, strategy: str | None = None,
              time: float | None = None, sample=_UNSET) -> bool:
        """Consume and log the first matching spec, if any."""
        current = self._sample if sample is _UNSET else sample
        for spec in self.specs:
            if spec.matches(kind, strategy, current, time):
                spec.fired += 1
                self.log.append(FaultEvent(kind, strategy, current, time))
                return True
        return False

    def draw_solve(self, strategy: str,
                   time: float | None = None) -> str | None:
        """The solve-level fault to apply this Newton call, if any."""
        for kind in SOLVE_FAULT_KINDS:
            if self.fires(kind, strategy=strategy, time=time):
                return kind
        return None

    @contextmanager
    def sample_scope(self, index: int):
        """Attribute faults fired inside the block to sample ``index``."""
        previous = self._sample
        self._sample = int(index)
        try:
            yield self
        finally:
            self._sample = previous

    def reset(self) -> None:
        """Re-arm all specs and clear the log (for campaign re-runs)."""
        for spec in self.specs:
            spec.fired = 0
        self.log.clear()
        self._sample = None

    @property
    def fired_count(self) -> int:
        return len(self.log)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultPlan {len(self.specs)} specs, "
                f"{self.fired_count} fired>")


#: Ambient plan stack managed by :func:`inject`.
_ACTIVE: list[FaultPlan] = []


def active_plan() -> FaultPlan | None:
    """The innermost ambiently injected plan, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def inject(plan: FaultPlan | None):
    """Activate ``plan`` for every solve inside the block.

    ``inject(None)`` is a no-op context, which lets callers write
    ``with inject(config.faults):`` without a conditional.
    """
    if plan is None:
        yield None
        return
    _ACTIVE.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE.pop()
