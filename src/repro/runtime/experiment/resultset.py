"""Typed result sets with a stable, versioned JSON schema.

A :class:`ResultSet` is the engine's output: one :class:`ResultRow` per
campaign point, either ``ok`` (carrying the measured payload) or
``err`` (carrying the quarantine stage and error text). Rows are kept
in the spec's canonical point order so drivers can assemble their
legacy report types deterministically.

Serialization is codec-based. A codec converts one payload type to and
from a JSON-representable dict; the codec *name* is recorded in the
result set (and in the artifact manifest) so a stored run can be
decoded without knowing which driver produced it. Floats round-trip
bitwise: ``json`` emits ``repr``-shortest forms that parse back to the
identical IEEE-754 double, and NaN/Infinity use the non-strict JSON
literals Python's ``json`` accepts by default.

Codecs for repro's own payload types (``metrics``, ``quick_delays``,
``vtc``, ``sensitivity``) are registered here but import their
dataclasses lazily inside the decode functions — the runtime package
must stay importable before :mod:`repro.core` (the solver stack imports
:mod:`repro.runtime` first).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.runtime.campaign import SampleFailure

#: Version tag for the row schema; bump when the row format changes.
RESULTSET_SCHEMA = "repro-resultset-v1"


# ---------------------------------------------------------------------------
# Payload codecs


_CODECS: dict[str, tuple] = {}


def register_codec(name: str, encode, decode) -> None:
    """Register a payload codec.

    Args:
        name: codec identifier stored in result sets and manifests.
        encode: ``payload -> JSON-serializable`` (called when writing).
        decode: ``JSON value -> payload`` (called when loading).

    Names are first-come: re-registering raises (a silent overwrite
    would re-interpret every stored artifact using that codec).
    """
    if name in _CODECS:
        raise AnalysisError(f"codec {name!r} is already registered")
    _CODECS[name] = (encode, decode)


def get_codec(name: str):
    try:
        return _CODECS[name]
    except KeyError:
        raise AnalysisError(
            f"unknown result codec {name!r}; registered: "
            f"{', '.join(sorted(_CODECS))}") from None


def _identity(value):
    return value


METRIC_PAYLOAD_FIELDS = (
    "delay_rise", "delay_fall", "power_rise", "power_fall",
    "leakage_high", "leakage_low",
)


def _encode_metrics(metrics) -> dict:
    payload = {name: float(getattr(metrics, name))
               for name in METRIC_PAYLOAD_FIELDS}
    payload["functional"] = bool(metrics.functional)
    return payload


def _decode_metrics(payload: dict):
    from repro.core.metrics import ShifterMetrics
    return ShifterMetrics(**{name: payload[name]
                             for name in METRIC_PAYLOAD_FIELDS},
                          functional=bool(payload["functional"]))


def _encode_quick_delays(q) -> dict:
    return {"delay_rise": float(q.delay_rise),
            "delay_fall": float(q.delay_fall),
            "functional": bool(q.functional)}


def _decode_quick_delays(payload: dict):
    from repro.core.characterize import QuickDelays
    return QuickDelays(delay_rise=payload["delay_rise"],
                       delay_fall=payload["delay_fall"],
                       functional=bool(payload["functional"]))


def _encode_vtc(vtc) -> dict:
    return {
        "vin": [float(v) for v in vtc.vin],
        "vout": [float(v) for v in vtc.vout],
        "vddi": float(vtc.vddi), "vddo": float(vtc.vddo),
        "inverting": bool(vtc.inverting),
        "voh": float(vtc.voh), "vol": float(vtc.vol),
        "vil": float(vtc.vil), "vih": float(vtc.vih),
        "switching_point": float(vtc.switching_point),
    }


def _decode_vtc(payload: dict):
    import numpy as np

    from repro.analysis.noise_margin import VtcResult
    return VtcResult(vin=np.asarray(payload["vin"], dtype=float),
                     vout=np.asarray(payload["vout"], dtype=float),
                     vddi=payload["vddi"], vddo=payload["vddo"],
                     inverting=bool(payload["inverting"]),
                     voh=payload["voh"], vol=payload["vol"],
                     vil=payload["vil"], vih=payload["vih"],
                     switching_point=payload["switching_point"])


def _encode_sensitivity(sens) -> dict:
    return {"knob": sens.knob, "nominal": float(sens.nominal),
            "values": {k: float(v) for k, v in sens.values.items()}}


def _decode_sensitivity(payload: dict):
    from repro.analysis.sensitivity import Sensitivity
    return Sensitivity(knob=payload["knob"], nominal=payload["nominal"],
                       values=dict(payload["values"]))


#: ``json`` — payloads already JSON-representable (bools, floats, dicts).
register_codec("json", _identity, _identity)
#: ``none`` — payloads are not persisted (manifest-only artifacts).
register_codec("none", lambda value: None, lambda payload: None)
register_codec("metrics", _encode_metrics, _decode_metrics)
register_codec("quick_delays", _encode_quick_delays, _decode_quick_delays)
register_codec("vtc", _encode_vtc, _decode_vtc)
register_codec("sensitivity", _encode_sensitivity, _decode_sensitivity)


def _decode_index(value):
    """JSON indices: lists (tuples before serialization) become tuples."""
    if isinstance(value, list):
        return tuple(_decode_index(item) for item in value)
    return value


# ---------------------------------------------------------------------------
# Rows and result sets


@dataclass
class ResultRow:
    """One campaign point's outcome.

    Attributes:
        ordinal: position in the spec's canonical point order (rows are
            sorted by it, so assembly order is deterministic).
        index: the point's identity (see :class:`ExperimentPoint`).
        status: ``"ok"`` or ``"err"``.
        value: the measured payload (``ok`` rows only).
        stage: where an ``err`` row died.
        error: one-line failure description (``err`` rows only).
    """

    ordinal: int
    index: object
    status: str
    value: object | None = None
    stage: str | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def failure(self) -> SampleFailure:
        return SampleFailure(index=self.index, stage=self.stage or "",
                             error=self.error or "")


@dataclass
class ResultSet:
    """All rows of one campaign run, in canonical order."""

    name: str
    codec: str = "json"
    schema: str = RESULTSET_SCHEMA
    metadata: dict = field(default_factory=dict)
    rows: list[ResultRow] = field(default_factory=list)
    interrupted: bool = False
    #: Set when the run was written to / loaded from an artifact store.
    run_id: str | None = None
    #: Aggregated ``repro-trace-v1`` document when the campaign ran with
    #: tracing enabled (see :mod:`repro.runtime.telemetry`); None
    #: otherwise. Persisted in the artifact manifest's ``trace`` section.
    trace: dict | None = None

    # -- accessors ---------------------------------------------------------

    def ok_rows(self) -> list[ResultRow]:
        return [row for row in self.rows if row.ok]

    def err_rows(self) -> list[ResultRow]:
        return [row for row in self.rows if not row.ok]

    def values(self) -> list:
        """Payloads of the successful rows, in canonical order."""
        return [row.value for row in self.rows if row.ok]

    def value_by_index(self) -> dict:
        return {row.index: row.value for row in self.rows if row.ok}

    def sample_failures(self) -> list[SampleFailure]:
        """Quarantined rows as campaign :class:`SampleFailure` records."""
        return [row.failure() for row in self.rows if not row.ok]

    @property
    def counts(self) -> dict:
        ok = sum(1 for row in self.rows if row.ok)
        return {"total": len(self.rows), "ok": ok,
                "err": len(self.rows) - ok,
                "interrupted": self.interrupted}

    # -- serialization -----------------------------------------------------

    def encoded_rows(self) -> list[dict]:
        encode, _ = get_codec(self.codec)
        out = []
        for row in self.rows:
            record = {"ordinal": row.ordinal, "index": row.index,
                      "status": row.status}
            if row.ok:
                record["value"] = encode(row.value)
            else:
                record["stage"] = row.stage
                record["error"] = row.error
            out.append(record)
        return out

    def to_json(self) -> dict:
        """Full JSON document (schema + rows); see also ArtifactStore."""
        document = {"schema": self.schema, "name": self.name,
                    "codec": self.codec, "metadata": self.metadata,
                    "interrupted": self.interrupted,
                    "rows": self.encoded_rows()}
        if self.trace is not None:
            document["trace"] = self.trace
        return document

    @classmethod
    def from_json(cls, document: dict) -> "ResultSet":
        schema = document.get("schema")
        if schema != RESULTSET_SCHEMA:
            raise AnalysisError(
                f"unsupported result-set schema {schema!r} "
                f"(expected {RESULTSET_SCHEMA})")
        codec = document.get("codec", "json")
        _, decode = get_codec(codec)
        rows = []
        for record in document.get("rows", ()):
            row = ResultRow(ordinal=int(record["ordinal"]),
                            index=_decode_index(record["index"]),
                            status=record["status"])
            if row.ok:
                row.value = decode(record.get("value"))
            else:
                row.stage = record.get("stage")
                row.error = record.get("error")
            rows.append(row)
        rows.sort(key=lambda row: row.ordinal)
        return cls(name=document["name"], codec=codec,
                   metadata=dict(document.get("metadata", {})),
                   rows=rows,
                   interrupted=bool(document.get("interrupted", False)),
                   trace=document.get("trace"))

    # -- display -----------------------------------------------------------

    def pretty(self, limit: int = 20) -> str:
        counts = self.counts
        head = (f"{self.name}: {counts['total']} rows "
                f"({counts['ok']} ok, {counts['err']} quarantined)"
                + (", INTERRUPTED" if self.interrupted else ""))
        lines = [head]
        for row in self.rows[:limit]:
            if row.ok:
                text = repr(row.value)
                if len(text) > 64:
                    text = text[:61] + "..."
                lines.append(f"  {row.index!r}: {text}")
            else:
                lines.append(f"  {row.index!r}: [{row.stage}] {row.error}")
        if len(self.rows) > limit:
            lines.append(f"  (+{len(self.rows) - limit} more rows)")
        return "\n".join(lines)
