"""Unified experiment engine: declarative specs, typed results, artifacts.

The job-spec / executor / result-store architecture behind every
campaign in the repository:

* :class:`ExperimentSpec` / :class:`ExperimentPoint` — a declarative
  description of a campaign (parameter space + measurement function);
* :func:`run_experiment` — the one engine that executes specs with
  workers, quarantine, fault injection, Ctrl-C partials, and
  seed-stable resume;
* :class:`ResultSet` / :class:`ResultRow` — typed results with a
  stable, versioned JSON schema and pluggable payload codecs;
* :class:`ArtifactStore` — ``results/<run-id>/manifest.json`` +
  ``rows.jsonl`` persistence with full provenance (git sha, seed,
  retry policy, PDK fingerprint, worker count, wall time).

The analysis drivers in :mod:`repro.analysis` are thin spec builders
over this package; see EXPERIMENTS.md for how to add a new campaign.
"""

from repro.runtime.experiment.engine import run_experiment
from repro.runtime.experiment.resultset import (
    RESULTSET_SCHEMA, ResultRow, ResultSet, get_codec, register_codec,
)
from repro.runtime.experiment.spec import (
    BACKENDS, BatchPointFailure, ExperimentPoint, ExperimentSpec,
)
from repro.runtime.experiment.store import (
    DEFAULT_ROOT, MANIFEST_SCHEMA, ArtifactStore, collect_provenance,
    git_sha, pdk_fingerprint,
)

__all__ = [
    "ArtifactStore",
    "BACKENDS",
    "BatchPointFailure",
    "DEFAULT_ROOT",
    "ExperimentPoint",
    "ExperimentSpec",
    "MANIFEST_SCHEMA",
    "RESULTSET_SCHEMA",
    "ResultRow",
    "ResultSet",
    "collect_provenance",
    "get_codec",
    "git_sha",
    "pdk_fingerprint",
    "register_codec",
    "run_experiment",
]
