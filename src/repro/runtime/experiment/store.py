"""Provenance-tracked artifact store for experiment runs.

Layout (one directory per run under the store root, default
``results/``)::

    results/
      mc-20260806-143102/
        manifest.json     # schema, campaign metadata, provenance, counts
        rows.jsonl        # one JSON object per ResultRow, codec-encoded

The manifest records everything needed to trust, reproduce, or resume
the run:

* ``git_sha`` — the repository HEAD when the run was written (None
  outside a git checkout);
* ``seed`` — the campaign's master seed, when it has one;
* ``retry_policy`` — the solver escalation schedule as a plain dict;
* ``pdk_fingerprint`` — a hash over every model card the PDK can
  produce, so a stored run is falsifiable against model changes;
* ``workers`` / ``chunk_size`` / ``wall_s`` — how it was executed and
  how long it took;
* interpreter and library versions.

Runs executed with tracing enabled additionally carry the aggregated
``repro-trace-v1`` document in the manifest's ``trace`` section (see
:mod:`repro.runtime.telemetry`); ``repro trace <run-id>`` renders it.

``rows.jsonl`` is append-friendly and line-oriented: a truncated file
(killed run, full disk) loses only its tail, and
:meth:`ArtifactStore.load` returns the surviving prefix — which is
exactly what the engine's ``resume=`` argument wants.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import asdict
from datetime import datetime, timezone
from pathlib import Path

from repro.errors import AnalysisError
from repro.runtime.experiment.resultset import (
    RESULTSET_SCHEMA, ResultRow, ResultSet, _decode_index, get_codec,
)

#: Version tag for the manifest format; bump when fields change meaning.
MANIFEST_SCHEMA = "repro-manifest-v1"

MANIFEST_NAME = "manifest.json"
ROWS_NAME = "rows.jsonl"
#: Quarantine file for row lines that fail to parse (bit-flips,
#: interleaved partial writes); written next to ``rows.jsonl``.
ROWS_REJECTS_NAME = "rows.rejects.jsonl"

#: Default store root, relative to the working directory.
DEFAULT_ROOT = "results"


def git_sha() -> str | None:
    """HEAD commit of the enclosing git checkout, or None."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5.0, cwd=os.getcwd())
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def pdk_fingerprint(node: str = "ptm90") -> str:
    """Stable hash over every (polarity, flavor) model card of a node.

    Any change to the node's electrical parameters changes the
    fingerprint, so a stored run carries proof of which models produced
    it. Delegates to :func:`repro.pdk.registry.node_fingerprint`
    (imported lazily: the runtime package must stay importable from
    below :mod:`repro.pdk` in the dependency graph); the ``ptm90``
    digest is byte-compatible with the historical single-node one.
    """
    from repro.pdk.registry import node_fingerprint

    return node_fingerprint(node)


def collect_provenance(spec=None, wall_s: float | None = None) -> dict:
    """Provenance block for a manifest (see module docstring)."""
    import platform

    import numpy

    from repro.runtime.policy import RetryPolicy

    policy = getattr(spec, "retry_policy", None) or RetryPolicy.default()
    metadata = getattr(spec, "metadata", None) or {}
    pdk_node = str(metadata.get("pdk_node") or "ptm90")
    return {
        "git_sha": git_sha(),
        "seed": getattr(spec, "seed", None),
        "retry_policy": asdict(policy),
        "pdk_node": pdk_node,
        "pdk_fingerprint": pdk_fingerprint(pdk_node),
        "workers": getattr(spec, "workers", None),
        "chunk_size": getattr(spec, "chunk_size", None),
        "wall_s": wall_s,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "written_utc": datetime.now(timezone.utc).isoformat(),
    }


def _slug(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "-" for c in name.lower())
    while "--" in cleaned:
        cleaned = cleaned.replace("--", "-")
    return cleaned.strip("-") or "run"


class ArtifactStore:
    """Read/write experiment runs under one root directory."""

    def __init__(self, root: str | Path = DEFAULT_ROOT):
        self.root = Path(root)

    # -- paths -------------------------------------------------------------

    def path(self, run_id: str) -> Path:
        return self.root / run_id

    def _new_run_id(self, name: str) -> str:
        stamp = datetime.now(timezone.utc).strftime("%Y%m%d-%H%M%S")
        base = f"{_slug(name)}-{stamp}"
        run_id, n = base, 1
        while self.path(run_id).exists():
            n += 1
            run_id = f"{base}-{n}"
        return run_id

    # -- writing -----------------------------------------------------------

    def write(self, resultset: ResultSet, spec=None,
              wall_s: float | None = None,
              run_id: str | None = None) -> str:
        """Persist a run; returns its run id (also set on the result)."""
        run_id = run_id or resultset.run_id \
            or self._new_run_id(resultset.name)
        run_dir = self.path(run_id)
        run_dir.mkdir(parents=True, exist_ok=True)

        with open(run_dir / ROWS_NAME, "w") as handle:
            for record in resultset.encoded_rows():
                handle.write(json.dumps(record, sort_keys=True) + "\n")

        manifest = {
            "schema": MANIFEST_SCHEMA,
            "run_id": run_id,
            "name": resultset.name,
            "metadata": resultset.metadata,
            "provenance": collect_provenance(spec, wall_s),
            "counts": resultset.counts,
            "resultset": {"schema": resultset.schema,
                          "codec": resultset.codec,
                          "rows_file": ROWS_NAME},
        }
        if resultset.trace is not None:
            manifest["trace"] = resultset.trace
        with open(run_dir / MANIFEST_NAME, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")

        resultset.run_id = run_id
        return run_id

    # -- reading -----------------------------------------------------------

    def list_runs(self) -> list[dict]:
        """All manifests under the root, oldest first."""
        if not self.root.is_dir():
            return []
        manifests = []
        for entry in sorted(self.root.iterdir()):
            manifest_path = entry / MANIFEST_NAME
            if not manifest_path.is_file():
                continue
            try:
                with open(manifest_path) as handle:
                    manifests.append(json.load(handle))
            except (OSError, json.JSONDecodeError):
                continue
        manifests.sort(key=lambda m: str(
            m.get("provenance", {}).get("written_utc", "")))
        return manifests

    def manifest(self, run_id: str) -> dict:
        manifest_path = self.path(run_id) / MANIFEST_NAME
        if not manifest_path.is_file():
            raise AnalysisError(
                f"no run {run_id!r} under {self.root} "
                f"(missing {MANIFEST_NAME})")
        with open(manifest_path) as handle:
            return json.load(handle)

    def load(self, run_id: str) -> ResultSet:
        """Reload a stored run as a decoded :class:`ResultSet`.

        Tolerates a damaged ``rows.jsonl``. A truncated tail (run
        killed mid-write) loses only the torn final line. A corrupt
        *interior* line (bit-flip, interleaved partial write) is
        quarantined to ``rows.rejects.jsonl`` and the valid rows around
        it still load. Either way the result is marked ``interrupted``
        so it reads as the partial run it is — and resuming it (with
        the same run id) recomputes exactly the damaged points and
        rewrites ``rows.jsonl`` whole, healing the store in place.
        """
        manifest = self.manifest(run_id)
        meta = manifest.get("resultset", {})
        schema = meta.get("schema", RESULTSET_SCHEMA)
        if schema != RESULTSET_SCHEMA:
            raise AnalysisError(
                f"run {run_id!r} uses result schema {schema!r}; this "
                f"build reads {RESULTSET_SCHEMA}")
        codec = meta.get("codec", "json")
        _, decode = get_codec(codec)

        rows: list[ResultRow] = []
        seen_indices: set = set()
        rejects: list[tuple[int, str]] = []
        rows_path = self.path(run_id) / meta.get("rows_file", ROWS_NAME)
        if rows_path.is_file():
            with open(rows_path, errors="replace") as handle:
                for line_no, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        row = ResultRow(
                            ordinal=int(record["ordinal"]),
                            index=_decode_index(record["index"]),
                            status=record["status"])
                        if row.ok:
                            row.value = decode(record.get("value"))
                        else:
                            row.stage = record.get("stage")
                            row.error = record.get("error")
                    except Exception:
                        # A line that fails to parse *or* decode is
                        # quarantined, not trusted and not fatal: the
                        # surviving rows around it still load.
                        rejects.append((line_no, line))
                        continue
                    if row.index in seen_indices:
                        # Interleaved multi-writer duplicates: first
                        # valid occurrence wins, deterministically.
                        continue
                    seen_indices.add(row.index)
                    rows.append(row)
        truncated = bool(rejects)
        if rejects:
            self._quarantine_rejects(run_id, rejects)
        rows.sort(key=lambda row: row.ordinal)

        counts = manifest.get("counts", {})
        interrupted = bool(counts.get("interrupted", False)) or truncated \
            or len(rows) < int(counts.get("total", len(rows)))
        result = ResultSet(name=manifest["name"], codec=codec,
                           metadata=dict(manifest.get("metadata", {})),
                           rows=rows, interrupted=interrupted,
                           trace=manifest.get("trace"))
        result.run_id = run_id
        return result

    def _quarantine_rejects(self, run_id: str,
                            rejects: list[tuple[int, str]]) -> None:
        """Append unparseable row lines to ``rows.rejects.jsonl``.

        Best-effort: a read-only store (or a full disk) must not turn a
        tolerant load into a failure, so write errors are warned about
        and swallowed — the bad lines are simply dropped from the
        loaded result either way.
        """
        import warnings
        rejects_path = self.path(run_id) / ROWS_REJECTS_NAME
        try:
            with open(rejects_path, "a") as handle:
                for line_no, raw in rejects:
                    handle.write(json.dumps(
                        {"line": line_no, "raw": raw},
                        sort_keys=True) + "\n")
        except OSError as exc:
            warnings.warn(
                f"run {run_id!r}: could not quarantine "
                f"{len(rejects)} corrupt row line(s) to "
                f"{ROWS_REJECTS_NAME} ({exc}); lines dropped",
                RuntimeWarning, stacklevel=3)
        else:
            warnings.warn(
                f"run {run_id!r}: {len(rejects)} corrupt row line(s) "
                f"quarantined to {ROWS_REJECTS_NAME}; resume the run "
                f"to recompute and heal them", RuntimeWarning,
                stacklevel=3)
