"""Provenance-tracked artifact store for experiment runs.

Layout (one directory per run under the store root, default
``results/``)::

    results/
      mc-20260806-143102/
        manifest.json     # schema, campaign metadata, provenance, counts
        rows.jsonl        # one JSON object per ResultRow, codec-encoded

The manifest records everything needed to trust, reproduce, or resume
the run:

* ``git_sha`` — the repository HEAD when the run was written (None
  outside a git checkout);
* ``seed`` — the campaign's master seed, when it has one;
* ``retry_policy`` — the solver escalation schedule as a plain dict;
* ``pdk_fingerprint`` — a hash over every model card the PDK can
  produce, so a stored run is falsifiable against model changes;
* ``workers`` / ``chunk_size`` / ``wall_s`` — how it was executed and
  how long it took;
* interpreter and library versions.

Runs executed with tracing enabled additionally carry the aggregated
``repro-trace-v1`` document in the manifest's ``trace`` section (see
:mod:`repro.runtime.telemetry`); ``repro trace <run-id>`` renders it.

``rows.jsonl`` is append-friendly and line-oriented: a truncated file
(killed run, full disk) loses only its tail, and
:meth:`ArtifactStore.load` returns the surviving prefix — which is
exactly what the engine's ``resume=`` argument wants.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import asdict
from datetime import datetime, timezone
from pathlib import Path

from repro.errors import AnalysisError
from repro.runtime.experiment.resultset import (
    RESULTSET_SCHEMA, ResultRow, ResultSet, _decode_index, get_codec,
)

#: Version tag for the manifest format; bump when fields change meaning.
MANIFEST_SCHEMA = "repro-manifest-v1"

MANIFEST_NAME = "manifest.json"
ROWS_NAME = "rows.jsonl"

#: Default store root, relative to the working directory.
DEFAULT_ROOT = "results"


def git_sha() -> str | None:
    """HEAD commit of the enclosing git checkout, or None."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5.0, cwd=os.getcwd())
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def pdk_fingerprint() -> str:
    """Stable hash over every (polarity, flavor) model card at TNOM.

    Any change to the PDK's electrical parameters changes the
    fingerprint, so a stored run carries proof of which models produced
    it. Imported lazily: the runtime package must stay importable from
    below :mod:`repro.pdk` in the dependency graph.
    """
    import hashlib
    from dataclasses import fields

    from repro.pdk.ptm90 import FLAVORS, make_card

    parts = []
    for polarity in ("n", "p"):
        for flavor in FLAVORS:
            card = make_card(polarity, flavor)
            values = ",".join(f"{f.name}={getattr(card, f.name)!r}"
                              for f in fields(card))
            parts.append(f"{polarity}/{flavor}:{values}")
    digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
    return digest[:16]


def collect_provenance(spec=None, wall_s: float | None = None) -> dict:
    """Provenance block for a manifest (see module docstring)."""
    import platform

    import numpy

    from repro.runtime.policy import RetryPolicy

    policy = getattr(spec, "retry_policy", None) or RetryPolicy.default()
    return {
        "git_sha": git_sha(),
        "seed": getattr(spec, "seed", None),
        "retry_policy": asdict(policy),
        "pdk_fingerprint": pdk_fingerprint(),
        "workers": getattr(spec, "workers", None),
        "chunk_size": getattr(spec, "chunk_size", None),
        "wall_s": wall_s,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "written_utc": datetime.now(timezone.utc).isoformat(),
    }


def _slug(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "-" for c in name.lower())
    while "--" in cleaned:
        cleaned = cleaned.replace("--", "-")
    return cleaned.strip("-") or "run"


class ArtifactStore:
    """Read/write experiment runs under one root directory."""

    def __init__(self, root: str | Path = DEFAULT_ROOT):
        self.root = Path(root)

    # -- paths -------------------------------------------------------------

    def path(self, run_id: str) -> Path:
        return self.root / run_id

    def _new_run_id(self, name: str) -> str:
        stamp = datetime.now(timezone.utc).strftime("%Y%m%d-%H%M%S")
        base = f"{_slug(name)}-{stamp}"
        run_id, n = base, 1
        while self.path(run_id).exists():
            n += 1
            run_id = f"{base}-{n}"
        return run_id

    # -- writing -----------------------------------------------------------

    def write(self, resultset: ResultSet, spec=None,
              wall_s: float | None = None,
              run_id: str | None = None) -> str:
        """Persist a run; returns its run id (also set on the result)."""
        run_id = run_id or resultset.run_id \
            or self._new_run_id(resultset.name)
        run_dir = self.path(run_id)
        run_dir.mkdir(parents=True, exist_ok=True)

        with open(run_dir / ROWS_NAME, "w") as handle:
            for record in resultset.encoded_rows():
                handle.write(json.dumps(record, sort_keys=True) + "\n")

        manifest = {
            "schema": MANIFEST_SCHEMA,
            "run_id": run_id,
            "name": resultset.name,
            "metadata": resultset.metadata,
            "provenance": collect_provenance(spec, wall_s),
            "counts": resultset.counts,
            "resultset": {"schema": resultset.schema,
                          "codec": resultset.codec,
                          "rows_file": ROWS_NAME},
        }
        if resultset.trace is not None:
            manifest["trace"] = resultset.trace
        with open(run_dir / MANIFEST_NAME, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")

        resultset.run_id = run_id
        return run_id

    # -- reading -----------------------------------------------------------

    def list_runs(self) -> list[dict]:
        """All manifests under the root, oldest first."""
        if not self.root.is_dir():
            return []
        manifests = []
        for entry in sorted(self.root.iterdir()):
            manifest_path = entry / MANIFEST_NAME
            if not manifest_path.is_file():
                continue
            try:
                with open(manifest_path) as handle:
                    manifests.append(json.load(handle))
            except (OSError, json.JSONDecodeError):
                continue
        manifests.sort(key=lambda m: str(
            m.get("provenance", {}).get("written_utc", "")))
        return manifests

    def manifest(self, run_id: str) -> dict:
        manifest_path = self.path(run_id) / MANIFEST_NAME
        if not manifest_path.is_file():
            raise AnalysisError(
                f"no run {run_id!r} under {self.root} "
                f"(missing {MANIFEST_NAME})")
        with open(manifest_path) as handle:
            return json.load(handle)

    def load(self, run_id: str) -> ResultSet:
        """Reload a stored run as a decoded :class:`ResultSet`.

        Tolerates a truncated ``rows.jsonl`` (a run killed mid-write):
        complete leading lines are returned, the damaged tail is
        dropped, and the result is marked ``interrupted`` so it reads
        as the partial run it is — ready to be passed to the engine's
        ``resume=``.
        """
        manifest = self.manifest(run_id)
        meta = manifest.get("resultset", {})
        schema = meta.get("schema", RESULTSET_SCHEMA)
        if schema != RESULTSET_SCHEMA:
            raise AnalysisError(
                f"run {run_id!r} uses result schema {schema!r}; this "
                f"build reads {RESULTSET_SCHEMA}")
        codec = meta.get("codec", "json")
        _, decode = get_codec(codec)

        rows: list[ResultRow] = []
        truncated = False
        rows_path = self.path(run_id) / meta.get("rows_file", ROWS_NAME)
        if rows_path.is_file():
            with open(rows_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        truncated = True
                        break
                    row = ResultRow(ordinal=int(record["ordinal"]),
                                    index=_decode_index(record["index"]),
                                    status=record["status"])
                    if row.ok:
                        row.value = decode(record.get("value"))
                    else:
                        row.stage = record.get("stage")
                        row.error = record.get("error")
                    rows.append(row)
        rows.sort(key=lambda row: row.ordinal)

        counts = manifest.get("counts", {})
        interrupted = bool(counts.get("interrupted", False)) or truncated \
            or len(rows) < int(counts.get("total", len(rows)))
        result = ResultSet(name=manifest["name"], codec=codec,
                           metadata=dict(manifest.get("metadata", {})),
                           rows=rows, interrupted=interrupted,
                           trace=manifest.get("trace"))
        result.run_id = run_id
        return result
