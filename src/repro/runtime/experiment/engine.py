"""The experiment engine: one executor for every campaign.

:func:`run_experiment` runs an :class:`ExperimentSpec` and returns a
:class:`ResultSet`. It composes the pieces PR 1 and PR 2 built —
:func:`repro.runtime.parallel.parallel_map` for process-pool
distribution, :class:`repro.runtime.faults.FaultPlan` for deterministic
fault injection, and campaign quarantine — so every driver gets, for
free:

* **workers** — ``spec.workers > 1`` distributes points over a process
  pool; results are bitwise identical to a serial run because the
  measurement derives everything from its point params.
* **quarantine** — a point whose measurement raises is recorded as an
  ``err`` row (with stage and error text) instead of aborting, with an
  optional ``max_failures`` abort threshold.
* **progress isolation** — a progress callback that raises is warned
  about once and disabled; an observability hook can never take down a
  campaign. ``KeyboardInterrupt`` from a callback *does* propagate (it
  is the supported way to stop a campaign from a hook).
* **Ctrl-C partials** — interruption returns the rows completed so far
  with ``interrupted=True`` instead of raising.
* **seed-stable resume** — a previous (partial) :class:`ResultSet` for
  the same experiment carries its rows over; only missing indices are
  measured. Because measurements derive from point params alone, a
  resumed run is bitwise identical to a straight one.
* **artifacts** — pass ``store=`` to persist the run (rows + provenance
  manifest) through :class:`~repro.runtime.experiment.store.ArtifactStore`.
* **solve cache** — pass ``cache=`` (a
  :class:`~repro.runtime.cache.SolveCache` or a root path) to memoize
  point results across campaigns by content key; hits skip the
  measurement entirely and are bitwise identical to cold solves
  because payloads round-trip through the spec's codec.
* **SIGTERM parity** — inside the engine, SIGTERM behaves exactly like
  Ctrl-C: partial rows come back with ``interrupted=True`` and the
  artifact store writes a resumable manifest, so container/CI kills
  (which send SIGTERM, not SIGINT) never lose completed work.

Fault-injection campaigns run serially regardless of ``workers``: plans
count firings in mutable in-process state that a pool cannot share.
They also bypass the solve cache in both directions — an injected
failure is not content-derivable, so it must never be stored *or*
served.
"""

from __future__ import annotations

import logging
import time
import warnings
from contextlib import nullcontext

from repro.errors import AnalysisError
from repro.runtime import telemetry
from repro.runtime.cache import as_cache, experiment_point_key
from repro.runtime.experiment.resultset import ResultRow, ResultSet, get_codec
from repro.runtime.experiment.spec import BatchPointFailure, ExperimentSpec
from repro.runtime.faults import inject
from repro.runtime.parallel import parallel_map
from repro.runtime.signals import sigterm_interrupts
from repro.spice.newton import add_solve_stats, solve_stats
from repro.spice.sparse import solver_scope

_LOG = logging.getLogger("repro.runtime.experiment")


def _stats_delta(before: dict) -> tuple:
    """Solve-counter delta since ``before``, undone locally.

    Pool workers accumulate solve counters in their own process, where
    the campaign can't see them; each worker therefore measures its own
    delta, *subtracts it back out locally*, and ships it home with the
    outcome for the parent to re-add. The undo makes the trick a no-op
    composition in-process too (serial short-circuit), so every backend
    reports solves/iterations identically.
    """
    after = solve_stats()
    ds = after["solves"] - before["solves"]
    di = after["iterations"] - before["iterations"]
    add_solve_stats(-ds, -di)
    return (ds, di)


def _measure_worker(task: tuple, context: tuple):
    """Run one point's measurement; shared by serial and pool paths.

    Module-level so the process pool can pickle it by reference. The
    task is just ``(index, params)``; everything task-invariant
    (measure function, stage, trace mode, solver) rides in ``context``,
    pickled once per chunk instead of once per point. Per-point
    failures are encoded in the return value rather than raised —
    quarantine must survive the pool boundary. Trace mode and solver
    ride in the context (never in ambient process state) so pooled
    workers behave exactly like a serial run; each point gets a fresh
    tracer and its snapshot comes back with the outcome, as does the
    point's solve-counter delta.
    """
    index, params = task
    measure, stage, trace_mode, solver = context
    snap = None
    before = solve_stats()
    try:
        with solver_scope(solver):
            if trace_mode is None:
                value = measure(params)
            else:
                tracer = telemetry.make_tracer(trace_mode)
                try:
                    with telemetry.trace(tracer):
                        value = measure(params)
                finally:
                    # Failed points keep their partial trace — a
                    # diverging corner's convergence record is exactly
                    # what the outlier report is for.
                    snap = tracer.snapshot()
    except Exception as exc:
        return ("err", index, stage, f"{type(exc).__name__}: {exc}",
                snap, _stats_delta(before))
    return ("ok", index, value, snap, _stats_delta(before))


def _batch_chunk_worker(task: tuple, context: tuple):
    """Evaluate one lane-group chunk; shared by in-process and sharded.

    One task is one ``batch_measure`` call: ``(indices, params_list)``.
    Lane failures come back as :class:`BatchPointFailure` values and
    are normalized to err outcomes; a chunk whose batched call itself
    raises is **evicted in-worker** to the per-point measure (same
    results, serial speed, still inside this worker's shard) and the
    exception text is returned so the parent can log why. Returns
    ``(outcomes, evicted_reason_or_None, stats_delta)``.
    """
    indices, params_list = task
    batch_measure, measure, stage, solver = context
    before = solve_stats()
    evicted = None
    outcomes = []
    with solver_scope(solver):
        try:
            values = batch_measure(list(params_list))
            if len(values) != len(params_list):
                raise AnalysisError(
                    f"batch_measure returned {len(values)} values for "
                    f"{len(params_list)} points")
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            evicted = f"{type(exc).__name__}: {exc}"
            values = None
        if values is None:
            for index, params in zip(indices, params_list):
                try:
                    value = measure(params)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    outcomes.append(("err", index, stage,
                                     f"{type(exc).__name__}: {exc}"))
                else:
                    outcomes.append(("ok", index, value))
        else:
            for index, value in zip(indices, values):
                if isinstance(value, BatchPointFailure):
                    outcomes.append(("err", index, value.stage or stage,
                                     value.error))
                else:
                    outcomes.append(("ok", index, value))
    return (outcomes, evicted, _stats_delta(before))


def run_experiment(spec: ExperimentSpec, *, progress=None, resume=None,
                   store=None, run_id: str | None = None,
                   cache=None) -> ResultSet:
    """Execute ``spec`` and return its :class:`ResultSet`.

    Args:
        progress: optional callable ``(index, payload)`` invoked after
            each successful point, in completion order. Exceptions it
            raises are isolated (warned once, then suppressed).
        resume: a previous :class:`ResultSet` for the same experiment
            (in-memory partial or one loaded from an artifact store);
            its rows are carried over and only missing indices run.
        store: an :class:`~repro.runtime.experiment.store.ArtifactStore`
            (or a root-directory path) to persist the finished run to;
            None skips persistence.
        run_id: explicit run id for the artifact store (None = derive
            one from the spec name and wall clock).
        cache: a :class:`~repro.runtime.cache.SolveCache` (or a cache
            root path) memoizing point results by content key across
            campaigns; None disables caching. Ignored for
            fault-injection campaigns (injected outcomes are not
            content-derivable and must never be stored or served).

    Returns a partial result (``interrupted=True``) instead of raising
    on KeyboardInterrupt — or on SIGTERM, which the engine remaps to
    the same interrupt path; per-point errors are quarantined into
    ``err`` rows rather than raised.
    """
    spec.validate()
    started = time.perf_counter()
    trace_mode = (spec.trace if spec.trace is not None
                  else telemetry.campaign_trace_mode())
    traces: dict = {}

    ordinals = {point.index: n for n, point in enumerate(spec.points)}
    rows: list[ResultRow] = []
    if resume is not None:
        if not isinstance(resume, ResultSet):
            raise AnalysisError(
                f"resume must be a ResultSet, got {type(resume).__name__}")
        if resume.name != spec.name:
            raise AnalysisError(
                f"cannot resume experiment {spec.name!r} from a "
                f"{resume.name!r} result set")
        # Carried rows keep their identity; rows whose index is no
        # longer in the spec sort after the live points (matches the
        # legacy drivers, which carried every completed sample over).
        extra = len(spec.points)
        for row in resume.rows:
            ordinal = ordinals.get(row.index)
            if ordinal is None:
                ordinal, extra = extra, extra + 1
            rows.append(ResultRow(ordinal=ordinal, index=row.index,
                                  status=row.status, value=row.value,
                                  stage=row.stage, error=row.error))
    done = {row.index for row in rows}
    pending = [point for point in spec.points if point.index not in done]

    failures = sum(1 for row in rows if not row.ok)
    progress_broken = False
    interrupted = False

    cache = as_cache(cache) if spec.faults is None else None
    cache_keys: dict = {}
    cache_hits: list = []
    if cache is not None:
        encode, decode = get_codec(spec.codec)
        still_pending = []
        for point in pending:
            key = experiment_point_key(spec, point.params)
            cache_keys[point.index] = key
            hit, payload = cache.get(key)
            if hit:
                rows.append(ResultRow(ordinal=ordinals[point.index],
                                      index=point.index, status="ok",
                                      value=decode(payload)))
                cache_hits.append((point.index, rows[-1].value))
            else:
                still_pending.append(point)
        pending = still_pending

    def _cache_store(index, value) -> None:
        """Commit a freshly measured point; misses only, never faults."""
        if cache is None:
            return
        key = cache_keys.get(index)
        if key is not None:
            cache.put(key, encode(value))

    def _quarantine(ordinal: int, index, stage: str, error: str) -> None:
        nonlocal failures
        rows.append(ResultRow(ordinal=ordinal, index=index, status="err",
                              stage=stage, error=error))
        failures += 1
        if (spec.max_failures is not None
                and failures > spec.max_failures):
            raise AnalysisError(
                f"{spec.name} aborted: {failures} sample failures "
                f"exceed max_failures={spec.max_failures}; last: "
                f"{index}: [{stage}] {error}")

    def _progress(index, value) -> None:
        nonlocal progress_broken
        if progress is None or progress_broken:
            return
        try:
            progress(index, value)
        except Exception as exc:
            progress_broken = True
            warnings.warn(
                f"{spec.name} progress callback raised "
                f"{type(exc).__name__}: {exc}; further calls "
                f"suppressed, campaign continues", RuntimeWarning,
                stacklevel=3)

    # SIGTERM (container/CI kill) must take the same partial-results
    # path as Ctrl-C; the scope is entered manually so the existing
    # interrupt handling below stays at one indentation level.
    _term_scope = sigterm_interrupts()
    _term_scope.__enter__()
    try:
        for index, value in cache_hits:
            _progress(index, value)
        if spec.faults is not None:
            # Fault campaigns count firings in mutable in-process state
            # and scope the ambient plan per point; both are invisible
            # across a pool boundary, so they always run serially.
            for point in pending:
                index = point.index
                ordinal = ordinals[index]
                if spec.faults.fires("sample_failure", sample=index):
                    _quarantine(ordinal, index, "injected",
                                "injected sample failure")
                    continue
                scope = (spec.faults.sample_scope(index)
                         if isinstance(index, int) else nullcontext())
                tracer = (telemetry.make_tracer(trace_mode)
                          if trace_mode is not None else None)
                trace_scope = (telemetry.trace(tracer)
                               if tracer is not None else nullcontext())
                try:
                    with scope, inject(spec.faults), trace_scope, \
                            solver_scope(spec.solver):
                        value = spec.measure(point.params)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if tracer is not None:
                        traces[index] = tracer.snapshot()
                    _quarantine(ordinal, index, spec.stage,
                                f"{type(exc).__name__}: {exc}")
                    continue
                if tracer is not None:
                    traces[index] = tracer.snapshot()
                rows.append(ResultRow(ordinal=ordinal, index=index,
                                      status="ok", value=value))
                _progress(index, value)
        elif spec.resolved_backend() == "batched" and trace_mode is None:
            # SPMD lanes: whole chunks of points go through one
            # vectorized batch_measure call. With ``workers > 1`` this
            # is the *sharded-batched* mode: each chunk is one
            # LaneGroup-sized shard, shipped whole to a pool worker
            # that runs the batched Newton/transient on it, with the
            # task-invariant context (batch_measure, measure, stage,
            # solver) pickled once per shard. Per-lane failures come
            # back as BatchPointFailure values and quarantine exactly
            # like a raised serial measurement; a chunk whose batched
            # call itself raises is *evicted to the per-point measure
            # in-worker* (same results, serial speed) rather than
            # lost, and the reason is logged here. Tracing campaigns
            # take the per-point path instead (the branch above this
            # one never sees trace_mode set) so traces aggregate
            # exactly like a serial run.
            width = spec.batch_width
            chunk_tasks = []
            for start in range(0, len(pending), width):
                chunk = pending[start:start + width]
                chunk_tasks.append(
                    (tuple(point.index for point in chunk),
                     [point.params for point in chunk]))
            batch_context = (spec.batch_measure, spec.measure,
                             spec.stage, spec.solver)
            for outcomes, evicted, stats in parallel_map(
                    _batch_chunk_worker, chunk_tasks,
                    workers=spec.workers, chunk_size=1,
                    context=batch_context):
                add_solve_stats(*stats)
                if evicted is not None:
                    _LOG.warning(
                        "%s: batch_measure failed for a %d-point chunk "
                        "(%s); chunk evicted to the per-point measure",
                        spec.name, len(outcomes), evicted)
                for outcome in outcomes:
                    if outcome[0] == "ok":
                        _, index, value = outcome
                        rows.append(ResultRow(ordinal=ordinals[index],
                                              index=index, status="ok",
                                              value=value))
                        _cache_store(index, value)
                        _progress(index, value)
                    else:
                        _, index, stage, message = outcome
                        _quarantine(ordinals[index], index, stage,
                                    message)
        else:
            tasks = [(point.index, point.params) for point in pending]
            point_context = (spec.measure, spec.stage, trace_mode,
                             spec.solver)
            for outcome in parallel_map(_measure_worker, tasks,
                                        workers=spec.workers,
                                        chunk_size=spec.chunk_size,
                                        context=point_context):
                add_solve_stats(*outcome[-1])
                if outcome[0] == "ok":
                    _, index, value, snap, _stats = outcome
                    if snap is not None:
                        traces[index] = snap
                    rows.append(ResultRow(ordinal=ordinals[index],
                                          index=index, status="ok",
                                          value=value))
                    _cache_store(index, value)
                    _progress(index, value)
                else:
                    _, index, stage, message, snap, _stats = outcome
                    if snap is not None:
                        traces[index] = snap
                    _quarantine(ordinals[index], index, stage, message)
    except KeyboardInterrupt:
        interrupted = True
    finally:
        _term_scope.__exit__(None, None, None)

    rows.sort(key=lambda row: row.ordinal)
    result = ResultSet(name=spec.name, codec=spec.codec,
                       metadata=dict(spec.metadata), rows=rows,
                       interrupted=interrupted)
    if trace_mode is not None:
        # Snapshots merge in canonical row order (never completion
        # order), so a pooled campaign aggregates exactly like a serial
        # one. Resumed rows carried over without traces are skipped.
        result.trace = telemetry.aggregate_traces(
            [(row.index, traces.get(row.index)) for row in rows],
            trace_mode)
    wall_s = time.perf_counter() - started
    if store is not None:
        from repro.runtime.experiment.store import ArtifactStore
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        store.write(result, spec=spec, wall_s=wall_s, run_id=run_id)
    return result
