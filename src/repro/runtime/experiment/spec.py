"""Declarative campaign specifications.

Every campaign in this repository has the same shape: a *parameter
space* (Monte Carlo sample indices, a VDDI×VDDO grid, PVT corner pairs,
sizing knobs, temperatures) mapped through one *measurement function*
into a set of per-point results, with quarantine for points that fail,
seed-stable resume, and optional process-pool distribution. An
:class:`ExperimentSpec` captures that shape declaratively so one engine
(:func:`repro.runtime.experiment.engine.run_experiment`) can execute
every campaign, and the analysis drivers reduce to spec builders plus
result assemblers.

Design constraints inherited from :mod:`repro.runtime.parallel`:

* ``measure`` must be a **module-level function** (the process pool
  pickles it by reference) and must derive *everything* from its
  ``params`` argument — no shared state, no ambient randomness — so a
  pooled run is bitwise identical to a serial one.
* ``params`` and the measured payloads must be picklable.
* each point's ``index`` is its stable identity: resume skips indices
  that already have a result, and quarantine reports name them. The
  index must be hashable and JSON-representable (ints, strings, floats,
  or nested tuples of those) so it round-trips through an artifact
  store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.errors import AnalysisError
from repro.runtime.telemetry import TRACE_MODES
from repro.spice.sparse import validate_solver


#: The execution backends a spec may name. ``serial`` runs points one
#: at a time in-process, ``pool`` distributes them over a process pool
#: (``workers``), ``batched`` hands whole chunks of points to a
#: vectorized ``batch_measure`` (SPMD lanes; see
#: :mod:`repro.spice.batch`).
BACKENDS = ("serial", "pool", "batched")


@dataclass(frozen=True)
class BatchPointFailure:
    """A per-lane failure returned (not raised) by a ``batch_measure``.

    A batched measurement evaluates many points per call; one lane's
    failure must not poison the rest, so instead of raising, the batch
    function puts one of these in that lane's slot. The engine
    quarantines the point exactly as if a serial measurement had raised
    ``error`` at ``stage``.
    """

    stage: str
    error: str


@dataclass(frozen=True)
class ExperimentPoint:
    """One point of a campaign's parameter space.

    Attributes:
        index: stable identity of the point (int for Monte Carlo,
            ``(i, j)`` for grids, ``(corner, temp)`` for PVT, a knob
            name for sensitivities). Used for resume, quarantine and
            artifact rows.
        params: the picklable argument tuple handed to the spec's
            ``measure`` function.
    """

    index: Hashable
    params: tuple


@dataclass
class ExperimentSpec:
    """A complete, executable description of one campaign.

    Attributes:
        name: human-readable campaign name; appears in progress-callback
            warnings, abort messages, and run ids.
        measure: module-level function ``measure(params) -> payload``.
            Exceptions it raises quarantine the point instead of
            aborting the campaign.
        points: the parameter space, in canonical (report) order.
        stage: label recorded on quarantined points (e.g.
            ``"characterize"``, ``"quick_delays"``).
        codec: name of the payload codec used when the result set is
            persisted (see :mod:`repro.runtime.experiment.resultset`).
        workers: process-pool width; 1 runs serially in-process.
        chunk_size: tasks per pool submission (None = auto).
        faults: optional deterministic fault plan; forces serial
            execution because plans count firings in mutable in-process
            state.
        max_failures: abort (AnalysisError) once this many points have
            been quarantined; None = never abort.
        seed: master seed recorded in the provenance manifest (None for
            deterministic campaigns).
        retry_policy: solver retry policy recorded in the provenance
            manifest; None means the default policy.
        metadata: JSON-serializable campaign description (kind,
            supplies, grid, ...) stored in the manifest and used by
            result assemblers.
        trace: per-point solver telemetry mode: ``"collect"`` records
            counters/histograms/timers, ``"profile"`` adds a cProfile
            per point; None (default) defers to the process-wide mode
            set by :func:`repro.runtime.telemetry.set_campaign_trace_mode`
            (the CLI ``--trace``/``--profile`` flags). Traces are
            aggregated into the result set's ``repro-trace-v1`` section.
        backend: execution backend, one of :data:`BACKENDS`; None
            (default) resolves to ``"pool"`` when ``workers > 1`` and
            ``"serial"`` otherwise, so existing specs are unchanged.
            ``"batched"`` requires ``batch_measure``; combined with
            ``workers > 1`` it runs *sharded-batched* — points are
            chunked into per-worker lane groups, each pool worker
            drives the SPMD backend on its shard, and chunk eviction /
            quarantine / resume behave exactly as in-process.
        batch_measure: module-level function
            ``batch_measure(params_list) -> values`` evaluating many
            points in one vectorized call; one returned entry per
            params, a :class:`BatchPointFailure` in a slot quarantining
            that point. If the whole call raises, the engine falls back
            to per-point ``measure`` for that chunk — eviction to
            serial with a logged reason, never a lost chunk.
        batch_width: points per ``batch_measure`` call (lane count);
            with ``workers > 1`` also the shard granularity.
        solver: linear-solve kernel for every measurement in this
            campaign: "dense", "sparse" (pattern-reuse LU), or "auto"
            (by MNA size); None keeps the ambient default ("auto").
            An execution knob by design: it is excluded from solve-
            cache content keys and from provenance identity.
    """

    name: str
    measure: Callable
    points: Sequence[ExperimentPoint]
    stage: str = "measure"
    codec: str = "json"
    workers: int = 1
    chunk_size: int | None = None
    faults: object | None = None
    max_failures: int | None = None
    seed: int | None = None
    retry_policy: object | None = None
    metadata: dict = field(default_factory=dict)
    trace: str | None = None
    backend: str | None = None
    batch_measure: Callable | None = None
    batch_width: int = 128
    solver: str | None = None

    def resolved_backend(self) -> str:
        """The backend this spec will execute on (never None)."""
        if self.backend is not None:
            return self.backend
        return "pool" if self.workers > 1 else "serial"

    def validate(self) -> None:
        if self.workers < 1:
            raise AnalysisError("workers must be >= 1")
        if self.backend is not None and self.backend not in BACKENDS:
            raise AnalysisError(
                f"experiment {self.name!r}: backend must be None or one "
                f"of {BACKENDS}, got {self.backend!r}")
        if self.backend == "batched":
            if self.batch_measure is None:
                raise AnalysisError(
                    f"experiment {self.name!r}: backend 'batched' "
                    f"requires a batch_measure function. The campaign "
                    f"driver must supply a module-level "
                    f"batch_measure(params_list) that evaluates whole "
                    f"lane groups (see repro.spice.batch); drivers "
                    f"without one can only run backend='serial' or "
                    f"'pool'.")
            if self.workers > 1 and "<locals>" in getattr(
                    self.batch_measure, "__qualname__", ""):
                raise AnalysisError(
                    f"experiment {self.name!r}: batch_measure must be "
                    f"a module-level function to run sharded-batched "
                    f"(workers > 1 ships it to pool workers by pickled "
                    f"reference)")
        if self.batch_width < 1:
            raise AnalysisError("batch_width must be >= 1")
        if self.solver is not None:
            validate_solver(self.solver)
        if self.trace is not None and self.trace not in TRACE_MODES:
            raise AnalysisError(
                f"experiment {self.name!r}: trace must be None or one "
                f"of {TRACE_MODES}, got {self.trace!r}")
        if self.max_failures is not None and self.max_failures < 0:
            raise AnalysisError("max_failures must be >= 0 or None")
        indices = [p.index for p in self.points]
        if len(set(indices)) != len(indices):
            raise AnalysisError(
                f"experiment {self.name!r} has duplicate point indices")
        if self.workers > 1 and "<locals>" in getattr(
                self.measure, "__qualname__", ""):
            raise AnalysisError(
                "measure must be a module-level function to run in a "
                "process pool (it is pickled by reference)")
