"""Declarative campaign specifications.

Every campaign in this repository has the same shape: a *parameter
space* (Monte Carlo sample indices, a VDDI×VDDO grid, PVT corner pairs,
sizing knobs, temperatures) mapped through one *measurement function*
into a set of per-point results, with quarantine for points that fail,
seed-stable resume, and optional process-pool distribution. An
:class:`ExperimentSpec` captures that shape declaratively so one engine
(:func:`repro.runtime.experiment.engine.run_experiment`) can execute
every campaign, and the analysis drivers reduce to spec builders plus
result assemblers.

Design constraints inherited from :mod:`repro.runtime.parallel`:

* ``measure`` must be a **module-level function** (the process pool
  pickles it by reference) and must derive *everything* from its
  ``params`` argument — no shared state, no ambient randomness — so a
  pooled run is bitwise identical to a serial one.
* ``params`` and the measured payloads must be picklable.
* each point's ``index`` is its stable identity: resume skips indices
  that already have a result, and quarantine reports name them. The
  index must be hashable and JSON-representable (ints, strings, floats,
  or nested tuples of those) so it round-trips through an artifact
  store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.errors import AnalysisError
from repro.runtime.telemetry import TRACE_MODES


@dataclass(frozen=True)
class ExperimentPoint:
    """One point of a campaign's parameter space.

    Attributes:
        index: stable identity of the point (int for Monte Carlo,
            ``(i, j)`` for grids, ``(corner, temp)`` for PVT, a knob
            name for sensitivities). Used for resume, quarantine and
            artifact rows.
        params: the picklable argument tuple handed to the spec's
            ``measure`` function.
    """

    index: Hashable
    params: tuple


@dataclass
class ExperimentSpec:
    """A complete, executable description of one campaign.

    Attributes:
        name: human-readable campaign name; appears in progress-callback
            warnings, abort messages, and run ids.
        measure: module-level function ``measure(params) -> payload``.
            Exceptions it raises quarantine the point instead of
            aborting the campaign.
        points: the parameter space, in canonical (report) order.
        stage: label recorded on quarantined points (e.g.
            ``"characterize"``, ``"quick_delays"``).
        codec: name of the payload codec used when the result set is
            persisted (see :mod:`repro.runtime.experiment.resultset`).
        workers: process-pool width; 1 runs serially in-process.
        chunk_size: tasks per pool submission (None = auto).
        faults: optional deterministic fault plan; forces serial
            execution because plans count firings in mutable in-process
            state.
        max_failures: abort (AnalysisError) once this many points have
            been quarantined; None = never abort.
        seed: master seed recorded in the provenance manifest (None for
            deterministic campaigns).
        retry_policy: solver retry policy recorded in the provenance
            manifest; None means the default policy.
        metadata: JSON-serializable campaign description (kind,
            supplies, grid, ...) stored in the manifest and used by
            result assemblers.
        trace: per-point solver telemetry mode: ``"collect"`` records
            counters/histograms/timers, ``"profile"`` adds a cProfile
            per point; None (default) defers to the process-wide mode
            set by :func:`repro.runtime.telemetry.set_campaign_trace_mode`
            (the CLI ``--trace``/``--profile`` flags). Traces are
            aggregated into the result set's ``repro-trace-v1`` section.
    """

    name: str
    measure: Callable
    points: Sequence[ExperimentPoint]
    stage: str = "measure"
    codec: str = "json"
    workers: int = 1
    chunk_size: int | None = None
    faults: object | None = None
    max_failures: int | None = None
    seed: int | None = None
    retry_policy: object | None = None
    metadata: dict = field(default_factory=dict)
    trace: str | None = None

    def validate(self) -> None:
        if self.workers < 1:
            raise AnalysisError("workers must be >= 1")
        if self.trace is not None and self.trace not in TRACE_MODES:
            raise AnalysisError(
                f"experiment {self.name!r}: trace must be None or one "
                f"of {TRACE_MODES}, got {self.trace!r}")
        if self.max_failures is not None and self.max_failures < 0:
            raise AnalysisError("max_failures must be >= 0 or None")
        indices = [p.index for p in self.points]
        if len(set(indices)) != len(indices):
            raise AnalysisError(
                f"experiment {self.name!r} has duplicate point indices")
        if self.workers > 1 and "<locals>" in getattr(
                self.measure, "__qualname__", ""):
            raise AnalysisError(
                "measure must be a module-level function to run in a "
                "process pool (it is pickled by reference)")
