"""SIGTERM parity for campaigns: container kills behave like Ctrl-C.

Campaigns already treat ``KeyboardInterrupt`` as a first-class outcome:
the engine returns the rows completed so far with ``interrupted=True``
and the artifact store persists a resumable manifest. But CI runners,
``docker stop``, Kubernetes and init systems deliver **SIGTERM**, not
SIGINT — and Python's default SIGTERM disposition kills the process on
the spot, losing the partial results the interrupt path was built to
save.

:func:`sigterm_interrupts` closes that gap: inside the context, SIGTERM
raises ``KeyboardInterrupt`` in the main thread, so every interrupt
code path (flush partials, write the manifest, mark ``interrupted``)
runs identically for both signals. The previous handler is always
restored on exit.

Signal handlers can only be installed from the main thread; from any
other thread (or on platforms without SIGTERM) the context degrades to
a no-op and yields ``False`` — campaigns still run, they just keep the
platform's default SIGTERM behavior.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


@contextmanager
def sigterm_interrupts():
    """Raise ``KeyboardInterrupt`` on SIGTERM inside the block.

    Yields True when the handler was installed, False when it could not
    be (non-main thread, unsupported platform) and the block runs with
    the default disposition. Nesting is safe: each scope restores the
    handler it replaced.
    """
    import signal

    if threading.current_thread() is not threading.main_thread():
        yield False
        return
    sigterm = getattr(signal, "SIGTERM", None)
    if sigterm is None:  # pragma: no cover - non-POSIX safety net
        yield False
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    try:
        previous = signal.signal(sigterm, _handler)
    except (ValueError, OSError):  # pragma: no cover - exotic runtimes
        yield False
        return
    try:
        yield True
    finally:
        signal.signal(sigterm, previous)
