"""Campaign-level failure accounting.

The analysis drivers (Monte Carlo, sweeps, corners, functional grids)
quarantine failing points into :class:`SampleFailure` records instead
of raising, and :class:`CampaignDiagnostics` aggregates them for CLI
reporting. Floorplanning-scale consumers call characterization
thousands of times per placement; they need "193/200 succeeded, these
7 indices failed and why", not a traceback from the worst sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SampleFailure:
    """One quarantined campaign point.

    Attributes:
        index: sample identity — an int for Monte Carlo, an ``(i, j)``
            grid position for sweeps, a ``(corner, temp)`` pair for PVT.
        stage: where it died (``"injected"``, ``"characterize"``,
            ``"quick_delays"``, ...).
        error: one-line failure description.
        report: the :class:`~repro.runtime.report.SolveReport` (or
            transient report) from the failing solve, when available.
    """

    index: object
    stage: str
    error: str
    report: object | None = None

    def describe(self) -> str:
        return f"{self.index}: [{self.stage}] {self.error}"


@dataclass
class CampaignDiagnostics:
    """Roll-up of a campaign's resilience behaviour."""

    total: int = 0
    succeeded: int = 0
    failures: list[SampleFailure] = field(default_factory=list)
    progress_errors: int = 0
    interrupted: bool = False

    @property
    def quarantined(self) -> list:
        return [f.index for f in self.failures]

    @property
    def failure_rate(self) -> float:
        return len(self.failures) / self.total if self.total else 0.0

    def summary(self, limit: int = 10) -> str:
        lines = [f"{self.succeeded}/{self.total} points succeeded, "
                 f"{len(self.failures)} quarantined"
                 + (", INTERRUPTED" if self.interrupted else "")]
        for failure in self.failures[:limit]:
            lines.append(f"  {failure.describe()}")
        if len(self.failures) > limit:
            lines.append(f"  (+{len(self.failures) - limit} more)")
        if self.progress_errors:
            lines.append(f"  progress callback errors suppressed: "
                         f"{self.progress_errors}")
        return "\n".join(lines)
