"""Retry policies: configurable escalation schedules for the solvers.

Historically the fallback chain was hard-coded: a fixed gmin ladder and
source ramp inside ``spice/newton.py`` and a fixed halve-until-h_min
loop inside ``spice/transient.py``. :class:`RetryPolicy` lifts all of
those knobs into one object so campaigns can trade robustness against
wall clock (a characterization service wants bounded worst-case
latency; a signoff run wants every last homotopy rung).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError

#: Gmin homotopy ladder, from heavily regularized down to the target.
#: (Matches the pre-policy hard-coded ladder, so the default policy is
#: behavior-identical to the legacy chain.)
DEFAULT_GMIN_LADDER = (1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10,
                       1e-11)

#: Source-stepping ramp for the last-resort homotopy.
DEFAULT_SOURCE_RAMP = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class RetryPolicy:
    """Escalation schedule shared by the DC and transient engines.

    Attributes:
        gmin_ladder: gmin values tried in order when plain Newton fails
            (the target ``NewtonOptions.gmin`` is appended as the final
            rung automatically).
        source_ramp: source-scale values for the last-resort homotopy;
            must end at 1.0 so the final rung solves the real circuit.
        enable_gmin_stepping: whether the gmin strategy runs at all.
        enable_source_stepping: whether the source strategy runs at all.
        max_step_halvings: transient budget — how many *consecutive*
            timestep halvings (Newton failures or dv rejections without
            an accepted step in between) are allowed before the run is
            declared stalled.
        be_on_retry: transient degradation — retry a failed step with
            backward Euler instead of trapezoidal (damps the ringing
            that often caused the failure).
        max_wall_clock_s: abandon the DC escalation once this much wall
            clock has been spent across attempts (None = unlimited).
        max_total_iterations: abandon the DC escalation once the summed
            Newton iterations across attempts reach this (None =
            unlimited).
    """

    gmin_ladder: tuple[float, ...] = DEFAULT_GMIN_LADDER
    source_ramp: tuple[float, ...] = DEFAULT_SOURCE_RAMP
    enable_gmin_stepping: bool = True
    enable_source_stepping: bool = True
    max_step_halvings: int = 60
    be_on_retry: bool = True
    max_wall_clock_s: float | None = None
    max_total_iterations: int | None = None

    def validate(self) -> None:
        if any(g <= 0 for g in self.gmin_ladder):
            raise AnalysisError("gmin ladder values must be positive")
        if any(not 0.0 < s <= 1.0 for s in self.source_ramp):
            raise AnalysisError("source ramp values must be in (0, 1]")
        if self.source_ramp and self.source_ramp[-1] != 1.0:
            raise AnalysisError("source ramp must end at 1.0 "
                                "(the unscaled circuit)")
        if self.max_step_halvings < 0:
            raise AnalysisError("max_step_halvings must be >= 0")
        if (self.max_wall_clock_s is not None
                and self.max_wall_clock_s < 0):
            raise AnalysisError("max_wall_clock_s must be >= 0")
        if (self.max_total_iterations is not None
                and self.max_total_iterations < 1):
            raise AnalysisError("max_total_iterations must be >= 1")

    @classmethod
    def default(cls) -> "RetryPolicy":
        """Behavior-identical to the legacy hard-coded fallback chain."""
        return cls()

    @classmethod
    def fast_fail(cls) -> "RetryPolicy":
        """No homotopy fallbacks, minimal step-halving budget.

        For latency-bounded services and for tests that want a failure
        to surface immediately instead of grinding through the ladder.
        """
        return cls(gmin_ladder=(), source_ramp=(),
                   enable_gmin_stepping=False,
                   enable_source_stepping=False,
                   max_step_halvings=4)

    @classmethod
    def patient(cls) -> "RetryPolicy":
        """Denser schedules for signoff-grade stubborn circuits."""
        ladder = tuple(10.0 ** (-e / 2.0) for e in range(5, 23))
        ramp = tuple(round(0.05 * k, 2) for k in range(1, 21))
        return cls(gmin_ladder=ladder, source_ramp=ramp,
                   max_step_halvings=200)
