"""Crash-safe content-addressed solve cache.

Monte Carlo yield campaigns and comparative characterization sweeps
re-solve near-identical operating points millions of times; this module
turns those repeats into lookups. A :class:`SolveCache` maps a
**content key** — a SHA-256 over the canonical serialization of
everything a measurement depends on (netlist identity, PDK fingerprint,
stimulus plan, tolerances/solver policy, payload codec) — to the
codec-encoded measurement payload. Because the payload codecs
round-trip floats bitwise (repr-shortest JSON), a cache hit is
**bitwise identical** to the cold solve that produced it.

The cache is engineered for crash-safety first, throughput second:

* **Atomic commits** — an entry is written to a process-unique temp
  file, fsynced, then ``os.replace``d into place. A crash at any point
  leaves either the old state or the new one, never a torn entry; a
  leftover temp file is invisible to readers and swept by
  :meth:`SolveCache.verify`.
* **Per-entry checksums** — every entry embeds a SHA-256 over its
  canonical body. A read that fails the checksum (bit-flip, truncation,
  interleaved write) is **quarantined** — moved to ``quarantine/`` and
  counted — and reported as a miss so the campaign recomputes it. A
  corrupt entry is *never* served. ``verify_checksums=False`` exists
  solely as the negative-control knob for the chaos harness.
* **Lockfile writer coordination** — writers serialize on a lock file
  embedding ``pid`` + process start-time. A crashed writer's lock is
  reclaimed safely: the lock is stale when its owner is dead *or* the
  recorded start-time no longer matches that pid (pid reuse), so a
  live unrelated process that happens to share the pid never loses its
  lock, and a dead writer never wedges the cache.
* **Degraded mode** — any cache I/O error (unreadable root, full disk,
  lock timeout) logs one warning, flips the cache into a bypass mode
  where every get is a miss and every put is a no-op, and the campaign
  falls through to live solves. A broken cache can cost time, never
  correctness — and never a campaign.

Counters (``cache.hits`` / ``cache.misses`` / ``cache.corruptions`` /
``cache.evictions`` / ``cache.stores`` / ``cache.errors``) ride the
ambient :class:`~repro.runtime.telemetry.Tracer` when one is active,
alongside the in-process :class:`CacheStats`.

Chaos injection points (driven by the ambient
:class:`~repro.runtime.faults.FaultPlan`): ``cache_torn_write`` crashes
between temp-write and rename, ``cache_corrupt`` flips a byte of a
just-committed entry, ``stale_lock`` plants a crashed writer's lock.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, is_dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.errors import AnalysisError
from repro.runtime import telemetry
from repro.runtime.faults import active_plan

#: Version tag for the on-disk entry format; bump to invalidate.
ENTRY_SCHEMA = "repro-cache-entry-v1"

#: Version tag mixed into every content key; bump when the key
#: derivation (not the entry format) changes meaning.
KEY_SCHEMA = "repro-solve-key-v1"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_ROOT = "cache"

LOCK_NAME = ".lock"
QUARANTINE_DIR = "quarantine"


# ---------------------------------------------------------------------------
# Canonical serialization and content keys


def canonical(obj):
    """Reduce ``obj`` to a deterministic JSON-representable structure.

    Handles the parameter payloads campaigns actually use: scalars,
    strings, tuples/lists, dicts, dataclasses (tagged with their class
    path, so two specs with identical field values but different types
    key differently), numpy scalars and arrays. Anything else falls
    back to a type-tagged ``repr`` — deterministic for every type used
    in campaign params, and a wrong guess costs a cache miss, never a
    wrong hit.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): canonical(value)
                for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        body = {f.name: canonical(getattr(obj, f.name)) for f in fields(obj)}
        return {"__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
                "fields": body}
    try:
        import numpy as np
        if isinstance(obj, np.generic):
            return canonical(obj.item())
        if isinstance(obj, np.ndarray):
            return {"__ndarray__": list(obj.shape),
                    "values": [canonical(v) for v in obj.ravel().tolist()]}
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    return {"__repr__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "value": repr(obj)}


def canonical_blob(obj) -> str:
    """Canonical JSON text of ``obj`` (stable across processes)."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def cache_key(**components) -> str:
    """SHA-256 content key over named key components.

    The :data:`KEY_SCHEMA` version tag is always mixed in, so a change
    to the key derivation invalidates every old entry instead of
    aliasing into it.
    """
    components["__key_schema__"] = KEY_SCHEMA
    return hashlib.sha256(canonical_blob(components).encode()).hexdigest()


def _cached_pdk_fingerprint(node: str = "ptm90") -> str:
    """Process-cached per-node PDK fingerprint (cards are constants).

    Keyed by node name: a single process-wide fingerprint would silently
    serve one node's digest for every node once a second PDK exists,
    aliasing their cache entries into each other.
    """
    fingerprint = _PDK_FINGERPRINTS.get(node)
    if fingerprint is None:
        from repro.runtime.experiment.store import pdk_fingerprint
        fingerprint = _PDK_FINGERPRINTS[node] = pdk_fingerprint(node)
    return fingerprint


_PDK_FINGERPRINTS: dict[str, str] = {}


def _point_pdk_node(spec, params) -> str:
    """Resolve which PDK node one experiment point runs on.

    Spec builders record the node in ``spec.metadata["pdk_node"]``;
    failing that, a PDK-like object (``.node`` string plus a callable
    ``.mosfet``) riding in the params tuple names it. Default is the
    paper's ``ptm90``.
    """
    metadata = getattr(spec, "metadata", None) or {}
    node = metadata.get("pdk_node")
    if node:
        return str(node)
    items = params if isinstance(params, (tuple, list)) else (params,)
    for item in items:
        node = getattr(item, "node", None)
        if isinstance(node, str) and callable(getattr(item, "mosfet", None)):
            return node
    return "ptm90"


def experiment_point_key(spec, params) -> str:
    """Content key for one experiment point.

    Keys on everything the measured payload can depend on: the
    measurement function's identity (module + qualname — the netlist
    builder), the point params (netlist sizing, supplies, stimulus
    plan, tolerances, per-sample seed), the point's own PDK node
    fingerprint, the solver retry policy, and the payload codec.
    Campaign *execution* knobs (workers, backend, chunking) are
    deliberately excluded: a pooled, batched or resumed run must hit
    the same entries a serial run writes — that is the whole point.
    """
    from repro.runtime.policy import RetryPolicy
    measure = spec.measure
    policy = spec.retry_policy or RetryPolicy.default()
    return cache_key(
        measure=f"{measure.__module__}:{measure.__qualname__}",
        codec=spec.codec,
        pdk_fingerprint=_cached_pdk_fingerprint(_point_pdk_node(spec, params)),
        retry_policy=policy,
        params=params,
    )


# ---------------------------------------------------------------------------
# Lock files


class LockTimeout(AnalysisError):
    """A live writer held the cache lock for longer than the timeout."""


def process_start_time(pid: int) -> int | None:
    """Kernel start-time ticks for ``pid`` (Linux), or None.

    The (pid, start_time) pair identifies a process instance across pid
    reuse; a lock whose recorded start-time mismatches the live pid's
    belongs to a crashed writer whose pid was recycled.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read()
        after_comm = data.rsplit(b")", 1)[1].split()
        return int(after_comm[19])  # field 22 of /proc/<pid>/stat
    except (OSError, IndexError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


def _lock_is_stale(lock_path: Path) -> bool:
    """True when the lock's owner is provably gone.

    Unreadable or unparseable lock files count as stale: a writer
    crashed *while writing the lock itself* must not wedge the cache
    forever. (The lock payload is one small write, so a torn lock is
    already a crash artifact.)
    """
    try:
        info = json.loads(lock_path.read_text())
        pid = int(info["pid"])
        start_time = info.get("start_time")
    except (OSError, ValueError, KeyError, TypeError):
        return True
    if not _pid_alive(pid):
        return True
    if start_time is not None:
        live = process_start_time(pid)
        if live is not None and live != int(start_time):
            return True  # pid was reused; the writer itself is dead
    return False


# ---------------------------------------------------------------------------
# The cache


@dataclass
class CacheStats:
    """In-process counters for one :class:`SolveCache` instance."""

    hits: int = 0
    misses: int = 0
    corruptions: int = 0
    evictions: int = 0
    stores: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class SolveCache:
    """Content-addressed result cache under one root directory.

    Args:
        root: cache directory (created lazily on first store).
        read_only: serve hits but never write (shared caches on CI).
        verify_checksums: verify every entry on read (default). The
            ``False`` setting exists only as the chaos harness's
            negative control — it makes the corruption test fail,
            proving the checksum is what protects campaigns.
        lock_timeout_s: how long a writer waits on a *live* lock before
            degrading; stale locks are reclaimed immediately.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_ROOT, *,
                 read_only: bool = False, verify_checksums: bool = True,
                 lock_timeout_s: float = 10.0,
                 lock_poll_s: float = 0.02):
        self.root = Path(root)
        self.read_only = read_only
        self.verify_checksums = verify_checksums
        self.lock_timeout_s = lock_timeout_s
        self.lock_poll_s = lock_poll_s
        self.stats = CacheStats()
        self.degraded = False

    # -- paths -------------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine_path(self, key: str) -> Path:
        return self.root / QUARANTINE_DIR / f"{key}.json"

    @property
    def lock_path(self) -> Path:
        return self.root / LOCK_NAME

    # -- telemetry ---------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        tracer = telemetry.active_tracer()
        if tracer is not None:
            tracer.count(f"cache.{name}", n)

    def _degrade(self, what: str, exc: Exception) -> None:
        self.stats.errors += 1
        self._count("errors")
        if not self.degraded:
            self.degraded = True
            warnings.warn(
                f"solve cache at {self.root} degraded after {what} "
                f"failed ({type(exc).__name__}: {exc}); campaigns fall "
                f"through to live solves", RuntimeWarning, stacklevel=3)

    # -- checksums ---------------------------------------------------------

    @staticmethod
    def _checksum(key: str, codec: str, value) -> str:
        body = {"codec": codec, "key": key, "value": value}
        return hashlib.sha256(canonical_blob(body).encode()).hexdigest()

    # -- reading -----------------------------------------------------------

    def get(self, key: str):
        """Look up ``key``; returns ``(hit, payload)``.

        A corrupt entry (unparseable, wrong schema/key, checksum
        mismatch) is quarantined and reported as a miss — it is never
        served, and the campaign recomputes and rewrites it. I/O errors
        degrade the cache instead of raising.
        """
        if self.degraded:
            self.stats.misses += 1
            self._count("misses")
            return False, None
        path = self.entry_path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.stats.misses += 1
            self._count("misses")
            return False, None
        except OSError as exc:
            self._degrade(f"reading entry {key[:12]}", exc)
            self.stats.misses += 1
            self._count("misses")
            return False, None
        entry = self._validate(key, text)
        if entry is None:
            self._evict_corrupt(key, path)
            self.stats.misses += 1
            self._count("misses")
            return False, None
        self.stats.hits += 1
        self._count("hits")
        return True, entry["value"]

    def _validate(self, key: str, text: str) -> dict | None:
        """Parse + integrity-check one entry body; None when corrupt."""
        try:
            entry = json.loads(text)
        except ValueError:
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != ENTRY_SCHEMA or entry.get("key") != key:
            return None
        if "value" not in entry or "codec" not in entry:
            return None
        if self.verify_checksums:
            expected = self._checksum(key, entry["codec"], entry["value"])
            if entry.get("checksum") != expected:
                return None
        return entry

    def _evict_corrupt(self, key: str, path: Path) -> None:
        """Quarantine a corrupt entry so it is recomputed, never served."""
        self.stats.corruptions += 1
        self.stats.evictions += 1
        self._count("corruptions")
        self._count("evictions")
        quarantine = self._quarantine_path(key)
        try:
            quarantine.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine)
        except OSError:
            try:
                path.unlink()
            except OSError as exc:
                self._degrade(f"evicting corrupt entry {key[:12]}", exc)
        warnings.warn(
            f"solve cache entry {key[:12]}… failed verification; "
            f"quarantined and scheduled for recompute", RuntimeWarning,
            stacklevel=4)

    # -- writing -----------------------------------------------------------

    def put(self, key: str, value) -> bool:
        """Commit ``(key -> value)`` atomically; True when stored.

        ``value`` must already be codec-encoded (JSON-representable).
        Read-only and degraded caches skip silently; lock timeouts and
        I/O errors degrade rather than raise.
        """
        if self.read_only or self.degraded:
            return False
        try:
            codec = "json"
            entry = {
                "schema": ENTRY_SCHEMA,
                "key": key,
                "codec": codec,
                "value": value,
                "checksum": self._checksum(key, codec, value),
                "written_utc": datetime.now(timezone.utc).isoformat(),
            }
            with self._lock():
                return self._commit(key, entry)
        except LockTimeout as exc:
            self._degrade("acquiring the writer lock", exc)
            return False
        except OSError as exc:
            self._degrade(f"writing entry {key[:12]}", exc)
            return False

    def _commit(self, key: str, entry: dict) -> bool:
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{key}.{os.getpid()}.tmp"
        text = json.dumps(entry, sort_keys=True)
        plan = active_plan()
        fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
        try:
            if plan is not None and plan.fires("cache_torn_write"):
                # Crash between temp-write and rename: half the body is
                # on disk under the temp name and the entry never
                # becomes visible. Readers cannot observe it.
                os.write(fd, text[:max(1, len(text) // 2)].encode())
                return False
            os.write(fd, text.encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        self._fsync_dir(path.parent)
        self.stats.stores += 1
        self._count("stores")
        if plan is not None and plan.fires("cache_corrupt"):
            _flip_byte(path)
        return True

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    # -- locking -----------------------------------------------------------

    @contextmanager
    def _lock(self):
        """Serialize writers on a pid+start-time lock file."""
        self.root.mkdir(parents=True, exist_ok=True)
        plan = active_plan()
        if plan is not None and plan.fires("stale_lock"):
            # A previous writer "crashed" holding the lock: plant a
            # lock whose start-time can never match a live process, so
            # the reclaim path below must run to make progress.
            try:
                self.lock_path.write_text(json.dumps(
                    {"pid": os.getpid(), "start_time": -1}))
            except OSError:  # pragma: no cover - root itself broken
                pass
        deadline = time.monotonic() + self.lock_timeout_s
        while True:
            try:
                fd = os.open(self.lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                break
            except FileExistsError:
                if _lock_is_stale(self.lock_path):
                    try:
                        self.lock_path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"cache writer lock at {self.lock_path} held by "
                        f"a live process for > {self.lock_timeout_s} s")
                time.sleep(self.lock_poll_s)
        try:
            info = {"pid": os.getpid(),
                    "start_time": process_start_time(os.getpid()),
                    "acquired_utc":
                        datetime.now(timezone.utc).isoformat()}
            os.write(fd, json.dumps(info).encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            yield
        finally:
            try:
                self.lock_path.unlink()
            except OSError:  # pragma: no cover - already reclaimed
                pass

    # -- maintenance -------------------------------------------------------

    def iter_entry_paths(self):
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == QUARANTINE_DIR:
                continue
            for path in sorted(shard.iterdir()):
                yield path

    def verify(self) -> dict:
        """Walk every entry; quarantine corrupt ones, sweep stray temps.

        Returns ``{"entries", "ok", "corrupt", "stray_tmp",
        "quarantined_total"}`` — the report ``repro cache verify``
        prints.
        """
        entries = ok = corrupt = stray = 0
        for path in list(self.iter_entry_paths()):
            if path.suffix == ".tmp" or ".tmp" in path.name:
                stray += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            entries += 1
            key = path.stem
            try:
                text = path.read_text()
            except OSError:
                corrupt += 1
                self._evict_corrupt(key, path)
                continue
            if self._validate(key, text) is None:
                corrupt += 1
                self._evict_corrupt(key, path)
            else:
                ok += 1
        quarantine = self.root / QUARANTINE_DIR
        quarantined_total = (len(list(quarantine.iterdir()))
                             if quarantine.is_dir() else 0)
        return {"entries": entries, "ok": ok, "corrupt": corrupt,
                "stray_tmp": stray,
                "quarantined_total": quarantined_total}

    def clear(self) -> int:
        """Delete every entry (and the quarantine); returns the count."""
        removed = 0
        for path in list(self.iter_entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        quarantine = self.root / QUARANTINE_DIR
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        return sum(1 for path in self.iter_entry_paths()
                   if ".tmp" not in path.name)

    def total_bytes(self) -> int:
        total = 0
        for path in self.iter_entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total


def _flip_byte(path: Path, offset_from_end: int = 9) -> None:
    """Flip one byte of ``path`` in place (chaos corruption injector).

    Targets a byte near the end of the body — inside the serialized
    value/checksum region — so the corruption is semantic, not merely a
    JSON syntax error.
    """
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        offset = max(0, size - offset_from_end)
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x20]) if byte else b"X")


def as_cache(cache) -> SolveCache | None:
    """Coerce a cache argument (None | path | SolveCache)."""
    if cache is None or isinstance(cache, SolveCache):
        return cache
    return SolveCache(cache)
