"""Zero-cost-when-disabled tracing and metrics for the solver stack.

The paper's evidence is a pile of SPICE-style numbers; trusting them
means being able to *see* the solver that produced them. This module is
the observability substrate the solvers and the experiment engine emit
into:

* a :class:`Tracer` protocol with three primitive instruments —
  **counters** (``count``), **value histograms** (``observe``) and
  **phase timers** (``phase``) — plus per-point lifecycle hooks;
* :class:`NullTracer`, an activated-but-silent tracer whose emission
  methods are no-ops. The *default* state is cheaper still: the
  ambient tracer is ``None`` and every instrumentation site guards on
  ``tracer is not None``, so the disabled hot path costs one pointer
  compare per solve (bench-guarded at ≤2 % — see
  :func:`repro.analysis.bench.bench_tracer_overhead`);
* :class:`CollectingTracer`, the real recorder: allocation-light dicts
  of counters, :class:`Histogram` moment accumulators, and monotonic
  phase timers, snapshotting to a JSON-ready dict;
* :class:`ProfilingTracer`, a :class:`CollectingTracer` that wraps each
  activation in :mod:`cProfile` and embeds the hottest functions in its
  snapshot — opt-in per campaign point;
* the ``repro-trace-v1`` document: :func:`aggregate_traces` merges
  per-point snapshots (in canonical ordinal order, so a pooled campaign
  merges exactly like a serial one) into a manifest section, and
  :func:`render_trace` / :func:`trace_outliers` turn a stored document
  back into a convergence summary with outlier flagging for the
  ``repro trace`` CLI.

What the solvers emit (names are stable — the manifest schema documents
them):

======================  =====================================================
``dc.solves``            counter: DC retry-ladder solves
``dc.converged.<s>``     counter: ladder wins per strategy (newton/gmin/...)
``dc.failed``            counter: ladders exhausted without convergence
``dc.ladder_depth``      histogram: attempts per DC solve (1 = plain Newton)
``dc.wall_s``            histogram: wall time per DC solve
``newton.iterations``    histogram: Newton iterations per converged attempt
``newton.failures``      counter: non-converged Newton attempts
``newton.condition_log10``  histogram: log10 1-norm Jacobian condition
                         estimate at convergence (CollectingTracer opt-out
                         via ``condition_estimates=False``)
``tran.runs``            counter: transient runs
``tran.steps_accepted``  counter: accepted transient steps
``tran.steps_rejected_dv``  counter: accuracy (dv) rejections
``tran.newton_failures``    counter: per-step Newton failures
``tran.halvings``        counter: total step halvings
``tran.stalled``         counter: stalled (abandoned) runs
``tran.h_accepted``      histogram: accepted step sizes [s] (the
                         step-controller a.k.a. LTE histogram)
``tran.h_rejected``      histogram: rejected step sizes [s]
``assembly.base_hit``    counter: base-matrix cache hits
``assembly.base_miss``   counter: base-matrix cache rebuilds
``phase.dc``             timer: wall seconds inside DC ladders
``phase.transient``      timer: wall seconds inside transient marches
``phase.op``             timer: wall seconds inside OperatingPoint.run
``batch.*``              counters from the batched SPMD backend
                         (:mod:`repro.spice.batch`): ``batch.newton.
                         solves/iterations/lane_iterations/
                         lane_failures``, ``batch.dc.evicted`` (lanes
                         sent to the serial retry ladder), ``batch.
                         tran.lanes/super_steps/steps_accepted/
                         stalled``
======================  =====================================================

Activation is ambient and scoped, mirroring
:func:`repro.runtime.faults.inject`::

    with trace(CollectingTracer()) as tracer:
        Transient(ckt, 1e-9).run()
    print(tracer.snapshot())

Campaign tracing is requested either per-spec
(``ExperimentSpec.trace = "collect" | "profile"``) or process-wide via
:func:`set_campaign_trace_mode` (what the CLI ``--trace`` flag does);
the engine threads the mode into its worker tasks explicitly, so
process pools behave identically to serial runs.
"""

from __future__ import annotations

import math
import time as _time
from contextlib import contextmanager

#: Version tag for the trace manifest section; bump on format changes.
TRACE_SCHEMA = "repro-trace-v1"

#: Recognised campaign trace modes (None disables).
TRACE_MODES = ("collect", "profile")

#: Outlier rule used by :func:`trace_outliers`: a point is flagged when
#: a metric exceeds mean + this many standard deviations of the
#: campaign distribution (and the distribution actually varies).
OUTLIER_SIGMA = 3.0

_ACTIVE = None  # ambient tracer; None == tracing disabled (the default)
_CAMPAIGN_MODE = None  # process-wide campaign trace mode for the CLI


# ---------------------------------------------------------------------------
# Instruments


class Histogram:
    """Streaming moment accumulator: count/sum/min/max/sumsq.

    Deliberately not a binned histogram: moments merge exactly and
    deterministically across campaign points and worker processes
    (addition in a fixed order), which binned quantiles do not.
    """

    __slots__ = ("count", "total", "sumsq", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        var = self.sumsq / self.count - self.mean ** 2
        return math.sqrt(var) if var > 0.0 else 0.0

    def to_json(self) -> dict:
        return {"count": self.count, "total": self.total,
                "sumsq": self.sumsq,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None}

    @classmethod
    def from_json(cls, payload: dict) -> "Histogram":
        h = cls()
        h.count = int(payload.get("count", 0))
        h.total = float(payload.get("total", 0.0))
        h.sumsq = float(payload.get("sumsq", 0.0))
        if h.count:
            h.min = float(payload["min"])
            h.max = float(payload["max"])
        return h

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)


# ---------------------------------------------------------------------------
# Tracers


class _NullPhase:
    """Reusable no-op context: cheaper than a generator context manager.

    ``Tracer.phase`` (and thus :class:`NullTracer`) returns one shared
    instance, so a disabled-but-activated tracer pays two attribute
    lookups per phase instead of a ``contextlib`` generator allocation
    — the difference between ~0.2 and ~2.4 µs per solve, which is what
    keeps the NullTracer inside the ≤2 % bench bound.
    """

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class Tracer:
    """Protocol for solver telemetry sinks.

    Subclasses override the three instruments. The base class documents
    the contract; it is usable directly only as a no-op.

    Attributes:
        condition_estimates: when False, the Newton solver skips the
            O(n^3) Jacobian condition estimate entirely.
    """

    condition_estimates = False

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution ``name``."""

    def phase(self, name: str):
        """Context manager timing a phase into timer ``name`` [seconds].

        The base (and :class:`NullTracer`) implementation returns a
        shared no-op context object rather than a generator context
        manager; see :class:`_NullPhase`.
        """
        return _NULL_PHASE

    # -- lifecycle (driven by the ambient ``trace`` context manager) ------

    def start(self) -> None:
        """Called when the tracer becomes ambient."""

    def stop(self) -> None:
        """Called when the tracer stops being ambient."""

    def snapshot(self) -> dict:
        """JSON-ready dict of everything recorded so far."""
        return {}


class NullTracer(Tracer):
    """Activated tracer that records nothing.

    Exists to *bound the cost of the instrumentation itself*: with a
    NullTracer ambient every guard passes and every emission call is
    made, but nothing is computed or stored. ``repro bench`` asserts
    this costs ≤2 % over the disabled (ambient ``None``) hot path.
    """


class CollectingTracer(Tracer):
    """Records counters, histograms, and phase timers in-process."""

    condition_estimates = True

    def __init__(self, condition_estimates: bool = True):
        self.condition_estimates = condition_estimates
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, float] = {}

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.add(value)

    @contextmanager
    def phase(self, name: str):
        started = _time.perf_counter()
        try:
            yield
        finally:
            elapsed = _time.perf_counter() - started
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def snapshot(self) -> dict:
        return {
            "counters": dict(self.counters),
            "histograms": {name: hist.to_json()
                           for name, hist in self.histograms.items()},
            "timers": dict(self.timers),
        }


class ProfilingTracer(CollectingTracer):
    """CollectingTracer plus an opt-in cProfile per activation.

    The profile runs from :meth:`start` to :meth:`stop` (the engine
    activates a fresh tracer around each campaign point), and the
    snapshot embeds the ``top`` hottest functions by cumulative time as
    plain text — heavyweight by design, never on by default.
    """

    def __init__(self, top: int = 15, condition_estimates: bool = True):
        super().__init__(condition_estimates=condition_estimates)
        self.top = top
        self._profile = None
        self.profile_text: str | None = None

    def start(self) -> None:
        import cProfile
        self._profile = cProfile.Profile()
        self._profile.enable()

    def stop(self) -> None:
        if self._profile is None:
            return
        import io
        import pstats
        self._profile.disable()
        stream = io.StringIO()
        stats = pstats.Stats(self._profile, stream=stream)
        stats.sort_stats("cumulative").print_stats(self.top)
        self.profile_text = stream.getvalue()
        self._profile = None

    def snapshot(self) -> dict:
        snap = super().snapshot()
        if self.profile_text is not None:
            snap["profile"] = self.profile_text
        return snap


# ---------------------------------------------------------------------------
# Ambient activation


def active_tracer():
    """The ambient tracer, or None when tracing is disabled."""
    return _ACTIVE


@contextmanager
def trace(tracer: Tracer):
    """Activate ``tracer`` ambiently for a region of code.

    Nested activations shadow (and restore) the outer tracer, matching
    :func:`repro.runtime.faults.inject` semantics.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    tracer.start()
    try:
        yield tracer
    finally:
        tracer.stop()
        _ACTIVE = previous


def make_tracer(mode: str) -> CollectingTracer:
    """Tracer instance for a campaign trace mode."""
    if mode == "profile":
        return ProfilingTracer()
    if mode == "collect":
        return CollectingTracer()
    raise ValueError(f"unknown trace mode {mode!r}; "
                     f"expected one of {TRACE_MODES}")


def set_campaign_trace_mode(mode: str | None) -> None:
    """Process-wide campaign trace mode (what ``--trace`` sets).

    ``run_experiment`` consults this when the spec itself does not
    request tracing; the chosen mode is threaded *explicitly* into
    worker tasks, so pools behave identically to serial runs.
    """
    if mode is not None and mode not in TRACE_MODES:
        raise ValueError(f"unknown trace mode {mode!r}; "
                         f"expected one of {TRACE_MODES}")
    global _CAMPAIGN_MODE
    _CAMPAIGN_MODE = mode


def campaign_trace_mode() -> str | None:
    return _CAMPAIGN_MODE


# ---------------------------------------------------------------------------
# repro-trace-v1 documents


def _merge_snapshot(totals: dict, snapshot: dict) -> None:
    for name, value in snapshot.get("counters", {}).items():
        totals["counters"][name] = totals["counters"].get(name, 0) + value
    for name, payload in snapshot.get("histograms", {}).items():
        hist = totals["histograms"].get(name)
        if hist is None:
            hist = totals["histograms"][name] = Histogram()
        hist.merge(Histogram.from_json(payload))
    for name, value in snapshot.get("timers", {}).items():
        totals["timers"][name] = totals["timers"].get(name, 0.0) + value


def aggregate_traces(point_traces: list, mode: str) -> dict:
    """Build a ``repro-trace-v1`` document from per-point snapshots.

    Args:
        point_traces: ``(index, snapshot)`` pairs in canonical
            (ordinal) row order. Merging in that fixed order makes the
            aggregate independent of pool completion order.
        mode: the campaign trace mode that produced the snapshots.
    """
    totals: dict = {"counters": {}, "histograms": {}, "timers": {}}
    points = []
    for index, snapshot in point_traces:
        if snapshot is None:
            continue
        _merge_snapshot(totals, snapshot)
        points.append({"index": index, **snapshot})
    return {
        "schema": TRACE_SCHEMA,
        "mode": mode,
        "points": points,
        "totals": {
            "counters": totals["counters"],
            "histograms": {name: hist.to_json()
                           for name, hist in totals["histograms"].items()},
            "timers": totals["timers"],
        },
    }


#: Per-point scalars examined for outliers: (label, extractor).
def _point_metric(point: dict, histogram: str, field: str = "total"):
    payload = point.get("histograms", {}).get(histogram)
    if not payload or not payload.get("count"):
        return None
    if field == "max":
        return float(payload["max"])
    return float(payload[field])


_OUTLIER_METRICS = (
    ("newton iterations", lambda p: _point_metric(p, "newton.iterations")),
    ("worst attempt iterations",
     lambda p: _point_metric(p, "newton.iterations", "max")),
    ("dc ladder depth", lambda p: _point_metric(p, "dc.ladder_depth", "max")),
    ("newton failures",
     lambda p: float(p.get("counters", {}).get("newton.failures", 0))
     if p.get("counters") else None),
    ("dc wall seconds", lambda p: _point_metric(p, "dc.wall_s")),
    ("transient halvings",
     lambda p: float(p.get("counters", {}).get("tran.halvings", 0))
     if p.get("counters") else None),
)


def trace_outliers(document: dict, sigma: float = OUTLIER_SIGMA) -> list[dict]:
    """Flag campaign points whose convergence behaviour is anomalous.

    A point is an outlier on a metric when its value exceeds
    ``mean + sigma * std`` over all points (requires >= 4 points and a
    non-degenerate distribution). Returns records sorted by how far
    out each point is: ``{"index", "metric", "value", "mean", "std"}``.
    """
    points = document.get("points", [])
    if len(points) < 4:
        return []
    flagged = []
    for label, extract in _OUTLIER_METRICS:
        values = [(p.get("index"), extract(p)) for p in points]
        values = [(i, v) for i, v in values if v is not None]
        if len(values) < 4:
            continue
        data = [v for _, v in values]
        mean = sum(data) / len(data)
        var = sum((v - mean) ** 2 for v in data) / len(data)
        std = math.sqrt(var) if var > 0.0 else 0.0
        if std == 0.0:
            continue
        threshold = mean + sigma * std
        for index, value in values:
            if value > threshold:
                flagged.append({"index": index, "metric": label,
                                "value": value, "mean": mean, "std": std,
                                "sigmas": (value - mean) / std})
    flagged.sort(key=lambda r: -r["sigmas"])
    return flagged


def _format_hist(name: str, payload: dict) -> str:
    hist = Histogram.from_json(payload)
    return (f"    {name:<28s} n={hist.count:<7d} mean={hist.mean:.4g}  "
            f"min={hist.min:.4g}  max={hist.max:.4g}  std={hist.std:.4g}")


def render_trace(document: dict, limit: int = 10) -> str:
    """Human-readable convergence summary of a stored trace document."""
    schema = document.get("schema")
    lines = [f"trace ({schema}, mode={document.get('mode')}): "
             f"{len(document.get('points', []))} points"]
    if schema != TRACE_SCHEMA:
        lines.append(f"  WARNING: unknown schema (this build reads "
                     f"{TRACE_SCHEMA})")
    totals = document.get("totals", {})
    counters = totals.get("counters", {})
    if counters:
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name:<28s} {counters[name]}")
    histograms = totals.get("histograms", {})
    if histograms:
        lines.append("  histograms:")
        for name in sorted(histograms):
            lines.append(_format_hist(name, histograms[name]))
    timers = totals.get("timers", {})
    if timers:
        lines.append("  phase wall time [s]:")
        for name in sorted(timers):
            lines.append(f"    {name:<28s} {timers[name]:.4f}")
    outliers = trace_outliers(document)
    if outliers:
        lines.append(f"  outliers (> mean + {OUTLIER_SIGMA:g} sigma):")
        for record in outliers[:limit]:
            lines.append(
                f"    point {record['index']!r}: {record['metric']} = "
                f"{record['value']:.4g} ({record['sigmas']:.1f} sigma "
                f"above mean {record['mean']:.4g})")
        if len(outliers) > limit:
            lines.append(f"    (+{len(outliers) - limit} more)")
    elif len(document.get("points", [])) >= 4:
        lines.append("  no convergence outliers")
    profiled = [p for p in document.get("points", []) if "profile" in p]
    if profiled:
        lines.append(f"  cProfile captured for {len(profiled)} points "
                     f"(see manifest for full listings)")
    return "\n".join(lines)
