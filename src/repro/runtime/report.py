"""Structured solver diagnostics.

Every DC solve produces a :class:`SolveReport` (one
:class:`AttemptRecord` per strategy rung tried) and every transient run
produces a :class:`TransientReport`. Both are attached to results on
success and to :class:`~repro.errors.ConvergenceError` on failure, so
callers — and campaign aggregators — can see not just *that* a solve
failed but how close each strategy got.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AttemptRecord:
    """One rung of the retry ladder.

    Attributes:
        strategy: ladder stage — ``"newton"``, ``"gmin"``, ``"source"``
            (or ``"transient"`` for per-step solves).
        detail: rung parameters, e.g. ``"gmin=0.001"`` or
            ``"scale=0.4"``.
        iterations: Newton iterations spent in this attempt.
        residual: last max node-voltage update [V] — the convergence
            residual proxy — or None if the attempt died before one was
            computed (e.g. a singular matrix on the first iteration).
        converged: whether this attempt reached tolerance.
        injected_fault: fault kind forced by an active
            :class:`~repro.runtime.faults.FaultPlan`, if any.
        error: failure message for non-converged attempts.
    """

    strategy: str
    detail: str = ""
    iterations: int = 0
    residual: float | None = None
    converged: bool = False
    injected_fault: str | None = None
    error: str | None = None

    def describe(self) -> str:
        status = "ok" if self.converged else "fail"
        text = f"{self.strategy}"
        if self.detail:
            text += f"[{self.detail}]"
        text += f": {status}, {self.iterations} iters"
        if self.residual is not None:
            text += f", residual {self.residual:.3e} V"
        if self.injected_fault:
            text += f", injected={self.injected_fault}"
        if self.error and not self.converged:
            text += f" ({self.error})"
        return text


@dataclass
class SolveReport:
    """Full history of one DC solve across all retry strategies."""

    attempts: list[AttemptRecord] = field(default_factory=list)
    converged: bool = False
    winning_strategy: str | None = None
    wall_time_s: float = 0.0
    abandoned_reason: str | None = None

    @property
    def total_iterations(self) -> int:
        return sum(a.iterations for a in self.attempts)

    @property
    def strategies_tried(self) -> tuple[str, ...]:
        seen: list[str] = []
        for attempt in self.attempts:
            if attempt.strategy not in seen:
                seen.append(attempt.strategy)
        return tuple(seen)

    def best_attempt(self) -> AttemptRecord | None:
        """The attempt that got closest to convergence.

        A converged attempt wins outright; otherwise the smallest
        recorded residual; otherwise the last attempt.
        """
        if not self.attempts:
            return None
        for attempt in self.attempts:
            if attempt.converged:
                return attempt
        with_residual = [a for a in self.attempts if a.residual is not None]
        if with_residual:
            return min(with_residual, key=lambda a: a.residual)
        return self.attempts[-1]

    def strategy_summary(self) -> str:
        counts: dict[str, int] = {}
        for attempt in self.attempts:
            counts[attempt.strategy] = counts.get(attempt.strategy, 0) + 1
        return ", ".join(f"{name} x{n}" for name, n in counts.items())

    def pretty(self, title: str = "") -> str:
        lines = [title] if title else []
        status = (f"converged via {self.winning_strategy}" if self.converged
                  else "FAILED")
        lines.append(f"  {status}: {len(self.attempts)} attempts, "
                     f"{self.total_iterations} total iterations, "
                     f"{self.wall_time_s * 1e3:.1f} ms")
        if self.abandoned_reason:
            lines.append(f"  abandoned: {self.abandoned_reason}")
        for attempt in self.attempts:
            lines.append(f"    {attempt.describe()}")
        return "\n".join(lines)


@dataclass
class TransientReport:
    """Step-control history of one transient run."""

    steps_accepted: int = 0
    steps_rejected_dv: int = 0
    newton_failures: int = 0
    total_halvings: int = 0
    injected_faults: list[str] = field(default_factory=list)
    stalled: bool = False
    #: Report of the t=0 DC operating-point solve that seeded the march.
    dc_report: SolveReport | None = None

    @property
    def clean(self) -> bool:
        """True when no solves failed (dv rejections are routine
        accuracy control, not faults, and don't count)."""
        return self.newton_failures == 0 and not self.stalled

    def pretty(self, title: str = "") -> str:
        lines = [title] if title else []
        lines.append(f"  accepted {self.steps_accepted} steps, "
                     f"rejected {self.steps_rejected_dv} (dv), "
                     f"{self.newton_failures} Newton failures, "
                     f"{self.total_halvings} halvings"
                     + (", STALLED" if self.stalled else ""))
        for fault in self.injected_faults:
            lines.append(f"    injected: {fault}")
        if self.dc_report is not None and not self.dc_report.converged:
            lines.append(self.dc_report.pretty("  t=0 DC solve:"))
        return "\n".join(lines)
