"""Seed-stable parallel campaign execution.

Campaign drivers (Monte Carlo, delay-surface sweeps, functional grids,
PVT corners) are embarrassingly parallel: every sample is identified by
a small picklable task tuple and derives all of its randomness from the
task itself (e.g. ``SeedSequence([seed, index])``), never from shared
state. :func:`parallel_map` exploits that: the *same* module-level
worker function runs in-process when ``workers <= 1`` and in a process
pool otherwise, so parallel results are bitwise identical to serial
ones, sample for sample.

Design points:

* **Chunked submission** — tasks are grouped into chunks so per-task
  IPC overhead stays small relative to sample runtime; a chunk is one
  pickled round trip.
* **Completion order** — results are yielded as their chunk finishes,
  not in task order. Workers embed the sample index in their return
  value, and drivers sort at the end, so ordering is an observability
  property (progress callbacks), not a correctness one.
* **Interrupt safety** — when the consumer stops iterating (Ctrl-C, an
  abort threshold), the generator's cleanup cancels outstanding chunks
  and shuts the pool down without waiting, preserving the
  partial-result semantics of the serial path.
* **Worker exceptions propagate** in both modes. Campaigns that must
  quarantine per-sample failures catch them *inside* the worker and
  encode them in the return value; an exception escaping the worker is
  an engine bug, not a sample failure.

Fault-injection campaigns (:class:`~repro.runtime.faults.FaultPlan`)
must stay serial: plans count firings in mutable in-process state that
a pool cannot share. Drivers force ``workers = 1`` when a plan is
attached.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def _run_chunk(worker: Callable, chunk: Sequence, context=None) -> list:
    if context is None:
        return [worker(task) for task in chunk]
    return [worker(task, context) for task in chunk]


def default_chunk_size(n_tasks: int, workers: int) -> int:
    """Roughly four chunks per worker, so stragglers rebalance."""
    return max(1, -(-n_tasks // (workers * 4)))


def parallel_map(worker: Callable[[T], R], tasks: Iterable[T], *,
                 workers: int = 1,
                 chunk_size: int | None = None,
                 context=None) -> Iterator[R]:
    """Yield ``worker(task)`` for every task, possibly from a pool.

    Args:
        worker: a *module-level* function (pickled by reference for the
            pool path). It must derive everything from its task
            argument (plus ``context``, when given); results must be
            picklable.
        tasks: task values; consumed eagerly.
        workers: ``<= 1`` runs serially in-process (no pool, no pickle,
            task order preserved) — the behavior-identical default.
        chunk_size: tasks per pool submission; default
            :func:`default_chunk_size`.
        context: optional task-invariant payload. When given, the
            worker is called as ``worker(task, context)`` and the
            context is pickled **once per chunk submission** instead of
            once per task — campaign specs put the heavy shared
            arguments (measure function, stage, trace mode, solver)
            here so per-point task tuples stay tiny.

    Yields results in completion order (== task order when serial).
    """
    tasks = list(tasks)
    if workers is None or workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield worker(task) if context is None else worker(task, context)
        return
    if chunk_size is None:
        chunk_size = default_chunk_size(len(tasks), workers)
    chunks = [tasks[i:i + chunk_size]
              for i in range(0, len(tasks), chunk_size)]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    executor = ProcessPoolExecutor(max_workers=min(workers, len(chunks)),
                                   mp_context=ctx)
    try:
        futures = [executor.submit(_run_chunk, worker, chunk, context)
                   for chunk in chunks]
        for future in as_completed(futures):
            for result in future.result():
                yield result
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
