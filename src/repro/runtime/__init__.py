"""Resilient solver runtime: retry policies, diagnostics, fault injection.

The paper's evidence is built from campaigns — 1000-sample Monte Carlo
tables and full VDDI×VDDO sweeps — where a single pathological sample
must degrade the result, not destroy it. This package holds the pieces
that make every solve survivable and observable:

* :class:`RetryPolicy` — configurable escalation schedule (gmin ladder,
  source-stepping ramp, timestep-halving budget, wall-clock and
  iteration budgets) consumed by :func:`repro.spice.newton.solve_dc`
  and :class:`repro.spice.transient.Transient`;
* :class:`SolveReport` / :class:`TransientReport` — structured
  per-solve diagnostics recording every attempt, how far it got, and
  which fallback finally converged;
* :class:`FaultPlan` — deterministic fault injection (singular
  Jacobians, NaN residuals, iteration exhaustion, timestep stalls,
  whole-sample failures) so the fallback ladder is actually testable;
* :class:`CampaignDiagnostics` / :class:`SampleFailure` — per-campaign
  aggregation of quarantined samples for the analysis drivers;
* :func:`parallel_map` — seed-stable process-pool execution of
  campaign samples, with chunked submission and completion-order
  delivery, identical to serial execution at ``workers = 1``;
* :mod:`repro.runtime.experiment` — the unified experiment engine:
  declarative :class:`ExperimentSpec` campaigns executed by
  :func:`run_experiment` into typed :class:`ResultSet` rows, persisted
  with provenance through :class:`ArtifactStore`;
* :mod:`repro.runtime.telemetry` — zero-cost-when-disabled tracing:
  ambient :class:`Tracer` activation via :func:`trace`, per-solve
  counters/histograms/phase timers emitted by the spice layer, and
  ``repro-trace-v1`` campaign aggregation rendered by ``repro trace``;
* :mod:`repro.runtime.cache` — crash-safe content-addressed solve
  cache (:class:`SolveCache`): atomic commits, per-entry checksums
  with quarantine-on-corruption, pid+start-time stale-lock reclaim,
  read-only degraded mode on I/O errors;
* :mod:`repro.runtime.service` — supervised campaign job service
  (:class:`CampaignService`): write-ahead journal, worker
  heartbeat/watchdog, crash requeue with capped backoff, SIGTERM-clean
  resumable shutdown — crashed-and-resumed runs are bitwise identical
  to uninterrupted ones;
* :func:`sigterm_interrupts` — SIGTERM↔Ctrl-C parity for campaigns.

This package deliberately depends only on :mod:`repro.errors` (plus
the standard library) at import time, so the solver layers can import
it freely; the experiment store reaches up to :mod:`repro.pdk` and
:mod:`repro.core` only lazily, inside functions.
"""

from repro.runtime.cache import CacheStats, SolveCache, cache_key
from repro.runtime.campaign import CampaignDiagnostics, SampleFailure
from repro.runtime.experiment import (
    ArtifactStore, ExperimentPoint, ExperimentSpec, ResultRow, ResultSet,
    register_codec, run_experiment,
)
from repro.runtime.faults import (
    FAULT_KINDS, FaultPlan, FaultSpec, SOLVE_FAULT_KINDS, active_plan,
    inject,
)
from repro.runtime.parallel import default_chunk_size, parallel_map
from repro.runtime.policy import (
    DEFAULT_GMIN_LADDER, DEFAULT_SOURCE_RAMP, RetryPolicy,
)
from repro.runtime.report import AttemptRecord, SolveReport, TransientReport
from repro.runtime.service import (
    CampaignService, ServiceConfig, ServiceStats,
)
from repro.runtime.signals import sigterm_interrupts
from repro.runtime.telemetry import (
    TRACE_MODES, TRACE_SCHEMA, CollectingTracer, Histogram, NullTracer,
    ProfilingTracer, Tracer, active_tracer, aggregate_traces,
    campaign_trace_mode, make_tracer, render_trace,
    set_campaign_trace_mode, trace, trace_outliers,
)

__all__ = [
    "ArtifactStore",
    "AttemptRecord",
    "CacheStats",
    "CampaignDiagnostics",
    "CampaignService",
    "ServiceConfig",
    "ServiceStats",
    "SolveCache",
    "cache_key",
    "sigterm_interrupts",
    "ExperimentPoint",
    "ExperimentSpec",
    "ResultRow",
    "ResultSet",
    "register_codec",
    "run_experiment",
    "DEFAULT_GMIN_LADDER",
    "DEFAULT_SOURCE_RAMP",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "SOLVE_FAULT_KINDS",
    "SampleFailure",
    "SolveReport",
    "TransientReport",
    "TRACE_MODES",
    "TRACE_SCHEMA",
    "CollectingTracer",
    "Histogram",
    "NullTracer",
    "ProfilingTracer",
    "Tracer",
    "active_plan",
    "active_tracer",
    "aggregate_traces",
    "campaign_trace_mode",
    "default_chunk_size",
    "inject",
    "make_tracer",
    "parallel_map",
    "render_trace",
    "set_campaign_trace_mode",
    "trace",
    "trace_outliers",
]
