"""Supervised campaign service: durable jobs over watchdogged workers.

``run_experiment`` executes a campaign *in this process*; this module
is the serving layer above it — the front-end ROADMAP item 2 asks for,
built failure-first. A :class:`CampaignService` turns an
:class:`~repro.runtime.experiment.spec.ExperimentSpec` into a
**durable job**: points are split into chunks, each chunk runs in its
own worker process, and every state transition is appended to a
write-ahead journal before it takes effect, so a service killed at any
instant can be restarted and finish the same run.

Failure machinery, in the order it engages:

* **Per-point result streaming** — a worker appends one fsynced JSON
  line per completed point to its chunk file. The file doubles as the
  worker's heartbeat (its mtime advances with every point), and every
  line written survives any later crash of that worker.
* **Watchdog** — a worker whose process died *or* whose heartbeat went
  stale (hung solve, livelock) is killed and its chunk requeued. The
  completed prefix of its chunk file is **salvaged**, so a crash only
  recomputes the points that were genuinely lost.
* **Capped exponential backoff** — a requeued chunk waits
  ``backoff_base_s * 2^(attempt-1)`` (capped) before redispatch; after
  ``max_attempts`` the missing points are quarantined as ``err`` rows
  rather than retried forever.
* **SIGTERM-clean shutdown** — SIGTERM and Ctrl-C both stop dispatch,
  terminate workers, salvage their partial chunks, and persist a
  resumable manifest with ``interrupted=True``.
* **Crash-equals-resume invariant** — workers derive every payload
  from point params alone and encode it through the spec's codec
  (bitwise float round-trip), and rows merge in canonical ordinal
  order; a crashed-and-resumed run is therefore bitwise identical to
  an uninterrupted one. The chaos suite (``pytest -m chaos``) asserts
  exactly that under injected kills, hangs, torn writes, stale locks
  and journal ENOSPC.

The journal (``<run>/service/journal.jsonl``) is append-only and
tolerant on both ends: a truncated tail or a corrupt interior line is
skipped on replay, and an append that fails (disk full — injectable as
the ``journal_disk_full`` fault) degrades journaling with one warning
instead of failing the campaign: durability is best-effort, results
are not.

Chaos injection (ambient :class:`~repro.runtime.faults.FaultPlan`):
``worker_crash`` with strategy ``"kill"`` (default), ``"hang"``, or
``"torn"`` — consulted *parent-side* at dispatch (so a requeued chunk
does not re-crash forever) and executed by the worker mid-chunk.
"""

from __future__ import annotations

import errno
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.errors import AnalysisError
from repro.runtime import telemetry
from repro.runtime.cache import as_cache, experiment_point_key
from repro.runtime.experiment.resultset import (
    ResultRow, ResultSet, _decode_index, get_codec,
)
from repro.runtime.experiment.store import ArtifactStore
from repro.runtime.faults import active_plan
from repro.runtime.signals import sigterm_interrupts

#: Version tag for journal records; bump when fields change meaning.
JOURNAL_SCHEMA = "repro-journal-v1"

JOURNAL_NAME = "journal.jsonl"
SERVICE_DIR = "service"
CHUNKS_DIR = "chunks"

#: Crash modes a ``worker_crash`` fault can select via its ``strategy``
#: field (None / "kill" both mean kill).
CRASH_MODES = ("kill", "hang", "torn")


@dataclass
class ServiceConfig:
    """Supervision knobs for one :class:`CampaignService`."""

    #: Points per worker chunk.
    chunk_size: int = 4
    #: Concurrent worker processes.
    workers: int = 2
    #: Heartbeat staleness after which a live worker is presumed hung
    #: and killed (its chunk file's mtime is the heartbeat).
    heartbeat_timeout_s: float = 30.0
    #: Supervisor poll interval.
    poll_interval_s: float = 0.02
    #: Dispatch attempts per chunk before its remaining points are
    #: quarantined.
    max_attempts: int = 3
    #: First requeue delay; doubles per attempt.
    backoff_base_s: float = 0.25
    #: Requeue delay ceiling.
    backoff_cap_s: float = 5.0

    def validate(self) -> None:
        if self.chunk_size < 1:
            raise AnalysisError("service chunk_size must be >= 1")
        if self.workers < 1:
            raise AnalysisError("service workers must be >= 1")
        if self.max_attempts < 1:
            raise AnalysisError("service max_attempts must be >= 1")
        if self.heartbeat_timeout_s <= 0:
            raise AnalysisError("heartbeat_timeout_s must be > 0")


@dataclass
class ServiceStats:
    """Supervision counters for one job run."""

    chunks_dispatched: int = 0
    chunks_completed: int = 0
    crashes: int = 0
    watchdog_kills: int = 0
    requeues: int = 0
    salvaged_rows: int = 0
    quarantined: int = 0
    cache_hits: int = 0

    def to_json(self) -> dict:
        from dataclasses import fields
        return {f.name: getattr(self, f.name) for f in fields(self)}


# ---------------------------------------------------------------------------
# Write-ahead journal


class JournalWriter:
    """Append-only fsynced JSONL journal that degrades, never fails.

    Every append consults the ambient fault plan for the
    ``journal_disk_full`` chaos point; a real or injected ``OSError``
    flips the journal into a degraded mode (one warning, further
    appends dropped) — the campaign's correctness never depends on the
    journal, only its restartability does.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.degraded = False
        self.records_written = 0

    def append(self, record: dict) -> None:
        if self.degraded:
            return
        record = {"schema": JOURNAL_SCHEMA,
                  "utc": datetime.now(timezone.utc).isoformat(),
                  **record}
        try:
            plan = active_plan()
            if plan is not None and plan.fires("journal_disk_full"):
                raise OSError(errno.ENOSPC, "injected: no space left "
                                            "on device")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self.records_written += 1
        except OSError as exc:
            self.degraded = True
            warnings.warn(
                f"campaign journal {self.path} degraded "
                f"({type(exc).__name__}: {exc}); the run continues "
                f"without journal durability", RuntimeWarning,
                stacklevel=2)


def replay_journal(path: str | Path) -> list[dict]:
    """Load journal records, skipping torn or corrupt lines.

    Damage-tolerant on purpose: the journal is written with one fsynced
    line per transition, so truncation can only tear the final line,
    and a bit-flipped interior line is dropped rather than trusted.
    """
    records = []
    path = Path(path)
    if not path.is_file():
        return records
    with open(path, errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


# ---------------------------------------------------------------------------
# Chunk workers


def _chunk_worker(tasks, out_path: str, codec: str, crash) -> None:
    """Measure a chunk of points, streaming one fsynced line per point.

    Runs in a child process. Per-point failures are encoded as ``err``
    records (quarantine must survive the process boundary). ``crash``
    is a chaos directive computed parent-side: ``None`` or
    ``(mode, after_points)`` with mode in :data:`CRASH_MODES`.
    """
    encode, _ = get_codec(codec)
    crash_mode, crash_after = crash if crash is not None else (None, None)
    with open(out_path, "a") as handle:
        for done, (measure, stage, index, params) in enumerate(tasks):
            if crash_mode is not None and done == crash_after:
                if crash_mode == "kill":
                    os._exit(137)
                if crash_mode == "hang":
                    # Stop heartbeating without exiting: only the
                    # supervisor's watchdog can reclaim this chunk.
                    time.sleep(3600.0)
                    os._exit(137)  # pragma: no cover - watchdog kills us
                if crash_mode == "torn":
                    # Die mid-write, leaving a torn record the salvager
                    # must reject.
                    handle.write('{"ordinal": 999999, "index": 999')
                    handle.flush()
                    os.fsync(handle.fileno())
                    os._exit(137)
            try:
                value = measure(params)
                record = {"index": index, "status": "ok",
                          "value": encode(value)}
            except Exception as exc:
                record = {"index": index, "status": "err", "stage": stage,
                          "error": f"{type(exc).__name__}: {exc}"}
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())


def _load_chunk_rows(path: Path, decode) -> dict:
    """Valid per-point records from a (possibly torn) chunk file."""
    rows: dict = {}
    if not path.is_file():
        return rows
    with open(path, errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                index = _decode_index(record["index"])
                status = record["status"]
                if status == "ok":
                    rows[index] = ("ok", decode(record["value"]))
                elif status == "err":
                    rows[index] = ("err", record.get("stage"),
                                   record.get("error"))
            except Exception:
                continue  # torn or corrupt line: salvage the rest
    return rows


# ---------------------------------------------------------------------------
# The service


@dataclass
class _Chunk:
    no: int
    points: list
    attempt: int = 0
    ready_at: float = 0.0


@dataclass
class _Active:
    chunk: _Chunk
    process: object
    out_path: Path
    started: float
    crash: tuple | None = None


class CampaignService:
    """Run experiment specs as supervised, durable, resumable jobs.

    Args:
        store: :class:`ArtifactStore` (or root path) that receives the
            run's rows + manifest and hosts the job's journal and chunk
            files (``<run>/service/``).
        cache: optional :class:`~repro.runtime.cache.SolveCache` (or
            root path) consulted before dispatch and filled from worker
            results — shared, by content key, with ``run_experiment``.
        config: supervision knobs (:class:`ServiceConfig`).
    """

    def __init__(self, store, cache=None,
                 config: ServiceConfig | None = None):
        self.store = (store if isinstance(store, ArtifactStore)
                      else ArtifactStore(store))
        self.cache = as_cache(cache)
        self.config = config or ServiceConfig()
        self.config.validate()
        self.stats = ServiceStats()

    # -- paths -------------------------------------------------------------

    def service_dir(self, run_id: str) -> Path:
        return self.store.path(run_id) / SERVICE_DIR

    def journal_path(self, run_id: str) -> Path:
        return self.service_dir(run_id) / JOURNAL_NAME

    def _chunk_path(self, run_id: str, chunk: _Chunk) -> Path:
        return (self.service_dir(run_id) / CHUNKS_DIR
                / f"chunk-{chunk.no:04d}-a{chunk.attempt}.jsonl")

    # -- telemetry ---------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        tracer = telemetry.active_tracer()
        if tracer is not None:
            tracer.count(f"service.{name}", n)

    # -- running -----------------------------------------------------------

    def run(self, spec, *, run_id: str | None = None, resume=None,
            progress=None) -> ResultSet:
        """Execute ``spec`` as a supervised job; returns its rows.

        Args:
            run_id: reuse an existing run id — required to *resume* a
                crashed or interrupted job in place (its journal, chunk
                files and stored rows are all salvaged).
            resume: a previous (partial) :class:`ResultSet`, exactly as
                for ``run_experiment``.
            progress: optional ``(index, value)`` callback, exceptions
                isolated.

        Returns a partial result (``interrupted=True``) on SIGTERM or
        Ctrl-C instead of raising. The returned rows are bitwise
        identical to ``run_experiment(spec)`` — crashes, retries and
        resumes included.
        """
        spec.validate()
        if spec.faults is not None:
            raise AnalysisError(
                "fault-injection campaigns must run through "
                "run_experiment (plans count firings in-process); the "
                "service's own chaos points are driven by the ambient "
                "plan instead")
        started = time.perf_counter()
        run_id = run_id or self.store._new_run_id(spec.name)
        journal = JournalWriter(self.journal_path(run_id))
        _, decode = get_codec(spec.codec)
        encode, _ = get_codec(spec.codec)

        ordinals = {point.index: n for n, point in enumerate(spec.points)}
        rows: list[ResultRow] = []
        if resume is not None:
            if not isinstance(resume, ResultSet):
                raise AnalysisError(
                    f"resume must be a ResultSet, got "
                    f"{type(resume).__name__}")
            if resume.name != spec.name:
                raise AnalysisError(
                    f"cannot resume job {spec.name!r} from a "
                    f"{resume.name!r} result set")
            extra = len(spec.points)
            for row in resume.rows:
                ordinal = ordinals.get(row.index)
                if ordinal is None:
                    ordinal, extra = extra, extra + 1
                rows.append(ResultRow(ordinal=ordinal, index=row.index,
                                      status=row.status, value=row.value,
                                      stage=row.stage, error=row.error))
        done = {row.index for row in rows}

        # Salvage rows a previous (crashed) service run already paid
        # for: every valid line in every chunk file counts.
        salvaged = self._salvage(run_id, decode)
        for index, outcome in salvaged.items():
            if index in done or index not in ordinals:
                continue
            done.add(index)
            rows.append(self._row_from_outcome(ordinals[index], index,
                                               outcome))
        if salvaged:
            self.stats.salvaged_rows += len(salvaged)
            self._count("salvaged_rows", len(salvaged))
            journal.append({"t": "salvaged", "rows": len(salvaged)})

        pending = [point for point in spec.points
                   if point.index not in done]

        # Cache lookups, by the same content keys run_experiment uses.
        cache_keys: dict = {}
        if self.cache is not None:
            still = []
            for point in pending:
                key = experiment_point_key(spec, point.params)
                cache_keys[point.index] = key
                hit, payload = self.cache.get(key)
                if hit:
                    rows.append(ResultRow(ordinal=ordinals[point.index],
                                          index=point.index, status="ok",
                                          value=decode(payload)))
                    self.stats.cache_hits += 1
                else:
                    still.append(point)
            pending = still

        journal.append({"t": "job", "run_id": run_id, "name": spec.name,
                        "points": len(spec.points),
                        "pending": len(pending),
                        "chunk_size": self.config.chunk_size,
                        "workers": self.config.workers})

        chunks = [
            _Chunk(no=n, points=pending[i:i + self.config.chunk_size])
            for n, i in enumerate(
                range(0, len(pending), self.config.chunk_size))
        ]
        queue: list[_Chunk] = list(chunks)
        active: list[_Active] = []
        failures = sum(1 for row in rows if not row.ok)
        progress_broken = False
        interrupted = False

        def _progress(index, value) -> None:
            nonlocal progress_broken
            if progress is None or progress_broken:
                return
            try:
                progress(index, value)
            except Exception as exc:
                progress_broken = True
                warnings.warn(
                    f"{spec.name} progress callback raised "
                    f"{type(exc).__name__}: {exc}; further calls "
                    f"suppressed, job continues", RuntimeWarning,
                    stacklevel=3)

        def _merge(index, outcome) -> None:
            nonlocal failures
            row = self._row_from_outcome(ordinals[index], index, outcome)
            rows.append(row)
            done.add(index)
            if row.ok:
                key = cache_keys.get(index)
                if self.cache is not None and key is not None:
                    self.cache.put(key, encode(row.value))
                _progress(index, row.value)
            else:
                failures += 1
                if (spec.max_failures is not None
                        and failures > spec.max_failures):
                    raise AnalysisError(
                        f"{spec.name} aborted: {failures} sample "
                        f"failures exceed "
                        f"max_failures={spec.max_failures}; last: "
                        f"{index}: [{row.stage}] {row.error}")

        term_scope = sigterm_interrupts()
        term_scope.__enter__()
        try:
            while queue or active:
                self._dispatch(queue, active, spec, run_id, journal)
                self._reap(queue, active, spec, run_id, journal, decode,
                           _merge)
                if queue or active:
                    time.sleep(self.config.poll_interval_s)
        except KeyboardInterrupt:
            interrupted = True
            self._shutdown(active, run_id, journal, decode, _merge)
        finally:
            term_scope.__exit__(None, None, None)

        rows.sort(key=lambda row: row.ordinal)
        result = ResultSet(name=spec.name, codec=spec.codec,
                           metadata=dict(spec.metadata), rows=rows,
                           interrupted=interrupted)
        wall_s = time.perf_counter() - started
        self.store.write(result, spec=spec, wall_s=wall_s, run_id=run_id)
        journal.append({"t": "interrupted" if interrupted else "finished",
                        "counts": result.counts,
                        "stats": self.stats.to_json()})
        return result

    # -- supervision internals ---------------------------------------------

    def _dispatch(self, queue, active, spec, run_id, journal) -> None:
        now = time.monotonic()
        while queue and len(active) < self.config.workers:
            ready = [c for c in queue if c.ready_at <= now]
            if not ready:
                return
            chunk = ready[0]
            queue.remove(chunk)
            chunk.attempt += 1
            crash = self._crash_directive(chunk)
            out_path = self._chunk_path(run_id, chunk)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            tasks = [(spec.measure, spec.stage, point.index, point.params)
                     for point in chunk.points]
            process = _spawn(_chunk_worker,
                             (tasks, str(out_path), spec.codec, crash))
            active.append(_Active(chunk=chunk, process=process,
                                  out_path=out_path,
                                  started=time.monotonic(), crash=crash))
            self.stats.chunks_dispatched += 1
            self._count("chunks_dispatched")
            journal.append({"t": "dispatch", "chunk": chunk.no,
                            "attempt": chunk.attempt,
                            "points": [p.index for p in chunk.points],
                            "pid": process.pid})

    @staticmethod
    def _crash_directive(chunk) -> tuple | None:
        """Consult the ambient plan for a worker_crash chaos order.

        Parent-side on purpose: the plan's firing counters live in the
        supervisor process, so a crash injected into attempt 1 is
        consumed and the requeued attempt runs clean — exactly how a
        real transient worker death behaves.
        """
        plan = active_plan()
        if plan is None:
            return None
        for mode in CRASH_MODES:
            if plan.fires("worker_crash", strategy=mode,
                          sample=chunk.no):
                return (mode, max(1, len(chunk.points) // 2))
        return None

    def _heartbeat_age(self, entry) -> float:
        try:
            mtime = entry.out_path.stat().st_mtime
        except OSError:
            return time.monotonic() - entry.started
        age_from_start = time.monotonic() - entry.started
        age_from_beat = time.time() - mtime
        return min(age_from_start, age_from_beat)

    def _reap(self, queue, active, spec, run_id, journal, decode,
              merge) -> None:
        for entry in list(active):
            process = entry.process
            if process.is_alive():
                if (self._heartbeat_age(entry)
                        <= self.config.heartbeat_timeout_s):
                    continue
                # Hung worker: no heartbeat inside the timeout. Kill it
                # and fall through to the crash path.
                self.stats.watchdog_kills += 1
                self._count("watchdog_kills")
                journal.append({"t": "watchdog_kill",
                                "chunk": entry.chunk.no,
                                "attempt": entry.chunk.attempt})
                _kill(process)
            process.join()
            active.remove(entry)
            chunk = entry.chunk
            outcomes = _load_chunk_rows(entry.out_path, decode)
            for point in list(chunk.points):
                if point.index in outcomes:
                    merge(point.index, outcomes[point.index])
                    chunk.points.remove(point)
            if not chunk.points:
                self.stats.chunks_completed += 1
                self._count("chunks_completed")
                journal.append({"t": "done", "chunk": chunk.no,
                                "attempt": chunk.attempt,
                                "exitcode": process.exitcode})
                continue
            # The worker died (or hung) with points outstanding.
            self.stats.crashes += 1
            self._count("crashes")
            journal.append({"t": "crash", "chunk": chunk.no,
                            "attempt": chunk.attempt,
                            "exitcode": process.exitcode,
                            "missing": [p.index for p in chunk.points]})
            if chunk.attempt >= self.config.max_attempts:
                for point in chunk.points:
                    merge(point.index,
                          ("err", "service",
                           f"worker died (exit {process.exitcode}) on "
                           f"all {chunk.attempt} attempts"))
                self.stats.quarantined += len(chunk.points)
                self._count("quarantined", len(chunk.points))
                journal.append({"t": "quarantine", "chunk": chunk.no,
                                "points": [p.index
                                           for p in chunk.points]})
                continue
            backoff = min(self.config.backoff_cap_s,
                          self.config.backoff_base_s
                          * (2.0 ** (chunk.attempt - 1)))
            chunk.ready_at = time.monotonic() + backoff
            queue.append(chunk)
            self.stats.requeues += 1
            self._count("requeues")
            journal.append({"t": "requeue", "chunk": chunk.no,
                            "attempt": chunk.attempt,
                            "backoff_s": backoff})

    def _shutdown(self, active, run_id, journal, decode, merge) -> None:
        """Terminate workers, salvage their partial chunks."""
        for entry in active:
            _kill(entry.process)
            entry.process.join()
        for entry in active:
            outcomes = _load_chunk_rows(entry.out_path, decode)
            for point in entry.chunk.points:
                if point.index in outcomes:
                    try:
                        merge(point.index, outcomes[point.index])
                    except AnalysisError:
                        pass  # max_failures during shutdown: keep rows
        journal.append({"t": "terminated",
                        "active": [e.chunk.no for e in active]})

    # -- salvage -----------------------------------------------------------

    def _salvage(self, run_id: str, decode) -> dict:
        """Outcomes recoverable from a previous run's chunk files."""
        chunk_dir = self.service_dir(run_id) / CHUNKS_DIR
        outcomes: dict = {}
        if not chunk_dir.is_dir():
            return outcomes
        for path in sorted(chunk_dir.iterdir()):
            outcomes.update(_load_chunk_rows(path, decode))
        return outcomes

    @staticmethod
    def _row_from_outcome(ordinal, index, outcome) -> ResultRow:
        if outcome[0] == "ok":
            return ResultRow(ordinal=ordinal, index=index, status="ok",
                             value=outcome[1])
        return ResultRow(ordinal=ordinal, index=index, status="err",
                         stage=outcome[1], error=outcome[2])


# ---------------------------------------------------------------------------
# Process plumbing


def _spawn(target, args):
    import multiprocessing
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    process = ctx.Process(target=target, args=args, daemon=True)
    process.start()
    return process


def _kill(process) -> None:
    try:
        process.kill()
    except (OSError, AttributeError, ValueError):  # pragma: no cover
        try:
            process.terminate()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Job files (the ``repro serve`` front door)


#: Experiments a job file may request; each maps to a spec builder.
JOB_EXPERIMENTS = ("mc", "functional")


def build_job_spec(request: dict):
    """Build an :class:`ExperimentSpec` from a job-file request.

    A job file is a small JSON object::

        {"experiment": "mc", "kind": "sstvs", "vddi": 0.8,
         "vddo": 1.2, "runs": 100, "seed": 7, "temperature_c": 27.0}

    ``experiment`` selects the builder (:data:`JOB_EXPERIMENTS`);
    remaining fields parameterize it. Unknown experiments or malformed
    fields raise :class:`AnalysisError` — the serve loop records the
    job as failed rather than crashing.
    """
    if not isinstance(request, dict):
        raise AnalysisError("job request must be a JSON object")
    experiment = request.get("experiment")
    if experiment == "mc":
        from repro.analysis.montecarlo import (
            MonteCarloConfig, monte_carlo_spec,
        )
        config = MonteCarloConfig(
            runs=int(request.get("runs", 25)),
            seed=int(request.get("seed", 20080310)),
            temperature_c=float(request.get("temperature_c", 27.0)))
        return monte_carlo_spec(str(request.get("kind", "sstvs")),
                                float(request.get("vddi", 0.8)),
                                float(request.get("vddo", 1.2)), config)
    if experiment == "functional":
        from repro.analysis.functional import functional_spec
        from repro.analysis.sweep import SweepGrid
        grid = SweepGrid.with_step(float(request.get("step", 0.2)))
        return functional_spec(str(request.get("kind", "sstvs")), grid)
    raise AnalysisError(
        f"unknown job experiment {experiment!r}; expected one of "
        f"{', '.join(JOB_EXPERIMENTS)}")


def serve_jobs(jobs_dir: str | Path, store, cache=None,
               config: ServiceConfig | None = None, *,
               once: bool = True, poll_s: float = 0.5,
               report=print) -> int:
    """Process ``*.json`` job files from a drop directory.

    Each job file is claimed by renaming it to ``<name>.running`` (so
    concurrent servers never double-run a job), executed through a
    :class:`CampaignService`, and finished as ``<name>.done.json`` — a
    status document with the run id, row counts and supervision stats.
    A job whose spec cannot be built or whose run raises is finished as
    ``<name>.failed.json`` with the error text.

    ``once=True`` drains the directory and returns; otherwise the loop
    polls until SIGTERM/Ctrl-C (which finish the *current* job's
    partial results cleanly first — the service's own interrupt path
    handles that). Returns the number of jobs processed.
    """
    jobs_dir = Path(jobs_dir)
    service = CampaignService(store, cache=cache, config=config)
    processed = 0
    try:
        while True:
            job_files = sorted(p for p in jobs_dir.glob("*.json")
                               if not p.name.endswith(".done.json")
                               and not p.name.endswith(".failed.json"))
            if not job_files:
                if once:
                    break
                time.sleep(poll_s)
                continue
            for path in job_files:
                claimed = path.with_suffix(".running")
                try:
                    os.rename(path, claimed)
                except OSError:
                    continue  # another server claimed it first
                processed += 1
                _run_one_job(path, claimed, service, report)
            if once:
                break
    except KeyboardInterrupt:
        report("serve: interrupted, shutting down")
    return processed


def _run_one_job(path: Path, claimed: Path, service, report) -> None:
    name = path.stem
    try:
        request = json.loads(claimed.read_text())
        spec = build_job_spec(request)
        run_id = request.get("run_id")
        resume = None
        if run_id:
            try:
                resume = service.store.load(run_id)
            except AnalysisError:
                resume = None  # first attempt: nothing stored yet
        result = service.run(spec, run_id=run_id, resume=resume)
        status = {
            "job": name, "state": ("interrupted" if result.interrupted
                                   else "done"),
            "run_id": result.run_id, "counts": result.counts,
            "stats": service.stats.to_json(),
        }
        out = path.with_name(f"{name}.done.json")
        report(f"serve: job {name}: {status['state']} "
               f"(run {result.run_id}, {result.counts['ok']} ok, "
               f"{result.counts['err']} err)")
    except Exception as exc:
        status = {"job": name, "state": "failed",
                  "error": f"{type(exc).__name__}: {exc}"}
        out = path.with_name(f"{name}.failed.json")
        report(f"serve: job {name} FAILED: {status['error']}")
    out.write_text(json.dumps(status, indent=2, sort_keys=True) + "\n")
    try:
        claimed.unlink()
    except OSError:  # pragma: no cover
        pass
