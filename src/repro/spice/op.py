"""DC operating-point analysis."""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

import numpy as np

from repro.runtime import telemetry
from repro.runtime.faults import FaultPlan
from repro.runtime.policy import RetryPolicy
from repro.runtime.report import SolveReport
from repro.spice.newton import NewtonOptions, solve_dc_report


class OpResult:
    """Converged DC solution with named access to voltages and currents."""

    def __init__(self, circuit, x: np.ndarray,
                 report: Optional[SolveReport] = None):
        self._circuit = circuit
        self.x = x
        #: Retry-ladder diagnostics for the solve that produced this.
        self.report = report or SolveReport(converged=True)
        self.voltages = {name: float(x[circuit.node_index(name)])
                         for name in circuit.node_names()}
        self.branch_currents = {}
        for device in circuit:
            if device.branch_count():
                self.branch_currents[device.name] = float(
                    x[circuit.branch_index(device.name)])

    def __getitem__(self, node: str) -> float:
        """Node voltage by name (ground reads 0.0)."""
        idx = self._circuit.node_index(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def current(self, source_name: str) -> float:
        """Branch current of a voltage source (positive: pos -> neg
        internally; a sourcing supply reads negative)."""
        return self.branch_currents[source_name]

    def supply_current(self, source_name: str) -> float:
        """Current *delivered by* a supply (sign-flipped branch current)."""
        return -self.current(source_name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pairs = ", ".join(f"{k}={v:.4g}" for k, v in self.voltages.items())
        return f"<OpResult {pairs}>"


class OperatingPoint:
    """Operating-point analysis runner.

    Example::

        op = OperatingPoint(circuit).run()
        leakage = op.supply_current("vdd")
    """

    def __init__(self, circuit, options: Optional[NewtonOptions] = None,
                 initial_guess: Optional[np.ndarray] = None,
                 policy: Optional[RetryPolicy] = None,
                 faults: Optional[FaultPlan] = None):
        self.circuit = circuit
        self.options = options or NewtonOptions()
        self.initial_guess = initial_guess
        self.policy = policy
        self.faults = faults

    def run(self) -> OpResult:
        self.circuit.finalize()
        tracer = telemetry.active_tracer()
        op_phase = (tracer.phase("phase.op")
                    if tracer is not None else nullcontext())
        with op_phase:
            x, report = solve_dc_report(self.circuit, self.initial_guess,
                                        self.options, policy=self.policy,
                                        faults=self.faults)
        return OpResult(self.circuit, x, report=report)
