"""A small SPICE-class analog circuit simulator.

This package provides the simulation substrate for the level-shifter
reproduction: a circuit data model (:mod:`repro.spice.circuit`), device
models including an EKV-style MOSFET (:mod:`repro.spice.devices`),
modified-nodal-analysis assembly (:mod:`repro.spice.mna`), a damped
Newton solver with homotopy fallbacks (:mod:`repro.spice.newton`), and
operating-point, DC-sweep, and adaptive transient analyses.

Typical use::

    from repro.spice import Circuit, OperatingPoint, Transient
    from repro.spice.devices import Resistor, VoltageSource

    ckt = Circuit("divider")
    ckt.add(VoltageSource("vin", "in", "0", dc=1.0))
    ckt.add(Resistor("r1", "in", "mid", 1e3))
    ckt.add(Resistor("r2", "mid", "0", 1e3))
    op = OperatingPoint(ckt).run()
    assert abs(op["mid"] - 0.5) < 1e-9
"""

from repro.spice.circuit import Circuit
from repro.spice.op import OperatingPoint, OpResult
from repro.spice.transient import Transient, TransientResult
from repro.spice.dcsweep import DcSweep, DcSweepResult
from repro.spice.ac import AcAnalysis, AcResult, AcStimulus, log_frequencies
from repro.spice.waveform import Waveform

__all__ = [
    "Circuit",
    "OperatingPoint",
    "OpResult",
    "Transient",
    "TransientResult",
    "DcSweep",
    "DcSweepResult",
    "AcAnalysis",
    "AcResult",
    "AcStimulus",
    "log_frequencies",
    "Waveform",
]
