"""Device base classes and the stamping interface.

Every circuit element implements :class:`Device`. During a Newton
iteration the solver hands each device a :class:`StampContext`; the device
evaluates its (linearized) branch equations at the current iterate and
stamps conductances into the MNA matrix and equivalent currents into the
right-hand side. This is the classic SPICE companion-model formulation:
a nonlinear branch current ``I(v)`` is replaced at iterate ``v0`` by

    I(v) ~= I(v0) + G (v - v0)

which stamps ``G`` into the matrix and ``G v0 - I(v0)`` into the RHS.

Reactive devices (capacitors, MOSFET charge storage) additionally consult
``ctx.integrator`` — ``None`` during DC analyses (capacitors then stamp
nothing but a tiny leakage conductance for matrix regularity) and an
:class:`~repro.spice.integration.IntegratorState` during transients.

Split-stamp contract
--------------------

The cached assembly engine (:mod:`repro.spice.assembly`) separates a
device's contributions by how often they change:

* :meth:`Device.linear_matrix_entries` — matrix entries that depend
  only on device parameters (stamped once per circuit);
* :meth:`Device.reactive_matrix_entries` — matrix entries that depend
  only on the integrator coefficients (stamped once per (method, dt));
* :meth:`Device.dynamic_rhs_entries` — RHS entries that depend on time,
  source scaling, or committed device state (stamped once per Newton
  *solve*, constant across its iterations).

A device whose :meth:`stamp` is fully described by those three methods
declares ``stamp_kind = "linear"``; the engine then never calls its
``stamp`` on the hot path. Devices that keep solution-dependent stamps
(``stamp_kind = "opaque"``, the default) are re-stamped every Newton
iteration exactly as before, so unknown subclasses stay correct.
:meth:`stamp` for linear devices must delegate to the entry methods so
the reference and cached paths accumulate identical floats.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.spice.integration import IntegratorState
    from repro.spice.mna import StampContext


class Device(abc.ABC):
    """Abstract circuit element.

    Attributes:
        name: unique (per-circuit, case-insensitive) device name.
        nodes: terminal node names, in device-specific order.
    """

    #: How the assembly engine may treat this device: "linear" (fully
    #: described by the split-stamp entry methods), "mosfet"
    #: (vectorized EKV group), or "opaque" (re-stamp every iteration).
    stamp_kind = "opaque"

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise ValueError("device name must be non-empty")
        self.name = name
        self.nodes = [str(n) for n in nodes]
        #: Indices into the MNA solution vector, assigned by the circuit.
        self.node_indices: list[int] = []

    @abc.abstractmethod
    def stamp(self, ctx: "StampContext") -> None:
        """Stamp the linearized device equations at the current iterate."""

    def linear_matrix_entries(self) -> list:
        """Parameter-only matrix entries as ``(row, col, value)`` triplets.

        Only consulted when ``stamp_kind == "linear"``. Entry order must
        match the order :meth:`stamp` applies them (float accumulation
        order is part of the contract).
        """
        return []

    def reactive_matrix_entries(self, integrator: "IntegratorState") -> list:
        """Matrix entries that depend only on the integrator coefficients."""
        return []

    def dynamic_rhs_entries(self, time: float, source_scale: float,
                            integrator: "IntegratorState | None") -> list:
        """Per-solve RHS entries as ``(row, value)`` pairs.

        Constant across the Newton iterations of one solve; may depend
        on time, homotopy source scaling, and committed device state.
        """
        return []

    def expand(self) -> list["Device"]:
        """Auxiliary devices this element implies (e.g. MOSFET parasitics).

        Called once when the device is added to a circuit. The default is
        no auxiliary devices.
        """
        return []

    def branch_count(self) -> int:
        """Number of extra MNA branch-current unknowns this device needs."""
        return 0

    def is_nonlinear(self) -> bool:
        """Whether the device's stamps depend on the solution vector."""
        return False

    def breakpoints(self, t_stop: float) -> list[float]:
        """Time points where the device forces a transient breakpoint."""
        return []

    def init_state(self, voltages: Sequence[float]) -> None:
        """Initialize dynamic state from a converged DC solution."""

    def update_state(self, voltages: Sequence[float], integrator) -> None:
        """Commit dynamic state after a converged transient step.

        ``integrator`` is the :class:`~repro.spice.integration.
        IntegratorState` the step was taken with, so devices can compute
        method-consistent branch currents.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} {self.nodes}>"


class TwoTerminal(Device):
    """Convenience base for two-terminal elements (positive, negative)."""

    def __init__(self, name: str, pos: str, neg: str):
        super().__init__(name, [pos, neg])

    @property
    def pos(self) -> str:
        return self.nodes[0]

    @property
    def neg(self) -> str:
        return self.nodes[1]
