"""EKV-style MOSFET model with analytic Jacobians.

The reproduction needs a transistor model that is accurate in *both*
strong inversion (switching delays) and subthreshold (the leakage
currents that dominate the paper's tables), with a smooth transition so
Newton converges reliably. The EKV formulation provides exactly that:

    Id = Ispec (F(xf) - F(xr)) (1 + lambda |Vds|)

with ``F(x) = ln(1 + exp(x/2))^2``, forward/reverse normalized voltages
``xf = (Vp - Vs)/Ut``, ``xr = (Vp - Vd)/Ut`` (all bulk-referenced), and
pinch-off voltage

    Vp = (Vg - Vto - body(Vsb) + eta_dibl |Vds|) / n

``F`` tends to ``exp(x)`` for x << 0 (ideal subthreshold with slope
``n Ut ln 10``) and to ``(x/2)^2`` for x >> 0 (square-law strong
inversion), giving one C-infinity expression across all regions.
Drain-induced barrier lowering (``eta_dibl``) is included because the
paper's leakage figures are taken at full drain bias, where DIBL raises
off-current by more than an order of magnitude in 90 nm devices.

PMOS devices are handled by evaluating the NMOS equations in a
sign-flipped frame; the double sign change cancels in the Jacobian, so
the stamping code is shared.

Charge storage is modeled with linear capacitances (half-Cox gate
partition plus overlap and junction terms), added as auxiliary
:class:`~repro.spice.devices.passive.Capacitor` devices via
:meth:`Mosfet.expand`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ModelError
from repro.spice.devices.base import Device
from repro.spice.devices.passive import Capacitor, Resistor
from repro.spice.mna import StampContext

BOLTZMANN = 1.380649e-23
ELEMENTARY_CHARGE = 1.602176634e-19
EPS_SIO2 = 3.9 * 8.854187817e-12

#: Smoothing floor for |Vds| (volts) keeping derivatives continuous at 0.
_VDS_SMOOTH = 1e-3

# The EKV helpers below are numpy-elementwise and serve both the scalar
# per-device path and the vectorized all-MOSFET path in
# repro.spice.assembly. Keeping a single implementation is what makes
# the cached assembly bitwise-identical to the reference re-stamp:
# numpy's transcendentals are self-consistent between scalar and array
# calls, but differ from math.* by ulps.


def _softplus(y):
    e = np.exp(np.minimum(y, 40.0))
    return np.where(y > 40.0, y, np.where(y < -40.0, e, np.log1p(e)))


def _sigmoid(y):
    e = np.exp(-np.abs(y))
    return np.where(y >= 0.0, 1.0 / (1.0 + e), e / (1.0 + e))


def _ekv_f(x):
    """EKV interpolation function F(x) = softplus(x/2)^2.

    :func:`ekv_evaluate` inlines this (sharing the softplus term with
    the derivative); kept as the property-test surface for the model.
    """
    s = _softplus(0.5 * x)
    return s * s


def _ekv_fprime(x):
    """dF/dx = softplus(x/2) * sigmoid(x/2)."""
    return _softplus(0.5 * x) * _sigmoid(0.5 * x)


def ekv_evaluate(sign, vto, n_slope, ut, gamma, phi, eta_dibl,
                 lambda_clm, ispec, vd, vg, vs, vb):
    """Drain current and Jacobian, elementwise over parameter arrays.

    All arguments broadcast; scalars give the single-device answer,
    arrays evaluate every MOSFET in a circuit in one pass. Returns
    ``(id_real, did_dvd, did_dvg, did_dvs, did_dvb)`` with ``id_real``
    the current flowing drain -> source through the channel (positive
    into the drain terminal).
    """
    # Bulk-referenced, polarity-normalized voltages (stacked: one
    # subtract + one multiply instead of three of each; the buffer is
    # filled directly, np.stack's list handling is measurable here).
    v3 = np.empty((3,) + np.shape(vd))
    v3[0] = vd
    v3[1] = vg
    v3[2] = vs
    np.subtract(v3, vb, out=v3)
    xd, xg, xs = np.multiply(sign, v3, out=v3)

    # Smooth |Vds| for CLM and DIBL.
    dvds = xd - xs
    vds_s = np.sqrt(dvds * dvds + _VDS_SMOOTH * _VDS_SMOOTH)
    sab = dvds / vds_s  # d(vds_s)/d(xd) = sab; d/d(xs) = -sab

    # Body effect with a smooth clamp of Vsb above -(phi - 0.05).
    vmin = -phi + 0.05
    u = xs - vmin
    root = np.sqrt(u * u + 1e-4)
    vsb_eff = vmin + 0.5 * (u + root)
    dvsb_dxs = 0.5 * (1.0 + u / root)
    sq = np.sqrt(phi + vsb_eff)
    body = gamma * (sq - np.sqrt(phi))
    dbody_dxs = gamma * dvsb_dxs / (2.0 * sq)

    vp = (xg - vto - body + eta_dibl * vds_s) / n_slope
    dvp_dxg = 1.0 / n_slope
    eta_sab = eta_dibl * sab
    dvp_dxs = (-dbody_dxs - eta_sab) / n_slope
    dvp_dxd = eta_sab / n_slope

    # Forward and reverse halves share the transcendental pipeline:
    # stacking them evaluates softplus/sigmoid once over both (ufunc
    # dispatch, not element count, dominates at circuit-sized arrays),
    # elementwise bit-identical to two separate calls.
    half = np.empty((2,) + np.shape(vp))
    # [i, ...] keeps a writable view in the scalar case too, where a
    # bare [i] would return a detached numpy scalar.
    np.subtract(vp, xs, out=half[0, ...])
    np.subtract(vp, xd, out=half[1, ...])
    np.divide(half, ut, out=half)
    np.multiply(half, 0.5, out=half)
    s = _softplus(half)
    f_both = s * s
    fp_both = s * _sigmoid(half)
    ff, fr = f_both[0], f_both[1]
    fpf, fpr = fp_both[0], fp_both[1]

    clm = 1.0 + lambda_clm * vds_s
    core = ff - fr
    ispec_core = ispec * core
    ids = ispec_core * clm
    ispec_clm = ispec * clm
    clm_term = ispec_core * lambda_clm * sab

    dids_dxg = ispec_clm * (fpf - fpr) * dvp_dxg / ut
    dids_dxs = (ispec_clm * (fpf * (dvp_dxs - 1.0) - fpr * dvp_dxs) / ut
                - clm_term)
    dids_dxd = (ispec_clm * (fpf * dvp_dxd - fpr * (dvp_dxd - 1.0)) / ut
                + clm_term)
    dids_dxb = -(dids_dxg + dids_dxs + dids_dxd)

    # Real frame: Id = sign * ids(x'); dId/dV_X = dids/dx'_X (double
    # sign change cancels, see module docstring).
    return (sign * ids, dids_dxd, dids_dxg, dids_dxs, dids_dxb)


@dataclass(frozen=True)
class MosfetParams:
    """Model card for one device flavor at one temperature.

    All threshold-like quantities are magnitudes; polarity selects the
    sign convention. See :mod:`repro.pdk.ptm90` for calibrated cards.
    """

    name: str
    polarity: str          #: 'n' or 'p'
    vto: float             #: zero-bias threshold magnitude [V]
    n_slope: float         #: subthreshold slope factor (dimensionless)
    u0: float              #: low-field mobility [m^2 / V s]
    tox: float             #: gate-oxide thickness [m]
    lambda_clm: float      #: channel-length modulation [1/V]
    gamma: float           #: body-effect coefficient [sqrt(V)]
    phi: float             #: surface potential [V]
    eta_dibl: float        #: DIBL coefficient [V/V]
    cgdo: float            #: gate-drain overlap capacitance [F/m]
    cgso: float            #: gate-source overlap capacitance [F/m]
    cj: float              #: junction capacitance per area [F/m^2]
    ldiff: float           #: source/drain diffusion length [m]
    temperature: float = 300.15  #: device temperature [K]
    #: Gate direct-tunneling leakage, modeled as an ohmic conductance
    #: per unit gate area [S/m^2]. At tox ~ 2 nm this is far from
    #: negligible (amps per cm^2 at full bias) and is load-bearing for
    #: circuits that hold charge on a gate: it is what keeps the
    #: SS-TVS ctrl node from subthreshold-creeping to the supply.
    gate_leak: float = 0.0

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise ModelError(f"{self.name}: polarity must be 'n' or 'p'")
        if self.vto <= 0:
            raise ModelError(f"{self.name}: vto must be a positive magnitude")
        if self.n_slope < 1.0:
            raise ModelError(f"{self.name}: slope factor must be >= 1")
        if self.tox <= 0 or self.u0 <= 0:
            raise ModelError(f"{self.name}: tox and u0 must be > 0")
        if self.temperature <= 0:
            raise ModelError(f"{self.name}: temperature must be > 0 K")

    @property
    def cox(self) -> float:
        """Oxide capacitance per unit area [F/m^2]."""
        return EPS_SIO2 / self.tox

    @property
    def thermal_voltage(self) -> float:
        return BOLTZMANN * self.temperature / ELEMENTARY_CHARGE

    def with_overrides(self, **kwargs) -> "MosfetParams":
        """Copy with selected fields replaced (Monte Carlo, corners)."""
        return replace(self, **kwargs)


class Mosfet(Device):
    """Four-terminal MOSFET (drain, gate, source, bulk)."""

    stamp_kind = "mosfet"

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 bulk: str, params: MosfetParams, w: float, l: float,
                 m: int = 1):
        super().__init__(name, [drain, gate, source, bulk])
        if w <= 0 or l <= 0:
            raise ModelError(f"{name}: W and L must be > 0 (got {w}, {l})")
        if m < 1:
            raise ModelError(f"{name}: multiplier must be >= 1")
        self.params = params
        self.w = float(w)
        self.l = float(l)
        self.m = int(m)

    # -- structural -----------------------------------------------------

    def is_nonlinear(self) -> bool:
        return True

    def expand(self) -> list[Device]:
        p = self.params
        drain, gate, source, bulk = self.nodes
        cox_area = p.cox * self.w * self.l * self.m
        cgs = 0.5 * cox_area + p.cgso * self.w * self.m
        cgd = 0.5 * cox_area + p.cgdo * self.w * self.m
        cgb = 0.2 * cox_area
        cjun = p.cj * self.w * p.ldiff * self.m
        parasitics = [
            Capacitor(f"{self.name}#cgs", gate, source, cgs),
            Capacitor(f"{self.name}#cgd", gate, drain, cgd),
            Capacitor(f"{self.name}#cgb", gate, bulk, cgb),
            Capacitor(f"{self.name}#cdb", drain, bulk, cjun),
            Capacitor(f"{self.name}#csb", source, bulk, cjun),
        ]
        if p.gate_leak > 0.0:
            conductance = p.gate_leak * self.w * self.l * self.m
            parasitics.append(Resistor(f"{self.name}#rg", gate, bulk,
                                       1.0 / conductance))
        return parasitics

    # -- physics ----------------------------------------------------------

    def _sign(self) -> float:
        return 1.0 if self.params.polarity == "n" else -1.0

    def kernel_params(self) -> tuple:
        """Per-device scalars for :func:`ekv_evaluate`, in argument order.

        ``(sign, vto, n_slope, ut, gamma, phi, eta_dibl, lambda_clm,
        ispec)`` — the vectorized assembly group stacks these into
        arrays; :meth:`evaluate` feeds them through one at a time. Both
        paths therefore run identical floating-point operations.
        """
        p = self.params
        ut = p.thermal_voltage
        beta = p.u0 * p.cox * (self.w / self.l) * self.m
        ispec = 2.0 * p.n_slope * beta * ut * ut
        return (self._sign(), p.vto, p.n_slope, ut, p.gamma, p.phi,
                p.eta_dibl, p.lambda_clm, ispec)

    def evaluate(self, vd: float, vg: float, vs: float, vb: float):
        """Drain current and Jacobian at the given node voltages.

        Returns ``(id_real, did_dvd, did_dvg, did_dvs, did_dvb)`` where
        ``id_real`` is the current flowing drain -> source through the
        channel (positive into the drain terminal).
        """
        out = ekv_evaluate(*self.kernel_params(), vd, vg, vs, vb)
        return tuple(float(v) for v in out)

    def stamp(self, ctx: StampContext) -> None:
        d, g, s, b = self.node_indices
        vd, vg = ctx.voltage(d), ctx.voltage(g)
        vs, vb = ctx.voltage(s), ctx.voltage(b)
        id_real, gdd, gdg, gds_, gdb = self.evaluate(vd, vg, vs, vb)

        sys_ = ctx.system
        derivs = ((d, gdd), (g, gdg), (s, gds_), (b, gdb))
        linear_sum = gdd * vd + gdg * vg + gds_ * vs + gdb * vb
        for col, gval in derivs:
            sys_.add_matrix(d, col, gval)
            sys_.add_matrix(s, col, -gval)
        sys_.add_rhs(d, linear_sum - id_real)
        sys_.add_rhs(s, -(linear_sum - id_real))
        # Keep the drain-source branch weakly conductive for robustness.
        sys_.stamp_conductance(d, s, ctx.gmin)

    # -- reporting --------------------------------------------------------

    def drain_current(self, vd: float, vg: float, vs: float,
                      vb: float) -> float:
        """Drain-terminal current at a bias point (convenience)."""
        return self.evaluate(vd, vg, vs, vb)[0]

    def region(self, vd: float, vg: float, vs: float, vb: float) -> str:
        """Rough operating region label for debugging and tests."""
        sign = self._sign()
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        if vgs < self.params.vto:
            return "subthreshold"
        if vds < (vgs - self.params.vto):
            return "triode"
        return "saturation"
