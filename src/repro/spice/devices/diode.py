"""Junction diode with exponential I-V and Newton-safe limiting."""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.spice.devices.base import TwoTerminal
from repro.spice.mna import StampContext

BOLTZMANN = 1.380649e-23
ELEMENTARY_CHARGE = 1.602176634e-19

#: Exponent cap: beyond this the exponential is linearized to keep the
#: Jacobian finite during wild Newton iterates.
_EXP_CAP = 80.0


class Diode(TwoTerminal):
    """Ideal-law diode: I = Is (exp(v / (n Ut)) - 1).

    Args:
        saturation_current: Is in amperes.
        ideality: emission coefficient n.
        temperature: junction temperature in kelvin.
    """

    def __init__(self, name: str, pos: str, neg: str,
                 saturation_current: float = 1e-14, ideality: float = 1.0,
                 temperature: float = 300.15):
        super().__init__(name, pos, neg)
        if saturation_current <= 0:
            raise ModelError(f"{name}: saturation current must be > 0")
        if ideality <= 0:
            raise ModelError(f"{name}: ideality must be > 0")
        self.saturation_current = float(saturation_current)
        self.ideality = float(ideality)
        self.temperature = float(temperature)

    def is_nonlinear(self) -> bool:
        return True

    def _thermal_voltage(self) -> float:
        return BOLTZMANN * self.temperature / ELEMENTARY_CHARGE

    def current_and_conductance(self, v: float) -> tuple[float, float]:
        """Diode current and small-signal conductance at voltage ``v``."""
        n_ut = self.ideality * self._thermal_voltage()
        arg = v / n_ut
        if arg > _EXP_CAP:
            # Linear continuation beyond the cap.
            edge = math.exp(_EXP_CAP)
            current = self.saturation_current * (
                edge * (1.0 + (arg - _EXP_CAP)) - 1.0)
            conductance = self.saturation_current * edge / n_ut
        else:
            e = math.exp(arg)
            current = self.saturation_current * (e - 1.0)
            conductance = self.saturation_current * e / n_ut
        return current, conductance

    def stamp(self, ctx: StampContext) -> None:
        a, b = self.node_indices
        v = ctx.voltage(a) - ctx.voltage(b)
        current, conductance = self.current_and_conductance(v)
        conductance = max(conductance, ctx.gmin)
        ctx.system.stamp_conductance(a, b, conductance)
        ctx.system.stamp_current(a, b, current - conductance * v)
