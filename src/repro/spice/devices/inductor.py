"""Inductor with an MNA branch current.

DC: an ideal short (the branch equation degenerates to v = 0).
Transient: companion resistance in the branch equation —

========  ==============  ==================================
method    Req             Veq (RHS of the branch equation)
========  ==============  ==================================
be        L / dt          Req * i_prev
trap      2 L / dt        Req * i_prev + v_prev
========  ==============  ==================================

so the stamped branch row reads ``v(a) - v(b) - Req i = -Veq``...
concretely ``v - Req i = -Veq`` with the sign convention that the
branch current flows a -> b through the inductor.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ModelError
from repro.spice.devices.base import TwoTerminal
from repro.spice.integration import BACKWARD_EULER
from repro.spice.mna import StampContext


class Inductor(TwoTerminal):
    """Ideal linear inductor.

    Args:
        inductance: value in henries; must be positive.
        ic: optional initial branch current [A].
    """

    def __init__(self, name: str, pos: str, neg: str, inductance: float,
                 ic: float | None = None):
        super().__init__(name, pos, neg)
        if inductance <= 0:
            raise ModelError(
                f"{name}: inductance must be > 0, got {inductance}")
        self.inductance = float(inductance)
        self.ic = ic
        self.branch_indices: list[int] = []
        self._i_prev = 0.0
        self._v_prev = 0.0

    def branch_count(self) -> int:
        return 1

    stamp_kind = "linear"

    def _companion(self, integrator) -> tuple[float, float]:
        if integrator.method == BACKWARD_EULER:
            req = self.inductance / integrator.dt
            return req, req * self._i_prev
        req = 2.0 * self.inductance / integrator.dt
        return req, req * self._i_prev + self._v_prev

    def linear_matrix_entries(self) -> list:
        a, b = self.node_indices
        br = self.branch_indices[0]
        return [(a, br, 1.0), (b, br, -1.0), (br, a, 1.0), (br, b, -1.0)]

    def reactive_matrix_entries(self, integrator) -> list:
        req, _ = self._companion_coefficients(integrator)
        return [(self.branch_indices[0], self.branch_indices[0], -req)]

    def _companion_coefficients(self, integrator) -> tuple[float, float]:
        """(req, unused) without touching state — for the matrix cache."""
        if integrator.method == BACKWARD_EULER:
            return self.inductance / integrator.dt, 0.0
        return 2.0 * self.inductance / integrator.dt, 0.0

    def dynamic_rhs_entries(self, time, source_scale, integrator) -> list:
        if integrator is None:
            return []
        _, veq = self._companion(integrator)
        return [(self.branch_indices[0], -veq)]

    def stamp(self, ctx: StampContext) -> None:
        a, b = self.node_indices
        br = self.branch_indices[0]
        sys_ = ctx.system
        sys_.add_matrix(a, br, 1.0)
        sys_.add_matrix(b, br, -1.0)
        sys_.add_matrix(br, a, 1.0)
        sys_.add_matrix(br, b, -1.0)
        if ctx.integrator is not None:
            req, veq = self._companion(ctx.integrator)
            sys_.add_matrix(br, br, -req)
            sys_.add_rhs(br, -veq)
        # DC: no -Req i term -> v(a) - v(b) = 0, an ideal short.

    def stamp_ac(self, matrix, rhs, omega, add, add_rhs) -> None:
        a, b = self.node_indices
        br = self.branch_indices[0]
        add(a, br, 1.0)
        add(b, br, -1.0)
        add(br, a, 1.0)
        add(br, b, -1.0)
        add(br, br, -1j * omega * self.inductance)

    def init_state(self, voltages: Sequence[float]) -> None:
        self._i_prev = (self.ic if self.ic is not None
                        else float(voltages[self.branch_indices[0]]))
        self._v_prev = 0.0

    def update_state(self, voltages: Sequence[float], integrator) -> None:
        a, b = self.node_indices
        va = voltages[a] if a >= 0 else 0.0
        vb = voltages[b] if b >= 0 else 0.0
        self._v_prev = va - vb
        self._i_prev = float(voltages[self.branch_indices[0]])
