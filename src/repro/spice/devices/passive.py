"""Linear passive elements: resistor and capacitor."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ModelError
from repro.spice.devices.base import TwoTerminal
from repro.spice.mna import StampContext


class Resistor(TwoTerminal):
    """Ideal linear resistor.

    Args:
        name: device name (conventionally ``r...``).
        pos, neg: terminal nodes.
        resistance: value in ohms; must be positive.
    """

    stamp_kind = "linear"

    def __init__(self, name: str, pos: str, neg: str, resistance: float):
        super().__init__(name, pos, neg)
        if resistance <= 0:
            raise ModelError(f"{name}: resistance must be > 0, got {resistance}")
        self.resistance = float(resistance)

    def linear_matrix_entries(self) -> list:
        a, b = self.node_indices
        g = 1.0 / self.resistance
        return [(a, a, g), (b, b, g), (a, b, -g), (b, a, -g)]

    def stamp(self, ctx: StampContext) -> None:
        a, b = self.node_indices
        ctx.system.stamp_conductance(a, b, 1.0 / self.resistance)


class Capacitor(TwoTerminal):
    """Ideal linear capacitor.

    In DC analyses the capacitor is an open circuit (it stamps nothing;
    the solver's global gmin keeps otherwise-floating nodes defined). In
    transient analyses it stamps the companion model supplied by the
    integrator and tracks its branch current for trapezoidal steps.
    """

    stamp_kind = "linear"

    def __init__(self, name: str, pos: str, neg: str, capacitance: float,
                 ic: float | None = None):
        super().__init__(name, pos, neg)
        if capacitance < 0:
            raise ModelError(
                f"{name}: capacitance must be >= 0, got {capacitance}")
        self.capacitance = float(capacitance)
        #: Optional initial condition (volts across pos-neg) for UIC runs.
        self.ic = ic
        self._v_prev = 0.0
        self._i_prev = 0.0

    def reactive_matrix_entries(self, integrator) -> list:
        if self.capacitance == 0.0:
            return []
        a, b = self.node_indices
        geq, _ = integrator.companion(self.capacitance, 0.0, 0.0)
        return [(a, a, geq), (b, b, geq), (a, b, -geq), (b, a, -geq)]

    def dynamic_rhs_entries(self, time, source_scale, integrator) -> list:
        if integrator is None or self.capacitance == 0.0:
            return []
        a, b = self.node_indices
        _, ieq = integrator.companion(self.capacitance, self._v_prev,
                                      self._i_prev)
        return [(a, -ieq), (b, ieq)]

    def stamp(self, ctx: StampContext) -> None:
        if ctx.integrator is None or self.capacitance == 0.0:
            return
        a, b = self.node_indices
        geq, ieq = ctx.integrator.companion(
            self.capacitance, self._v_prev, self._i_prev)
        ctx.system.stamp_conductance(a, b, geq)
        ctx.system.stamp_current(a, b, ieq)

    def _voltage_across(self, voltages: Sequence[float]) -> float:
        a, b = self.node_indices
        va = voltages[a] if a >= 0 else 0.0
        vb = voltages[b] if b >= 0 else 0.0
        return va - vb

    def init_state(self, voltages: Sequence[float]) -> None:
        self._v_prev = (self.ic if self.ic is not None
                        else self._voltage_across(voltages))
        self._i_prev = 0.0

    def update_state(self, voltages: Sequence[float], integrator) -> None:
        v_new = self._voltage_across(voltages)
        self._i_prev = integrator.branch_current(
            self.capacitance, v_new, self._v_prev, self._i_prev)
        self._v_prev = v_new
