"""Device models for the SPICE engine."""

from repro.spice.devices.base import Device, TwoTerminal
from repro.spice.devices.passive import Resistor, Capacitor
from repro.spice.devices.sources import (
    VoltageSource, CurrentSource, Dc, Pulse, Pwl, Sin,
)
from repro.spice.devices.diode import Diode
from repro.spice.devices.inductor import Inductor
from repro.spice.devices.controlled import Vccs, Vcvs
from repro.spice.devices.mosfet import Mosfet, MosfetParams

__all__ = [
    "Device",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Dc",
    "Pulse",
    "Pwl",
    "Sin",
    "Diode",
    "Inductor",
    "Vcvs",
    "Vccs",
    "Mosfet",
    "MosfetParams",
]
