"""Linear controlled sources: VCVS (SPICE ``E``) and VCCS (``G``).

Both are fully linear, so one stamp serves DC, transient, and (via
``stamp_ac``) small-signal analysis.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.spice.devices.base import Device
from repro.spice.mna import StampContext


class Vcvs(Device):
    """Voltage-controlled voltage source:
    ``v(pos) - v(neg) = gain * (v(cpos) - v(cneg))``."""

    stamp_kind = "linear"

    def __init__(self, name: str, pos: str, neg: str, cpos: str,
                 cneg: str, gain: float):
        super().__init__(name, [pos, neg, cpos, cneg])
        self.gain = float(gain)
        self.branch_indices: list[int] = []

    def branch_count(self) -> int:
        return 1

    def _entries(self):
        pos, neg, cpos, cneg = self.node_indices
        br = self.branch_indices[0]
        return ((pos, br, 1.0), (neg, br, -1.0),
                (br, pos, 1.0), (br, neg, -1.0),
                (br, cpos, -self.gain), (br, cneg, self.gain))

    def linear_matrix_entries(self) -> list:
        return list(self._entries())

    def stamp(self, ctx: StampContext) -> None:
        for row, col, value in self._entries():
            ctx.system.add_matrix(row, col, value)

    def stamp_ac(self, matrix, rhs, omega, add, add_rhs) -> None:
        for row, col, value in self._entries():
            add(row, col, value)


class Vccs(Device):
    """Voltage-controlled current source:
    ``i(pos -> neg) = gm * (v(cpos) - v(cneg))`` — current is pulled
    out of ``pos`` and pushed into ``neg``, matching the passive sign
    convention of an NMOS transconductance from drain to source."""

    stamp_kind = "linear"

    def __init__(self, name: str, pos: str, neg: str, cpos: str,
                 cneg: str, gm: float):
        super().__init__(name, [pos, neg, cpos, cneg])
        self.gm = float(gm)

    def _entries(self):
        pos, neg, cpos, cneg = self.node_indices
        return ((pos, cpos, self.gm), (pos, cneg, -self.gm),
                (neg, cpos, -self.gm), (neg, cneg, self.gm))

    def linear_matrix_entries(self) -> list:
        return list(self._entries())

    def stamp(self, ctx: StampContext) -> None:
        for row, col, value in self._entries():
            ctx.system.add_matrix(row, col, value)

    def stamp_ac(self, matrix, rhs, omega, add, add_rhs) -> None:
        for row, col, value in self._entries():
            add(row, col, value)
