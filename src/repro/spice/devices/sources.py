"""Independent sources and their time-domain waveform shapes.

Waveform shapes (:class:`Dc`, :class:`Pulse`, :class:`Pwl`, :class:`Sin`)
are small value objects exposing ``value(t)`` and
``breakpoints(t_stop)``; sources delegate to them. Breakpoints are fed to
the transient engine so every edge of a pulse/PWL stimulus lands exactly
on a time point.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

from repro.errors import ModelError
from repro.spice.devices.base import TwoTerminal
from repro.spice.mna import StampContext


class Dc:
    """Constant value waveform."""

    def __init__(self, value: float):
        self.dc = float(value)

    def value(self, t: float) -> float:
        return self.dc

    def breakpoints(self, t_stop: float) -> list[float]:
        return []

    def __repr__(self) -> str:
        return f"Dc({self.dc})"


class Pulse:
    """SPICE PULSE waveform: v1 v2 delay rise fall width period."""

    def __init__(self, v1: float, v2: float, delay: float = 0.0,
                 rise: float = 1e-12, fall: float = 1e-12,
                 width: float = 1e-9, period: float | None = None):
        if rise <= 0 or fall <= 0:
            raise ModelError("pulse rise/fall times must be > 0")
        if width < 0:
            raise ModelError("pulse width must be >= 0")
        self.v1, self.v2 = float(v1), float(v2)
        self.delay, self.rise, self.fall = float(delay), float(rise), float(fall)
        self.width = float(width)
        min_period = self.rise + self.width + self.fall
        self.period = float(period) if period is not None else min_period * 2
        if self.period < min_period:
            raise ModelError(
                f"pulse period {self.period} shorter than rise+width+fall")

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tau = (t - self.delay) % self.period
        if tau < self.rise:
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1

    def breakpoints(self, t_stop: float) -> list[float]:
        points: list[float] = []
        start = self.delay
        while start <= t_stop:
            edges = (start, start + self.rise,
                     start + self.rise + self.width,
                     start + self.rise + self.width + self.fall)
            points.extend(e for e in edges if e <= t_stop)
            start += self.period
        return points


class Pwl:
    """Piece-wise-linear waveform from (time, value) pairs."""

    def __init__(self, points: Sequence[tuple[float, float]]):
        if len(points) < 1:
            raise ModelError("PWL needs at least one (time, value) point")
        times = [float(t) for t, _ in points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ModelError("PWL times must be strictly increasing")
        self.times = times
        self.values = [float(v) for _, v in points]

    def value(self, t: float) -> float:
        if t <= self.times[0]:
            return self.values[0]
        if t >= self.times[-1]:
            return self.values[-1]
        i = bisect_right(self.times, t) - 1
        t0, t1 = self.times[i], self.times[i + 1]
        v0, v1 = self.values[i], self.values[i + 1]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def breakpoints(self, t_stop: float) -> list[float]:
        return [t for t in self.times if t <= t_stop]


class Sin:
    """SPICE SIN waveform: offset amplitude frequency delay damping."""

    def __init__(self, offset: float, amplitude: float, frequency: float,
                 delay: float = 0.0, damping: float = 0.0):
        if frequency <= 0:
            raise ModelError("sine frequency must be > 0")
        self.offset, self.amplitude = float(offset), float(amplitude)
        self.frequency, self.delay = float(frequency), float(delay)
        self.damping = float(damping)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        tau = t - self.delay
        envelope = math.exp(-self.damping * tau)
        return self.offset + self.amplitude * envelope * math.sin(
            2.0 * math.pi * self.frequency * tau)

    def breakpoints(self, t_stop: float) -> list[float]:
        # A smooth waveform needs no hard breakpoints, but bounding the
        # step to a fraction of the period is handled by the engine's
        # hmax; we report quarter-period points for the first few cycles
        # to help it lock on.
        quarter = 0.25 / self.frequency
        points = []
        t = self.delay
        while t <= min(t_stop, self.delay + 4.0 / self.frequency):
            points.append(t)
            t += quarter
        return points


def _as_shape(dc, shape):
    if shape is not None:
        return shape
    return Dc(dc if dc is not None else 0.0)


class VoltageSource(TwoTerminal):
    """Independent voltage source with an MNA branch current.

    The branch current is the current flowing from the positive terminal
    through the source to the negative terminal; a supply sourcing
    current into a load therefore reads a *negative* branch current, as
    in SPICE.
    """

    stamp_kind = "linear"

    def __init__(self, name: str, pos: str, neg: str,
                 dc: float | None = None, shape=None):
        super().__init__(name, pos, neg)
        self.shape = _as_shape(dc, shape)
        self.branch_indices: list[int] = []

    def branch_count(self) -> int:
        return 1

    def value(self, t: float) -> float:
        return self.shape.value(t)

    def linear_matrix_entries(self) -> list:
        a, b = self.node_indices
        br = self.branch_indices[0]
        return [(a, br, 1.0), (b, br, -1.0), (br, a, 1.0), (br, b, -1.0)]

    def dynamic_rhs_entries(self, time, source_scale, integrator) -> list:
        return [(self.branch_indices[0], self.value(time) * source_scale)]

    def stamp(self, ctx: StampContext) -> None:
        sys_ = ctx.system
        for row, col, value in self.linear_matrix_entries():
            sys_.add_matrix(row, col, value)
        for row, value in self.dynamic_rhs_entries(ctx.time,
                                                   ctx.source_scale, None):
            sys_.add_rhs(row, value)

    def breakpoints(self, t_stop: float) -> list[float]:
        return self.shape.breakpoints(t_stop)


class CurrentSource(TwoTerminal):
    """Independent current source; positive current flows pos -> neg
    through the source (i.e. is pulled out of ``pos`` and injected into
    ``neg``)."""

    stamp_kind = "linear"

    def __init__(self, name: str, pos: str, neg: str,
                 dc: float | None = None, shape=None):
        super().__init__(name, pos, neg)
        self.shape = _as_shape(dc, shape)

    def value(self, t: float) -> float:
        return self.shape.value(t)

    def dynamic_rhs_entries(self, time, source_scale, integrator) -> list:
        a, b = self.node_indices
        current = self.value(time) * source_scale
        return [(a, -current), (b, current)]

    def stamp(self, ctx: StampContext) -> None:
        for row, value in self.dynamic_rhs_entries(ctx.time,
                                                   ctx.source_scale, None):
            ctx.system.add_rhs(row, value)

    def breakpoints(self, t_stop: float) -> list[float]:
        return self.shape.breakpoints(t_stop)
