"""Small-signal AC analysis.

Linearizes the circuit at its DC operating point and solves the
complex-valued MNA system over a frequency sweep. Devices contribute:

* resistors — their conductance;
* capacitors — admittance ``j w C``;
* inductors — branch impedance ``j w L``;
* MOSFETs/diodes — the small-signal conductances from their analytic
  Jacobians at the operating point (the same derivatives Newton uses),
  plus their parasitic capacitances (already expanded as devices);
* independent sources — AC magnitude/phase if set, else quiet.

The result wraps gain/phase measurements used by the filter and
amplifier tests, including -3 dB bandwidth extraction.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, MeasurementError
from repro.spice.devices.base import Device
from repro.spice.devices.diode import Diode
from repro.spice.devices.mosfet import Mosfet
from repro.spice.devices.passive import Capacitor, Resistor
from repro.spice.devices.sources import CurrentSource, VoltageSource
from repro.spice.mna import GROUND
from repro.spice.newton import NewtonOptions, solve_dc


def log_frequencies(f_start: float, f_stop: float,
                    points_per_decade: int = 10) -> np.ndarray:
    """Logarithmic frequency grid, SPICE ``.ac dec`` style."""
    if f_start <= 0 or f_stop <= f_start:
        raise AnalysisError("need 0 < f_start < f_stop")
    decades = math.log10(f_stop / f_start)
    count = max(int(round(decades * points_per_decade)) + 1, 2)
    return np.logspace(math.log10(f_start), math.log10(f_stop), count)


@dataclass
class AcStimulus:
    """AC magnitude/phase assignment for one independent source."""

    source_name: str
    magnitude: float = 1.0
    phase_deg: float = 0.0

    @property
    def phasor(self) -> complex:
        return self.magnitude * cmath.exp(1j * math.radians(self.phase_deg))


class AcResult:
    """Complex node phasors over the frequency sweep."""

    def __init__(self, circuit, frequencies: np.ndarray,
                 solutions: np.ndarray):
        self.circuit = circuit
        self.frequencies = frequencies
        self._solutions = solutions  # (n_freq, system_size) complex

    def phasor(self, node: str) -> np.ndarray:
        idx = self.circuit.node_index(node)
        if idx == GROUND:
            return np.zeros_like(self.frequencies, dtype=complex)
        return self._solutions[:, idx]

    def magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.phasor(node))

    def magnitude_db(self, node: str) -> np.ndarray:
        mag = self.magnitude(node)
        return 20.0 * np.log10(np.maximum(mag, 1e-30))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.phasor(node)))

    def gain_at(self, node: str, frequency: float) -> float:
        """Interpolated |V(node)| at one frequency."""
        return float(np.interp(frequency, self.frequencies,
                               self.magnitude(node)))

    def bandwidth_3db(self, node: str) -> float:
        """First frequency where gain drops 3 dB below its low-frequency
        value (linear interpolation in log-log)."""
        mag = self.magnitude(node)
        reference = mag[0]
        target = reference / math.sqrt(2.0)
        below = np.nonzero(mag < target)[0]
        if below.size == 0:
            raise MeasurementError(
                f"gain at {node!r} never drops 3 dB in the sweep")
        i = int(below[0])
        if i == 0:
            return float(self.frequencies[0])
        f0, f1 = self.frequencies[i - 1], self.frequencies[i]
        m0, m1 = mag[i - 1], mag[i]
        # log-linear interpolation.
        frac = (m0 - target) / (m0 - m1)
        return float(f0 * (f1 / f0) ** frac)

    def unity_gain_frequency(self, node: str) -> float:
        """First frequency where |V(node)| crosses 1.0 downward."""
        mag = self.magnitude(node)
        below = np.nonzero(mag < 1.0)[0]
        if below.size == 0 or below[0] == 0:
            raise MeasurementError("no unity-gain crossing in the sweep")
        i = int(below[0])
        f0, f1 = self.frequencies[i - 1], self.frequencies[i]
        m0, m1 = mag[i - 1], mag[i]
        frac = (m0 - 1.0) / (m0 - m1)
        return float(f0 * (f1 / f0) ** frac)


class AcAnalysis:
    """Linearized frequency-domain analysis.

    Example::

        ac = AcAnalysis(circuit, stimuli=[AcStimulus("vin")],
                        frequencies=log_frequencies(1e3, 1e9))
        result = ac.run()
        f3db = result.bandwidth_3db("out")
    """

    def __init__(self, circuit, stimuli: Sequence[AcStimulus],
                 frequencies: np.ndarray,
                 newton_options: Optional[NewtonOptions] = None):
        if not stimuli:
            raise AnalysisError("AC analysis needs at least one stimulus")
        self.circuit = circuit
        self.stimuli = {s.source_name.lower(): s for s in stimuli}
        self.frequencies = np.asarray(frequencies, dtype=float)
        if self.frequencies.size == 0 or np.any(self.frequencies <= 0):
            raise AnalysisError("frequencies must be positive")
        self.newton_options = newton_options or NewtonOptions()

    # -- linearization ---------------------------------------------------

    def _operating_point(self) -> np.ndarray:
        self.circuit.finalize()
        return solve_dc(self.circuit, options=self.newton_options)

    def _voltage(self, x, idx):
        return 0.0 if idx == GROUND else float(x[idx])

    def run(self) -> AcResult:
        circuit = self.circuit
        x_op = self._operating_point()
        size = circuit.system_size()
        n_freq = self.frequencies.size
        solutions = np.zeros((n_freq, size), dtype=complex)

        for k, frequency in enumerate(self.frequencies):
            omega = 2.0 * math.pi * frequency
            matrix = np.zeros((size, size), dtype=complex)
            rhs = np.zeros(size, dtype=complex)
            for device in circuit:
                self._stamp(device, matrix, rhs, x_op, omega)
            # Gmin for numerical robustness (matches DC analyses).
            for idx in range(circuit.node_count()):
                matrix[idx, idx] += self.newton_options.gmin
            solutions[k] = np.linalg.solve(matrix, rhs)
        return AcResult(circuit, self.frequencies.copy(), solutions)

    def _stamp(self, device: Device, matrix, rhs, x_op, omega) -> None:
        def add(i, j, value):
            if i != GROUND and j != GROUND:
                matrix[i, j] += value

        def add_rhs(i, value):
            if i != GROUND:
                rhs[i] += value

        def conductance(a, b, g):
            add(a, a, g)
            add(b, b, g)
            add(a, b, -g)
            add(b, a, -g)

        if isinstance(device, Resistor):
            a, b = device.node_indices
            conductance(a, b, 1.0 / device.resistance)
        elif isinstance(device, Capacitor):
            a, b = device.node_indices
            conductance(a, b, 1j * omega * device.capacitance)
        elif isinstance(device, VoltageSource):
            a, b = device.node_indices
            br = device.branch_indices[0]
            add(a, br, 1.0)
            add(b, br, -1.0)
            add(br, a, 1.0)
            add(br, b, -1.0)
            stimulus = self.stimuli.get(device.name.lower())
            if stimulus is not None:
                add_rhs(br, stimulus.phasor)
        elif isinstance(device, CurrentSource):
            a, b = device.node_indices
            stimulus = self.stimuli.get(device.name.lower())
            if stimulus is not None:
                add_rhs(a, -stimulus.phasor)
                add_rhs(b, stimulus.phasor)
        elif isinstance(device, Diode):
            a, b = device.node_indices
            v = self._voltage(x_op, a) - self._voltage(x_op, b)
            _, g = device.current_and_conductance(v)
            conductance(a, b, g)
        elif isinstance(device, Mosfet):
            d, g, s, b = device.node_indices
            vd = self._voltage(x_op, d)
            vg = self._voltage(x_op, g)
            vs = self._voltage(x_op, s)
            vb = self._voltage(x_op, b)
            _, gdd, gdg, gds, gdb = device.evaluate(vd, vg, vs, vb)
            for col, gval in ((d, gdd), (g, gdg), (s, gds), (b, gdb)):
                add(d, col, gval)
                add(s, col, -gval)
        else:
            # Inductors and controlled sources stamp themselves.
            stamp_ac = getattr(device, "stamp_ac", None)
            if stamp_ac is not None:
                stamp_ac(matrix, rhs, omega, add, add_rhs)
