"""DC sweep analysis: step a source value, solve the operating point.

Each sweep point reuses the previous solution as the Newton starting
guess (continuation), which makes sweeps across transistor transfer
curves fast and robust.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.spice.devices.sources import Dc, VoltageSource, CurrentSource
from repro.spice.newton import NewtonOptions, solve_dc
from repro.spice.op import OpResult


class DcSweepResult:
    """Sweep values plus one :class:`OpResult` per point."""

    def __init__(self, sweep_values: np.ndarray, points: list[OpResult]):
        self.sweep_values = sweep_values
        self.points = points

    def voltages(self, node: str) -> np.ndarray:
        return np.asarray([p[node] for p in self.points])

    def currents(self, source_name: str) -> np.ndarray:
        return np.asarray([p.current(source_name) for p in self.points])

    def __len__(self) -> int:
        return len(self.points)


class DcSweep:
    """Sweep the DC value of one independent source.

    Example::

        sweep = DcSweep(circuit, "vin", np.linspace(0, 1.2, 61)).run()
        vout = sweep.voltages("out")
    """

    def __init__(self, circuit, source_name: str,
                 values: Sequence[float],
                 options: Optional[NewtonOptions] = None):
        self.circuit = circuit
        self.source_name = source_name
        self.values = np.asarray(values, dtype=float)
        if self.values.size == 0:
            raise AnalysisError("DC sweep needs at least one value")
        self.options = options or NewtonOptions()

    def run(self) -> DcSweepResult:
        circuit = self.circuit
        circuit.finalize()
        source = circuit.device(self.source_name)
        if not isinstance(source, (VoltageSource, CurrentSource)):
            raise AnalysisError(
                f"{self.source_name!r} is not an independent source")
        original_shape = source.shape
        points: list[OpResult] = []
        x_prev = None
        try:
            for value in self.values:
                source.shape = Dc(float(value))
                x_prev = solve_dc(circuit, x_prev, self.options)
                points.append(OpResult(circuit, x_prev.copy()))
        finally:
            source.shape = original_shape
        return DcSweepResult(self.values.copy(), points)
