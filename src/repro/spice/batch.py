"""Batched SPMD execution of same-topology circuits.

Every campaign in this repository (Monte Carlo, the VDDI×VDDO grids,
PVT corners) simulates the *same* netlist topology over and over with
only parameter values changing: W/L/Vt from the variation model, the
supply voltages, the temperature. This module stacks N such circuits
into *lanes* of 3-D ndarrays and drives them together:

* :class:`LaneGroup` checks the lanes are structurally identical
  (same MNA size, same MOSFET stamp layout) and owns the stacked
  buffers — one ``(L, naug, naug)`` matrix block, one batched EKV
  parameter set, and one per-lane :class:`~repro.spice.assembly.
  SolverWorkspace` for everything that is cheap and already bitwise
  (base matrices, RHS bases, capacitor state).
* :meth:`LaneGroup.newton` runs a lane-masked damped Newton: one
  vectorized EKV evaluation over all active lanes, one ``np.add.at``
  scatter, and one batched LAPACK ``solve`` per iteration. Converged
  and diverged lanes drop out of the active set immediately, so a
  straggler never costs the finished lanes anything and a diverging
  lane cannot poison its neighbors (each lane occupies its own matrix
  block; LAPACK factorizes the blocks independently).
* :meth:`LaneGroup.solve_dc` evicts lanes that plain batched Newton
  cannot crack to the full serial retry ladder
  (:func:`~repro.spice.newton.solve_dc_report` with the lane's own
  workspace) — the RetryPolicy fallback stays per-lane and serial,
  exactly as robust as before.
* :class:`BatchTransient` marches all lanes with *per-lane* adaptive
  timesteps: each lane keeps its own t/h/breakpoint/halving state and
  the group solves one batched Newton per super-step over whatever
  (t_i, h_i, method_i) each lane wants next. A lane that stalls is
  marked dead (the serial engine would raise
  :class:`~repro.errors.ConvergenceError`) without stopping the rest.

**Equivalence contract.** On the fixed-order path — every lane taking
the same decisions it would take alone — the batched backend is
*bitwise identical* to the serial solver, and
``tests/spice/test_batch_equivalence.py`` enforces exactly that. The
ingredients: per-lane ``begin_solve`` reuses the serial base-matrix /
RHS code verbatim; the stacked EKV evaluation calls the same
elementwise kernel (numpy ufuncs are value-deterministic across array
shapes); the ``np.add.at`` scatter is laid out lane-major so each
lane's accumulation sub-order matches the serial device-major order;
and the batched LAPACK ``solve`` gufunc factorizes each ``(n, n)``
block with the same routine the serial path uses, yielding bit-equal
solutions per lane. The documented tolerance bound (0 ULP on this
path) is therefore *test-enforced, not aspirational*; the harness
carries a negative control showing a genuinely reordered reduction
does exceed it.

Structural prerequisites are strict on purpose: all lanes must share a
supported :class:`~repro.spice.assembly.AssemblyPlan` (no opaque
devices, identical MOSFET/index layout). Anything else raises
:class:`BatchUnsupported` and callers fall back to the serial path —
the same downgrade-for-safety convention the cached assembly uses.

With an ambient :class:`~repro.runtime.telemetry.Tracer` active the
group emits ``batch.*`` counters (lanes entered, batched iterations,
evictions, transient steps); with tracing disabled each site costs one
global read, preserving the NullTracer ≤2 % contract.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, ConvergenceError
from repro.runtime import telemetry
from repro.runtime.faults import active_plan
from repro.runtime.policy import RetryPolicy
from repro.runtime.report import AttemptRecord, SolveReport, TransientReport
from repro.spice.assembly import SolverWorkspace
from repro.spice.devices.sources import (
    CurrentSource, Dc, Pulse, Pwl, VoltageSource,
)
from repro.spice.integration import (
    BACKWARD_EULER, TRAPEZOIDAL, IntegratorState,
)
from repro.spice.newton import (
    NewtonOptions, add_solve_stats, solve_dc_report,
)
from repro.spice.sparse import resolve_solver, sparse_plan_for
from repro.spice.transient import TransientOptions, TransientResult

try:  # pragma: no cover - version-dependent private module
    # Same gufunc the serial Newton loop uses; on a (L, n, n) stack it
    # factorizes each block independently with the identical LAPACK
    # routine, so per-lane solutions are bit-equal to serial calls.
    from numpy.linalg._umath_linalg import solve1 as _lapack_solve1
except ImportError:  # pragma: no cover
    _lapack_solve1 = None


class BatchUnsupported(AnalysisError):
    """The lanes cannot be stacked; callers should run serially."""


@dataclass
class BatchNewtonResult:
    """Per-lane outcome of one lane-masked batched Newton call."""

    #: Solutions, shape ``(lanes, size)``; rows valid where converged.
    x: np.ndarray
    #: Per-lane convergence flags.
    converged: np.ndarray
    #: Per-lane iteration counts (at convergence or failure).
    iterations: np.ndarray
    #: Per-lane failure messages (None where converged), matching the
    #: serial solver's ConvergenceError messages.
    errors: list
    #: Per-lane last raw update magnitude — the serial loop's ``max_dv``
    #: at exit — used to fill :class:`AttemptRecord.residual` exactly as
    #: the serial ladder would (None semantics: see the record field).
    last_dv: np.ndarray = None


@dataclass
class _LaneMarch:
    """Per-lane transient bookkeeping (hot state lives in arrays)."""

    times: list = field(default_factory=list)
    states: list = field(default_factory=list)
    report: TransientReport = field(default_factory=TransientReport)
    error: str | None = None


def _solve_stack(matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Batched linear solve; singular blocks yield non-finite rows."""
    if _lapack_solve1 is not None:
        return _lapack_solve1(matrices, rhs)
    try:  # pragma: no cover - fallback without the private gufunc
        return np.linalg.solve(matrices, rhs)
    except np.linalg.LinAlgError:  # pragma: no cover
        out = np.empty_like(rhs)
        for k in range(len(rhs)):
            try:
                out[k] = np.linalg.solve(matrices[k], rhs[k])
            except np.linalg.LinAlgError:
                out[k] = np.nan
        return out


class LaneGroup:
    """N structurally identical circuits stacked into SPMD lanes.

    Raises :class:`BatchUnsupported` unless every lane has a supported
    assembly plan, no opaque devices, and the identical MOSFET stamp
    structure (same flat scatter indices — i.e. the same topology).
    Parameter *values* (W/L/Vt/VDD/temperature) are free to differ.
    """

    def __init__(self, circuits: Sequence):
        if not circuits:
            raise BatchUnsupported("lane group needs at least one circuit")
        self.circuits = list(circuits)
        self.workspaces = [SolverWorkspace(c) for c in self.circuits]
        self.n_lanes = len(self.circuits)
        ref = self.workspaces[0].plan
        for k, ws in enumerate(self.workspaces):
            plan = ws.plan
            if not plan.supported:
                raise BatchUnsupported(
                    f"lane {k} ({self.circuits[k].title!r}) has an "
                    f"unsupported assembly plan; run it serially")
            if plan.opaque:
                raise BatchUnsupported(
                    f"lane {k} ({self.circuits[k].title!r}) contains "
                    f"opaque devices "
                    f"({', '.join(d.name for d in plan.opaque)}); the "
                    f"batched backend stamps only trusted-linear + "
                    f"MOSFET circuits")
            if (plan.size, plan.n_nodes, plan.damped) != (
                    ref.size, ref.n_nodes, ref.damped):
                raise BatchUnsupported(
                    f"lane {k} has MNA shape (size={plan.size}, "
                    f"nodes={plan.n_nodes}) but lane 0 has "
                    f"(size={ref.size}, nodes={ref.n_nodes}); lanes "
                    f"must share one topology")
            if not self._same_mosfet_structure(ref, plan):
                raise BatchUnsupported(
                    f"lane {k} has a different MOSFET stamp layout than "
                    f"lane 0; lanes must share one topology")
        self.size = ref.size
        self.n_nodes = ref.n_nodes
        self.naug = ref.naug
        self.damped = ref.damped
        L, naug = self.n_lanes, self.naug

        mg = ref.mosfet_group
        self.n_mos = mg.n if mg is not None else 0
        if mg is not None:
            self._dgsb = mg.dgsb  # (4, n_mos), identical across lanes
            # Lane-major flat indices into the stacked matrix/RHS
            # blocks: within a lane the sub-order is exactly the serial
            # device-major order, so np.add.at accumulates bit-equal.
            lanes = np.arange(L, dtype=np.intp)[:, None]
            self._mat_idx = np.ascontiguousarray(
                lanes * (naug * naug) + mg.mat_flat[None, :])
            self._rhs_idx = np.ascontiguousarray(
                lanes * naug + mg.rhs_rows[None, :])
            groups = [ws.plan.mosfet_group for ws in self.workspaces]
            self._mos_params = np.stack(
                [np.stack([getattr(g, name) for g in groups])
                 for name in ("sign", "vto", "n_slope", "ut", "gamma",
                              "phi", "eta_dibl", "lambda_clm", "ispec")])
            self._mv = np.empty((L, self.n_mos, 12), dtype=float)
            self._rv = np.empty((L, self.n_mos, 2), dtype=float)

        # Stacked per-call buffers. The base-matrix stack is indexed by
        # *absolute* lane id with a per-lane (method, dt, gmin) memo, so
        # a lane whose regime did not change between solves skips both
        # the assembly-plan cache lookup and the block copy.
        self._base_stack = np.empty((L, naug, naug), dtype=float)
        # Per-lane (method, dt, gmin) memo for the base stack, kept as
        # parallel arrays so staleness checks vectorize over a whole
        # lane set. method code: -1 invalid, 0 DC, 1 BE, 2 TRAP.
        self._bk_method = np.full(L, -1, dtype=np.int8)
        self._bk_dt = np.zeros(L, dtype=float)
        self._bk_gmin = np.full(L, np.nan, dtype=float)
        self._rhsb_stack = np.empty((L, naug), dtype=float)
        self._A = np.empty((L, naug, naug), dtype=float)
        self._R = np.empty((L, naug), dtype=float)
        self._A_flat = self._A.reshape(-1)
        self._R_flat = self._R.reshape(-1)
        self._Xaug = np.zeros((L, naug), dtype=float)
        # Lazily resolved sparse plan (False = not yet looked up); the
        # symbolic factorization is shared with the serial path through
        # the assembly-plan cache, so selection stays bitwise-coherent.
        self._sparse = False

        # Stacked per-solve setup. Same-topology lanes share one RHS
        # row layout and one capacitor structure (checked, not
        # assumed), which lets the per-solve RHS rebuild and the
        # capacitor companion/state updates run across all lanes at
        # once; a non-uniform group keeps the per-lane workspace path.
        cg = ref.cap_group
        self.n_caps = cg.n if cg is not None else 0
        self._uniform = all(
            self._same_solve_structure(ref, ws.plan)
            for ws in self.workspaces[1:])
        if self._uniform:
            lanes_col = np.arange(L, dtype=np.intp)[:, None]
            rows_tr = ref._rhs_tr[0]
            rows_dc = ref._rhs_dc[0]
            # Lane-major flat RHS scatter indices: within a lane the
            # sub-order is the serial order, so np.add.at accumulates
            # each lane's base bit-equal to begin_solve's.
            self._rhs_tr_idx = np.ascontiguousarray(
                lanes_col * naug + rows_tr[None, :])
            self._rhs_dc_idx = np.ascontiguousarray(
                lanes_col * naug + rows_dc[None, :])
            self._tr_vals_stack = np.empty((L, rows_tr.size), dtype=float)
            self._dc_vals_stack = np.empty((L, rows_dc.size), dtype=float)
            self._rhsb_flat = self._rhsb_stack.reshape(-1)
            # Scalar RHS devices split per lane into static (Dc-shaped
            # sources, whose entries depend only on source_scale) and
            # time-varying waveforms. Static values live in a per-scale
            # template so the per-solve Python loop touches only the
            # waveform devices.
            self._static_scalar: dict = {}
            self._dynamic_scalar: dict = {}
            self._dyn_vec: dict = {}
            self._dyn_scalar_any: dict = {}
            self._static_vals: dict = {}
            self._static_scale: dict = {}
            for regime, rows in (("tr", rows_tr), ("dc", rows_dc)):
                statics: list = []
                dynamics: list = []
                for ws in self.workspaces:
                    scalar = (ws.plan._rhs_tr if regime == "tr"
                              else ws.plan._rhs_dc)[1]
                    statics.append([e for e in scalar
                                    if self._is_static_source(e[0])])
                    dynamics.append([e for e in scalar
                                     if not self._is_static_source(e[0])])
                self._static_scalar[regime] = statics
                self._static_vals[regime] = np.empty((L, rows.size),
                                                     dtype=float)
                self._static_scale[regime] = None
                # Pulse/Pwl voltage sources occupying the same slot in
                # every lane evaluate vectorized across lanes; any
                # other waveform stays on the per-lane Python loop.
                self._dyn_vec[regime] = self._vector_columns(dynamics)
                self._dynamic_scalar[regime] = dynamics
                self._dyn_scalar_any[regime] = any(
                    len(d) for d in dynamics)
            if cg is not None:
                self._cap_a = cg.a
                self._cap_b = cg.b
                self._cap_c = np.stack(
                    [ws.plan.cap_group.c for ws in self.workspaces])
                self._cap_ic = np.stack(
                    [ws.plan.cap_group.ic for ws in self.workspaces])
        # Stacked capacitor state (L, n_caps), lazily loaded from the
        # device objects like SolverWorkspace._cap_state.
        self._cap_v: Optional[np.ndarray] = None
        self._cap_i: Optional[np.ndarray] = None
        # Companion terms computed by the last _begin_solve_batch,
        # reusable by the state update of the same super-step (the
        # inputs — dt, method, previous state — are unchanged between
        # the two, so the values are identical by construction).
        self._companion_cache = None

    def _sparse_kernel(self, opts: NewtonOptions):
        """The lane stack's sparse plan when selected, else None."""
        if resolve_solver(opts.solver, self.size) != "sparse":
            return None
        if self._sparse is False:
            self._sparse = sparse_plan_for(self.workspaces[0].plan)
        return self._sparse

    @staticmethod
    def _same_mosfet_structure(ref, plan) -> bool:
        a, b = ref.mosfet_group, plan.mosfet_group
        if (a is None) != (b is None):
            return False
        if a is None:
            return True
        return (a.n == b.n
                and np.array_equal(a.mat_flat, b.mat_flat)
                and np.array_equal(a.rhs_rows, b.rhs_rows)
                and np.array_equal(a.dgsb, b.dgsb))

    @staticmethod
    def _is_static_source(device) -> bool:
        """True when the device's RHS entries ignore time/integrator."""
        return (isinstance(device, (VoltageSource, CurrentSource))
                and type(device.shape) is Dc)

    @staticmethod
    def _vector_columns(dynamics: list) -> list:
        """Extract lane-vectorizable waveform voltage-source slots.

        A slot qualifies when *every* lane's device there is a plain
        :class:`VoltageSource` with one RHS entry and a :class:`Pulse`
        shape (any parameters) or a :class:`Pwl` shape sharing one time
        grid across lanes; qualifying entries are removed from the
        per-lane ``dynamics`` lists (mutated in place) and returned as
        ``(kind, start, payload)`` tuples — ``("pulse", start, params)``
        with ``params`` shaped ``(7, L)`` in (v1, v2, delay, rise,
        fall, width, period) order, or ``("pwl", start, (t_pts,
        v_pts))`` with ``t_pts`` shaped ``(npts,)`` and ``v_pts``
        ``(L, npts)``.
        """
        n = len(dynamics[0])
        if any(len(d) != n for d in dynamics):
            return []
        columns = []
        for j in range(n):
            col = [d[j] for d in dynamics]
            start = col[0][1]
            if not all(e[1] == start and e[2] == 1
                       and type(e[0]) is VoltageSource for e in col):
                continue
            shapes = [e[0].shape for e in col]
            if all(type(s) is Pulse for s in shapes):
                params = np.array(
                    [[s.v1, s.v2, s.delay, s.rise, s.fall, s.width,
                      s.period] for s in shapes], dtype=float).T
                columns.append(("pulse", start,
                                np.ascontiguousarray(params)))
            elif all(type(s) is Pwl for s in shapes):
                t_pts = np.asarray(shapes[0].times, dtype=float)
                if any(s.times != shapes[0].times for s in shapes[1:]):
                    continue
                v_pts = np.array([s.values for s in shapes], dtype=float)
                columns.append(("pwl", start, (t_pts, v_pts)))
        taken = {start for _, start, _ in columns}
        for d in dynamics:
            d[:] = [e for e in d if e[1] not in taken]
        return columns

    @staticmethod
    def _pulse_value_lanes(t: np.ndarray, params: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`Pulse.value` — identical float ops per lane.

        Every branch is evaluated elementwise with the exact serial
        expressions and np.where selects per lane; ``%`` on nonnegative
        operands is ``np.mod``, and rise/fall/period are validated > 0,
        so no branch traps.
        """
        v1, v2, delay, rise, fall, width, period = params
        tau = np.mod(t - delay, period)
        tau2 = tau - rise
        tau3 = tau2 - width
        return np.where(
            t < delay, v1,
            np.where(tau < rise, v1 + (v2 - v1) * tau / rise,
                     np.where(tau2 < width, v2,
                              np.where(tau3 < fall,
                                       v2 + (v1 - v2) * tau3 / fall,
                                       v1))))

    @staticmethod
    def _pwl_value_lanes(t: np.ndarray, t_pts: np.ndarray,
                         v_rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`Pwl.value` — identical float ops per lane.

        ``np.searchsorted(side="right")`` is exactly ``bisect_right``;
        the interpolation expression is the serial one elementwise, and
        out-of-range lanes (selected out by np.where) read a clamped
        segment whose finite division cannot trap.
        """
        idx = np.searchsorted(t_pts, t, side="right") - 1
        idx = np.clip(idx, 0, t_pts.size - 2)
        rows = np.arange(len(t))
        t0 = t_pts[idx]
        t1 = t_pts[idx + 1]
        v0 = v_rows[rows, idx]
        v1 = v_rows[rows, idx + 1]
        interp = v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return np.where(t <= t_pts[0], v_rows[:, 0],
                        np.where(t >= t_pts[-1], v_rows[:, -1], interp))

    @staticmethod
    def _same_solve_structure(ref, plan) -> bool:
        """Identical RHS row layout + capacitor structure vs lane 0."""
        for a, b in ((ref._rhs_tr, plan._rhs_tr),
                     (ref._rhs_dc, plan._rhs_dc)):
            if not (np.array_equal(a[0], b[0])
                    and np.array_equal(a[2], b[2])
                    and np.array_equal(a[3], b[3])
                    and [(s, c) for _, s, c in a[1]]
                    == [(s, c) for _, s, c in b[1]]):
                return False
        a, b = ref.cap_group, plan.cap_group
        if (a is None) != (b is None):
            return False
        if a is not None and not (
                a.n == b.n and np.array_equal(a.a, b.a)
                and np.array_equal(a.b, b.b)):
            return False
        return True

    # -- lane-masked batched Newton --------------------------------------

    def newton(self, lane_ids: np.ndarray, x0: np.ndarray, *,
               times: Sequence[float],
               integrators: Sequence[Optional[IntegratorState]],
               options: Optional[NewtonOptions] = None,
               gmin: Optional[float] = None,
               source_scale: float = 1.0) -> BatchNewtonResult:
        """Damped Newton over ``lane_ids``, one batched solve per pass.

        Args:
            lane_ids: absolute lane indices participating in this call.
            x0: initial iterates, shape ``(len(lane_ids), size)``.
            times / integrators: per-lane solve regime (a transient
                super-step hands every lane its own ``t + h`` and
                integrator; DC passes 0.0 / None).

        Each lane replays exactly the serial loop's float operations —
        per-lane damping decisions, per-lane convergence tests — so a
        converged lane's solution is bitwise what :func:`newton_solve`
        would return. Converged/failed lanes leave the active set at
        the end of the iteration that settles them.
        """
        opts = options or NewtonOptions()
        effective_gmin = opts.gmin if gmin is None else gmin
        lane_ids = np.asarray(lane_ids, dtype=np.intp)
        nc = len(lane_ids)
        size, n_nodes, naug = self.size, self.n_nodes, self.naug
        n_branch = size - n_nodes
        tracer = telemetry.active_tracer()
        if tracer is not None:
            tracer.count("batch.newton.solves", nc)

        # Per-solve setup: base matrices and RHS bases, bitwise the
        # serial begin_solve's (stacked across lanes where structure
        # allows, per-lane workspace code otherwise).
        self._begin_solve_batch(lane_ids, times, integrators,
                                effective_gmin, source_scale)
        add_solve_stats(solves=nc)

        X = np.array(x0, dtype=float, copy=True)
        converged = np.zeros(nc, dtype=bool)
        iterations = np.zeros(nc, dtype=np.intp)
        errors: list = [None] * nc
        last_dv = np.zeros(nc, dtype=float)
        alive = np.arange(nc, dtype=np.intp)
        damped = self.damped
        sparse = self._sparse_kernel(opts)

        saved_err = np.seterr(invalid="ignore", over="ignore",
                              divide="ignore")
        try:
            for iteration in range(opts.max_iterations):
                na = alive.size
                if na == 0:
                    break
                add_solve_stats(iterations=na)
                if tracer is not None:
                    tracer.count("batch.newton.iterations")
                    tracer.count("batch.newton.lane_iterations", na)
                A = self._A[:na]
                R = self._R[:na]
                abs_alive = lane_ids[alive]
                np.take(self._base_stack, abs_alive, axis=0, out=A)
                np.take(self._rhsb_stack[:nc], alive, axis=0, out=R)
                Xa = self._Xaug[:na]
                Xa[:, :size] = X[alive]
                Xa[:, size:] = 0.0
                if self.n_mos:
                    self._stamp_mosfets(abs_alive, Xa, A, R,
                                        effective_gmin, na, naug)

                if sparse is not None:
                    x_new = sparse.solve(A[:, :size, :size], R[:, :size])
                else:
                    x_new = _solve_stack(A[:, :size, :size], R[:, :size])
                finite = np.isfinite(x_new).all(axis=1)
                if not finite.all():
                    for pos in np.nonzero(~finite)[0]:
                        k = alive[pos]
                        if (np.isfinite(A[pos, :size, :size]).all()
                                and np.isfinite(R[pos, :size]).all()):
                            errors[k] = ("singular MNA matrix at "
                                         f"iteration {iteration}")
                        else:
                            errors[k] = ("non-finite solution at "
                                         f"iteration {iteration}")
                        iterations[k] = iteration

                rows = alive[finite]
                if rows.size == 0:
                    alive = rows
                    continue
                xn = x_new[finite]
                delta = xn - X[rows]
                absd = np.abs(delta)
                max_dv = (absd[:, :n_nodes].max(axis=1) if n_nodes
                          else np.zeros(rows.size))
                max_di = (absd[:, n_nodes:].max(axis=1) if n_branch
                          else np.zeros(rows.size))
                last_dv[rows] = max_dv

                if damped:
                    clamp = max_dv > opts.max_step_v
                    # Clamped lanes scale by max_step_v/max_dv exactly
                    # like the serial loop; unclamped lanes multiply by
                    # 1.0, which is exact, so one fused update serves
                    # both without perturbing either.
                    scale = np.where(clamp,
                                     opts.max_step_v
                                     / np.where(clamp, max_dv, 1.0),
                                     1.0)
                    X[rows] += delta * scale[:, None]
                else:
                    clamp = np.zeros(rows.size, dtype=bool)
                    X[rows] += delta

                absx = np.abs(X[rows])
                v_tol = opts.abstol_v + opts.reltol * (
                    absx[:, :n_nodes].max(axis=1) if n_nodes
                    else np.zeros(rows.size))
                i_tol = opts.abstol_i + opts.reltol * (
                    absx[:, n_nodes:].max(axis=1) if n_branch
                    else np.zeros(rows.size))
                conv = (~clamp) & (max_dv <= v_tol) & (max_di <= i_tol)
                newly = rows[conv]
                converged[newly] = True
                iterations[newly] = iteration + 1
                alive = rows[~conv]
        finally:
            np.seterr(**saved_err)

        for k in alive:
            errors[k] = (f"Newton failed to converge in "
                         f"{opts.max_iterations} iterations "
                         f"(last max dV = {last_dv[k]:.3e} V)")
            iterations[k] = opts.max_iterations
        if tracer is not None:
            n_failed = sum(1 for e in errors if e is not None)
            if n_failed:
                tracer.count("batch.newton.lane_failures", n_failed)
        return BatchNewtonResult(x=X, converged=converged,
                                 iterations=iterations, errors=errors,
                                 last_dv=last_dv)

    def _stamp_mosfets(self, abs_ids, Xa, A, R, gmin, na, naug) -> None:
        """Vectorized EKV + scatter over all active lanes at once."""
        from repro.spice.devices.mosfet import ekv_evaluate
        V = Xa[:, self._dgsb]  # (na, 4, n_mos)
        vd, vg, vs, vb = V[:, 0], V[:, 1], V[:, 2], V[:, 3]
        (sign, vto, n_slope, ut, gamma, phi, eta_dibl, lambda_clm,
         ispec) = self._mos_params[:, abs_ids]
        id_real, gdd, gdg, gds_, gdb = ekv_evaluate(
            sign, vto, n_slope, ut, gamma, phi, eta_dibl, lambda_clm,
            ispec, vd, vg, vs, vb)
        mv = self._mv[:na]
        mv[..., 0] = gdd
        mv[..., 2] = gdg
        mv[..., 4] = gds_
        mv[..., 6] = gdb
        np.negative(mv[..., 0:8:2], out=mv[..., 1:8:2])
        mv[..., 8] = gmin
        mv[..., 9] = gmin
        mv[..., 10] = -gmin
        mv[..., 11] = -gmin
        np.add.at(self._A_flat[:na * naug * naug],
                  self._mat_idx[:na].ravel(), mv.reshape(-1))
        linear_sum = gdd * vd + gdg * vg + gds_ * vs + gdb * vb
        r = linear_sum - id_real
        rv = self._rv[:na]
        rv[..., 0] = r
        rv[..., 1] = -r
        np.add.at(self._R_flat[:na * naug],
                  self._rhs_idx[:na].ravel(), rv.reshape(-1))

    # -- stacked per-solve setup and capacitor state ---------------------

    def _begin_solve_batch(self, lane_ids, times, integrators, gmin,
                           source_scale) -> None:
        """Rebuild every lane's base matrix and RHS base for one solve.

        The scalar source values still come from each lane's own device
        objects (waveform evaluation is data-dependent Python), but the
        capacitor companion and the RHS scatter run stacked across
        lanes. Per lane the value order and the float expressions are
        exactly :meth:`SolverWorkspace.begin_solve`'s, so the bases are
        bitwise the serial ones.
        """
        nc = len(lane_ids)
        self._companion_cache = None
        transient = nc > 0 and integrators[0] is not None
        if not self._uniform or any(
                (i is not None) != transient for i in integrators):
            for k, lane in enumerate(lane_ids):
                ws = self.workspaces[lane]
                ws.begin_solve(times[k], integrators[k], gmin,
                               source_scale)
                self._base_stack[lane] = ws._base
                self._bk_method[lane] = -1
                self._rhsb_stack[k] = ws._rhs_base
            return
        regime = "tr" if transient else "dc"
        vals = (self._tr_vals_stack if transient
                else self._dc_vals_stack)[:nc]
        idx = (self._rhs_tr_idx if transient else self._rhs_dc_idx)[:nc]
        template = self._static_vals[regime]
        if self._static_scale[regime] != source_scale:
            for lane, entries_list in enumerate(
                    self._static_scalar[regime]):
                row = template[lane]
                for device, start, count in entries_list:
                    entries = device.dynamic_rhs_entries(
                        0.0, source_scale, None)
                    for j in range(count):
                        row[start + j] = entries[j][1]
            self._static_scale[regime] = source_scale
        np.take(template, lane_ids, axis=0, out=vals)
        if self._dyn_vec[regime]:
            t_arr = np.asarray(times, dtype=float)
            for shape, start, payload in self._dyn_vec[regime]:
                if shape == "pulse":
                    vals[:, start] = self._pulse_value_lanes(
                        t_arr, payload[:, lane_ids]) * source_scale
                else:
                    t_pts, v_pts = payload
                    vals[:, start] = self._pwl_value_lanes(
                        t_arr, t_pts, v_pts[lane_ids]) * source_scale
        lid = np.asarray(lane_ids, dtype=np.intp)
        if transient:
            m_codes = np.fromiter(
                (1 if i.method == BACKWARD_EULER else 2
                 for i in integrators), dtype=np.int8, count=nc)
            dts = np.fromiter((i.dt for i in integrators), dtype=float,
                              count=nc)
        else:
            m_codes = np.zeros(nc, dtype=np.int8)
            dts = np.zeros(nc, dtype=float)
        stale = ((self._bk_method[lid] != m_codes)
                 | (self._bk_dt[lid] != dts)
                 | (self._bk_gmin[lid] != gmin))
        if stale.any():
            for k in np.nonzero(stale)[0]:
                lane = lid[k]
                self._base_stack[lane] = self.workspaces[
                    lane].plan.base_matrix(integrators[k], gmin)
            self._bk_method[lid] = m_codes
            self._bk_dt[lid] = dts
            self._bk_gmin[lid] = gmin
        dynamic = self._dynamic_scalar[regime]
        if self._dyn_scalar_any[regime]:
            for k, lane in enumerate(lane_ids):
                vk = vals[k]
                t = times[k]
                integ = integrators[k]
                for device, start, count in dynamic[lane]:
                    entries = device.dynamic_rhs_entries(t, source_scale,
                                                         integ)
                    for j in range(count):
                        vk[start + j] = entries[j][1]
        if transient and self.n_caps:
            ref = self.workspaces[0].plan
            geq, ieq = self._companion_lanes(np.asarray(lane_ids),
                                             integrators)
            self._companion_cache = (np.asarray(lane_ids, dtype=np.intp),
                                     geq, ieq)
            vals[:, ref._rhs_tr[2]] = -ieq
            vals[:, ref._rhs_tr[3]] = ieq
        R = self._rhsb_stack[:nc]
        R[...] = 0.0
        np.add.at(self._rhsb_flat[:nc * self.naug], idx.ravel(),
                  vals.ravel())

    def _cap_state_stack(self) -> None:
        """Lazy-load stacked capacitor state from the device objects."""
        if self._cap_v is None:
            self._cap_v = np.array(
                [[c._v_prev for c in ws.plan.cap_group.caps]
                 for ws in self.workspaces], dtype=float)
            self._cap_i = np.array(
                [[c._i_prev for c in ws.plan.cap_group.caps]
                 for ws in self.workspaces], dtype=float)

    def _companion_lanes(self, lane_ids, integrators):
        """Stacked :meth:`_CapacitorGroup.companion` (same float ops)."""
        self._cap_state_stack()
        v_prev = self._cap_v[lane_ids]
        i_prev = self._cap_i[lane_ids]
        c = self._cap_c[lane_ids]
        n = len(integrators)
        dt = np.fromiter((i.dt for i in integrators), dtype=float,
                         count=n)[:, None]
        be = np.fromiter((i.method == BACKWARD_EULER for i in integrators),
                         dtype=bool, count=n)[:, None]
        # Both branches are evaluated elementwise with the exact serial
        # expressions; np.where selects per lane, so a BE lane's values
        # are bitwise the BE companion's and likewise for TRAP.
        geq_be = c / dt
        geq_tr = 2.0 * c / dt
        geq = np.where(be, geq_be, geq_tr)
        ieq = np.where(be, -geq_be * v_prev,
                       -(geq_tr * v_prev + i_prev))
        return geq, ieq

    def _cap_terminal_v(self, lane_ids, X) -> np.ndarray:
        """Per-lane capacitor terminal voltages (serial x_aug gather)."""
        Xa = self._Xaug[:len(lane_ids)]
        Xa[:, :self.size] = X
        Xa[:, self.size:] = 0.0
        return Xa[:, self._cap_a] - Xa[:, self._cap_b]

    def init_state_lanes(self, lane_ids: np.ndarray,
                         X: np.ndarray) -> None:
        """Stacked :meth:`SolverWorkspace.init_state` over lanes."""
        if not self._uniform:
            for k, lane in enumerate(lane_ids):
                self.workspaces[lane].init_state(X[k])
            return
        if self.n_caps:
            self._cap_state_stack()
            v = self._cap_terminal_v(lane_ids, X)
            ic = self._cap_ic[lane_ids]
            self._cap_v[lane_ids] = np.where(np.isnan(ic), v, ic)
            self._cap_i[lane_ids] = 0.0
        for k, lane in enumerate(lane_ids):
            for device in self.workspaces[lane].plan.stateful_scalar:
                device.init_state(X[k])

    def update_state_lanes(self, lane_ids: np.ndarray, X_new: np.ndarray,
                           integrators: Sequence) -> None:
        """Stacked :meth:`SolverWorkspace.update_state` over lanes."""
        if not self._uniform:
            for k, lane in enumerate(lane_ids):
                self.workspaces[lane].update_state(X_new[k],
                                                   integrators[k])
            return
        if self.n_caps:
            v_new = self._cap_terminal_v(lane_ids, X_new)
            cache = self._companion_cache
            if cache is not None:
                cached_ids, geq_all, ieq_all = cache
                pos = np.searchsorted(cached_ids, lane_ids)
                pos = np.minimum(pos, cached_ids.size - 1)
                if np.array_equal(cached_ids[pos], lane_ids):
                    geq, ieq = geq_all[pos], ieq_all[pos]
                else:
                    geq, ieq = self._companion_lanes(lane_ids,
                                                     integrators)
            else:
                geq, ieq = self._companion_lanes(lane_ids, integrators)
            self._cap_i[lane_ids] = geq * v_new + ieq
            self._cap_v[lane_ids] = v_new
            # The previous state just changed; the cached companion no
            # longer reflects it.
            self._companion_cache = None
        for k, lane in enumerate(lane_ids):
            for device in self.workspaces[lane].plan.stateful_scalar:
                device.update_state(X_new[k], integrators[k])

    def sync_state_lane(self, lane: int) -> None:
        """Write one lane's stacked capacitor state back to devices."""
        if not self._uniform or not self.n_caps or self._cap_v is None:
            self.workspaces[lane].sync_state()
            return
        caps = self.workspaces[lane].plan.cap_group.caps
        for cap, v, i in zip(caps, self._cap_v[lane], self._cap_i[lane]):
            cap._v_prev = float(v)
            cap._i_prev = float(i)

    # -- batched DC with serial-ladder eviction --------------------------

    def solve_dc(self, options: Optional[NewtonOptions] = None,
                 policy: Optional[RetryPolicy] = None,
                 x0: Optional[np.ndarray] = None,
                 ) -> tuple[np.ndarray, list, list]:
        """DC operating points for all lanes.

        Runs the plain-Newton rung batched (bitwise what the serial
        ladder's first attempt computes); lanes it cannot crack fall to
        the retry ladder. On the common path — no tracer, no fault
        plan, no wall-clock/iteration budgets — the whole ladder runs
        *batched* too: every gmin rung and source-ramp rung is one
        lane-masked Newton call over the still-failing lanes, replaying
        the serial ladder's per-lane control flow (a lane failing any
        gmin rung falls through to source stepping from zeros), so each
        lane lands bitwise where :func:`solve_dc_report` would put it.
        Otherwise lanes are evicted one at a time to the serial ladder
        with the lane's own workspace, exactly as before. Returns
        ``(X, reports, errors)`` where ``reports[k]`` is the ladder's
        :class:`SolveReport` (None for lanes the batched rung solved)
        and ``errors[k]`` carries the final ConvergenceError text for
        lanes the ladder lost too.
        """
        opts = options or NewtonOptions()
        nc = self.n_lanes
        lane_ids = np.arange(nc, dtype=np.intp)
        x0s = (np.zeros((nc, self.size))
               if x0 is None else np.asarray(x0, dtype=float))
        res = self.newton(lane_ids, x0s, times=[0.0] * nc,
                          integrators=[None] * nc, options=opts)
        X = res.x
        reports: list = [None] * nc
        errors: list = [None] * nc
        for k in range(nc):
            if not res.converged[k]:
                errors[k] = res.errors[k]
        evicted = np.nonzero(~res.converged)[0]
        if not evicted.size:
            return X, reports, errors
        tracer = telemetry.active_tracer()
        if tracer is not None:
            tracer.count("batch.dc.evicted", int(evicted.size))
        pol = policy or RetryPolicy()
        pol.validate()
        if (tracer is None and active_plan() is None
                and pol.max_wall_clock_s is None
                and pol.max_total_iterations is None):
            self._ladder_batched(evicted, x0s, opts, pol, res, X,
                                 reports, errors)
            return X, reports, errors
        for k in evicted:
            try:
                x, report = solve_dc_report(
                    self.circuits[k], x0=x0s[k] if x0 is not None
                    else None, options=opts, policy=policy,
                    workspace=self.workspaces[k])
            except ConvergenceError as exc:
                errors[k] = str(exc)
                continue
            X[k] = x
            reports[k] = report
            errors[k] = None
        return X, reports, errors

    def _ladder_batched(self, evicted, x0s, opts, pol, first, X,
                        reports, errors) -> None:
        """Replay the serial DC retry ladder across lanes at once.

        Per lane the control flow is exactly the serial
        ``_solve_dc_report_impl``'s: the recorded plain attempt
        (synthesized from the already-failed batched rung rather than
        re-run — same deterministic failure, same record fields), then
        the gmin ladder carried rung to rung, with any rung failure
        dropping the lane through to source stepping from zeros. Each
        rung is one lane-masked batched Newton call, bitwise the serial
        attempt per lane.
        """
        started = _time.monotonic()

        def _record(strategy: str, detail: str, res, pos) -> AttemptRecord:
            rec = AttemptRecord(strategy=strategy, detail=detail)
            rec.iterations = int(res.iterations[pos])
            if res.converged[pos]:
                rec.converged = True
                rec.residual = float(res.last_dv[pos])
            else:
                rec.residual = (float(res.last_dv[pos])
                                if res.iterations[pos] > 0 else None)
                rec.error = res.errors[pos]
            return rec

        ladder_reports: dict = {}
        for k in evicted:
            rep = SolveReport()
            rep.attempts.append(_record("newton", "plain", first, int(k)))
            ladder_reports[int(k)] = rep

        def _finish(k: int, strategy: str, x) -> None:
            rep = ladder_reports[k]
            rep.converged = True
            rep.winning_strategy = strategy
            rep.wall_time_s = _time.monotonic() - started
            X[k] = x
            reports[k] = rep
            errors[k] = None

        ids = np.asarray(evicted, dtype=np.intp)
        to_source: list = []
        if pol.enable_gmin_stepping:
            Xg = np.array(x0s[ids], copy=True)
            for g in tuple(pol.gmin_ladder) + (opts.gmin,):
                if ids.size == 0:
                    break
                res = self.newton(ids, Xg, times=[0.0] * len(ids),
                                  integrators=[None] * len(ids),
                                  options=opts, gmin=g)
                for pos, k in enumerate(ids):
                    ladder_reports[int(k)].attempts.append(
                        _record("gmin", f"gmin={g:g}", res, pos))
                ok = res.converged
                to_source.extend(int(k) for k in ids[~ok])
                ids = ids[ok]
                Xg = res.x[ok]
            for pos, k in enumerate(ids):
                _finish(int(k), "gmin", Xg[pos])
        else:
            to_source = [int(k) for k in ids]

        failed: list = []
        src = np.asarray(sorted(to_source), dtype=np.intp)
        if pol.enable_source_stepping and src.size:
            ramp = tuple(pol.source_ramp)
            Xs = np.zeros((src.size, self.size))
            for scale in ramp:
                if src.size == 0:
                    break
                res = self.newton(src, Xs, times=[0.0] * len(src),
                                  integrators=[None] * len(src),
                                  options=opts, source_scale=scale)
                for pos, k in enumerate(src):
                    ladder_reports[int(k)].attempts.append(
                        _record("source", f"scale={scale:g}", res, pos))
                ok = res.converged
                failed.extend(int(k) for k in src[~ok])
                src = src[ok]
                Xs = res.x[ok]
            if ramp:
                for pos, k in enumerate(src):
                    _finish(int(k), "source", Xs[pos])
            else:
                failed.extend(int(k) for k in src)
        else:
            failed.extend(int(k) for k in src)

        for k in sorted(failed):
            rep = ladder_reports[k]
            rep.converged = False
            rep.wall_time_s = _time.monotonic() - started
            # The serial eviction surfaces a failed ladder through the
            # ConvergenceError text alone (reports[k] stays None).
            errors[k] = (
                f"DC solution not found for circuit "
                f"{self.circuits[k].title!r} after "
                f"{len(rep.attempts)} attempts "
                f"({rep.strategy_summary()})")


class BatchTransientResult:
    """Per-lane transient results plus a shared interpolation grid."""

    def __init__(self, lanes: list, errors: list):
        #: Per-lane :class:`TransientResult` (None where the lane died).
        self.lanes = lanes
        #: Per-lane failure text (None where the lane completed) —
        #: the message the serial engine's ConvergenceError would carry.
        self.errors = errors

    @property
    def n_lanes(self) -> int:
        return len(self.lanes)

    def lane(self, k: int) -> TransientResult:
        """The lane's result; raises the deferred stall if it died."""
        if self.lanes[k] is None:
            raise ConvergenceError(self.errors[k])
        return self.lanes[k]

    def ok(self, k: int) -> bool:
        return self.lanes[k] is not None

    def shared_grid(self, samples: int = 512
                    ) -> tuple[np.ndarray, np.ndarray]:
        """All lanes interpolated onto one uniform time grid.

        Returns ``(grid, states)`` with ``states`` shaped
        ``(lanes, samples, size)``; dead lanes are NaN rows. Each
        lane's native adaptive time points remain available through
        :meth:`lane` — the grid is for cross-lane ndarray consumers
        (surface plots, vectorized metric sweeps).
        """
        t_end = max((r.times[-1] for r in self.lanes if r is not None),
                    default=0.0)
        grid = np.linspace(0.0, float(t_end), int(samples))
        size = next((r._states.shape[1] for r in self.lanes
                     if r is not None), 0)
        states = np.full((len(self.lanes), int(samples), size), np.nan)
        for k, result in enumerate(self.lanes):
            if result is None:
                continue
            for col in range(size):
                states[k, :, col] = np.interp(
                    grid, result.times, result._states[:, col])
        return grid, states


class BatchTransient:
    """Batched transient runner with per-lane adaptive timestep.

    The step-control state machine is replicated *per lane* from
    :class:`~repro.spice.transient.Transient` — breakpoint snapping,
    BE-after-breakpoint restarts, dv_max rejection, halving budgets,
    1.5x growth — so each lane visits exactly the time points and
    integrator choices it would visit alone, and its accepted states
    are bitwise the serial ones. Only the Newton solves are pooled:
    each super-step solves every active lane's next attempted step in
    one batched call.

    Ambient fault plans are not consumed on this path (the experiment
    engine keeps fault campaigns serial); construction refuses to race
    one silently.
    """

    def __init__(self, circuits: Sequence, t_stop,
                 options: Optional[TransientOptions] = None):
        self.group = LaneGroup(circuits)
        self.options = options or TransientOptions()
        if np.isscalar(t_stop):
            t_stops = [float(t_stop)] * self.group.n_lanes
        else:
            t_stops = [float(t) for t in t_stop]
            if len(t_stops) != self.group.n_lanes:
                raise AnalysisError(
                    f"got {len(t_stops)} t_stop values for "
                    f"{self.group.n_lanes} lanes")
        if any(t <= 0 for t in t_stops):
            raise AnalysisError("t_stop must be > 0 for every lane")
        self.t_stops = t_stops
        if active_plan() is not None:
            raise BatchUnsupported(
                "an ambient FaultPlan is active; fault injection "
                "requires the serial transient path")

    def run(self, x0: Optional[np.ndarray] = None) -> BatchTransientResult:
        group = self.group
        opts = self.options
        if opts.method not in (None, BACKWARD_EULER, TRAPEZOIDAL):
            raise AnalysisError(
                f"TransientOptions.method must be None, "
                f"{BACKWARD_EULER!r} or {TRAPEZOIDAL!r}, "
                f"got {opts.method!r}")
        forced_method = opts.method
        policy = opts.policy or RetryPolicy()
        policy.validate()
        tracer = telemetry.active_tracer()
        n_nodes = group.n_nodes
        nc = group.n_lanes
        if tracer is not None:
            tracer.count("batch.tran.lanes", nc)

        # Per-lane step-control state lives in flat arrays so the loop
        # head and accept/reject bookkeeping run vectorized over the
        # active set; per lane the arithmetic (and hence every float
        # decision) is exactly the serial engine's.
        marches: list = [_LaneMarch() for _ in range(nc)]
        t_stop_a = np.asarray(self.t_stops, dtype=float)
        h_max_a = np.empty(nc, dtype=float)
        h_min_a = np.empty(nc, dtype=float)
        restart_a = np.empty(nc, dtype=float)
        bp_rows = []
        for k in range(nc):
            t_stop = self.t_stops[k]
            h_max = opts.h_max if opts.h_max is not None else t_stop / 100.0
            h_min = opts.h_min if opts.h_min is not None else t_stop * 1e-9
            if h_min >= h_max:
                raise AnalysisError(
                    f"h_min {h_min} must be < h_max {h_max}")
            h_max_a[k] = h_max
            h_min_a[k] = h_min
            restart_a[k] = max(h_min, h_max * opts.restart_fraction)
            bp_rows.append(group.circuits[k].breakpoints(t_stop))
        # Breakpoint lookup table, padded per lane with its own t_stop —
        # exactly the serial "past the last breakpoint -> t_stop" rule.
        bp_width = max((len(r) for r in bp_rows), default=0) + 2
        bp_mat = np.empty((nc, bp_width), dtype=float)
        for k, row in enumerate(bp_rows):
            bp_mat[k, :len(row)] = row
            bp_mat[k, len(row):] = t_stop_a[k]

        # DC seed: batched plain Newton, serial-ladder eviction.
        X = np.zeros((nc, group.size), dtype=float)
        if x0 is None:
            x_dc, dc_reports, dc_errors = group.solve_dc(
                options=opts.newton, policy=policy)
            for k, march in enumerate(marches):
                if dc_errors[k] is not None:
                    march.error = dc_errors[k]
                    march.report.stalled = True
                    continue
                X[k] = x_dc[k]
                march.report.dc_report = dc_reports[k]
        else:
            X[:] = np.asarray(x0, dtype=float)
        live = np.asarray([k for k, m in enumerate(marches)
                           if m.error is None], dtype=np.intp)
        if live.size:
            group.init_state_lanes(live, X[live])
        for k in live:
            marches[k].times.append(0.0)
            marches[k].states.append(X[k].copy())

        # Hot per-lane step-control state.
        dead = np.asarray([m.error is not None for m in marches])
        t = np.zeros(nc, dtype=float)
        h = restart_a.copy()
        bp_idx = np.ones(nc, dtype=np.intp)  # breakpoints[0] == 0.0
        use_be = np.ones(nc, dtype=bool)  # first step from DC uses BE
        halvings = np.zeros(nc, dtype=np.intp)
        max_halv = policy.max_step_halvings

        def _stall(k: int, reason: str) -> None:
            group.sync_state_lane(k)
            marches[k].report.stalled = True
            marches[k].error = (
                f"transient stalled at t={t[k]:.6e}s with "
                f"h={h[k]:.3e}s in circuit "
                f"{group.circuits[k].title!r} ({reason})")
            dead[k] = True
            if tracer is not None:
                tracer.count("batch.tran.stalled")

        while True:
            act = np.nonzero(~dead & (t < t_stop_a - 1e-21))[0]
            if act.size == 0:
                break
            # Vectorized loop head: same arithmetic and decisions as
            # the serial engine's, elementwise per lane (min/max and
            # np.minimum/np.maximum select the same values; comparisons
            # and the float expressions are the serial ones verbatim).
            ta = t[act]
            next_bp = bp_mat[act, np.minimum(bp_idx[act], bp_width - 1)]
            ha = np.minimum(np.minimum(h[act], h_max_a[act]),
                            t_stop_a[act] - ta)
            hit = ta + ha >= next_bp - 1e-21
            ha = np.where(hit, next_bp - ta, ha)
            ha = np.where(ha < h_min_a[act] * 0.5,
                          np.maximum(ha, 1e-21), ha)
            h[act] = ha
            if forced_method is None:
                be = use_be[act]
            else:
                be = np.full(act.size, forced_method == BACKWARD_EULER)
            # Python floats on the way out: dt is a dict key (base-
            # matrix memos hash Python floats several times faster than
            # numpy scalars) and the value is bit-identical either way.
            integrators = [
                IntegratorState(method=BACKWARD_EULER if b else TRAPEZOIDAL,
                                dt=dt)
                for b, dt in zip(be.tolist(), ha.tolist())]

            res = group.newton(act, X[act], times=(ta + ha).tolist(),
                               integrators=integrators,
                               options=opts.newton)
            if tracer is not None:
                tracer.count("batch.tran.super_steps")
            # Per-lane accepted-step dv, one vectorized pass: rowwise
            # max over the same elements the serial engine reduces, and
            # max is order-exact, so each lane's value is bitwise the
            # serial scalar.
            dv_rows = (np.abs(res.x[:, :n_nodes]
                              - X[act, :n_nodes]).max(axis=1)
                       if n_nodes else np.zeros(act.size))
            conv = res.converged

            # Newton failures (rare): serial halve-or-stall, per lane.
            if not conv.all():
                for pos in np.nonzero(~conv)[0]:
                    k = act[pos]
                    m = marches[k]
                    m.report.newton_failures += 1
                    if h[k] <= h_min_a[k] * 1.0000001:
                        _stall(k, "step at h_min")
                        continue
                    if halvings[k] >= max_halv:
                        _stall(k, f"halving budget {max_halv} exhausted")
                        continue
                    h[k] = max(h[k] / 2.0, h_min_a[k])
                    halvings[k] += 1
                    m.report.total_halvings += 1
                    if policy.be_on_retry:
                        use_be[k] = True

            # Accuracy rejections, vectorized (counters per lane).
            rej = (conv & (dv_rows > opts.dv_max)
                   & (h[act] > h_min_a[act] * 1.0000001)
                   & (halvings[act] < max_halv))
            if rej.any():
                ids = act[rej]
                h[ids] = np.maximum(h[ids] / 2.0, h_min_a[ids])
                halvings[ids] += 1
                for k in ids:
                    marches[k].report.steps_rejected_dv += 1
                    marches[k].report.total_halvings += 1

            # Accepted steps: state arrays update vectorized, the
            # capacitor-state update runs stacked, and only the result
            # recording (times/states/report) stays per lane.
            acc = np.nonzero(conv & ~rej)[0]
            if acc.size:
                ids = act[acc]
                hit_acc = hit[acc]
                t[ids] = np.where(hit_acc, next_bp[acc], t[ids] + h[ids])
                X[ids] = res.x[acc]
                bp_idx[ids] += hit_acc
                grow = ~hit_acc & (dv_rows[acc] < 0.3 * opts.dv_max)
                h[ids] = np.where(hit_acc, restart_a[ids],
                                  np.where(grow,
                                           np.minimum(h[ids] * 1.5,
                                                      h_max_a[ids]),
                                           h[ids]))
                use_be[ids] = hit_acc
                halvings[ids] = 0
                group.update_state_lanes(
                    ids, X[ids], [integrators[p] for p in acc])
                for pos, k in zip(acc, ids):
                    m = marches[k]
                    m.times.append(t[k])
                    m.states.append(res.x[pos].copy())
                    m.report.steps_accepted += 1
                    if tracer is not None:
                        tracer.count("batch.tran.steps_accepted")

        lanes: list = []
        errors: list = []
        for k, m in enumerate(marches):
            if m.error is not None:
                lanes.append(None)
                errors.append(m.error)
                continue
            group.sync_state_lane(k)
            lanes.append(TransientResult(group.circuits[k],
                                         np.asarray(m.times),
                                         np.asarray(m.states),
                                         report=m.report))
            errors.append(None)
        return BatchTransientResult(lanes, errors)
