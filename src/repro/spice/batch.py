"""Batched SPMD execution of same-topology circuits.

Every campaign in this repository (Monte Carlo, the VDDI×VDDO grids,
PVT corners) simulates the *same* netlist topology over and over with
only parameter values changing: W/L/Vt from the variation model, the
supply voltages, the temperature. This module stacks N such circuits
into *lanes* of 3-D ndarrays and drives them together:

* :class:`LaneGroup` checks the lanes are structurally identical
  (same MNA size, same MOSFET stamp layout) and owns the stacked
  buffers — one ``(L, naug, naug)`` matrix block, one batched EKV
  parameter set, and one per-lane :class:`~repro.spice.assembly.
  SolverWorkspace` for everything that is cheap and already bitwise
  (base matrices, RHS bases, capacitor state).
* :meth:`LaneGroup.newton` runs a lane-masked damped Newton: one
  vectorized EKV evaluation over all active lanes, one ``np.add.at``
  scatter, and one batched LAPACK ``solve`` per iteration. Converged
  and diverged lanes drop out of the active set immediately, so a
  straggler never costs the finished lanes anything and a diverging
  lane cannot poison its neighbors (each lane occupies its own matrix
  block; LAPACK factorizes the blocks independently).
* :meth:`LaneGroup.solve_dc` evicts lanes that plain batched Newton
  cannot crack to the full serial retry ladder
  (:func:`~repro.spice.newton.solve_dc_report` with the lane's own
  workspace) — the RetryPolicy fallback stays per-lane and serial,
  exactly as robust as before.
* :class:`BatchTransient` marches all lanes with *per-lane* adaptive
  timesteps: each lane keeps its own t/h/breakpoint/halving state and
  the group solves one batched Newton per super-step over whatever
  (t_i, h_i, method_i) each lane wants next. A lane that stalls is
  marked dead (the serial engine would raise
  :class:`~repro.errors.ConvergenceError`) without stopping the rest.

**Equivalence contract.** On the fixed-order path — every lane taking
the same decisions it would take alone — the batched backend is
*bitwise identical* to the serial solver, and
``tests/spice/test_batch_equivalence.py`` enforces exactly that. The
ingredients: per-lane ``begin_solve`` reuses the serial base-matrix /
RHS code verbatim; the stacked EKV evaluation calls the same
elementwise kernel (numpy ufuncs are value-deterministic across array
shapes); the ``np.add.at`` scatter is laid out lane-major so each
lane's accumulation sub-order matches the serial device-major order;
and the batched LAPACK ``solve`` gufunc factorizes each ``(n, n)``
block with the same routine the serial path uses, yielding bit-equal
solutions per lane. The documented tolerance bound (0 ULP on this
path) is therefore *test-enforced, not aspirational*; the harness
carries a negative control showing a genuinely reordered reduction
does exceed it.

Structural prerequisites are strict on purpose: all lanes must share a
supported :class:`~repro.spice.assembly.AssemblyPlan` (no opaque
devices, identical MOSFET/index layout). Anything else raises
:class:`BatchUnsupported` and callers fall back to the serial path —
the same downgrade-for-safety convention the cached assembly uses.

With an ambient :class:`~repro.runtime.telemetry.Tracer` active the
group emits ``batch.*`` counters (lanes entered, batched iterations,
evictions, transient steps); with tracing disabled each site costs one
global read, preserving the NullTracer ≤2 % contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, ConvergenceError
from repro.runtime import telemetry
from repro.runtime.faults import active_plan
from repro.runtime.policy import RetryPolicy
from repro.runtime.report import SolveReport, TransientReport
from repro.spice.assembly import SolverWorkspace
from repro.spice.integration import (
    BACKWARD_EULER, TRAPEZOIDAL, IntegratorState,
)
from repro.spice.newton import (
    NewtonOptions, add_solve_stats, solve_dc_report,
)
from repro.spice.transient import TransientOptions, TransientResult

try:  # pragma: no cover - version-dependent private module
    # Same gufunc the serial Newton loop uses; on a (L, n, n) stack it
    # factorizes each block independently with the identical LAPACK
    # routine, so per-lane solutions are bit-equal to serial calls.
    from numpy.linalg._umath_linalg import solve1 as _lapack_solve1
except ImportError:  # pragma: no cover
    _lapack_solve1 = None


class BatchUnsupported(AnalysisError):
    """The lanes cannot be stacked; callers should run serially."""


@dataclass
class BatchNewtonResult:
    """Per-lane outcome of one lane-masked batched Newton call."""

    #: Solutions, shape ``(lanes, size)``; rows valid where converged.
    x: np.ndarray
    #: Per-lane convergence flags.
    converged: np.ndarray
    #: Per-lane iteration counts (at convergence or failure).
    iterations: np.ndarray
    #: Per-lane failure messages (None where converged), matching the
    #: serial solver's ConvergenceError messages.
    errors: list


@dataclass
class _LaneMarch:
    """Per-lane adaptive step-control state (mirrors Transient.run)."""

    t_stop: float
    h_max: float
    h_min: float
    breakpoints: list
    restart_h: float
    t: float = 0.0
    h: float = 0.0
    bp_index: int = 1
    use_be: bool = True
    halvings: int = 0
    hit_bp: bool = False
    times: list = field(default_factory=list)
    states: list = field(default_factory=list)
    report: TransientReport = field(default_factory=TransientReport)
    error: str | None = None

    @property
    def active(self) -> bool:
        return self.error is None and self.t < self.t_stop - 1e-21


def _solve_stack(matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Batched linear solve; singular blocks yield non-finite rows."""
    if _lapack_solve1 is not None:
        return _lapack_solve1(matrices, rhs)
    try:  # pragma: no cover - fallback without the private gufunc
        return np.linalg.solve(matrices, rhs)
    except np.linalg.LinAlgError:  # pragma: no cover
        out = np.empty_like(rhs)
        for k in range(len(rhs)):
            try:
                out[k] = np.linalg.solve(matrices[k], rhs[k])
            except np.linalg.LinAlgError:
                out[k] = np.nan
        return out


class LaneGroup:
    """N structurally identical circuits stacked into SPMD lanes.

    Raises :class:`BatchUnsupported` unless every lane has a supported
    assembly plan, no opaque devices, and the identical MOSFET stamp
    structure (same flat scatter indices — i.e. the same topology).
    Parameter *values* (W/L/Vt/VDD/temperature) are free to differ.
    """

    def __init__(self, circuits: Sequence):
        if not circuits:
            raise BatchUnsupported("lane group needs at least one circuit")
        self.circuits = list(circuits)
        self.workspaces = [SolverWorkspace(c) for c in self.circuits]
        self.n_lanes = len(self.circuits)
        ref = self.workspaces[0].plan
        for k, ws in enumerate(self.workspaces):
            plan = ws.plan
            if not plan.supported:
                raise BatchUnsupported(
                    f"lane {k} ({self.circuits[k].title!r}) has an "
                    f"unsupported assembly plan; run it serially")
            if plan.opaque:
                raise BatchUnsupported(
                    f"lane {k} ({self.circuits[k].title!r}) contains "
                    f"opaque devices "
                    f"({', '.join(d.name for d in plan.opaque)}); the "
                    f"batched backend stamps only trusted-linear + "
                    f"MOSFET circuits")
            if (plan.size, plan.n_nodes, plan.damped) != (
                    ref.size, ref.n_nodes, ref.damped):
                raise BatchUnsupported(
                    f"lane {k} has MNA shape (size={plan.size}, "
                    f"nodes={plan.n_nodes}) but lane 0 has "
                    f"(size={ref.size}, nodes={ref.n_nodes}); lanes "
                    f"must share one topology")
            if not self._same_mosfet_structure(ref, plan):
                raise BatchUnsupported(
                    f"lane {k} has a different MOSFET stamp layout than "
                    f"lane 0; lanes must share one topology")
        self.size = ref.size
        self.n_nodes = ref.n_nodes
        self.naug = ref.naug
        self.damped = ref.damped
        L, naug = self.n_lanes, self.naug

        mg = ref.mosfet_group
        self.n_mos = mg.n if mg is not None else 0
        if mg is not None:
            self._dgsb = mg.dgsb  # (4, n_mos), identical across lanes
            # Lane-major flat indices into the stacked matrix/RHS
            # blocks: within a lane the sub-order is exactly the serial
            # device-major order, so np.add.at accumulates bit-equal.
            lanes = np.arange(L, dtype=np.intp)[:, None]
            self._mat_idx = np.ascontiguousarray(
                lanes * (naug * naug) + mg.mat_flat[None, :])
            self._rhs_idx = np.ascontiguousarray(
                lanes * naug + mg.rhs_rows[None, :])
            groups = [ws.plan.mosfet_group for ws in self.workspaces]
            self._mos_params = tuple(
                np.stack([getattr(g, name) for g in groups])
                for name in ("sign", "vto", "n_slope", "ut", "gamma",
                             "phi", "eta_dibl", "lambda_clm", "ispec"))
            self._mv = np.empty((L, self.n_mos, 12), dtype=float)
            self._rv = np.empty((L, self.n_mos, 2), dtype=float)

        # Stacked per-call buffers (worst case: every lane active).
        self._base_stack = np.empty((L, naug, naug), dtype=float)
        self._rhsb_stack = np.empty((L, naug), dtype=float)
        self._A = np.empty((L, naug, naug), dtype=float)
        self._R = np.empty((L, naug), dtype=float)
        self._A_flat = self._A.reshape(-1)
        self._R_flat = self._R.reshape(-1)
        self._Xaug = np.zeros((L, naug), dtype=float)

    @staticmethod
    def _same_mosfet_structure(ref, plan) -> bool:
        a, b = ref.mosfet_group, plan.mosfet_group
        if (a is None) != (b is None):
            return False
        if a is None:
            return True
        return (a.n == b.n
                and np.array_equal(a.mat_flat, b.mat_flat)
                and np.array_equal(a.rhs_rows, b.rhs_rows)
                and np.array_equal(a.dgsb, b.dgsb))

    # -- lane-masked batched Newton --------------------------------------

    def newton(self, lane_ids: np.ndarray, x0: np.ndarray, *,
               times: Sequence[float],
               integrators: Sequence[Optional[IntegratorState]],
               options: Optional[NewtonOptions] = None,
               gmin: Optional[float] = None,
               source_scale: float = 1.0) -> BatchNewtonResult:
        """Damped Newton over ``lane_ids``, one batched solve per pass.

        Args:
            lane_ids: absolute lane indices participating in this call.
            x0: initial iterates, shape ``(len(lane_ids), size)``.
            times / integrators: per-lane solve regime (a transient
                super-step hands every lane its own ``t + h`` and
                integrator; DC passes 0.0 / None).

        Each lane replays exactly the serial loop's float operations —
        per-lane damping decisions, per-lane convergence tests — so a
        converged lane's solution is bitwise what :func:`newton_solve`
        would return. Converged/failed lanes leave the active set at
        the end of the iteration that settles them.
        """
        opts = options or NewtonOptions()
        effective_gmin = opts.gmin if gmin is None else gmin
        lane_ids = np.asarray(lane_ids, dtype=np.intp)
        nc = len(lane_ids)
        size, n_nodes, naug = self.size, self.n_nodes, self.naug
        n_branch = size - n_nodes
        tracer = telemetry.active_tracer()
        if tracer is not None:
            tracer.count("batch.newton.solves", nc)

        # Per-lane solve setup reuses the serial workspace code, so
        # base matrices and RHS bases are bitwise the serial ones.
        for k, lane in enumerate(lane_ids):
            ws = self.workspaces[lane]
            ws.begin_solve(times[k], integrators[k], effective_gmin,
                           source_scale)
            self._base_stack[k] = ws._base
            self._rhsb_stack[k] = ws._rhs_base
        add_solve_stats(solves=nc)

        X = np.array(x0, dtype=float, copy=True)
        converged = np.zeros(nc, dtype=bool)
        iterations = np.zeros(nc, dtype=np.intp)
        errors: list = [None] * nc
        last_dv = np.zeros(nc, dtype=float)
        alive = np.arange(nc, dtype=np.intp)
        damped = self.damped

        saved_err = np.seterr(invalid="ignore", over="ignore",
                              divide="ignore")
        try:
            for iteration in range(opts.max_iterations):
                na = alive.size
                if na == 0:
                    break
                add_solve_stats(iterations=na)
                if tracer is not None:
                    tracer.count("batch.newton.iterations")
                    tracer.count("batch.newton.lane_iterations", na)
                A = self._A[:na]
                R = self._R[:na]
                np.take(self._base_stack[:nc], alive, axis=0, out=A)
                np.take(self._rhsb_stack[:nc], alive, axis=0, out=R)
                Xa = self._Xaug[:na]
                Xa[:, :size] = X[alive]
                Xa[:, size:] = 0.0
                if self.n_mos:
                    self._stamp_mosfets(lane_ids[alive], Xa, A, R,
                                        effective_gmin, na, naug)

                x_new = _solve_stack(A[:, :size, :size], R[:, :size])
                finite = np.isfinite(x_new).all(axis=1)
                if not finite.all():
                    for pos in np.nonzero(~finite)[0]:
                        k = alive[pos]
                        if (np.isfinite(A[pos, :size, :size]).all()
                                and np.isfinite(R[pos, :size]).all()):
                            errors[k] = ("singular MNA matrix at "
                                         f"iteration {iteration}")
                        else:
                            errors[k] = ("non-finite solution at "
                                         f"iteration {iteration}")
                        iterations[k] = iteration

                rows = alive[finite]
                if rows.size == 0:
                    alive = rows
                    continue
                xn = x_new[finite]
                delta = xn - X[rows]
                absd = np.abs(delta)
                max_dv = (absd[:, :n_nodes].max(axis=1) if n_nodes
                          else np.zeros(rows.size))
                max_di = (absd[:, n_nodes:].max(axis=1) if n_branch
                          else np.zeros(rows.size))
                last_dv[rows] = max_dv

                if damped:
                    clamp = max_dv > opts.max_step_v
                    # Clamped lanes scale by max_step_v/max_dv exactly
                    # like the serial loop; unclamped lanes multiply by
                    # 1.0, which is exact, so one fused update serves
                    # both without perturbing either.
                    scale = np.where(clamp,
                                     opts.max_step_v
                                     / np.where(clamp, max_dv, 1.0),
                                     1.0)
                    X[rows] += delta * scale[:, None]
                else:
                    clamp = np.zeros(rows.size, dtype=bool)
                    X[rows] += delta

                absx = np.abs(X[rows])
                v_tol = opts.abstol_v + opts.reltol * (
                    absx[:, :n_nodes].max(axis=1) if n_nodes
                    else np.zeros(rows.size))
                i_tol = opts.abstol_i + opts.reltol * (
                    absx[:, n_nodes:].max(axis=1) if n_branch
                    else np.zeros(rows.size))
                conv = (~clamp) & (max_dv <= v_tol) & (max_di <= i_tol)
                newly = rows[conv]
                converged[newly] = True
                iterations[newly] = iteration + 1
                alive = rows[~conv]
        finally:
            np.seterr(**saved_err)

        for k in alive:
            errors[k] = (f"Newton failed to converge in "
                         f"{opts.max_iterations} iterations "
                         f"(last max dV = {last_dv[k]:.3e} V)")
            iterations[k] = opts.max_iterations
        if tracer is not None:
            n_failed = sum(1 for e in errors if e is not None)
            if n_failed:
                tracer.count("batch.newton.lane_failures", n_failed)
        return BatchNewtonResult(x=X, converged=converged,
                                 iterations=iterations, errors=errors)

    def _stamp_mosfets(self, abs_ids, Xa, A, R, gmin, na, naug) -> None:
        """Vectorized EKV + scatter over all active lanes at once."""
        from repro.spice.devices.mosfet import ekv_evaluate
        V = Xa[:, self._dgsb]  # (na, 4, n_mos)
        vd, vg, vs, vb = V[:, 0], V[:, 1], V[:, 2], V[:, 3]
        (sign, vto, n_slope, ut, gamma, phi, eta_dibl, lambda_clm,
         ispec) = (p[abs_ids] for p in self._mos_params)
        id_real, gdd, gdg, gds_, gdb = ekv_evaluate(
            sign, vto, n_slope, ut, gamma, phi, eta_dibl, lambda_clm,
            ispec, vd, vg, vs, vb)
        mv = self._mv[:na]
        mv[..., 0] = gdd
        mv[..., 2] = gdg
        mv[..., 4] = gds_
        mv[..., 6] = gdb
        np.negative(mv[..., 0:8:2], out=mv[..., 1:8:2])
        mv[..., 8] = gmin
        mv[..., 9] = gmin
        mv[..., 10] = -gmin
        mv[..., 11] = -gmin
        np.add.at(self._A_flat[:na * naug * naug],
                  self._mat_idx[:na].ravel(), mv.reshape(-1))
        linear_sum = gdd * vd + gdg * vg + gds_ * vs + gdb * vb
        r = linear_sum - id_real
        rv = self._rv[:na]
        rv[..., 0] = r
        rv[..., 1] = -r
        np.add.at(self._R_flat[:na * naug],
                  self._rhs_idx[:na].ravel(), rv.reshape(-1))

    # -- batched DC with serial-ladder eviction --------------------------

    def solve_dc(self, options: Optional[NewtonOptions] = None,
                 policy: Optional[RetryPolicy] = None,
                 x0: Optional[np.ndarray] = None,
                 ) -> tuple[np.ndarray, list, list]:
        """DC operating points for all lanes.

        Runs the plain-Newton rung batched (bitwise what the serial
        ladder's first attempt computes); lanes it cannot crack are
        *evicted to the full serial retry ladder* — gmin stepping and
        source ramping through :func:`solve_dc_report` with the lane's
        own workspace, so an all-lanes-evicted run degenerates to
        exactly the serial path. Returns ``(X, reports, errors)`` where
        ``reports[k]`` is the eviction's :class:`SolveReport` (None for
        lanes the batched rung solved) and ``errors[k]`` carries the
        final ConvergenceError text for lanes the ladder lost too.
        """
        opts = options or NewtonOptions()
        nc = self.n_lanes
        lane_ids = np.arange(nc, dtype=np.intp)
        x0s = (np.zeros((nc, self.size))
               if x0 is None else np.asarray(x0, dtype=float))
        res = self.newton(lane_ids, x0s, times=[0.0] * nc,
                          integrators=[None] * nc, options=opts)
        X = res.x
        reports: list = [None] * nc
        errors: list = [None] * nc
        for k in range(nc):
            if not res.converged[k]:
                errors[k] = res.errors[k]
        evicted = np.nonzero(~res.converged)[0]
        if evicted.size:
            tracer = telemetry.active_tracer()
            if tracer is not None:
                tracer.count("batch.dc.evicted", int(evicted.size))
        for k in evicted:
            try:
                x, report = solve_dc_report(
                    self.circuits[k], x0=x0s[k] if x0 is not None
                    else None, options=opts, policy=policy,
                    workspace=self.workspaces[k])
            except ConvergenceError as exc:
                errors[k] = str(exc)
                continue
            X[k] = x
            reports[k] = report
            errors[k] = None
        return X, reports, errors


class BatchTransientResult:
    """Per-lane transient results plus a shared interpolation grid."""

    def __init__(self, lanes: list, errors: list):
        #: Per-lane :class:`TransientResult` (None where the lane died).
        self.lanes = lanes
        #: Per-lane failure text (None where the lane completed) —
        #: the message the serial engine's ConvergenceError would carry.
        self.errors = errors

    @property
    def n_lanes(self) -> int:
        return len(self.lanes)

    def lane(self, k: int) -> TransientResult:
        """The lane's result; raises the deferred stall if it died."""
        if self.lanes[k] is None:
            raise ConvergenceError(self.errors[k])
        return self.lanes[k]

    def ok(self, k: int) -> bool:
        return self.lanes[k] is not None

    def shared_grid(self, samples: int = 512
                    ) -> tuple[np.ndarray, np.ndarray]:
        """All lanes interpolated onto one uniform time grid.

        Returns ``(grid, states)`` with ``states`` shaped
        ``(lanes, samples, size)``; dead lanes are NaN rows. Each
        lane's native adaptive time points remain available through
        :meth:`lane` — the grid is for cross-lane ndarray consumers
        (surface plots, vectorized metric sweeps).
        """
        t_end = max((r.times[-1] for r in self.lanes if r is not None),
                    default=0.0)
        grid = np.linspace(0.0, float(t_end), int(samples))
        size = next((r._states.shape[1] for r in self.lanes
                     if r is not None), 0)
        states = np.full((len(self.lanes), int(samples), size), np.nan)
        for k, result in enumerate(self.lanes):
            if result is None:
                continue
            for col in range(size):
                states[k, :, col] = np.interp(
                    grid, result.times, result._states[:, col])
        return grid, states


class BatchTransient:
    """Batched transient runner with per-lane adaptive timestep.

    The step-control state machine is replicated *per lane* from
    :class:`~repro.spice.transient.Transient` — breakpoint snapping,
    BE-after-breakpoint restarts, dv_max rejection, halving budgets,
    1.5x growth — so each lane visits exactly the time points and
    integrator choices it would visit alone, and its accepted states
    are bitwise the serial ones. Only the Newton solves are pooled:
    each super-step solves every active lane's next attempted step in
    one batched call.

    Ambient fault plans are not consumed on this path (the experiment
    engine keeps fault campaigns serial); construction refuses to race
    one silently.
    """

    def __init__(self, circuits: Sequence, t_stop,
                 options: Optional[TransientOptions] = None):
        self.group = LaneGroup(circuits)
        self.options = options or TransientOptions()
        if np.isscalar(t_stop):
            t_stops = [float(t_stop)] * self.group.n_lanes
        else:
            t_stops = [float(t) for t in t_stop]
            if len(t_stops) != self.group.n_lanes:
                raise AnalysisError(
                    f"got {len(t_stops)} t_stop values for "
                    f"{self.group.n_lanes} lanes")
        if any(t <= 0 for t in t_stops):
            raise AnalysisError("t_stop must be > 0 for every lane")
        self.t_stops = t_stops
        if active_plan() is not None:
            raise BatchUnsupported(
                "an ambient FaultPlan is active; fault injection "
                "requires the serial transient path")

    def run(self, x0: Optional[np.ndarray] = None) -> BatchTransientResult:
        group = self.group
        opts = self.options
        if opts.method not in (None, BACKWARD_EULER, TRAPEZOIDAL):
            raise AnalysisError(
                f"TransientOptions.method must be None, "
                f"{BACKWARD_EULER!r} or {TRAPEZOIDAL!r}, "
                f"got {opts.method!r}")
        forced_method = opts.method
        policy = opts.policy or RetryPolicy()
        policy.validate()
        tracer = telemetry.active_tracer()
        n_nodes = group.n_nodes
        nc = group.n_lanes
        if tracer is not None:
            tracer.count("batch.tran.lanes", nc)

        marches: list = []
        for k in range(nc):
            t_stop = self.t_stops[k]
            h_max = opts.h_max if opts.h_max is not None else t_stop / 100.0
            h_min = opts.h_min if opts.h_min is not None else t_stop * 1e-9
            if h_min >= h_max:
                raise AnalysisError(
                    f"h_min {h_min} must be < h_max {h_max}")
            restart_h = max(h_min, h_max * opts.restart_fraction)
            marches.append(_LaneMarch(
                t_stop=t_stop, h_max=h_max, h_min=h_min,
                breakpoints=group.circuits[k].breakpoints(t_stop),
                restart_h=restart_h, h=restart_h))

        # DC seed: batched plain Newton, serial-ladder eviction.
        X = np.zeros((nc, group.size), dtype=float)
        if x0 is None:
            x_dc, dc_reports, dc_errors = group.solve_dc(
                options=opts.newton, policy=policy)
            for k, march in enumerate(marches):
                if dc_errors[k] is not None:
                    march.error = dc_errors[k]
                    march.report.stalled = True
                    continue
                X[k] = x_dc[k]
                march.report.dc_report = dc_reports[k]
        else:
            X[:] = np.asarray(x0, dtype=float)
        for k, march in enumerate(marches):
            if march.error is None:
                group.workspaces[k].init_state(X[k])
                march.times.append(0.0)
                march.states.append(X[k].copy())

        def _stall(k: int, march: _LaneMarch, reason: str) -> None:
            group.workspaces[k].sync_state()
            march.report.stalled = True
            march.error = (
                f"transient stalled at t={march.t:.6e}s with "
                f"h={march.h:.3e}s in circuit "
                f"{group.circuits[k].title!r} ({reason})")
            if tracer is not None:
                tracer.count("batch.tran.stalled")

        while True:
            active = [k for k, m in enumerate(marches) if m.active]
            if not active:
                break
            times = []
            integrators = []
            # Per-lane step preparation: same arithmetic and decisions
            # as the serial engine's loop head.
            for k in active:
                m = marches[k]
                next_bp = (m.breakpoints[m.bp_index]
                           if m.bp_index < len(m.breakpoints)
                           else m.t_stop)
                m.h = min(m.h, m.h_max, m.t_stop - m.t)
                m.hit_bp = False
                if m.t + m.h >= next_bp - 1e-21:
                    m.h = next_bp - m.t
                    m.hit_bp = True
                if m.h < m.h_min * 0.5:
                    m.h = max(m.h, 1e-21)
                if forced_method is None:
                    method = BACKWARD_EULER if m.use_be else TRAPEZOIDAL
                else:
                    method = forced_method
                times.append(m.t + m.h)
                integrators.append(IntegratorState(method=method, dt=m.h))

            lane_ids = np.asarray(active, dtype=np.intp)
            res = group.newton(lane_ids, X[lane_ids], times=times,
                               integrators=integrators,
                               options=opts.newton)
            if tracer is not None:
                tracer.count("batch.tran.super_steps")

            for pos, k in enumerate(active):
                m = marches[k]
                if not res.converged[pos]:
                    m.report.newton_failures += 1
                    if m.h <= m.h_min * 1.0000001:
                        _stall(k, m, "step at h_min")
                        continue
                    if m.halvings >= policy.max_step_halvings:
                        _stall(k, m, f"halving budget "
                               f"{policy.max_step_halvings} exhausted")
                        continue
                    m.h = max(m.h / 2.0, m.h_min)
                    m.halvings += 1
                    m.report.total_halvings += 1
                    if policy.be_on_retry:
                        m.use_be = True
                    continue

                x_new = res.x[pos]
                max_dv = (float(np.max(np.abs(x_new[:n_nodes]
                                              - X[k][:n_nodes])))
                          if n_nodes else 0.0)
                if (max_dv > opts.dv_max and m.h > m.h_min * 1.0000001
                        and m.halvings < policy.max_step_halvings):
                    m.report.steps_rejected_dv += 1
                    m.h = max(m.h / 2.0, m.h_min)
                    m.halvings += 1
                    m.report.total_halvings += 1
                    continue

                # Accept the lane's step.
                next_bp = (m.breakpoints[m.bp_index]
                           if m.bp_index < len(m.breakpoints)
                           else m.t_stop)
                group.workspaces[k].update_state(x_new, integrators[pos])
                m.t = next_bp if m.hit_bp else m.t + m.h
                X[k] = x_new
                m.times.append(m.t)
                m.states.append(x_new.copy())
                m.report.steps_accepted += 1
                m.halvings = 0
                if tracer is not None:
                    tracer.count("batch.tran.steps_accepted")
                if m.hit_bp:
                    m.bp_index += 1
                    m.h = m.restart_h
                    m.use_be = True
                else:
                    m.use_be = False
                    if max_dv < 0.3 * opts.dv_max:
                        m.h = min(m.h * 1.5, m.h_max)

        lanes: list = []
        errors: list = []
        for k, m in enumerate(marches):
            if m.error is not None:
                lanes.append(None)
                errors.append(m.error)
                continue
            group.workspaces[k].sync_state()
            lanes.append(TransientResult(group.circuits[k],
                                         np.asarray(m.times),
                                         np.asarray(m.states),
                                         report=m.report))
            errors.append(None)
        return BatchTransientResult(lanes, errors)
