"""Per-device current probing at a solved bias point.

Useful for leakage-path hunting and for tests that assert which device
dominates a static current. Works on any solution vector produced by
the OP, DC-sweep, or transient analyses.
"""

from __future__ import annotations

import numpy as np

from repro.spice.devices.mosfet import Mosfet
from repro.spice.devices.passive import Resistor
from repro.spice.devices.diode import Diode


def _voltage(x: np.ndarray, idx: int) -> float:
    return 0.0 if idx < 0 else float(x[idx])


def device_currents(circuit, x: np.ndarray) -> dict[str, float]:
    """Static branch current of every conducting device at state ``x``.

    Returns a mapping device name -> current [A]:

    * MOSFET: drain-terminal current (positive into the drain);
    * resistor: current pos -> neg;
    * diode: forward current.

    Capacitors and sources are skipped (capacitors carry no DC current;
    source currents are available as MNA branch variables).
    """
    currents: dict[str, float] = {}
    for device in circuit:
        if isinstance(device, Mosfet):
            d, g, s, b = device.node_indices
            currents[device.name] = device.evaluate(
                _voltage(x, d), _voltage(x, g), _voltage(x, s),
                _voltage(x, b))[0]
        elif isinstance(device, Resistor):
            a, b_ = device.node_indices
            currents[device.name] = (
                _voltage(x, a) - _voltage(x, b_)) / device.resistance
        elif isinstance(device, Diode):
            a, b_ = device.node_indices
            v = _voltage(x, a) - _voltage(x, b_)
            currents[device.name] = device.current_and_conductance(v)[0]
    return currents


def dominant_currents(circuit, x: np.ndarray, top: int = 8,
                      floor: float = 1e-15) -> list[tuple[str, float]]:
    """The ``top`` largest-magnitude device currents above ``floor``."""
    items = [(name, value) for name, value in
             device_currents(circuit, x).items() if abs(value) > floor]
    items.sort(key=lambda kv: -abs(kv[1]))
    return items[:top]
