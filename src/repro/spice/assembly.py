"""Cached static+dynamic MNA assembly — the throughput path.

:func:`repro.spice.mna.assemble` re-stamps every device at every Newton
iteration. Profiling the level-shifter testbenches shows that ~83% of a
transient run is spent there, almost all of it re-deriving numbers that
never change within a solve: resistor conductances, source incidence
rows, capacitor companion conductances (fixed for a given integrator
method and step), and companion currents (fixed across the iterations of
one solve). This module splits assembly accordingly:

* **per circuit** — an :class:`AssemblyPlan` partitions devices by
  ``stamp_kind`` and precomputes index structure (COO rows/cols, flat
  scatter indices, MOSFET parameter arrays);
* **per (method, dt, gmin)** — a dense *base matrix* accumulates every
  linear device's ``linear_matrix_entries`` + ``reactive_matrix_entries``
  plus the gmin diagonal, cached in a small LRU so transient steps at an
  unchanged ``h`` pay nothing;
* **per solve** — :meth:`SolverWorkspace.begin_solve` rebuilds only the
  RHS base (source values, capacitor companion currents), constant
  across that solve's Newton iterations;
* **per iteration** — :meth:`SolverWorkspace.assemble_iteration` copies
  base matrix and RHS base into the shared :class:`~repro.spice.mna.
  MnaSystem` and re-stamps only the nonlinear devices: opaque devices
  scalar-wise, MOSFETs through one vectorized EKV evaluation.

Bitwise parity with the reference path is a hard requirement (tested in
``tests/spice/test_assembly_equivalence.py``): both paths stamp in the
same canonical order (linear devices in insertion order, gmin diagonal,
opaque devices, MOSFETs), device values come from the same shared
numpy kernels, and ``np.add.at`` is unbuffered so duplicate COO indices
accumulate in exactly the sequential order the scalar path uses.

Unknown device subclasses make a plan *unsupported*; the workspace then
falls back to the reference full re-stamp, trading speed for safety.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.runtime import telemetry
from repro.spice import mna
from repro.spice.devices.base import Device
from repro.spice.devices.controlled import Vccs, Vcvs
from repro.spice.devices.inductor import Inductor
from repro.spice.devices.mosfet import Mosfet, ekv_evaluate
from repro.spice.devices.passive import Capacitor, Resistor
from repro.spice.devices.sources import CurrentSource, VoltageSource
from repro.spice.integration import (
    BACKWARD_EULER, TRAPEZOIDAL, IntegratorState,
)

#: Device classes whose split-stamp entry methods are known to describe
#: their ``stamp`` exactly. Subclasses are deliberately excluded: they
#: may override ``stamp`` without updating the entry methods, so any
#: unknown class downgrades the whole plan to the reference path.
_TRUSTED_LINEAR = (Resistor, Capacitor, VoltageSource, CurrentSource,
                   Vcvs, Vccs, Inductor)

#: Cached base matrices per plan; transient runs alternate between a
#: handful of (method, dt) pairs once the step controller settles, but
#: a batched lane group cycles every lane's growth/halving dt sequence
#: through its shared plan, so the window is sized for that churn (the
#: memory cost is naug² floats per entry — a few KB).
_BASE_CACHE_SIZE = 64


class _MosfetGroup:
    """All MOSFETs of a circuit, evaluated in one vectorized pass.

    Stamp order per device matches :meth:`Mosfet.stamp` exactly:
    ``(d,col)/(s,col)`` pairs for col in (d, g, s, b), then the gmin
    quad ``(d,d),(s,s),(d,s),(s,d)``; RHS ``(d, r),(s, -r)``. The COO
    arrays are laid out device-major so ``np.add.at`` replays the same
    accumulation sequence as the scalar per-device loop.
    """

    def __init__(self, mosfets: list, naug: int):
        self.n = len(mosfets)
        params = np.array([m.kernel_params() for m in mosfets], dtype=float)
        (self.sign, self.vto, self.n_slope, self.ut, self.gamma, self.phi,
         self.eta_dibl, self.lambda_clm, self.ispec) = (
            np.ascontiguousarray(params[:, k]) for k in range(9))
        idx = np.array([m.node_indices for m in mosfets],
                       dtype=np.intp) % naug
        d, g, s, b = (np.ascontiguousarray(idx[:, k]) for k in range(4))
        self.d, self.g, self.s, self.b = d, g, s, b
        self.dgsb = np.stack([d, g, s, b])  # one-gather terminal index
        rows = np.stack([d, s, d, s, d, s, d, s, d, s, d, s], axis=1)
        cols = np.stack([d, d, g, g, s, s, b, b, d, s, s, d], axis=1)
        self.mat_flat = np.ascontiguousarray((rows * naug + cols).ravel())
        self.rhs_rows = np.ascontiguousarray(
            np.stack([d, s], axis=1).ravel())

    def stamp(self, aug_matrix_flat: np.ndarray, aug_rhs: np.ndarray,
              x_aug: np.ndarray, gmin: float, mat_vals: np.ndarray,
              rhs_vals: np.ndarray) -> None:
        vd, vg, vs, vb = x_aug[self.dgsb]
        id_real, gdd, gdg, gds_, gdb = ekv_evaluate(
            self.sign, self.vto, self.n_slope, self.ut, self.gamma,
            self.phi, self.eta_dibl, self.lambda_clm, self.ispec,
            vd, vg, vs, vb)
        mv = mat_vals
        mv[:, 0] = gdd
        mv[:, 2] = gdg
        mv[:, 4] = gds_
        mv[:, 6] = gdb
        np.negative(mv[:, 0:8:2], out=mv[:, 1:8:2])
        mv[:, 8] = gmin
        mv[:, 9] = gmin
        mv[:, 10] = -gmin
        mv[:, 11] = -gmin
        np.add.at(aug_matrix_flat, self.mat_flat, mv.ravel())
        linear_sum = gdd * vd + gdg * vg + gds_ * vs + gdb * vb
        r = linear_sum - id_real
        rhs_vals[:, 0] = r
        rhs_vals[:, 1] = -r
        np.add.at(aug_rhs, self.rhs_rows, rhs_vals.ravel())


class _CapacitorGroup:
    """Index/parameter arrays for all state-carrying capacitors.

    The group is pure structure; per-run state (``v_prev``, ``i_prev``)
    lives in the :class:`SolverWorkspace` so one cached plan serves any
    number of runs.
    """

    def __init__(self, caps: list, naug: int):
        self.caps = caps
        self.n = len(caps)
        self.c = np.array([c.capacitance for c in caps], dtype=float)
        self.ic = np.array([np.nan if c.ic is None else float(c.ic)
                            for c in caps], dtype=float)
        idx = np.array([c.node_indices for c in caps],
                       dtype=np.intp) % naug
        self.a = np.ascontiguousarray(idx[:, 0])
        self.b = np.ascontiguousarray(idx[:, 1])

    def companion(self, integrator: IntegratorState, v_prev: np.ndarray,
                  i_prev: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`IntegratorState.companion` (same float ops)."""
        if integrator.method == BACKWARD_EULER:
            geq = self.c / integrator.dt
            return geq, -geq * v_prev
        geq = 2.0 * self.c / integrator.dt
        return geq, -(geq * v_prev + i_prev)


class AssemblyPlan:
    """Immutable per-circuit assembly structure plus the base-matrix cache.

    Obtained via :meth:`Circuit.assembly_plan`, which invalidates it
    whenever the device set can change.
    """

    def __init__(self, circuit):
        circuit.finalize()
        self.size = circuit.system_size()
        self.n_nodes = circuit.node_count()
        self.naug = self.size + 1
        linear, opaque, mosfets = circuit.stamp_partition()
        self.linear = linear
        self.opaque = opaque
        self.mosfets = mosfets
        self.damped = bool(circuit.nonlinear_devices())
        self.supported = (
            all(type(d) in _TRUSTED_LINEAR for d in linear)
            and all(type(d) is Mosfet for d in mosfets))
        self._base_cache: OrderedDict = OrderedDict()
        self.mosfet_group: Optional[_MosfetGroup] = None
        self.cap_group: Optional[_CapacitorGroup] = None
        if not self.supported:
            return
        if mosfets:
            self.mosfet_group = _MosfetGroup(mosfets, self.naug)
        caps = [d for d in linear
                if type(d) is Capacitor and d.capacitance > 0.0]
        if caps:
            self.cap_group = _CapacitorGroup(caps, self.naug)
        group_caps = {id(c) for c in caps}
        self.stateful_scalar = [
            d for d in circuit
            if id(d) not in group_caps
            and (type(d).init_state is not Device.init_state
                 or type(d).update_state is not Device.update_state)]
        self._rhs_tr = self._build_rhs_structure(
            IntegratorState(TRAPEZOIDAL, dt=1.0), group_caps)
        self._rhs_dc = self._build_rhs_structure(None, group_caps)
        self._mat_tr = self._build_matrix_structure(
            IntegratorState(TRAPEZOIDAL, dt=1.0), group_caps)
        self._mat_dc = self._build_matrix_structure(None, group_caps)
        self._diag_flat = np.arange(self.n_nodes, dtype=np.intp) \
            * (self.naug + 1)

    def _build_rhs_structure(self, probe, group_caps):
        """RHS row layout for one regime (transient probe or DC).

        Returns ``(rows, scalar, cap_slot_a, cap_slot_b)`` where ``rows``
        lists target rows in canonical device order, ``scalar`` holds
        ``(device, start, count)`` for devices whose values are fetched
        through ``dynamic_rhs_entries`` each solve, and the cap slots
        index the value positions filled vectorized from the capacitor
        group (in group order). Only the row *structure* is taken from
        the probe; values are recomputed per solve.
        """
        rows: list[int] = []
        scalar: list[tuple] = []
        cap_slot_a: list[int] = []
        cap_slot_b: list[int] = []
        for device in self.linear:
            if probe is not None and id(device) in group_caps:
                a, b = (i % self.naug for i in device.node_indices)
                cap_slot_a.append(len(rows))
                rows.append(a)
                cap_slot_b.append(len(rows))
                rows.append(b)
                continue
            entries = device.dynamic_rhs_entries(0.0, 1.0, probe)
            if entries:
                scalar.append((device, len(rows), len(entries)))
                rows.extend(r % self.naug for r, _ in entries)
        return (np.array(rows, dtype=np.intp), tuple(scalar),
                np.array(cap_slot_a, dtype=np.intp),
                np.array(cap_slot_b, dtype=np.intp))

    def _build_matrix_structure(self, probe, group_caps):
        """Flat COO layout of the base matrix for one regime.

        Walks the canonical accumulation order — each linear device's
        ``linear_matrix_entries`` then its ``reactive_matrix_entries``
        — recording flat augmented indices and a value template. Static
        (linear) values are baked into the template; grouped capacitors
        get slot index arrays (``+geq`` pair, ``-geq`` pair) filled
        vectorized per rebuild; any other reactive device (inductors)
        is listed for a scalar fill. Replaying the template through
        ``np.add.at`` reproduces the scalar loop's accumulation order,
        so rebuilt bases stay bitwise identical.
        """
        idx: list[int] = []
        vals: list[float] = []
        cap_pos: list[int] = []
        cap_neg: list[int] = []
        scalar: list[tuple] = []
        naug = self.naug
        for device in self.linear:
            for row, col, value in device.linear_matrix_entries():
                idx.append((row % naug) * naug + col % naug)
                vals.append(value)
            if probe is None:
                continue
            entries = device.reactive_matrix_entries(probe)
            if not entries:
                continue
            grouped = id(device) in group_caps
            if grouped:
                # Quad order fixed by Capacitor.reactive_matrix_entries:
                # (a,a,+geq), (b,b,+geq), (a,b,-geq), (b,a,-geq).
                cap_pos.extend((len(idx), len(idx) + 1))
                cap_neg.extend((len(idx) + 2, len(idx) + 3))
            else:
                scalar.append((device, len(idx), len(entries)))
            for row, col, _ in entries:
                idx.append((row % naug) * naug + col % naug)
                vals.append(0.0)
        return (np.array(idx, dtype=np.intp),
                np.array(vals, dtype=float),
                np.array(cap_pos, dtype=np.intp),
                np.array(cap_neg, dtype=np.intp),
                tuple(scalar))

    def base_matrix(self, integrator: Optional[IntegratorState],
                    gmin: float) -> np.ndarray:
        """Cached linear+reactive+gmin augmented matrix for this regime.

        Callers must treat the result as read-only (it is copied into
        the workspace's system every iteration). Misses are common in
        adaptive transients (the step size rarely repeats), so the
        rebuild is vectorized from the precomputed COO template.
        """
        if integrator is None:
            key = ("dc", 0.0, gmin)
        else:
            key = (integrator.method, integrator.dt, gmin)
        cache = self._base_cache
        base = cache.get(key)
        tracer = telemetry.active_tracer()
        if base is not None:
            cache.move_to_end(key)
            if tracer is not None:
                tracer.count("assembly.base_hit")
            return base
        if tracer is not None:
            tracer.count("assembly.base_miss")
        idx, vals, cap_pos, cap_neg, scalar = (
            self._mat_dc if integrator is None else self._mat_tr)
        if integrator is not None:
            if self.cap_group is not None:
                zeros = np.zeros(self.cap_group.n)
                geq, _ = self.cap_group.companion(integrator, zeros,
                                                  zeros)
                vals[cap_pos] = np.repeat(geq, 2)
                vals[cap_neg] = np.repeat(-geq, 2)
            for device, start, count in scalar:
                entries = device.reactive_matrix_entries(integrator)
                for k in range(count):
                    vals[start + k] = entries[k][2]
        flat = np.zeros(self.naug * self.naug, dtype=float)
        np.add.at(flat, idx, vals)
        flat[self._diag_flat] += gmin
        base = flat.reshape(self.naug, self.naug)
        cache[key] = base
        if len(cache) > _BASE_CACHE_SIZE:
            cache.popitem(last=False)
        return base


class SolverWorkspace:
    """Reusable solver scratch space bound to one circuit.

    Owns the :class:`~repro.spice.mna.MnaSystem` (so repeated
    ``newton_solve`` calls stop allocating one each), the per-iteration
    value buffers, and the per-run capacitor state arrays. One workspace
    serves a whole retry ladder or transient run; analyses create one
    per (circuit, run) and thread it through.
    """

    def __init__(self, circuit):
        self.circuit = circuit
        self.plan = circuit.assembly_plan()
        plan = self.plan
        self.size = plan.size
        self.n_nodes = plan.n_nodes
        self.damped = plan.damped
        self.system = mna.MnaSystem(plan.size)
        self._aug_matrix = self.system._aug_matrix
        self._aug_rhs = self.system._aug_rhs
        self._mat_flat = self._aug_matrix.ravel()
        self._base: Optional[np.ndarray] = None
        self._time = 0.0
        self._integrator: Optional[IntegratorState] = None
        self._gmin = 1e-12
        self._scale = 1.0
        if not plan.supported:
            return
        self._x_aug = np.zeros(plan.naug, dtype=float)
        self._rhs_base = np.zeros(plan.naug, dtype=float)
        mg = plan.mosfet_group
        if mg is not None:
            self._mos_mat_vals = np.empty((mg.n, 12), dtype=float)
            self._mos_rhs_vals = np.empty((mg.n, 2), dtype=float)
        self._tr_vals = np.empty(len(plan._rhs_tr[0]), dtype=float)
        self._dc_vals = np.empty(len(plan._rhs_dc[0]), dtype=float)
        # Capacitor state, loaded lazily from the device objects so a
        # workspace created mid-flight sees whatever a previous run
        # committed (matching the old per-device-state semantics).
        self._cap_v_prev: Optional[np.ndarray] = None
        self._cap_i_prev: Optional[np.ndarray] = None

    # -- per-solve --------------------------------------------------------

    def begin_solve(self, time: float, integrator: Optional[IntegratorState],
                    gmin: float, source_scale: float) -> None:
        """Fix the solve regime and rebuild the iteration-invariant RHS."""
        self._time = time
        self._integrator = integrator
        self._gmin = gmin
        self._scale = source_scale
        plan = self.plan
        if not plan.supported:
            return
        self._base = plan.base_matrix(integrator, gmin)
        if integrator is not None:
            rows, scalar, cap_a, cap_b = plan._rhs_tr
            vals = self._tr_vals
        else:
            rows, scalar, cap_a, cap_b = plan._rhs_dc
            vals = self._dc_vals
        for device, start, count in scalar:
            entries = device.dynamic_rhs_entries(time, source_scale,
                                                 integrator)
            for k in range(count):
                vals[start + k] = entries[k][1]
        if integrator is not None and plan.cap_group is not None:
            v_prev, i_prev = self._cap_state()
            _, ieq = plan.cap_group.companion(integrator, v_prev, i_prev)
            vals[cap_a] = -ieq
            vals[cap_b] = ieq
        rhs_base = self._rhs_base
        rhs_base[:] = 0.0
        np.add.at(rhs_base, rows, vals)

    def assemble_iteration(self, x: np.ndarray) -> mna.StampContext:
        """Assemble the system at iterate ``x`` (fast path or fallback)."""
        plan = self.plan
        if not plan.supported:
            return mna.assemble(self.circuit, x, self.system,
                                time=self._time, integrator=self._integrator,
                                gmin=self._gmin, source_scale=self._scale)
        np.copyto(self._aug_matrix, self._base)
        np.copyto(self._aug_rhs, self._rhs_base)
        ctx = mna.StampContext(self.system, x, time=self._time,
                               integrator=self._integrator, gmin=self._gmin,
                               source_scale=self._scale)
        for device in plan.opaque:
            device.stamp(ctx)
        mg = plan.mosfet_group
        if mg is not None:
            x_aug = self._x_aug
            x_aug[:self.size] = x
            mg.stamp(self._mat_flat, self._aug_rhs, x_aug, self._gmin,
                     self._mos_mat_vals, self._mos_rhs_vals)
        return ctx

    # -- dynamic device state --------------------------------------------

    def _cap_state(self) -> tuple[np.ndarray, np.ndarray]:
        if self._cap_v_prev is None:
            caps = self.plan.cap_group.caps
            self._cap_v_prev = np.array([c._v_prev for c in caps])
            self._cap_i_prev = np.array([c._i_prev for c in caps])
        return self._cap_v_prev, self._cap_i_prev

    def init_state(self, x: np.ndarray) -> None:
        """Vectorized replacement for the per-device init_state loop."""
        plan = self.plan
        if not plan.supported:
            for device in self.circuit:
                device.init_state(x)
            return
        cg = plan.cap_group
        if cg is not None:
            x_aug = self._x_aug
            x_aug[:self.size] = x
            v = x_aug[cg.a] - x_aug[cg.b]
            self._cap_v_prev = np.where(np.isnan(cg.ic), v, cg.ic)
            self._cap_i_prev = np.zeros(cg.n, dtype=float)
        for device in plan.stateful_scalar:
            device.init_state(x)

    def update_state(self, x_new: np.ndarray,
                     integrator: IntegratorState) -> None:
        """Vectorized replacement for the per-device update_state loop."""
        plan = self.plan
        if not plan.supported:
            for device in self.circuit:
                device.update_state(x_new, integrator)
            return
        cg = plan.cap_group
        if cg is not None:
            x_aug = self._x_aug
            x_aug[:self.size] = x_new
            v_new = x_aug[cg.a] - x_aug[cg.b]
            v_prev, i_prev = self._cap_state()
            geq, ieq = cg.companion(integrator, v_prev, i_prev)
            self._cap_i_prev = geq * v_new + ieq
            self._cap_v_prev = v_new
        for device in plan.stateful_scalar:
            device.update_state(x_new, integrator)

    def sync_state(self) -> None:
        """Write vectorized capacitor state back to the device objects.

        Keeps device attributes coherent for post-run inspection and for
        any later solver path that reads them directly.
        """
        cg = self.plan.cap_group if self.plan.supported else None
        if cg is None or self._cap_v_prev is None:
            return
        for cap, v, i in zip(cg.caps, self._cap_v_prev, self._cap_i_prev):
            cap._v_prev = float(v)
            cap._i_prev = float(i)
