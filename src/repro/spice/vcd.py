"""VCD (Value Change Dump) export for transient results.

Writes analog node waveforms as VCD ``real`` variables so they can be
inspected in GTKWave & friends. A digital view (thresholded 0/1/x) is
also available for logic-level debugging of the shifter benches.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import AnalysisError

#: Printable VCD identifier characters.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for the n-th variable."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


def _sanitize(name: str) -> str:
    return name.replace(".", "_").replace("#", "_")


def write_vcd(result, nodes: Sequence[str], timescale: str = "1ps",
              comment: str = "repro transient") -> str:
    """Serialize node voltages from a TransientResult as VCD text.

    Args:
        result: a :class:`~repro.spice.transient.TransientResult`.
        nodes: node names to dump.
        timescale: VCD timescale; times are rounded to its unit.
    """
    if not nodes:
        raise AnalysisError("need at least one node to dump")
    scale = {"1fs": 1e-15, "1ps": 1e-12, "1ns": 1e-9,
             "1us": 1e-6}.get(timescale)
    if scale is None:
        raise AnalysisError(f"unsupported timescale {timescale!r}")

    waves = [result.wave(node) for node in nodes]
    idents = [_identifier(i) for i in range(len(nodes))]

    lines = [f"$comment {comment} $end",
             f"$timescale {timescale} $end",
             "$scope module repro $end"]
    for node, ident in zip(nodes, idents):
        lines.append(f"$var real 64 {ident} {_sanitize(node)} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    last_values: list[float | None] = [None] * len(nodes)
    last_tick = -1
    for k, t in enumerate(result.times):
        tick = int(round(t / scale))
        emitted_time = False
        for j, wave in enumerate(waves):
            value = float(wave.values[k])
            if last_values[j] is not None and value == last_values[j]:
                continue
            if not emitted_time and tick != last_tick:
                lines.append(f"#{tick}")
                last_tick = tick
                emitted_time = True
            elif not emitted_time and tick == last_tick and k > 0:
                # Same tick: values merge into the previous time point.
                emitted_time = True
            lines.append(f"r{value:.9g} {idents[j]}")
            last_values[j] = value
    return "\n".join(lines) + "\n"


def digitize(wave, vdd: float, low_fraction: float = 0.3,
             high_fraction: float = 0.7) -> list[tuple[float, str]]:
    """Threshold an analog waveform into (time, '0'/'1'/'x') changes.

    Values below ``low_fraction * vdd`` read 0, above
    ``high_fraction * vdd`` read 1, in between 'x'. Consecutive equal
    states are merged.
    """
    if not 0.0 <= low_fraction < high_fraction <= 1.0:
        raise AnalysisError("need 0 <= low < high <= 1 thresholds")
    changes: list[tuple[float, str]] = []
    for t, v in zip(wave.times, wave.values):
        if v <= low_fraction * vdd:
            state = "0"
        elif v >= high_fraction * vdd:
            state = "1"
        else:
            state = "x"
        if not changes or changes[-1][1] != state:
            changes.append((float(t), state))
    return changes
