"""Waveform container and measurement primitives.

A :class:`Waveform` is an immutable (time, value) sample series on a
strictly increasing, non-uniform time grid — exactly what the adaptive
transient engine produces. Measurements interpolate linearly between
samples, which matches SPICE ``.measure`` semantics.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import MeasurementError

RISE = "rise"
FALL = "fall"
BOTH = "both"


class Waveform:
    """Sampled signal with linear-interpolation measurements."""

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape:
            raise MeasurementError("times and values must be equal-length 1-D")
        if times.size < 2:
            raise MeasurementError("waveform needs at least two samples")
        if np.any(np.diff(times) <= 0):
            raise MeasurementError("waveform times must be strictly increasing")
        self.times = times
        self.values = values

    # -- basic access -----------------------------------------------------

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def t_start(self) -> float:
        return float(self.times[0])

    @property
    def t_stop(self) -> float:
        return float(self.times[-1])

    def value_at(self, t: float) -> float:
        """Linearly interpolated value at time ``t`` (clamped at ends)."""
        return float(np.interp(t, self.times, self.values))

    def initial_value(self) -> float:
        return float(self.values[0])

    def final_value(self) -> float:
        return float(self.values[-1])

    def minimum(self) -> float:
        return float(np.min(self.values))

    def maximum(self) -> float:
        return float(np.max(self.values))

    def clip(self, t0: float, t1: float) -> "Waveform":
        """Sub-waveform on [t0, t1], with interpolated endpoint samples."""
        if t1 <= t0:
            raise MeasurementError(f"empty clip window [{t0}, {t1}]")
        t0 = max(t0, self.t_start)
        t1 = min(t1, self.t_stop)
        mask = (self.times > t0) & (self.times < t1)
        times = np.concatenate(([t0], self.times[mask], [t1]))
        values = np.concatenate(([self.value_at(t0)], self.values[mask],
                                 [self.value_at(t1)]))
        return Waveform(times, values)

    # -- crossings ----------------------------------------------------------

    def crossings(self, level: float, edge: str = BOTH) -> list[float]:
        """Times where the waveform crosses ``level`` (interpolated)."""
        if edge not in (RISE, FALL, BOTH):
            raise MeasurementError(f"edge must be rise/fall/both, got {edge!r}")
        v = self.values - level
        a, b = v[:-1], v[1:]
        rising = (a < 0.0) & (b >= 0.0)
        falling = (a >= 0.0) & (b < 0.0)
        if edge == RISE:
            sel = rising
        elif edge == FALL:
            sel = falling
        else:
            sel = rising | falling
        i = np.nonzero(sel)[0]
        frac = a[i] / (a[i] - b[i])
        t = self.times[i] + frac * (self.times[i + 1] - self.times[i])
        return [float(x) for x in t]

    def cross(self, level: float, edge: str = BOTH, occurrence: int = 1,
              after: float = -np.inf) -> float:
        """The n-th crossing of ``level`` after time ``after``.

        Raises:
            MeasurementError: if the crossing does not exist.
        """
        found = [t for t in self.crossings(level, edge) if t >= after]
        if len(found) < occurrence:
            raise MeasurementError(
                f"no {edge} crossing #{occurrence} of level {level} "
                f"after t={after}")
        return found[occurrence - 1]

    # -- aggregate measures ---------------------------------------------

    def integral(self, t0: float | None = None,
                 t1: float | None = None) -> float:
        """Trapezoidal integral of the waveform over [t0, t1]."""
        t0 = self.t_start if t0 is None else t0
        t1 = self.t_stop if t1 is None else t1
        clipped = self.clip(t0, t1)
        return float(np.trapezoid(clipped.values, clipped.times))

    def average(self, t0: float | None = None,
                t1: float | None = None) -> float:
        """Time-average of the waveform over [t0, t1]."""
        t0 = self.t_start if t0 is None else t0
        t1 = self.t_stop if t1 is None else t1
        return self.integral(t0, t1) / (t1 - t0)

    def rms(self, t0: float | None = None, t1: float | None = None) -> float:
        squared = Waveform(self.times, self.values ** 2)
        return float(np.sqrt(squared.average(t0, t1)))

    # -- edge timing -------------------------------------------------------

    def transition_time(self, v_low: float, v_high: float,
                        edge: str = RISE, after: float = -np.inf) -> float:
        """10/90-style transition time between two absolute levels."""
        if edge == RISE:
            t_a = self.cross(v_low, RISE, after=after)
            t_b = self.cross(v_high, RISE, after=t_a)
        elif edge == FALL:
            t_a = self.cross(v_high, FALL, after=after)
            t_b = self.cross(v_low, FALL, after=t_a)
        else:
            raise MeasurementError("transition_time edge must be rise or fall")
        return t_b - t_a

    def settles_to(self, target: float, tolerance: float,
                   after: float) -> bool:
        """True if all samples past ``after`` stay within +/- tolerance."""
        mask = self.times >= after
        if not np.any(mask):
            return False
        return bool(np.all(np.abs(self.values[mask] - target) <= tolerance))

    # -- composition -------------------------------------------------------

    def __neg__(self) -> "Waveform":
        return Waveform(self.times, -self.values)

    def scaled(self, factor: float) -> "Waveform":
        return Waveform(self.times, self.values * factor)

    def shifted(self, offset: float) -> "Waveform":
        return Waveform(self.times, self.values + offset)

    def resampled(self, times: Iterable[float]) -> "Waveform":
        times = np.asarray(list(times), dtype=float)
        return Waveform(times, np.interp(times, self.times, self.values))

    def multiply(self, other: "Waveform") -> "Waveform":
        """Pointwise product on the union grid (for p(t) = v(t) i(t))."""
        grid = np.union1d(self.times, other.times)
        grid = grid[(grid >= max(self.t_start, other.t_start)) &
                    (grid <= min(self.t_stop, other.t_stop))]
        a = np.interp(grid, self.times, self.values)
        b = np.interp(grid, other.times, other.values)
        return Waveform(grid, a * b)


def propagation_delay(input_wave: Waveform, output_wave: Waveform,
                      v_in_mid: float, v_out_mid: float,
                      in_edge: str, out_edge: str,
                      after: float = -np.inf) -> float:
    """50 %-to-50 % propagation delay between two waveforms.

    Measures from the first ``in_edge`` crossing of the input midpoint
    after ``after`` to the first subsequent ``out_edge`` crossing of the
    output midpoint.
    """
    t_in = input_wave.cross(v_in_mid, in_edge, after=after)
    t_out = output_wave.cross(v_out_mid, out_edge, after=t_in)
    return t_out - t_in
