"""Damped Newton-Raphson solver with homotopy fallbacks.

The solver repeatedly assembles the linearized MNA system at the current
iterate and solves for the next one. Per-iteration voltage updates are
damped to a configurable maximum step, which is the single most
effective robustness measure for MOS circuits (exponential models
otherwise fling early iterates far outside the convergence basin).

If plain Newton fails, :func:`solve_dc` falls back to gmin stepping
(solve with a large parallel conductance on every node, then relax it
geometrically) and then to source stepping (ramp all independent sources
from zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.spice import mna
from repro.spice.integration import IntegratorState


@dataclass
class NewtonOptions:
    """Tolerances and limits for the Newton iteration."""

    max_iterations: int = 150
    #: Absolute node-voltage tolerance [V].
    abstol_v: float = 1e-6
    #: Absolute branch-current tolerance [A].
    abstol_i: float = 1e-9
    #: Relative tolerance on the solution update.
    reltol: float = 1e-3
    #: Maximum per-iteration voltage change [V] (damping limit).
    max_step_v: float = 0.3
    #: Conductance floor for nonlinear devices.
    gmin: float = 1e-12


def newton_solve(circuit, x0: np.ndarray, time: float = 0.0,
                 integrator: Optional[IntegratorState] = None,
                 options: Optional[NewtonOptions] = None,
                 gmin: Optional[float] = None,
                 source_scale: float = 1.0) -> np.ndarray:
    """Run damped Newton from ``x0``; returns the converged solution.

    Raises:
        ConvergenceError: if the iteration exceeds the budget or the
            matrix becomes singular.
    """
    opts = options or NewtonOptions()
    effective_gmin = opts.gmin if gmin is None else gmin
    size = circuit.system_size()
    n_nodes = circuit.node_count()
    system = mna.MnaSystem(size)
    x = np.array(x0, dtype=float, copy=True)
    # Damping exists to keep exponential device models inside their
    # convergence basin; a purely linear system solves exactly in one
    # step, and damping it would only throttle large (but exact)
    # voltage excursions.
    damped = bool(circuit.nonlinear_devices())

    for iteration in range(opts.max_iterations):
        mna.assemble(circuit, x, system, time=time, integrator=integrator,
                     gmin=effective_gmin, source_scale=source_scale)
        try:
            x_new = np.linalg.solve(system.matrix, system.rhs)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix at iteration {iteration}",
                iterations=iteration) from exc
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError(
                f"non-finite solution at iteration {iteration}",
                iterations=iteration)

        delta = x_new - x
        dv = delta[:n_nodes]
        di = delta[n_nodes:]
        max_dv = float(np.max(np.abs(dv))) if dv.size else 0.0
        max_di = float(np.max(np.abs(di))) if di.size else 0.0

        # Damping: scale the whole update so no node moves more than
        # max_step_v in one iteration (nonlinear circuits only).
        scale = 1.0
        if damped and max_dv > opts.max_step_v:
            scale = opts.max_step_v / max_dv
        x = x + scale * delta

        v_tol = opts.abstol_v + opts.reltol * float(
            np.max(np.abs(x[:n_nodes])) if n_nodes else 0.0)
        i_tol = opts.abstol_i + opts.reltol * float(
            np.max(np.abs(x[n_nodes:])) if di.size else 0.0)
        if scale == 1.0 and max_dv <= v_tol and max_di <= i_tol:
            return x

    raise ConvergenceError(
        f"Newton failed to converge in {opts.max_iterations} iterations "
        f"(last max dV = {max_dv:.3e} V)",
        iterations=opts.max_iterations, residual=max_dv)


#: Gmin homotopy ladder, from heavily regularized down to the target.
_GMIN_LADDER = (1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11)

#: Source-stepping ramp for the last-resort homotopy.
_SOURCE_RAMP = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def solve_dc(circuit, x0: Optional[np.ndarray] = None,
             options: Optional[NewtonOptions] = None) -> np.ndarray:
    """Find a DC solution, escalating through homotopy methods."""
    opts = options or NewtonOptions()
    size = circuit.system_size()
    x0 = np.zeros(size) if x0 is None else np.asarray(x0, dtype=float)

    try:
        return newton_solve(circuit, x0, options=opts)
    except ConvergenceError:
        pass

    # Gmin stepping.
    x = np.array(x0, copy=True)
    try:
        for g in _GMIN_LADDER + (opts.gmin,):
            x = newton_solve(circuit, x, options=opts, gmin=g)
        return x
    except ConvergenceError:
        pass

    # Source stepping.
    x = np.zeros(size)
    try:
        for scale in _SOURCE_RAMP:
            x = newton_solve(circuit, x, options=opts, source_scale=scale)
        return x
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"DC solution not found for circuit {circuit.title!r} after "
            f"Newton, gmin stepping, and source stepping: {exc}") from exc
