"""Damped Newton-Raphson solver with policy-driven homotopy fallbacks.

The solver repeatedly assembles the linearized MNA system at the current
iterate and solves for the next one. Per-iteration voltage updates are
damped to a configurable maximum step, which is the single most
effective robustness measure for MOS circuits (exponential models
otherwise fling early iterates far outside the convergence basin).

If plain Newton fails, :func:`solve_dc` escalates through the fallback
ladder described by a :class:`~repro.runtime.policy.RetryPolicy`: gmin
stepping (solve with a large parallel conductance on every node, then
relax it geometrically) and then source stepping (ramp all independent
sources from zero). Every attempt is recorded in a
:class:`~repro.runtime.report.SolveReport`, attached to the
:class:`~repro.errors.ConvergenceError` when the whole ladder fails so
callers can see how close each strategy got.

An active :class:`~repro.runtime.faults.FaultPlan` (threaded explicitly
or ambient via :func:`repro.runtime.faults.inject`) can deterministically
force singular Jacobians, NaN residuals, or iteration exhaustion into
chosen strategies, which is how the ladder itself is tested.
"""

from __future__ import annotations

import math as _math
import time as _time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.runtime import telemetry
from repro.runtime.faults import FaultPlan, active_plan
from repro.runtime.policy import RetryPolicy
from repro.runtime.report import AttemptRecord, SolveReport
from repro.spice.assembly import SolverWorkspace
from repro.spice.integration import IntegratorState
from repro.spice.sparse import resolve_solver, sparse_plan_for

try:  # pragma: no cover - version-dependent private module
    # The gufunc np.linalg.solve dispatches to, minus the wrapper's
    # per-call type promotion and errstate setup (which costs as much
    # as the factorization itself at MNA sizes). Bitwise identical to
    # np.linalg.solve; a singular matrix yields non-finite entries
    # (caught by the solver's finiteness check) instead of raising.
    from numpy.linalg._umath_linalg import solve1 as _lapack_solve1
except ImportError:  # pragma: no cover
    _lapack_solve1 = None

# Cheap global throughput counters for `repro bench` (solves/sec).
_SOLVES = 0
_ITERATIONS = 0


def reset_solve_stats() -> None:
    """Zero the global Newton solve/iteration counters."""
    global _SOLVES, _ITERATIONS
    _SOLVES = 0
    _ITERATIONS = 0


def _condition_estimate(matrix: np.ndarray) -> float | None:
    """1-norm condition estimate of the converged Jacobian, or None.

    Only computed when an ambient tracer asks for it (it costs an
    explicit inverse, O(n^3) — trivial at MNA sizes but never free).
    Runs under the solver's suppressed FP flags, so a singular matrix
    surfaces as a non-finite estimate and is filtered, not raised.
    """
    try:
        cond = float(np.linalg.cond(matrix, 1))
    except np.linalg.LinAlgError:
        return None
    return cond if np.isfinite(cond) and cond > 0.0 else None


def solve_stats() -> dict:
    """Counts of Newton solves and iterations since the last reset."""
    return {"solves": _SOLVES, "iterations": _ITERATIONS}


def add_solve_stats(solves: int = 0, iterations: int = 0) -> None:
    """Credit batched work to the global throughput counters.

    The batched backend (:mod:`repro.spice.batch`) performs many
    lane-solves per LAPACK call; it reports them here so
    ``repro bench`` rates stay comparable across backends (one lane
    converging in k iterations counts exactly like one serial solve
    of k iterations).
    """
    global _SOLVES, _ITERATIONS
    _SOLVES += solves
    _ITERATIONS += iterations


@dataclass
class NewtonOptions:
    """Tolerances and limits for the Newton iteration."""

    max_iterations: int = 150
    #: Absolute node-voltage tolerance [V].
    abstol_v: float = 1e-6
    #: Absolute branch-current tolerance [A].
    abstol_i: float = 1e-9
    #: Relative tolerance on the solution update.
    reltol: float = 1e-3
    #: Maximum per-iteration voltage change [V] (damping limit).
    max_step_v: float = 0.3
    #: Conductance floor for nonlinear devices.
    gmin: float = 1e-12
    #: Linear-solve kernel: "dense" (batched LAPACK), "sparse"
    #: (pattern-reuse LU, :mod:`repro.spice.sparse`), or "auto"
    #: (by system size). None defers to the ambient campaign scope
    #: (:func:`repro.spice.sparse.solver_scope`), which defaults to
    #: "auto". The resolution rule depends on the topology alone, so
    #: serial, batched, and sharded runs always pick the same kernel.
    solver: str | None = None


def newton_solve(circuit, x0: np.ndarray, time: float = 0.0,
                 integrator: Optional[IntegratorState] = None,
                 options: Optional[NewtonOptions] = None,
                 gmin: Optional[float] = None,
                 source_scale: float = 1.0,
                 strategy: str = "newton",
                 faults: Optional[FaultPlan] = None,
                 record: Optional[AttemptRecord] = None,
                 workspace: Optional[SolverWorkspace] = None) -> np.ndarray:
    """Run damped Newton from ``x0``; returns the converged solution.

    Args:
        strategy: retry-ladder stage label, used for diagnostics and
            for strategy-targeted fault injection.
        faults: explicit fault plan; defaults to the ambient plan
            activated via :func:`repro.runtime.faults.inject`.
        record: optional :class:`AttemptRecord` filled in with the
            iteration count, final residual, and outcome.
        workspace: caller-owned :class:`SolverWorkspace` to reuse across
            solves (retry ladders, transient steps). Created on the fly
            when omitted.

    Raises:
        ConvergenceError: if the iteration exceeds the budget or the
            matrix becomes singular.
    """
    global _SOLVES, _ITERATIONS
    opts = options or NewtonOptions()
    effective_gmin = opts.gmin if gmin is None else gmin
    plan = faults if faults is not None else active_plan()
    tracer = telemetry.active_tracer()
    ws = workspace if workspace is not None else SolverWorkspace(circuit)
    system = ws.system
    n_nodes = ws.n_nodes
    ws.begin_solve(time, integrator, effective_gmin, source_scale)
    x = np.array(x0, dtype=float, copy=True)
    # Damping exists to keep exponential device models inside their
    # convergence basin; a purely linear system solves exactly in one
    # step, and damping it would only throttle large (but exact)
    # voltage excursions.
    damped = ws.damped
    max_dv = 0.0
    _SOLVES += 1
    delta = np.empty_like(x)
    scratch = np.empty_like(x)
    # Kernel selection is deterministic in (mode, size) alone; the
    # sparse symbolic factorization is cached on the assembly plan, so
    # only the numeric refactor runs per iteration.
    sparse = (sparse_plan_for(ws.plan)
              if resolve_solver(opts.solver, ws.size) == "sparse"
              else None)

    def _fail(message: str, iterations: int,
              residual: float | None, injected: str | None = None,
              cause: BaseException | None = None):
        if record is not None:
            record.iterations = iterations
            record.residual = residual
            record.converged = False
            record.injected_fault = injected
            record.error = message
        if tracer is not None:
            tracer.count("newton.failures")
        error = ConvergenceError(message, iterations=iterations,
                                 residual=residual)
        if cause is not None:
            raise error from cause
        raise error

    # FP warnings are silenced for the whole loop (saved/restored via
    # seterr rather than a per-iteration errstate, which is measurable
    # at this call rate): the gufunc solve reports singular systems as
    # non-finite entries instead of raising, and no value computed
    # under the suppressed flags is ever used without the finiteness
    # check below.
    saved_err = np.seterr(invalid="ignore", over="ignore",
                          divide="ignore")
    try:
        for iteration in range(opts.max_iterations):
            injected = (plan.draw_solve(strategy=strategy, time=time)
                        if plan is not None else None)
            if injected == "iteration_exhaustion":
                _fail(f"injected iteration exhaustion in {strategy!r} "
                      "solve",
                      opts.max_iterations, max_dv if iteration else None,
                      injected)
            _ITERATIONS += 1
            ws.assemble_iteration(x)
            if injected == "singular_jacobian":
                # Corrupt the mechanism, not a shortcut: the zeroed
                # matrix makes the solve fail for real below.
                system.matrix[:, :] = 0.0
            elif injected == "nan_residual":
                system.rhs[:] = np.nan
            try:
                if sparse is not None:
                    # Never raises: a zero pivot divides to non-finite
                    # entries, classified by the finiteness check below
                    # with the same text as the dense path.
                    x_new = sparse.solve1(system.matrix, system.rhs)
                elif _lapack_solve1 is not None:
                    x_new = _lapack_solve1(system.matrix, system.rhs)
                else:
                    x_new = np.linalg.solve(system.matrix, system.rhs)
            except np.linalg.LinAlgError as exc:
                _fail(f"singular MNA matrix at iteration {iteration}"
                      + (" (injected)" if injected else ""),
                      iteration, max_dv if iteration else None, injected,
                      exc)
            if not np.isfinite(x_new).all():
                # The gufunc path reports a singular matrix as NaN/inf
                # entries rather than LinAlgError; keep the historical
                # diagnostic by classifying here (failure path only).
                suffix = " (injected)" if injected else ""
                if (np.isfinite(system.matrix).all()
                        and np.isfinite(system.rhs).all()):
                    _fail(f"singular MNA matrix at iteration {iteration}"
                          + suffix,
                          iteration, max_dv if iteration else None,
                          injected)
                _fail(f"non-finite solution at iteration {iteration}"
                      + suffix,
                      iteration, max_dv if iteration else None, injected)

            np.subtract(x_new, x, out=delta)
            np.abs(delta, out=scratch)
            max_dv = float(scratch[:n_nodes].max()) if n_nodes else 0.0
            n_branch = x.size - n_nodes
            max_di = float(scratch[n_nodes:].max()) if n_branch else 0.0

            # Damping: scale the whole update so no node moves more
            # than max_step_v in one iteration (nonlinear circuits
            # only). The updates below reuse the delta buffer in
            # place; the arithmetic (x + scale * delta) is unchanged.
            if damped and max_dv > opts.max_step_v:
                np.multiply(delta, opts.max_step_v / max_dv, out=delta)
                np.add(x, delta, out=x)
                continue  # a clamped step can't satisfy the tolerances
            np.add(x, delta, out=x)

            np.abs(x, out=scratch)
            v_tol = opts.abstol_v + opts.reltol * (
                float(scratch[:n_nodes].max()) if n_nodes else 0.0)
            if max_dv > v_tol:
                continue
            i_tol = opts.abstol_i + opts.reltol * (
                float(scratch[n_nodes:].max()) if n_branch else 0.0)
            if max_di <= i_tol:
                if record is not None:
                    record.iterations = iteration + 1
                    record.residual = max_dv
                    record.converged = True
                if tracer is not None:
                    tracer.observe("newton.iterations", iteration + 1)
                    if tracer.condition_estimates:
                        cond = _condition_estimate(system.matrix)
                        if cond is not None and cond >= 1.0:
                            tracer.observe("newton.condition_log10",
                                           _math.log10(cond))
                return x
    finally:
        np.seterr(**saved_err)

    _fail(f"Newton failed to converge in {opts.max_iterations} iterations "
          f"(last max dV = {max_dv:.3e} V)",
          opts.max_iterations, max_dv)


def solve_dc_report(circuit, x0: Optional[np.ndarray] = None,
                    options: Optional[NewtonOptions] = None,
                    policy: Optional[RetryPolicy] = None,
                    faults: Optional[FaultPlan] = None,
                    workspace: Optional[SolverWorkspace] = None,
                    ) -> tuple[np.ndarray, SolveReport]:
    """Find a DC solution; returns ``(x, report)``.

    Escalates through the strategies enabled by ``policy``, recording
    every attempt. On total failure raises :class:`ConvergenceError`
    carrying the full :class:`SolveReport` and the best attempt's
    iteration count and residual.

    With an ambient :class:`~repro.runtime.telemetry.Tracer` active the
    ladder additionally emits ``dc.*`` counters, the ladder-depth and
    wall-time histograms, and the ``phase.dc`` timer; with tracing
    disabled this wrapper costs one global read.
    """
    tracer = telemetry.active_tracer()
    if tracer is None:
        return _solve_dc_report_impl(circuit, x0, options, policy,
                                     faults, workspace)
    with tracer.phase("phase.dc"):
        try:
            x, report = _solve_dc_report_impl(circuit, x0, options,
                                              policy, faults, workspace)
        except ConvergenceError as error:
            tracer.count("dc.solves")
            tracer.count("dc.failed")
            if error.report is not None:
                tracer.observe("dc.ladder_depth",
                               len(error.report.attempts))
                tracer.observe("dc.wall_s", error.report.wall_time_s)
            raise
    tracer.count("dc.solves")
    tracer.count(f"dc.converged.{report.winning_strategy}")
    tracer.observe("dc.ladder_depth", len(report.attempts))
    tracer.observe("dc.wall_s", report.wall_time_s)
    return x, report


def _solve_dc_report_impl(circuit, x0: Optional[np.ndarray] = None,
                          options: Optional[NewtonOptions] = None,
                          policy: Optional[RetryPolicy] = None,
                          faults: Optional[FaultPlan] = None,
                          workspace: Optional[SolverWorkspace] = None,
                          ) -> tuple[np.ndarray, SolveReport]:
    opts = options or NewtonOptions()
    pol = policy or RetryPolicy()
    pol.validate()
    plan = faults if faults is not None else active_plan()
    ws = workspace if workspace is not None else SolverWorkspace(circuit)
    size = ws.size
    x0 = np.zeros(size) if x0 is None else np.asarray(x0, dtype=float)
    report = SolveReport()
    started = _time.monotonic()
    abandoned: str | None = None

    def _out_of_budget() -> str | None:
        elapsed = _time.monotonic() - started
        if (pol.max_wall_clock_s is not None
                and elapsed > pol.max_wall_clock_s):
            return (f"wall-clock budget {pol.max_wall_clock_s:g} s "
                    f"exhausted after {elapsed:.3f} s")
        if (pol.max_total_iterations is not None
                and report.total_iterations >= pol.max_total_iterations):
            return (f"iteration budget {pol.max_total_iterations} "
                    f"exhausted ({report.total_iterations} spent)")
        return None

    def _attempt(strategy: str, detail: str, guess: np.ndarray,
                 **kwargs) -> np.ndarray:
        record = AttemptRecord(strategy=strategy, detail=detail)
        report.attempts.append(record)
        return newton_solve(circuit, guess, options=opts,
                            strategy=strategy, faults=plan, record=record,
                            workspace=ws, **kwargs)

    def _success(strategy: str, x: np.ndarray):
        report.converged = True
        report.winning_strategy = strategy
        report.wall_time_s = _time.monotonic() - started
        return x, report

    try:
        return _success("newton", _attempt("newton", "plain", x0))
    except ConvergenceError:
        pass

    # Gmin stepping: solve heavily regularized, relax toward the target.
    if pol.enable_gmin_stepping and abandoned is None:
        abandoned = _out_of_budget()
        if abandoned is None:
            x = np.array(x0, copy=True)
            try:
                completed = True
                for g in tuple(pol.gmin_ladder) + (opts.gmin,):
                    abandoned = _out_of_budget()
                    if abandoned is not None:
                        completed = False
                        break
                    x = _attempt("gmin", f"gmin={g:g}", x, gmin=g)
                if completed:
                    return _success("gmin", x)
            except ConvergenceError:
                pass

    # Source stepping: ramp all independent sources up from zero.
    if pol.enable_source_stepping and abandoned is None:
        abandoned = _out_of_budget()
        if abandoned is None:
            x = np.zeros(size)
            try:
                completed = True
                for scale in pol.source_ramp:
                    abandoned = _out_of_budget()
                    if abandoned is not None:
                        completed = False
                        break
                    x = _attempt("source", f"scale={scale:g}", x,
                                 source_scale=scale)
                if completed and pol.source_ramp:
                    return _success("source", x)
            except ConvergenceError:
                pass

    report.converged = False
    report.abandoned_reason = abandoned
    report.wall_time_s = _time.monotonic() - started
    best = report.best_attempt()
    message = (f"DC solution not found for circuit {circuit.title!r} after "
               f"{len(report.attempts)} attempts"
               + (f" ({report.strategy_summary()})" if report.attempts
                  else ""))
    if abandoned:
        message += f"; {abandoned}"
    raise ConvergenceError(
        message,
        iterations=best.iterations if best is not None else None,
        residual=best.residual if best is not None else None,
        report=report)


def solve_dc(circuit, x0: Optional[np.ndarray] = None,
             options: Optional[NewtonOptions] = None,
             policy: Optional[RetryPolicy] = None,
             faults: Optional[FaultPlan] = None) -> np.ndarray:
    """Find a DC solution, escalating through homotopy methods."""
    x, _ = solve_dc_report(circuit, x0, options=options, policy=policy,
                           faults=faults)
    return x
