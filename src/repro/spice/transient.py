"""Adaptive-timestep transient analysis.

The engine starts from a DC operating point, collects breakpoints from
all source waveforms so stimulus edges land exactly on time points, and
marches with trapezoidal integration. The first step after every
breakpoint uses backward Euler to damp the slope discontinuity (the
standard cure for trapezoidal ringing).

Step control is twofold:

* a converged step whose largest node-voltage change exceeds
  ``dv_max`` is rejected and retried at half the step;
* Newton failure also halves the step;
* comfortable steps (change below ``0.3 * dv_max``) grow by 1.5x up to
  ``h_max``.

This voltage-delta criterion is simpler than formal LTE control and is
well matched to digital switching waveforms, where accuracy is needed
exactly where voltages move quickly.

Retry behaviour is governed by a
:class:`~repro.runtime.policy.RetryPolicy`: the consecutive-halving
budget bounds how long the engine grinds on a stuck timepoint, and
``be_on_retry`` controls the backward-Euler degradation of failed
steps. Every run produces a
:class:`~repro.runtime.report.TransientReport` (on the result when the
run completes, on the :class:`~repro.errors.ConvergenceError` when it
stalls), and an active :class:`~repro.runtime.faults.FaultPlan` can
deterministically stall chosen timepoints.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import AnalysisError, ConvergenceError
from repro.runtime import telemetry
from repro.runtime.faults import FaultPlan, active_plan
from repro.runtime.policy import RetryPolicy
from repro.runtime.report import TransientReport
from repro.spice.assembly import SolverWorkspace
from repro.spice.integration import (
    BACKWARD_EULER, TRAPEZOIDAL, IntegratorState,
)
from repro.spice.newton import NewtonOptions, newton_solve, solve_dc_report
from repro.spice.waveform import Waveform


@dataclass
class TransientOptions:
    """Knobs for the transient engine."""

    #: Largest allowed step [s]; default (None) is t_stop / 100.
    h_max: float | None = None
    #: Smallest allowed step before the run is abandoned [s]; default
    #: (None) is t_stop * 1e-9.
    h_min: float | None = None
    #: Reject steps whose largest node-voltage change exceeds this [V].
    dv_max: float = 0.05
    #: Newton settings per step.
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: Fraction of h_max used for the first step after each breakpoint.
    restart_fraction: float = 0.02
    #: Retry/escalation policy; default (None) is RetryPolicy().
    policy: RetryPolicy | None = None
    #: Force one integration method for *every* step: ``"be"`` or
    #: ``"trap"``. None (default) keeps the adaptive scheme —
    #: trapezoidal with backward-Euler restarts after breakpoints and
    #: (policy-dependent) failed steps. Forcing is what lets the
    #: analytic golden battery pin each integrator's error order.
    method: str | None = None


class TransientResult:
    """Waveforms for every node and voltage-source branch current."""

    def __init__(self, circuit, times: np.ndarray, states: np.ndarray,
                 report: TransientReport | None = None):
        self.circuit = circuit
        self.times = times
        self._states = states  # shape (n_samples, system_size)
        #: Step-control diagnostics for the run that produced this.
        self.report = report or TransientReport()

    def wave(self, node: str) -> Waveform:
        """Voltage waveform at a node."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return Waveform(self.times, np.zeros_like(self.times))
        return Waveform(self.times, self._states[:, idx])

    def branch_current(self, device_name: str) -> Waveform:
        """Branch-current waveform of a voltage source."""
        idx = self.circuit.branch_index(device_name)
        return Waveform(self.times, self._states[:, idx])

    def supply_current(self, device_name: str) -> Waveform:
        """Current delivered by a supply (sign-flipped branch current)."""
        return -self.branch_current(device_name)

    def final_state(self) -> np.ndarray:
        return self._states[-1].copy()

    def state_at(self, t: float) -> np.ndarray:
        """Full solution vector at the sample nearest to time ``t``."""
        idx = int(np.argmin(np.abs(self.times - t)))
        return self._states[idx].copy()

    @property
    def sample_count(self) -> int:
        return int(self.times.size)


class Transient:
    """Transient analysis runner.

    Example::

        result = Transient(circuit, t_stop=2e-9).run()
        delay = propagation_delay(result.wave("in"), result.wave("out"), ...)
    """

    def __init__(self, circuit, t_stop: float,
                 options: Optional[TransientOptions] = None,
                 faults: Optional[FaultPlan] = None):
        if t_stop <= 0:
            raise AnalysisError(f"t_stop must be > 0, got {t_stop}")
        self.circuit = circuit
        self.t_stop = float(t_stop)
        self.options = options or TransientOptions()
        self.faults = faults

    def run(self, x0: Optional[np.ndarray] = None) -> TransientResult:
        circuit = self.circuit
        circuit.finalize()
        opts = self.options
        if opts.method not in (None, BACKWARD_EULER, TRAPEZOIDAL):
            raise AnalysisError(
                f"TransientOptions.method must be None, "
                f"{BACKWARD_EULER!r} or {TRAPEZOIDAL!r}, "
                f"got {opts.method!r}")
        forced_method = opts.method
        policy = opts.policy or RetryPolicy()
        policy.validate()
        plan = self.faults if self.faults is not None else active_plan()
        tracer = telemetry.active_tracer()
        report = TransientReport()
        h_max = opts.h_max if opts.h_max is not None else self.t_stop / 100.0
        h_min = opts.h_min if opts.h_min is not None else self.t_stop * 1e-9
        if h_min >= h_max:
            raise AnalysisError(f"h_min {h_min} must be < h_max {h_max}")

        # One workspace serves the DC seed and every step of the march;
        # its cached base matrices make re-stamping at an unchanged h
        # nearly free.
        workspace = SolverWorkspace(circuit)
        n_nodes = workspace.n_nodes

        # DC operating point at t = 0 seeds the march and device state.
        if x0 is None:
            x, report.dc_report = solve_dc_report(
                circuit, options=opts.newton, policy=policy, faults=plan,
                workspace=workspace)
        else:
            x = np.asarray(x0, dtype=float).copy()
        workspace.init_state(x)

        breakpoints = circuit.breakpoints(self.t_stop)
        bp_index = 1  # breakpoints[0] == 0.0
        restart_h = max(h_min, h_max * opts.restart_fraction)

        times = [0.0]
        states = [x.copy()]
        t = 0.0
        h = restart_h
        use_be = True  # first step from DC uses backward Euler
        halvings = 0   # consecutive halvings since the last accepted step

        def _stall(reason: str) -> ConvergenceError:
            workspace.sync_state()
            report.stalled = True
            if tracer is not None:
                tracer.count("tran.stalled")
            return ConvergenceError(
                f"transient stalled at t={t:.6e}s with h={h:.3e}s "
                f"in circuit {circuit.title!r} ({reason})", report=report)

        if tracer is not None:
            tracer.count("tran.runs")
        march_phase = (tracer.phase("phase.transient")
                       if tracer is not None else nullcontext())
        with march_phase:
            while t < self.t_stop - 1e-21:
                next_bp = (breakpoints[bp_index]
                           if bp_index < len(breakpoints) else self.t_stop)
                h = min(h, h_max, self.t_stop - t)
                hit_bp = False
                if t + h >= next_bp - 1e-21:
                    h = next_bp - t
                    hit_bp = True
                if h < h_min * 0.5:
                    # Degenerate gap between breakpoints; jump it with BE.
                    h = max(h, 1e-21)

                failed = False
                if plan is not None and plan.fires("timestep_stall",
                                                   time=t + h):
                    report.injected_faults.append(
                        f"timestep_stall@t={t + h:.3e}s")
                    failed = True
                else:
                    if forced_method is None:
                        method = BACKWARD_EULER if use_be else TRAPEZOIDAL
                    else:
                        method = forced_method
                    integrator = IntegratorState(method=method, dt=h)
                    try:
                        x_new = newton_solve(circuit, x, time=t + h,
                                             integrator=integrator,
                                             options=opts.newton,
                                             strategy="transient",
                                             faults=plan,
                                             workspace=workspace)
                    except ConvergenceError:
                        failed = True

                if failed:
                    report.newton_failures += 1
                    if tracer is not None:
                        tracer.count("tran.newton_failures")
                    if h <= h_min * 1.0000001:
                        raise _stall("step at h_min")
                    if halvings >= policy.max_step_halvings:
                        raise _stall(
                            f"halving budget {policy.max_step_halvings} "
                            f"exhausted")
                    h = max(h / 2.0, h_min)
                    halvings += 1
                    report.total_halvings += 1
                    if tracer is not None:
                        tracer.count("tran.halvings")
                    if policy.be_on_retry:
                        use_be = True
                    continue

                max_dv = float(np.max(np.abs(x_new[:n_nodes]
                                             - x[:n_nodes]))) \
                    if n_nodes else 0.0
                if (max_dv > opts.dv_max and h > h_min * 1.0000001
                        and halvings < policy.max_step_halvings):
                    # Accuracy rejection; once the halving budget is
                    # spent the step is accepted anyway (degrade,
                    # don't die).
                    report.steps_rejected_dv += 1
                    if tracer is not None:
                        tracer.count("tran.steps_rejected_dv")
                        tracer.observe("tran.h_rejected", h)
                    h = max(h / 2.0, h_min)
                    halvings += 1
                    report.total_halvings += 1
                    if tracer is not None:
                        tracer.count("tran.halvings")
                    continue

                # Accept the step.
                workspace.update_state(x_new, integrator)
                t = next_bp if hit_bp else t + h
                x = x_new
                times.append(t)
                states.append(x.copy())
                report.steps_accepted += 1
                halvings = 0
                if tracer is not None:
                    tracer.count("tran.steps_accepted")
                    tracer.observe("tran.h_accepted", h)

                if hit_bp:
                    bp_index += 1
                    h = restart_h
                    use_be = True
                else:
                    use_be = False
                    if max_dv < 0.3 * opts.dv_max:
                        h = min(h * 1.5, h_max)

        workspace.sync_state()
        return TransientResult(circuit, np.asarray(times),
                               np.asarray(states), report=report)
