"""Text rendering of waveforms for terminals and logs.

No plotting backend is assumed anywhere in this repository; these
renderers give examples and CLI commands a way to *show* a transient.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.spice.waveform import Waveform
from repro.units import format_eng

#: Per-trace glyphs, cycled.
_GLYPHS = "#*o+x%@&"


def render_waveforms(waves: dict, width: int = 72, height: int = 16,
                     t_start: float | None = None,
                     t_stop: float | None = None) -> str:
    """Render named waveforms on one shared-axis character grid.

    Args:
        waves: mapping label -> :class:`Waveform`.
        width, height: plot size in characters (excluding axes).
    """
    if not waves:
        raise AnalysisError("nothing to plot")
    if width < 16 or height < 4:
        raise AnalysisError("plot area too small")
    labels = list(waves)
    t0 = (min(w.t_start for w in waves.values())
          if t_start is None else t_start)
    t1 = (max(w.t_stop for w in waves.values())
          if t_stop is None else t_stop)
    if t1 <= t0:
        raise AnalysisError("empty time window")
    grid_times = np.linspace(t0, t1, width)
    samples = {label: np.asarray([waves[label].value_at(t)
                                  for t in grid_times])
               for label in labels}
    v_min = min(float(np.min(s)) for s in samples.values())
    v_max = max(float(np.max(s)) for s in samples.values())
    if v_max == v_min:
        v_max = v_min + 1.0

    rows = [[" "] * width for _ in range(height)]
    for index, label in enumerate(labels):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        values = samples[label]
        scaled = (values - v_min) / (v_max - v_min)
        for col, fraction in enumerate(scaled):
            row = height - 1 - int(round(fraction * (height - 1)))
            rows[row][col] = glyph

    lines = []
    for row_index, row in enumerate(rows):
        level = v_max - (v_max - v_min) * row_index / (height - 1)
        lines.append(f"{format_eng(level, 'V', 3):>9s} |"
                     + "".join(row))
    axis = (f"{'':>9s} +" + "-" * width)
    lines.append(axis)
    lines.append(f"{'':>11s}{format_eng(t0, 's', 3)}"
                 + " " * max(width - 22, 1)
                 + format_eng(t1, 's', 3))
    legend = "  ".join(f"{_GLYPHS[i % len(_GLYPHS)]}={label}"
                       for i, label in enumerate(labels))
    lines.append(f"{'':>11s}{legend}")
    return "\n".join(lines)


def render_transient(result, nodes: Sequence[str], **kwargs) -> str:
    """Convenience: plot node voltages from a TransientResult."""
    waves = {node: result.wave(node) for node in nodes}
    return render_waveforms(waves, **kwargs)
