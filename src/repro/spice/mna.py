"""Modified nodal analysis (MNA) system assembly.

The solution vector ``x`` holds node voltages for every non-ground node
followed by branch currents for devices that require them (voltage
sources). :class:`MnaSystem` owns the dense matrix and RHS;
:class:`StampContext` is the restricted view handed to devices, which
maps ground (index ``-1``) stamps to nowhere.

Ground handling uses an *augmented* array one row/column larger than the
solved system: stamps to node ``-1`` land in the trailing dump row
(numpy's negative indexing points there for free), so the hot stamping
path needs no ground branches at all. ``matrix`` and ``rhs`` are
persistent views of the solved ``size x size`` core.

:func:`assemble` re-stamps every device and is the reference ("legacy
full re-stamp") implementation. The throughput path lives in
:mod:`repro.spice.assembly`, which caches the linear/time-invariant part
of the matrix and re-stamps only nonlinear devices per Newton iteration.
Both paths stamp in the same canonical order — linear devices, the gmin
diagonal, opaque nonlinear devices, then MOSFETs — so their results are
bitwise identical (float accumulation order matters).

Dense matrices are appropriate here: the reproduction's largest circuits
(level-shifter testbenches, small SoC macros) stay well under a few
hundred unknowns, where dense LU beats sparse bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.spice.circuit import Circuit
    from repro.spice.integration import IntegratorState

#: Node index used for the ground node; stamps to it are discarded.
GROUND = -1


class MnaSystem:
    """Dense MNA matrix/RHS with ground-aware stamping.

    Internally one row/column larger than ``size``: index ``-1`` (the
    ground node) wraps onto the trailing dump row, which the solver
    never reads. ``matrix`` and ``rhs`` are views of the solved core
    and stay valid for the life of the system.
    """

    def __init__(self, size: int):
        self.size = size
        self._aug_matrix = np.zeros((size + 1, size + 1), dtype=float)
        self._aug_rhs = np.zeros(size + 1, dtype=float)
        self.matrix = self._aug_matrix[:size, :size]
        self.rhs = self._aug_rhs[:size]

    def clear(self) -> None:
        self._aug_matrix[:, :] = 0.0
        self._aug_rhs[:] = 0.0

    def add_matrix(self, row: int, col: int, value: float) -> None:
        self._aug_matrix[row, col] += value

    def add_rhs(self, row: int, value: float) -> None:
        self._aug_rhs[row] += value

    def stamp_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a conductance ``g`` between nodes ``a`` and ``b``."""
        m = self._aug_matrix
        m[a, a] += g
        m[b, b] += g
        m[a, b] -= g
        m[b, a] -= g

    def stamp_current(self, a: int, b: int, current: float) -> None:
        """Stamp a current source pushing ``current`` from node a to b.

        Positive ``current`` flows out of ``a`` into ``b`` through the
        source, i.e. it is injected into node ``b``.
        """
        self._aug_rhs[a] -= current
        self._aug_rhs[b] += current


class StampContext:
    """Per-iteration view handed to :meth:`Device.stamp`.

    Attributes:
        system: the MNA system being assembled.
        x: current Newton iterate (node voltages then branch currents).
        time: simulation time (0.0 for DC analyses).
        integrator: transient integration state, or None for DC.
        gmin: minimum conductance stamped by nonlinear devices for
            numerical robustness; homotopy sweeps raise it temporarily.
        source_scale: homotopy scaling of independent sources in [0, 1].
    """

    def __init__(self, system: MnaSystem, x: np.ndarray, time: float = 0.0,
                 integrator: Optional["IntegratorState"] = None,
                 gmin: float = 1e-12, source_scale: float = 1.0):
        self.system = system
        self.x = x
        self.time = time
        self.integrator = integrator
        self.gmin = gmin
        self.source_scale = source_scale

    def voltage(self, node_index: int) -> float:
        """Voltage at a node index (0.0 for ground)."""
        if node_index == GROUND:
            return 0.0
        return float(self.x[node_index])

    @property
    def is_transient(self) -> bool:
        return self.integrator is not None


def assemble(circuit: "Circuit", x: np.ndarray, system: MnaSystem,
             time: float = 0.0,
             integrator: Optional["IntegratorState"] = None,
             gmin: float = 1e-12, source_scale: float = 1.0) -> StampContext:
    """Assemble the full MNA system at iterate ``x``; returns the context.

    This is the reference full re-stamp: every device is re-evaluated.
    The canonical stamp order (linear, gmin diagonal, opaque nonlinear,
    MOSFETs) is shared with the cached fast path in
    :mod:`repro.spice.assembly` so both produce bitwise-identical
    systems.
    """
    system.clear()
    ctx = StampContext(system, x, time=time, integrator=integrator,
                       gmin=gmin, source_scale=source_scale)
    linear, opaque, mosfets = circuit.stamp_partition()
    for device in linear:
        device.stamp(ctx)
    # Gmin from every node to ground keeps the matrix nonsingular when a
    # node is only driven through cut-off transistors.
    for idx in range(circuit.node_count()):
        system.add_matrix(idx, idx, gmin)
    for device in opaque:
        device.stamp(ctx)
    for device in mosfets:
        device.stamp(ctx)
    return ctx
