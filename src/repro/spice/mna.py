"""Modified nodal analysis (MNA) system assembly.

The solution vector ``x`` holds node voltages for every non-ground node
followed by branch currents for devices that require them (voltage
sources). :class:`MnaSystem` owns the dense matrix and RHS;
:class:`StampContext` is the restricted view handed to devices, which
maps ground (index ``-1``) stamps to nowhere.

Dense matrices are appropriate here: the reproduction's largest circuits
(level-shifter testbenches, small SoC macros) stay well under a few
hundred unknowns, where dense LU beats sparse bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.spice.circuit import Circuit
    from repro.spice.integration import IntegratorState

#: Node index used for the ground node; stamps to it are discarded.
GROUND = -1


class MnaSystem:
    """Dense MNA matrix/RHS with ground-aware stamping."""

    def __init__(self, size: int):
        self.size = size
        self.matrix = np.zeros((size, size), dtype=float)
        self.rhs = np.zeros(size, dtype=float)

    def clear(self) -> None:
        self.matrix[:, :] = 0.0
        self.rhs[:] = 0.0

    def add_matrix(self, row: int, col: int, value: float) -> None:
        if row != GROUND and col != GROUND:
            self.matrix[row, col] += value

    def add_rhs(self, row: int, value: float) -> None:
        if row != GROUND:
            self.rhs[row] += value

    def stamp_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a conductance ``g`` between nodes ``a`` and ``b``."""
        self.add_matrix(a, a, g)
        self.add_matrix(b, b, g)
        self.add_matrix(a, b, -g)
        self.add_matrix(b, a, -g)

    def stamp_current(self, a: int, b: int, current: float) -> None:
        """Stamp a current source pushing ``current`` from node a to b.

        Positive ``current`` flows out of ``a`` into ``b`` through the
        source, i.e. it is injected into node ``b``.
        """
        self.add_rhs(a, -current)
        self.add_rhs(b, current)


class StampContext:
    """Per-iteration view handed to :meth:`Device.stamp`.

    Attributes:
        system: the MNA system being assembled.
        x: current Newton iterate (node voltages then branch currents).
        time: simulation time (0.0 for DC analyses).
        integrator: transient integration state, or None for DC.
        gmin: minimum conductance stamped by nonlinear devices for
            numerical robustness; homotopy sweeps raise it temporarily.
        source_scale: homotopy scaling of independent sources in [0, 1].
    """

    def __init__(self, system: MnaSystem, x: np.ndarray, time: float = 0.0,
                 integrator: Optional["IntegratorState"] = None,
                 gmin: float = 1e-12, source_scale: float = 1.0):
        self.system = system
        self.x = x
        self.time = time
        self.integrator = integrator
        self.gmin = gmin
        self.source_scale = source_scale

    def voltage(self, node_index: int) -> float:
        """Voltage at a node index (0.0 for ground)."""
        if node_index == GROUND:
            return 0.0
        return float(self.x[node_index])

    @property
    def is_transient(self) -> bool:
        return self.integrator is not None


def assemble(circuit: "Circuit", x: np.ndarray, system: MnaSystem,
             time: float = 0.0,
             integrator: Optional["IntegratorState"] = None,
             gmin: float = 1e-12, source_scale: float = 1.0) -> StampContext:
    """Assemble the full MNA system at iterate ``x``; returns the context."""
    system.clear()
    ctx = StampContext(system, x, time=time, integrator=integrator,
                       gmin=gmin, source_scale=source_scale)
    for device in circuit.devices.values():
        device.stamp(ctx)
    # Gmin from every node to ground keeps the matrix nonsingular when a
    # node is only driven through cut-off transistors.
    for idx in range(circuit.node_count()):
        system.add_matrix(idx, idx, gmin)
    return ctx
