"""Numerical integration state for transient analysis.

Reactive devices turn their charge-storage equations into resistive
companion models using the current step's :class:`IntegratorState`.
Two methods are supported:

* ``"be"`` — backward Euler: robust, L-stable, first order. Used for the
  first step after every breakpoint to damp the discontinuity.
* ``"trap"`` — trapezoidal: second order, the default elsewhere.

For a capacitor ``C`` with previous-step voltage ``v0`` and current
``i0``, the companion is a conductance ``geq`` in parallel with a current
source ``ieq`` such that the branch current is ``i = geq * v + ieq``:

========  ==============  ==========================
method    geq             ieq
========  ==============  ==========================
be        C / dt          -geq * v0
trap      2 C / dt        -(geq * v0 + i0)
========  ==============  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass

BACKWARD_EULER = "be"
TRAPEZOIDAL = "trap"


@dataclass
class IntegratorState:
    """Current transient step: method name and step size in seconds."""

    method: str = TRAPEZOIDAL
    dt: float = 1e-12

    def companion(self, capacitance: float, v_prev: float,
                  i_prev: float) -> tuple[float, float]:
        """Companion (geq, ieq) for a linear capacitor this step."""
        if self.method == BACKWARD_EULER:
            geq = capacitance / self.dt
            return geq, -geq * v_prev
        geq = 2.0 * capacitance / self.dt
        return geq, -(geq * v_prev + i_prev)

    def branch_current(self, capacitance: float, v_new: float,
                       v_prev: float, i_prev: float) -> float:
        """Capacitor current at the end of the step (state update)."""
        geq, ieq = self.companion(capacitance, v_prev, i_prev)
        return geq * v_new + ieq
