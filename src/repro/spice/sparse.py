"""KLU-style sparse pattern-reuse LU for the batched Newton loop.

Every circuit in a campaign shares one topology, so every Newton
iteration factorizes a matrix with the *same* sparsity pattern — only
the values change. Dense LAPACK re-discovers that structure from
scratch at every solve, which is O(n^3) regardless of how empty the
matrix is. This module does what KLU does for SPICE engines: perform
the **symbolic factorization once per topology** and then only
**refactorize numerically** at each iteration:

* :func:`structural_pattern` derives the fixed nonzero pattern of a
  supported :class:`~repro.spice.assembly.AssemblyPlan` — the union of
  the DC and transient base-matrix COO templates, the MOSFET stamp
  positions, and the gmin diagonal — so any value the solver can ever
  write is inside the pattern.
* :class:`SparsePlan` computes, once, a static row permutation (a
  maximum transversal, so every diagonal pivot is structurally
  nonzero — MNA branch rows natively carry a zero diagonal) and the
  complete fill-in of a no-pivoting LU in natural column order. The
  per-elimination-step index arrays (`rows_k`, `cols_k`) are
  precomputed; the numeric phase is a fixed sequence of vectorized
  gather/scatter updates with **no data-dependent control flow**.
* :meth:`SparsePlan.solve` factors and substitutes a whole ``(L, n,
  n)`` lane stack at once. Each elimination update and each
  substitution reduction applies the identical float operations to
  every lane, and every per-lane reduction (`np.sum` over the last
  axis) is pairwise over the same element count regardless of the lane
  count — so a lane's solution is **bitwise invariant to batch
  membership**, exactly like the dense gufunc path.

**Equivalence contract.** Sparse and dense solutions of the same
system agree only to a small ULP bound (different elimination order =
different rounding; ``tests/spice/test_sparse_equivalence.py`` pins
the bound with a negative control). The 0-ULP serial-vs-batched
contract is therefore preserved differently: the *solver selection
rule is deterministic in the topology alone* (:func:`resolve_solver`),
so a serial run and any sharding of the batched run pick the same
kernel and replay the same float ops. A singular system surfaces as a
division by a zero pivot — non-finite entries under the solver's
suppressed FP flags — which the existing finiteness check classifies
with the same failure text as the dense path.

**When sparse wins.** The numeric refactor costs O(nnz(L+U)) flops in
``n`` Python-level steps, versus dense LAPACK's O(n^3) at C speed.
For the paper's shifter testbenches (n ≈ 20) dense wins easily; for
the SoC-scale chained workloads ROADMAP items 3-4 target, the sparse
path overtakes it. The crossover is measured by the ``repro bench``
``sparse_crossover`` workload and baked into
:data:`SPARSE_AUTO_THRESHOLD`; ``solver="auto"`` (the default)
switches on matrix size only, so the choice is reproducible
everywhere.
"""

from __future__ import annotations

import contextlib
from typing import Optional

import numpy as np

from repro.errors import AnalysisError

#: ``solver="auto"`` picks the sparse path at and above this MNA system
#: size. Calibrated with ``repro bench`` (``sparse_crossover``
#: workload): on the reference container, for ladder-of-shifter-cells
#: topologies, the vectorized sparse refactor overtakes batched dense
#: LAPACK near n≈200 at campaign lane widths (16 lanes) and near n≈360
#: at 4 lanes; single-lane dense stays ahead longer still. The
#: threshold sits at the wide-batch crossover because that is where
#: SoC-scale campaigns actually run, and the rule must stay a function
#: of topology alone (never lane count) to preserve the bitwise
#: serial/batched/sharded identity — narrow-lane solves above the
#: threshold knowingly pay a constant factor for that determinism.
#: Every paper-scale testbench (n ≲ 40) stays dense by a wide margin.
SPARSE_AUTO_THRESHOLD = 200

#: The solver modes a caller may name. ``auto`` resolves by system
#: size; the explicit modes force one kernel (used by the equivalence
#: harness and the crossover bench).
SOLVER_MODES = ("auto", "dense", "sparse")

#: Ambient default applied when NewtonOptions.solver is None. Set per
#: campaign through :func:`solver_scope`; workers receive the mode in
#: their task tuple and enter the scope themselves, so pooled runs
#: never depend on inherited process state.
_AMBIENT_SOLVER: str = "auto"


def ambient_solver() -> str:
    """The process-wide default solver mode (``auto`` unless scoped)."""
    return _AMBIENT_SOLVER


@contextlib.contextmanager
def solver_scope(mode: Optional[str]):
    """Ambiently select a solver mode for the enclosed solves.

    ``None`` keeps the current default (nested scopes compose). The
    experiment engine wraps each measurement in the spec's mode so
    campaign drivers need no per-call threading.
    """
    global _AMBIENT_SOLVER
    if mode is None:
        yield
        return
    validate_solver(mode)
    previous = _AMBIENT_SOLVER
    _AMBIENT_SOLVER = mode
    try:
        yield
    finally:
        _AMBIENT_SOLVER = previous


def validate_solver(mode: str) -> None:
    if mode not in SOLVER_MODES:
        raise AnalysisError(
            f"solver must be one of {SOLVER_MODES}, got {mode!r}")


def resolve_solver(mode: Optional[str], size: int) -> str:
    """Resolve a requested mode to ``"dense"`` or ``"sparse"``.

    The rule is deterministic in (mode, system size) alone — never in
    lane count, shard count, or batch width — so serial, batched, and
    sharded-batched runs of one topology always agree on the kernel.
    """
    mode = _AMBIENT_SOLVER if mode is None else mode
    validate_solver(mode)
    if mode == "auto":
        return "sparse" if size >= SPARSE_AUTO_THRESHOLD else "dense"
    return mode


def structural_pattern(plan) -> np.ndarray:
    """Fixed ``(size, size)`` nonzero pattern of a supported plan.

    Unions every position any regime can write: DC and transient base
    templates, MOSFET stamp quads, and the gmin node diagonal. Returns
    None when the plan is unsupported (opaque devices can stamp
    anywhere; those circuits stay on the dense path).
    """
    if not plan.supported:
        return None
    naug = plan.naug
    mask = np.zeros(naug * naug, dtype=bool)
    mask[plan._mat_dc[0]] = True
    mask[plan._mat_tr[0]] = True
    if plan.mosfet_group is not None:
        mask[plan.mosfet_group.mat_flat] = True
    mask[plan._diag_flat] = True
    square = mask.reshape(naug, naug)[:plan.size, :plan.size]
    return np.ascontiguousarray(square)


def _maximum_transversal(pattern: np.ndarray) -> Optional[np.ndarray]:
    """Row permutation putting a structural nonzero on every diagonal.

    Classic augmenting-path bipartite matching (columns to rows),
    seeded with the identity so well-formed node rows keep their
    natural position and only branch rows move. Returns ``perm`` with
    ``pattern[perm[k], k]`` True for all k, or None when no perfect
    matching exists (a structurally singular system — left to the
    dense path, whose LAPACK factorization reports it as such).
    """
    n = pattern.shape[0]
    row_of_col = np.full(n, -1, dtype=np.intp)
    col_of_row = np.full(n, -1, dtype=np.intp)
    for k in range(n):
        if pattern[k, k] and col_of_row[k] < 0:
            row_of_col[k] = k
            col_of_row[k] = k
    rows_by_col = [np.nonzero(pattern[:, k])[0] for k in range(n)]

    def augment(col: int, visited: np.ndarray) -> bool:
        for row in rows_by_col[col]:
            if visited[row]:
                continue
            visited[row] = True
            if col_of_row[row] < 0 or augment(col_of_row[row], visited):
                row_of_col[col] = row
                col_of_row[row] = col
                return True
        return False

    for k in range(n):
        if row_of_col[k] < 0:
            if not augment(k, np.zeros(n, dtype=bool)):
                return None
    return row_of_col


class SparseUnsupported(AnalysisError):
    """The pattern cannot take the sparse path; use the dense kernel."""


class SparsePlan:
    """One topology's symbolic factorization, reused for every solve.

    Construction runs the symbolic phase: permute, eliminate the
    boolean pattern tracking fill-in, and freeze the per-step scatter
    index arrays. :meth:`solve` then runs only the numeric phase.
    """

    def __init__(self, pattern: np.ndarray):
        pattern = np.asarray(pattern, dtype=bool)
        if pattern.ndim != 2 or pattern.shape[0] != pattern.shape[1]:
            raise SparseUnsupported("pattern must be square")
        n = pattern.shape[0]
        perm = _maximum_transversal(pattern)
        if perm is None:
            raise SparseUnsupported(
                "structurally singular pattern (no perfect matching); "
                "the dense path reports this system as singular")
        self.n = n
        self.perm = perm
        filled = pattern[perm].copy()
        # Symbolic elimination in natural order on the permuted
        # pattern; `filled` accumulates the L+U structure.
        steps = []
        for k in range(n):
            rows = np.nonzero(filled[k + 1:, k])[0] + (k + 1)
            cols = np.nonzero(filled[k, k + 1:])[0] + (k + 1)
            if rows.size and cols.size:
                filled[np.ix_(rows, cols)] = True
            steps.append((np.ascontiguousarray(rows),
                          np.ascontiguousarray(cols)))
        self._steps = steps
        # Upper-triangle structure per row, for back substitution.
        self._urows = [np.nonzero(filled[k, k + 1:])[0] + (k + 1)
                       for k in range(n)]
        #: Nonzeros of L+U — the numeric refactor's flop count; the
        #: crossover bench reports it alongside the wall times.
        self.nnz_factor = int(filled.sum())

    # -- numeric phase ----------------------------------------------------

    def solve(self, matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Factor + substitute a ``(L, n, n)`` stack in one pass.

        Runs under the caller's suppressed FP flags: a numerically
        zero pivot divides to inf/nan, which propagates into that
        lane's solution and is classified by the caller's finiteness
        check — the same convention as the dense gufunc. Other lanes
        are untouched (all updates are elementwise per lane).
        """
        A = np.ascontiguousarray(matrices[:, self.perm, :], dtype=float)
        y = np.ascontiguousarray(rhs[:, self.perm], dtype=float)
        n = self.n
        # Numeric LU on the fixed pattern: A becomes L (unit diagonal,
        # factors stored below) + U in place.
        for k, (rows, cols) in enumerate(self._steps):
            if not rows.size:
                continue
            f = A[:, rows, k] / A[:, k, k][:, None]
            A[:, rows, k] = f
            if cols.size:
                A[:, rows[:, None], cols[None, :]] -= \
                    f[:, :, None] * A[:, k, cols][:, None, :]
        # Forward substitution (L y' = P b) reuses the step structure.
        for k, (rows, _) in enumerate(self._steps):
            if rows.size:
                y[:, rows] -= A[:, rows, k] * y[:, k][:, None]
        # Back substitution (U x = y').
        x = np.empty_like(y)
        for k in range(n - 1, -1, -1):
            cols = self._urows[k]
            acc = y[:, k]
            if cols.size:
                # The mixed scalar+array gather yields an F-ordered
                # view, and numpy only sums a *contiguous* axis
                # pairwise — strided rows fall back to sequential
                # order, which would make the reduction (and the
                # lane's bits) depend on the lane count. Force the
                # product buffer C-contiguous so every lane reduces
                # pairwise over the same element count, batched or
                # alone.
                prod = np.ascontiguousarray(A[:, k, cols] * x[:, cols])
                acc = acc - prod.sum(axis=1)
            x[:, k] = acc / A[:, k, k]
        return x

    def solve1(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Single-system convenience used by the serial Newton loop."""
        return self.solve(matrix[None], rhs[None])[0]


def sparse_plan_for(assembly_plan) -> Optional[SparsePlan]:
    """The (cached) :class:`SparsePlan` of an assembly plan, or None.

    Cached on the assembly plan itself so every workspace and lane
    group of one circuit shares a single symbolic factorization —
    pattern-reuse is the whole point. Unsupported plans and
    structurally singular patterns return None; callers fall back to
    the dense kernel (which reports genuine singularity itself).
    """
    cached = getattr(assembly_plan, "_sparse_plan", False)
    if cached is not False:
        return cached
    pattern = structural_pattern(assembly_plan)
    plan = None
    if pattern is not None:
        try:
            plan = SparsePlan(pattern)
        except SparseUnsupported:
            plan = None
    assembly_plan._sparse_plan = plan
    return plan
