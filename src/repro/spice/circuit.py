"""Circuit data model: named nodes, devices, and index assignment.

A :class:`Circuit` is a flat container of devices connected by named
nodes. Node names are case-insensitive strings; ``"0"`` and ``"gnd"``
both denote ground. Devices added through :meth:`Circuit.add` may expand
into auxiliary devices (MOSFET parasitic capacitances), which are stored
alongside them with derived names.

Hierarchy is handled by construction-time flattening: cell-builder
functions (see :mod:`repro.cells`) take a circuit, a name prefix, and a
node mapping, and add prefixed devices directly. The netlist parser's
``.subckt`` support uses the same mechanism.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import CircuitError
from repro.spice.devices.base import Device
from repro.spice.mna import GROUND

#: Node names that denote the ground reference.
GROUND_NAMES = frozenset({"0", "gnd", "gnd!", "vss!"})


def canonical_node(name: str) -> str:
    """Canonical (lower-case, ground-normalized) form of a node name."""
    low = str(name).strip().lower()
    if not low:
        raise CircuitError("node name must be non-empty")
    if low in GROUND_NAMES:
        return "0"
    return low


class Circuit:
    """A flat netlist of devices connected by named nodes."""

    def __init__(self, title: str = "untitled"):
        self.title = title
        self.devices: dict[str, Device] = {}
        self._node_index: dict[str, int] = {}
        self._branch_owner: dict[str, int] = {}
        self._frozen = False
        self._stamp_partition = None
        self._nonlinear_cache = None
        self._assembly_plan = None

    # -- construction ---------------------------------------------------

    def add(self, device: Device) -> Device:
        """Add ``device`` (and its expansion) to the circuit.

        Returns the device for chaining. Raises :class:`CircuitError` on
        duplicate names or when the circuit has been finalized.
        """
        if self._frozen:
            raise CircuitError(
                f"circuit {self.title!r} is finalized; cannot add {device.name!r}")
        key = device.name.lower()
        if key in self.devices:
            raise CircuitError(f"duplicate device name {device.name!r}")
        device.nodes = [canonical_node(n) for n in device.nodes]
        self.devices[key] = device
        for aux in device.expand():
            self.add(aux)
        return device

    def remove(self, name: str) -> None:
        """Remove a device (used by ablation studies)."""
        if self._frozen:
            raise CircuitError("circuit is finalized; cannot remove devices")
        key = name.lower()
        if key not in self.devices:
            raise CircuitError(f"no device named {name!r}")
        del self.devices[key]

    def device(self, name: str) -> Device:
        try:
            return self.devices[name.lower()]
        except KeyError:
            raise CircuitError(f"no device named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.devices

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices.values())

    def __len__(self) -> int:
        return len(self.devices)

    # -- finalization and indexing ---------------------------------------

    def finalize(self) -> None:
        """Assign solution-vector indices to nodes and branches.

        Idempotent; analyses call it automatically. After finalization
        the device set is fixed (indices would go stale otherwise).
        """
        if self._frozen:
            return
        self._node_index.clear()
        self._branch_owner.clear()
        for device in self.devices.values():
            for node in device.nodes:
                if node != "0" and node not in self._node_index:
                    self._node_index[node] = len(self._node_index)
        next_branch = len(self._node_index)
        for device in self.devices.values():
            device.node_indices = [
                GROUND if node == "0" else self._node_index[node]
                for node in device.nodes
            ]
            count = device.branch_count()
            if count:
                device.branch_indices = list(
                    range(next_branch, next_branch + count))
                self._branch_owner[device.name.lower()] = next_branch
                next_branch += count
        self._system_size = next_branch
        self._frozen = True
        self._invalidate_caches()

    def unfreeze(self) -> None:
        """Allow further edits; analyses will re-finalize."""
        self._frozen = False
        self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        self._stamp_partition = None
        self._nonlinear_cache = None
        self._assembly_plan = None

    def node_count(self) -> int:
        self.finalize()
        return len(self._node_index)

    def system_size(self) -> int:
        self.finalize()
        return self._system_size

    def node_index(self, name: str) -> int:
        """Solution-vector index for a node name (GROUND for ground)."""
        self.finalize()
        canon = canonical_node(name)
        if canon == "0":
            return GROUND
        try:
            return self._node_index[canon]
        except KeyError:
            raise CircuitError(f"unknown node {name!r}") from None

    def node_names(self) -> list[str]:
        """All non-ground node names in index order."""
        self.finalize()
        return sorted(self._node_index, key=self._node_index.__getitem__)

    def branch_index(self, device_name: str) -> int:
        """Solution-vector index of a device's branch current."""
        self.finalize()
        try:
            return self._branch_owner[device_name.lower()]
        except KeyError:
            raise CircuitError(
                f"device {device_name!r} has no branch current") from None

    # -- queries ----------------------------------------------------------

    def nonlinear_devices(self) -> list[Device]:
        if self._nonlinear_cache is None or not self._frozen:
            cache = [d for d in self.devices.values() if d.is_nonlinear()]
            if not self._frozen:
                return cache
            self._nonlinear_cache = cache
        return self._nonlinear_cache

    def stamp_partition(self) -> tuple[list[Device], list[Device], list[Device]]:
        """Devices split by stamp kind: ``(linear, opaque, mosfets)``.

        Each list preserves circuit insertion order. ``linear`` devices
        have cacheable matrix stamps, ``mosfets`` go through the
        vectorized EKV group, and ``opaque`` devices (unknown
        subclasses) are re-stamped scalar-wise every iteration. The
        partition is the canonical assembly order: linear first, then
        the gmin diagonal, then opaque, then MOSFETs — both the cached
        and the reference assembly paths follow it so their float
        accumulation order is identical.
        """
        if self._stamp_partition is None or not self._frozen:
            linear: list[Device] = []
            opaque: list[Device] = []
            mosfets: list[Device] = []
            for device in self.devices.values():
                stamp_kind = getattr(device, "stamp_kind", "opaque")
                if stamp_kind == "linear":
                    linear.append(device)
                elif stamp_kind == "mosfet":
                    mosfets.append(device)
                else:
                    opaque.append(device)
            partition = (linear, opaque, mosfets)
            if not self._frozen:
                return partition
            self._stamp_partition = partition
        return self._stamp_partition

    def assembly_plan(self):
        """Lazily-built :class:`repro.spice.assembly.AssemblyPlan`.

        Cached on the circuit and invalidated whenever the device set
        can change (``unfreeze``/re-``finalize``).
        """
        self.finalize()
        if self._assembly_plan is None:
            from repro.spice.assembly import AssemblyPlan
            self._assembly_plan = AssemblyPlan(self)
        return self._assembly_plan

    def breakpoints(self, t_stop: float) -> list[float]:
        """Sorted unique transient breakpoints from all devices."""
        points: set[float] = {0.0, t_stop}
        for device in self.devices.values():
            points.update(p for p in device.breakpoints(t_stop)
                          if 0.0 <= p <= t_stop)
        return sorted(points)

    def devices_of_type(self, cls: type) -> list[Device]:
        return [d for d in self.devices.values() if isinstance(d, cls)]

    def copy_topology(self) -> "Circuit":
        """Shallow structural copy sharing no index state (for sweeps).

        Devices themselves are shared object references; use this only
        when devices are immutable between runs or when callers reset
        device state explicitly. Monte Carlo builds fresh circuits
        instead.
        """
        clone = Circuit(self.title)
        for device in self.devices.values():
            clone.devices[device.name.lower()] = device
        return clone

    def summary(self) -> str:
        """Human-readable inventory used by examples and error messages."""
        self.finalize()
        kinds: dict[str, int] = {}
        for device in self.devices.values():
            kinds[type(device).__name__] = kinds.get(type(device).__name__, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return (f"Circuit {self.title!r}: {len(self.devices)} devices "
                f"({parts}), {len(self._node_index)} nodes, "
                f"{self._system_size} unknowns")
