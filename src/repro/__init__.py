"""repro — reproduction of "A Single-supply True Voltage Level Shifter"
(Garg, Mallarapu, Khatri; DATE 2008).

The package provides, from the bottom up:

* :mod:`repro.spice` — a SPICE-class analog circuit simulator (MNA,
  damped Newton with homotopy, adaptive transient, EKV MOSFETs);
* :mod:`repro.pdk` — PTM-90nm-like model cards with temperature
  scaling, Monte Carlo process variation, and corners;
* :mod:`repro.cells` — the SS-TVS cell plus every comparison circuit
  (conventional dual-supply shifter, Puri/Khan single-supply shifters,
  the paper's combined VS baseline) and primitive gates;
* :mod:`repro.core` — the characterization API (delay, switching
  power, leakage, functionality) around :class:`repro.core.LevelShifter`;
* :mod:`repro.analysis` — the paper's experiments: Monte Carlo tables,
  VDDI x VDDO delay surfaces, temperature validation, functional grid;
* :mod:`repro.netlist` — SPICE deck parsing/writing;
* :mod:`repro.layout` — analytical cell-area estimates;
* :mod:`repro.soc` — the SoC-level routing/feasibility study behind
  the paper's motivation figures.

Quick start::

    from repro import LevelShifter

    metrics = LevelShifter("sstvs").characterize(vddi=0.8, vddo=1.2)
    print(metrics.pretty("SS-TVS, 0.8 V -> 1.2 V"))
"""

from repro.core import LevelShifter, ShifterMetrics
from repro.pdk import Pdk

__version__ = "1.0.0"

__all__ = ["LevelShifter", "ShifterMetrics", "Pdk", "__version__"]
