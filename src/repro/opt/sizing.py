"""Device-sizing optimization for the SS-TVS.

The paper: "the devices of our SS-TVS were sized considering the
tradeoff between speed and leakage power". This module reproduces that
flow as a coordinate-descent optimizer over the
:class:`~repro.cells.sstvs.SstvsSizing` knobs with a weighted
delay/leakage/area objective, evaluated by full characterization at one
or more (VDDI, VDDO) pairs. Non-functional candidates are rejected
outright (infinite cost), so the optimizer cannot trade correctness for
speed.

Coordinate descent with a geometric step and shrink-on-failure is crude
but matches the manual sizing practice the paper describes, and every
evaluation is an expensive transient — gradient-free frugality matters
more than asymptotic convergence here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.analysis.sensitivity import SIZING_KNOBS
from repro.cells.sstvs import SstvsSizing
from repro.core.characterize import StimulusPlan, characterize
from repro.errors import AnalysisError
from repro.layout import DIFFUSION
from repro.pdk import Pdk


@dataclass(frozen=True)
class Objective:
    """Weighted cost over the characterization metrics.

    cost = w_delay * (delay_rise + delay_fall) / delay_ref
         + w_leakage * (leakage_high + leakage_low) / leakage_ref
         + w_area * device_area / area_ref

    References normalize each term to ~1 at typical values so weights
    are comparable.
    """

    w_delay: float = 1.0
    w_leakage: float = 1.0
    w_area: float = 0.2
    delay_ref: float = 400e-12
    leakage_ref: float = 10e-9
    area_ref: float = 2e-12

    def validate(self) -> None:
        if min(self.w_delay, self.w_leakage, self.w_area) < 0:
            raise AnalysisError("objective weights must be >= 0")
        if self.w_delay == self.w_leakage == self.w_area == 0:
            raise AnalysisError("objective is identically zero")


def _sizing_area(sizing: SstvsSizing) -> float:
    """Active-area proxy [m^2] for the area term."""
    pairs = (
        (sizing.w_m1, 1e-7), (sizing.w_m2, 1e-7),
        (sizing.w_m3, sizing.l_m3), (sizing.w_m4, 1e-7),
        (sizing.w_m5, sizing.l_m5), (sizing.w_m6, 1e-7),
        (sizing.w_m7, sizing.l_m7), (sizing.w_m8, 1e-7),
        (sizing.w_mc, sizing.l_mc),
        (sizing.w_nor_n, 1e-7), (sizing.w_nor_p, 1e-7),
    )
    return sum(w * (l + 2 * DIFFUSION) for w, l in pairs)


@dataclass
class EvaluationRecord:
    sizing: SstvsSizing
    cost: float
    functional: bool


@dataclass
class SizingResult:
    best_sizing: SstvsSizing
    best_cost: float
    initial_cost: float
    evaluations: int
    history: list = field(default_factory=list)

    @property
    def improvement(self) -> float:
        return (self.initial_cost - self.best_cost) / self.initial_cost


class SizingOptimizer:
    """Coordinate descent over sizing knobs.

    Example::

        optimizer = SizingOptimizer(corners=[(0.8, 1.2), (1.2, 0.8)])
        result = optimizer.run(rounds=1)
    """

    def __init__(self, corners: Sequence[tuple] = ((0.8, 1.2),
                                                   (1.2, 0.8)),
                 objective: Objective | None = None,
                 knobs: Sequence[str] = ("w_m1", "w_m2", "w_m8",
                                         "w_mc", "w_nor_n"),
                 pdk: Pdk | None = None,
                 plan: StimulusPlan | None = None,
                 step: float = 1.3,
                 min_width: float = 0.08e-6):
        if not corners:
            raise AnalysisError("need at least one (vddi, vddo) corner")
        unknown = [k for k in knobs if k not in SIZING_KNOBS]
        if unknown:
            raise AnalysisError(f"unknown knobs: {unknown}")
        if step <= 1.0:
            raise AnalysisError("step must be > 1 (geometric factor)")
        self.corners = list(corners)
        self.objective = objective or Objective()
        self.objective.validate()
        self.knobs = list(knobs)
        self.pdk = pdk or Pdk()
        self.plan = plan
        self.step = step
        self.min_width = min_width
        self.evaluations = 0
        self._cache: dict = {}

    # -- cost -----------------------------------------------------------

    def cost(self, sizing: SstvsSizing) -> float:
        key = tuple(getattr(sizing, k) for k in SIZING_KNOBS)
        if key in self._cache:
            return self._cache[key]
        self.evaluations += 1
        obj = self.objective
        total = obj.w_area * _sizing_area(sizing) / obj.area_ref
        for vddi, vddo in self.corners:
            metrics = characterize(self.pdk, "sstvs", vddi, vddo,
                                   plan=self.plan, sizing=sizing)
            if not metrics.functional:
                total = math.inf
                break
            total += obj.w_delay * (metrics.delay_rise
                                    + metrics.delay_fall) / obj.delay_ref
            total += obj.w_leakage * (metrics.leakage_high
                                      + metrics.leakage_low
                                      ) / obj.leakage_ref
        self._cache[key] = total
        return total

    # -- search -----------------------------------------------------------

    def run(self, initial: SstvsSizing | None = None,
            rounds: int = 2) -> SizingResult:
        current = initial or SstvsSizing()
        current_cost = self.cost(current)
        initial_cost = current_cost
        history = [EvaluationRecord(current, current_cost,
                                    math.isfinite(current_cost))]
        if not math.isfinite(current_cost):
            raise AnalysisError("initial sizing is non-functional")

        for _ in range(rounds):
            improved = False
            for knob in self.knobs:
                for factor in (self.step, 1.0 / self.step):
                    value = getattr(current, knob) * factor
                    if value < self.min_width:
                        continue
                    candidate = replace(current, **{knob: value})
                    candidate_cost = self.cost(candidate)
                    history.append(EvaluationRecord(
                        candidate, candidate_cost,
                        math.isfinite(candidate_cost)))
                    if candidate_cost < current_cost:
                        current, current_cost = candidate, candidate_cost
                        improved = True
                        break
            if not improved:
                break
        return SizingResult(best_sizing=current, best_cost=current_cost,
                            initial_cost=initial_cost,
                            evaluations=self.evaluations,
                            history=history)
