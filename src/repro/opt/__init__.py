"""Sizing optimization (the paper's delay/leakage tradeoff flow)."""

from repro.opt.sizing import (
    EvaluationRecord, Objective, SizingOptimizer, SizingResult,
)

__all__ = [
    "Objective",
    "SizingOptimizer",
    "SizingResult",
    "EvaluationRecord",
]
