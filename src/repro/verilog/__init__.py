"""Structural Verilog subset: parsing, writing, engine bridges."""

from repro.verilog.parser import (
    VerilogInstance, VerilogModule, parse_verilog, write_verilog,
)
from repro.verilog.bridge import (
    LOGIC_CELL_REGISTRY, to_gate_netlist, to_logic_simulator,
)

__all__ = [
    "VerilogModule",
    "VerilogInstance",
    "parse_verilog",
    "write_verilog",
    "to_gate_netlist",
    "to_logic_simulator",
    "LOGIC_CELL_REGISTRY",
]
