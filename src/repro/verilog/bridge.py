"""Bridges from parsed Verilog to the timing and logic engines.

The cells this study uses are single-input (pin ``A``) single-output
(pin ``Y``) — inverters, buffers, and level shifters — so a structural
module maps directly onto :class:`repro.sta.GateNetlist` and onto the
event-driven simulator's component list. Cell names carry their own
semantics for the logic bridge via a registry of behavioral factories.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import NetlistError
from repro.logicsim import (
    LogicSimulator, SupplyState, buffer, inverter, level_shifter,
)
from repro.sta import GateNetlist
from repro.verilog.parser import VerilogModule

INPUT_PIN = "A"
OUTPUT_PIN = "Y"


def _pin(inst, pin: str) -> str:
    try:
        return inst.connections[pin]
    except KeyError:
        raise NetlistError(
            f"{inst.name}: cell {inst.cell!r} needs a .{pin}() "
            "connection") from None


def to_gate_netlist(module: VerilogModule) -> GateNetlist:
    """Structural module -> STA netlist (cells resolved later by the
    timing library, so any cell name is accepted here)."""
    netlist = GateNetlist(module.name)
    for net in module.inputs:
        netlist.add_primary_input(net)
    for net in module.outputs:
        netlist.add_primary_output(net)
    for inst in module.instances:
        netlist.add_instance(inst.name, inst.cell,
                             _pin(inst, INPUT_PIN),
                             _pin(inst, OUTPUT_PIN))
    return netlist


#: Logic-bridge registry: cell-name prefix -> component factory
#: ``factory(name, input_net, output_net, supplies) -> Component``.
def _inv_factory(name, a, y, supplies):
    return inverter(name, a, y)


def _buf_factory(name, a, y, supplies):
    return buffer(name, a, y)


def _shifter_factory(kind: str) -> Callable:
    def factory(name, a, y, supplies):
        # Cell naming convention: <KIND>_<in_domain>_<out_domain>.
        return level_shifter(name, kind, a, y, supplies,
                             *_domains_from(name))
    return factory


def _domains_from(name: str):
    parts = name.split("$")
    if len(parts) == 3:
        return parts[1], parts[2]
    raise NetlistError(
        f"shifter instance {name!r} must be named "
        "<name>$<in_domain>$<out_domain> for the logic bridge")


LOGIC_CELL_REGISTRY = {
    "INV": _inv_factory,
    "BUF": _buf_factory,
    "SSTVS": _shifter_factory("sstvs"),
    "LSINV": _shifter_factory("inverter"),
    "SSVS": _shifter_factory("ssvs"),
    "CVS": _shifter_factory("cvs"),
}


def to_logic_simulator(module: VerilogModule,
                       supplies: SupplyState) -> LogicSimulator:
    """Structural module -> event-driven simulator.

    Cell names are matched by prefix against LOGIC_CELL_REGISTRY
    (``INVX1`` matches ``INV``); shifter instances encode their domains
    in the instance name (``u1$cpu$dsp``).
    """
    sim = LogicSimulator(supplies)
    for inst in module.instances:
        factory = None
        for prefix in sorted(LOGIC_CELL_REGISTRY, key=len,
                             reverse=True):
            if inst.cell.upper().startswith(prefix):
                factory = LOGIC_CELL_REGISTRY[prefix]
                break
        if factory is None:
            raise NetlistError(
                f"{inst.name}: no behavioral model for cell "
                f"{inst.cell!r}")
        sim.add(factory(inst.name, _pin(inst, INPUT_PIN),
                        _pin(inst, OUTPUT_PIN), supplies))
    return sim
