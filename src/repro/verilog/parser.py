"""Structural Verilog subset: parse gate-level netlists.

Supports the subset produced by synthesis for this study's flows:

* one or more ``module ... endmodule`` blocks;
* ``input``, ``output``, ``wire`` declarations (scalar nets only);
* instantiations with named port connections::

      INVX1 u1 (.A(n1), .Y(n2));

* ``//`` line comments and ``/* */`` block comments.

Instances map onto :class:`repro.sta.GateNetlist` (for timing) or the
event-driven simulator (for logic), via the bridge helpers in
:mod:`repro.verilog.bridge`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import NetlistError

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_MODULE_RE = re.compile(
    rf"module\s+({_IDENT})\s*\((.*?)\)\s*;(.*?)endmodule", re.DOTALL)
_DECL_RE = re.compile(
    rf"(input|output|wire)\s+(.*?);", re.DOTALL)
_INSTANCE_RE = re.compile(
    rf"({_IDENT})\s+({_IDENT})\s*\((.*?)\)\s*;", re.DOTALL)
_PORT_RE = re.compile(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)")


@dataclass
class VerilogInstance:
    cell: str
    name: str
    connections: dict   #: port -> net


@dataclass
class VerilogModule:
    name: str
    ports: list
    inputs: list = field(default_factory=list)
    outputs: list = field(default_factory=list)
    wires: list = field(default_factory=list)
    instances: list = field(default_factory=list)

    def nets(self) -> set:
        nets = set(self.inputs) | set(self.outputs) | set(self.wires)
        for inst in self.instances:
            nets.update(inst.connections.values())
        return nets

    def validate(self) -> None:
        declared = (set(self.inputs) | set(self.outputs)
                    | set(self.wires))
        for inst in self.instances:
            for port, net in inst.connections.items():
                if net not in declared:
                    raise NetlistError(
                        f"{self.name}.{inst.name}: net {net!r} "
                        f"(port .{port}) is not declared")
        names = [inst.name for inst in self.instances]
        if len(set(names)) != len(names):
            dupes = {n for n in names if names.count(n) > 1}
            raise NetlistError(f"duplicate instance names: {dupes}")


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def parse_verilog(text: str) -> dict[str, VerilogModule]:
    """Parse all modules in ``text``; returns name -> module."""
    clean = _strip_comments(text)
    modules: dict[str, VerilogModule] = {}
    matched_any = False
    for match in _MODULE_RE.finditer(clean):
        matched_any = True
        name = match.group(1)
        ports = [p.strip() for p in match.group(2).split(",")
                 if p.strip()]
        body = match.group(3)
        module = VerilogModule(name=name, ports=ports)

        consumed_spans = []
        for decl in _DECL_RE.finditer(body):
            decl_kind = decl.group(1)
            nets = [n.strip() for n in decl.group(2).split(",")
                    if n.strip()]
            for net in nets:
                if not re.fullmatch(_IDENT, net):
                    raise NetlistError(
                        f"{name}: bad net name {net!r} (vectors are "
                        "not supported)")
            getattr(module, decl_kind + "s" if decl_kind != "wire"
                    else "wires").extend(nets)
            consumed_spans.append(decl.span())

        remainder = list(body)
        for start, stop in consumed_spans:
            for i in range(start, stop):
                remainder[i] = " "
        remainder_text = "".join(remainder)

        for inst in _INSTANCE_RE.finditer(remainder_text):
            cell, inst_name, conn_text = inst.groups()
            connections = {}
            for port in _PORT_RE.finditer(conn_text):
                connections[port.group(1)] = port.group(2)
            if not connections:
                raise NetlistError(
                    f"{name}.{inst_name}: only named port connections "
                    "are supported")
            module.instances.append(
                VerilogInstance(cell=cell, name=inst_name,
                                connections=connections))
        module.validate()
        modules[name] = module
    if not matched_any:
        raise NetlistError("no module found in the Verilog source")
    return modules


def write_verilog(module: VerilogModule) -> str:
    """Render a module back to structural Verilog."""
    lines = [f"module {module.name} ({', '.join(module.ports)});"]
    for kind, nets in (("input", module.inputs),
                       ("output", module.outputs),
                       ("wire", module.wires)):
        if nets:
            lines.append(f"  {kind} {', '.join(nets)};")
    lines.append("")
    for inst in module.instances:
        conns = ", ".join(f".{port}({net})" for port, net
                          in inst.connections.items())
        lines.append(f"  {inst.cell} {inst.name} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
