"""Line-level lexing of SPICE decks.

SPICE decks are line-oriented: ``*`` starts a comment line, ``$`` or
``;`` starts a trailing comment, and a leading ``+`` continues the
previous logical line. The lexer resolves all of that and yields
:class:`Statement` objects carrying the original line number for error
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError


@dataclass(frozen=True)
class Statement:
    """One logical netlist statement."""

    line: int       #: 1-based line number of the first physical line
    tokens: tuple   #: whitespace-split tokens, original case preserved

    @property
    def keyword(self) -> str:
        return self.tokens[0].lower()


def _strip_trailing_comment(text: str) -> str:
    for marker in ("$", ";"):
        index = text.find(marker)
        if index >= 0:
            text = text[:index]
    return text


def lex(source: str) -> list[Statement]:
    """Split a deck into logical statements.

    The first line of a SPICE deck is a title (ignored here only if it
    does not look like a statement — callers pass decks with or without
    titles; :mod:`repro.netlist.parser` decides).
    """
    statements: list[Statement] = []
    pending_tokens: list[str] = []
    pending_line = 0

    def flush() -> None:
        nonlocal pending_tokens
        if pending_tokens:
            statements.append(Statement(pending_line, tuple(pending_tokens)))
            pending_tokens = []

    for number, raw in enumerate(source.splitlines(), start=1):
        text = _strip_trailing_comment(raw).strip()
        if not text or text.startswith("*"):
            continue
        if text.startswith("+"):
            if not pending_tokens:
                raise NetlistError("continuation line with nothing to "
                                   "continue", line=number)
            pending_tokens.extend(text[1:].split())
            continue
        flush()
        pending_line = number
        pending_tokens = text.split()
    flush()
    return statements


def split_parens_args(tokens: list[str]) -> list[str]:
    """Normalize tokens so parenthesized argument lists split cleanly.

    ``PULSE(0 1 1n ...)`` arrives from the whitespace split as
    ``["PULSE(0", "1", ..., "...)"]``; this helper re-splits on
    parentheses so callers see ``["PULSE", "0", "1", ...]``.
    """
    out: list[str] = []
    for token in tokens:
        piece = token.replace("(", " ").replace(")", " ").replace(",", " ")
        out.extend(p for p in piece.split() if p)
    return out
