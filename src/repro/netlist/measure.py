"""A SPICE ``.measure``-style mini-language over transient results.

Supports the measurement forms the reproduction's decks need:

* ``TRIG``/``TARG`` delay measurements::

      .measure tran tpd trig v(in) val=0.4 rise=1 targ v(out) val=0.6 fall=1

* windowed aggregates::

      .measure tran pavg avg v(out) from=1n to=2n
      .measure tran q integ i(vdd) from=0 to=5n
      .measure tran vmax max v(out) from=0 to=5n
      .measure tran vmin min v(out)

* point samples::

      .measure tran vfinal find v(out) at=4.5n

Expressions ``v(node)`` read node voltages; ``i(vsrc)`` reads a voltage
source's branch current. Statement parsing reuses the netlist lexer, so
continuation lines and comments behave as in decks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.lexer import lex
from repro.spice.waveform import FALL, RISE, Waveform
from repro.units import parse_value

_SIGNAL_RE = re.compile(r"^(v|i)\((.+)\)$", re.IGNORECASE)


def _signal(result, expr: str) -> Waveform:
    match = _SIGNAL_RE.match(expr.strip())
    if match is None:
        raise NetlistError(f"cannot parse signal expression {expr!r}")
    sig_kind, name = match.group(1).lower(), match.group(2)
    if sig_kind == "v":
        return result.wave(name)
    return result.branch_current(name)


@dataclass(frozen=True)
class Measurement:
    """A parsed .measure statement, evaluatable against a result."""

    name: str
    kind: str            #: 'delay', 'avg', 'integ', 'max', 'min', 'find'
    tokens: tuple

    def evaluate(self, result) -> float:
        if self.kind == "delay":
            return self._delay(result)
        if self.kind in ("avg", "integ", "max", "min"):
            return self._aggregate(result)
        if self.kind == "find":
            return self._find(result)
        raise NetlistError(f"unknown measurement kind {self.kind!r}")

    # -- evaluators -------------------------------------------------------

    def _kv(self) -> dict[str, str]:
        pairs = {}
        for token in self.tokens:
            if "=" in token:
                key, value = token.split("=", 1)
                pairs[key.lower()] = value
        return pairs

    def _delay(self, result) -> float:
        # tokens: trig <sig> val=x rise|fall=n targ <sig> val=y rise|fall=m
        tokens = [t.lower() for t in self.tokens]
        try:
            trig_at = tokens.index("trig")
            targ_at = tokens.index("targ")
        except ValueError:
            raise NetlistError(f"{self.name}: delay needs TRIG and TARG"
                               ) from None
        trig_part = self.tokens[trig_at + 1:targ_at]
        targ_part = self.tokens[targ_at + 1:]

        def edge_spec(part):
            signal = _signal(result, part[0])
            value = None
            edge, occurrence = RISE, 1
            for token in part[1:]:
                key, _, raw = token.partition("=")
                key = key.lower()
                if key == "val":
                    value = parse_value(raw)
                elif key in (RISE, FALL):
                    edge = key
                    occurrence = int(parse_value(raw)) if raw else 1
                elif key == "cross":
                    edge = "both"
                    occurrence = int(parse_value(raw)) if raw else 1
                else:
                    raise NetlistError(
                        f"{self.name}: unknown delay key {key!r}")
            if value is None:
                raise NetlistError(f"{self.name}: missing val=")
            return signal, value, edge, occurrence

        trig_sig, trig_val, trig_edge, trig_n = edge_spec(trig_part)
        targ_sig, targ_val, targ_edge, targ_n = edge_spec(targ_part)
        t_trig = trig_sig.cross(trig_val, trig_edge, occurrence=trig_n)
        t_targ = targ_sig.cross(targ_val, targ_edge, occurrence=targ_n,
                                after=t_trig)
        return t_targ - t_trig

    def _window(self, signal: Waveform) -> tuple[float, float]:
        kv = self._kv()
        t0 = parse_value(kv["from"]) if "from" in kv else signal.t_start
        t1 = parse_value(kv["to"]) if "to" in kv else signal.t_stop
        return t0, t1

    def _aggregate(self, result) -> float:
        signal = _signal(result, self.tokens[0])
        t0, t1 = self._window(signal)
        clipped = signal.clip(t0, t1)
        if self.kind == "avg":
            return clipped.average()
        if self.kind == "integ":
            return clipped.integral()
        if self.kind == "max":
            return clipped.maximum()
        return clipped.minimum()

    def _find(self, result) -> float:
        signal = _signal(result, self.tokens[0])
        kv = self._kv()
        if "at" not in kv:
            raise NetlistError(f"{self.name}: FIND needs at=")
        return signal.value_at(parse_value(kv["at"]))


def parse_measures(text: str) -> list[Measurement]:
    """Parse every ``.measure`` statement in ``text``."""
    measures = []
    for stmt in lex(text):
        if stmt.keyword != ".measure":
            continue
        tokens = list(stmt.tokens[1:])
        if tokens and tokens[0].lower() in ("tran", "dc", "ac"):
            tokens = tokens[1:]
        if len(tokens) < 2:
            raise NetlistError(".measure needs a name and a spec",
                               line=stmt.line)
        name = tokens[0]
        rest = tokens[1:]
        head = rest[0].lower()
        if head == "trig":
            measures.append(Measurement(name, "delay", tuple(rest)))
        elif head in ("avg", "integ", "max", "min", "find"):
            measures.append(Measurement(name, head, tuple(rest[1:])))
        else:
            raise NetlistError(f"unsupported measurement {head!r}",
                               line=stmt.line)
    return measures


def run_measures(text: str, result) -> dict[str, float]:
    """Parse and evaluate all measures against a transient result."""
    return {m.name: m.evaluate(result) for m in parse_measures(text)}
