"""SPICE netlist I/O: deck parsing and writing."""

from repro.netlist.lexer import Statement, lex
from repro.netlist.parser import DeckParser, parse_deck
from repro.netlist.writer import write_deck

__all__ = ["Statement", "lex", "DeckParser", "parse_deck", "write_deck"]
