"""SPICE-deck parser producing :class:`repro.spice.Circuit` objects.

Supported subset (sufficient for the reproduction's cells and tests):

* elements: ``R`` resistor, ``C`` capacitor, ``L`` inductor, ``V``/``I``
  sources with ``DC``, ``PULSE``, ``PWL`` and ``SIN`` shapes, ``E`` VCVS,
  ``G`` VCCS, ``D`` diode, ``M`` four-terminal MOSFET, ``X`` subcircuit
  instance;
* ``.model <name> nmos|pmos (key=value ...)`` cards mapped onto
  :class:`~repro.spice.devices.mosfet.MosfetParams` (unspecified keys
  default to the PTM-90 nominal card of that polarity);
* ``.subckt <name> <ports...>`` / ``.ends`` definitions, flattened at
  instantiation with dotted name prefixes;
* ``.end`` and the conventional title line (ignored).

Numbers accept SPICE magnitude suffixes via :func:`repro.units.parse_value`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import NetlistError
from repro.netlist.lexer import Statement, lex, split_parens_args
from repro.pdk.ptm90 import make_card
from repro.spice import Circuit
from repro.spice.devices import (
    Capacitor, CurrentSource, Diode, Inductor, Mosfet, Pulse, Pwl,
    Resistor, Sin, Vccs, Vcvs, VoltageSource,
)
from repro.spice.devices.mosfet import MosfetParams
from repro.units import parse_value

#: MosfetParams fields settable from a .model card.
_MODEL_KEYS = {f.name for f in fields(MosfetParams)} - {"name", "polarity"}


@dataclass
class SubcktDef:
    name: str
    ports: list[str]
    body: list[Statement] = field(default_factory=list)


class DeckParser:
    """Single-use parser for one deck."""

    def __init__(self, source: str, title_line: bool = True):
        if title_line:
            # SPICE convention: the first physical line is a title.
            # Blank it (rather than dropping it) so line numbers in
            # error messages still match the original text.
            head, _, tail = source.partition("\n")
            source = "\n" + tail
        self.statements = lex(source)
        self.models: dict[str, MosfetParams] = {}
        self.subckts: dict[str, SubcktDef] = {}

    # -- top level --------------------------------------------------------

    def parse(self, title: str = "netlist") -> Circuit:
        circuit = Circuit(title)
        body = self._collect_definitions(self.statements)
        for stmt in body:
            self._element(circuit, stmt, prefix="", port_map={})
        return circuit

    def _collect_definitions(self, statements) -> list[Statement]:
        """Extract .model/.subckt definitions; return instance lines."""
        body: list[Statement] = []
        current: SubcktDef | None = None
        for stmt in statements:
            keyword = stmt.keyword
            if keyword == ".subckt":
                if current is not None:
                    raise NetlistError("nested .subckt is not supported",
                                       line=stmt.line)
                if len(stmt.tokens) < 2:
                    raise NetlistError(".subckt needs a name",
                                       line=stmt.line)
                current = SubcktDef(stmt.tokens[1].lower(),
                                    [t.lower() for t in stmt.tokens[2:]])
                continue
            if keyword == ".ends":
                if current is None:
                    raise NetlistError(".ends without .subckt",
                                       line=stmt.line)
                self.subckts[current.name] = current
                current = None
                continue
            if current is not None:
                current.body.append(stmt)
                continue
            if keyword == ".model":
                self._model(stmt)
                continue
            if keyword == ".end":
                break
            if keyword.startswith("."):
                raise NetlistError(f"unsupported directive {stmt.tokens[0]}",
                                   line=stmt.line)
            body.append(stmt)
        if current is not None:
            raise NetlistError(f".subckt {current.name} missing .ends",
                               line=current.body[0].line if current.body
                               else 0)
        return body

    # -- definitions ------------------------------------------------------

    def _model(self, stmt: Statement) -> None:
        tokens = split_parens_args(list(stmt.tokens))
        if len(tokens) < 3:
            raise NetlistError(".model needs a name and a type",
                               line=stmt.line)
        name = tokens[1].lower()
        mtype = tokens[2].lower()
        if mtype not in ("nmos", "pmos"):
            raise NetlistError(f"unsupported model type {mtype!r}",
                               line=stmt.line)
        polarity = mtype[0]
        base = make_card(polarity)
        overrides = {}
        for token in tokens[3:]:
            if "=" not in token:
                raise NetlistError(f"malformed model parameter {token!r}",
                                   line=stmt.line)
            key, value = token.split("=", 1)
            key = key.lower()
            if key not in _MODEL_KEYS:
                raise NetlistError(f"unknown model parameter {key!r}",
                                   line=stmt.line)
            overrides[key] = parse_value(value)
        self.models[name] = base.with_overrides(name=name, **overrides)

    # -- elements ---------------------------------------------------------

    def _element(self, circuit: Circuit, stmt: Statement, prefix: str,
                 port_map: dict[str, str]) -> None:
        head = stmt.tokens[0]
        letter = head[0].lower()
        name = prefix + head.lower()

        def node(token: str) -> str:
            low = token.lower()
            if low in port_map:
                return port_map[low]
            if low in ("0", "gnd"):
                return "0"
            return prefix + low if prefix else low

        tokens = list(stmt.tokens)
        if letter == "r":
            self._need(stmt, 4)
            circuit.add(Resistor(name, node(tokens[1]), node(tokens[2]),
                                 parse_value(tokens[3])))
        elif letter == "c":
            self._need(stmt, 4)
            circuit.add(Capacitor(name, node(tokens[1]), node(tokens[2]),
                                  parse_value(tokens[3])))
        elif letter in ("v", "i"):
            shape = self._source_shape(stmt, tokens[3:])
            cls = VoltageSource if letter == "v" else CurrentSource
            circuit.add(cls(name, node(tokens[1]), node(tokens[2]),
                            shape=shape))
        elif letter == "l":
            self._need(stmt, 4)
            circuit.add(Inductor(name, node(tokens[1]), node(tokens[2]),
                                 parse_value(tokens[3])))
        elif letter == "e":
            self._need(stmt, 6)
            circuit.add(Vcvs(name, node(tokens[1]), node(tokens[2]),
                             node(tokens[3]), node(tokens[4]),
                             parse_value(tokens[5])))
        elif letter == "g":
            self._need(stmt, 6)
            circuit.add(Vccs(name, node(tokens[1]), node(tokens[2]),
                             node(tokens[3]), node(tokens[4]),
                             parse_value(tokens[5])))
        elif letter == "d":
            self._need(stmt, 3)
            circuit.add(Diode(name, node(tokens[1]), node(tokens[2])))
        elif letter == "m":
            self._mosfet(circuit, stmt, name, node)
        elif letter == "x":
            self._instance(circuit, stmt, name, node)
        else:
            raise NetlistError(f"unsupported element {head!r}",
                               line=stmt.line)

    @staticmethod
    def _need(stmt: Statement, count: int) -> None:
        if len(stmt.tokens) < count:
            raise NetlistError(
                f"{stmt.tokens[0]}: expected at least {count - 1} fields",
                line=stmt.line)

    def _source_shape(self, stmt: Statement, tokens: list[str]):
        if not tokens:
            raise NetlistError("source needs a value or waveform",
                               line=stmt.line)
        parts = split_parens_args(tokens)
        keyword = parts[0].lower()
        if keyword == "dc":
            parts = parts[1:]
            keyword = parts[0].lower() if parts else ""
        if keyword == "pulse":
            args = [parse_value(p) for p in parts[1:]]
            if len(args) < 6:
                raise NetlistError("PULSE needs v1 v2 td tr tf pw [per]",
                                   line=stmt.line)
            period = args[6] if len(args) > 6 else None
            return Pulse(args[0], args[1], args[2], args[3], args[4],
                         args[5], period)
        if keyword == "pwl":
            args = [parse_value(p) for p in parts[1:]]
            if len(args) < 2 or len(args) % 2:
                raise NetlistError("PWL needs time/value pairs",
                                   line=stmt.line)
            pairs = list(zip(args[0::2], args[1::2]))
            return Pwl(pairs)
        if keyword == "sin":
            args = [parse_value(p) for p in parts[1:]]
            if len(args) < 3:
                raise NetlistError("SIN needs offset amplitude freq",
                                   line=stmt.line)
            return Sin(*args[:5])
        # Plain DC value.
        from repro.spice.devices.sources import Dc
        return Dc(parse_value(parts[0]))

    def _mosfet(self, circuit: Circuit, stmt: Statement, name: str,
                node) -> None:
        self._need(stmt, 6)
        tokens = list(stmt.tokens)
        model_name = tokens[5].lower()
        if model_name not in self.models:
            raise NetlistError(f"unknown MOSFET model {model_name!r}",
                               line=stmt.line)
        w = l = None
        m = 1
        for token in tokens[6:]:
            if "=" not in token:
                raise NetlistError(f"malformed parameter {token!r}",
                                   line=stmt.line)
            key, value = token.split("=", 1)
            key = key.lower()
            if key == "w":
                w = parse_value(value)
            elif key == "l":
                l = parse_value(value)
            elif key == "m":
                m = int(parse_value(value))
            else:
                raise NetlistError(f"unknown MOSFET parameter {key!r}",
                                   line=stmt.line)
        if w is None or l is None:
            raise NetlistError("MOSFET requires W= and L=", line=stmt.line)
        circuit.add(Mosfet(name, node(tokens[1]), node(tokens[2]),
                           node(tokens[3]), node(tokens[4]),
                           self.models[model_name], w, l, m=m))

    def _instance(self, circuit: Circuit, stmt: Statement, name: str,
                  node) -> None:
        tokens = list(stmt.tokens)
        if len(tokens) < 3:
            raise NetlistError("subcircuit instance needs ports and a name",
                               line=stmt.line)
        subckt_name = tokens[-1].lower()
        if subckt_name not in self.subckts:
            raise NetlistError(f"unknown subcircuit {subckt_name!r}",
                               line=stmt.line)
        definition = self.subckts[subckt_name]
        actuals = [node(t) for t in tokens[1:-1]]
        if len(actuals) != len(definition.ports):
            raise NetlistError(
                f"{subckt_name}: expected {len(definition.ports)} ports, "
                f"got {len(actuals)}", line=stmt.line)
        port_map = dict(zip(definition.ports, actuals))
        inner_prefix = name + "."
        for inner in definition.body:
            self._element(circuit, inner, inner_prefix, port_map)


def parse_deck(source: str, title: str = "netlist",
               title_line: bool = False) -> Circuit:
    """Parse deck text into a :class:`Circuit`.

    Args:
        title_line: set True when ``source`` begins with a SPICE title
            line that must be skipped.
    """
    return DeckParser(source, title_line=title_line).parse(title)
