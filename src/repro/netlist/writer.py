"""Export a :class:`repro.spice.Circuit` as a SPICE deck.

The writer emits a deck the bundled parser can read back (round-trip
tested), and that standard simulators accept for the supported element
subset. MOSFET model cards are deduplicated by parameter identity.
"""

from __future__ import annotations

from repro.spice import Circuit
from repro.spice.devices import (
    Capacitor, CurrentSource, Diode, Inductor, Mosfet, Resistor, Vccs,
    Vcvs, VoltageSource,
)
from repro.spice.devices.sources import Dc, Pulse, Pwl, Sin
from repro.units import format_eng


def _fmt(value: float) -> str:
    return format_eng(value, digits=6)


def _shape_text(shape) -> str:
    if isinstance(shape, Dc):
        return f"DC {_fmt(shape.dc)}"
    if isinstance(shape, Pulse):
        return ("PULSE(" + " ".join(_fmt(v) for v in (
            shape.v1, shape.v2, shape.delay, shape.rise, shape.fall,
            shape.width, shape.period)) + ")")
    if isinstance(shape, Pwl):
        pairs = " ".join(f"{_fmt(t)} {_fmt(v)}"
                         for t, v in zip(shape.times, shape.values))
        return f"PWL({pairs})"
    if isinstance(shape, Sin):
        return ("SIN(" + " ".join(_fmt(v) for v in (
            shape.offset, shape.amplitude, shape.frequency, shape.delay,
            shape.damping)) + ")")
    raise TypeError(f"unsupported source shape {type(shape).__name__}")


def _sanitize(name: str) -> str:
    """SPICE node/instance names: replace separators with underscores."""
    return name.replace("#", "_").replace(".", "_")


def _element(letter: str, name: str) -> str:
    """Instance name with the SPICE type letter, not doubling it."""
    if name and name[0].lower() == letter:
        return name
    return letter + name


def write_deck(circuit: Circuit, include_title: bool = True) -> str:
    """Serialize ``circuit`` to deck text.

    MOSFET auxiliary parasitics (names containing ``#``) are skipped —
    they are re-derived from the model card on re-parse, so emitting
    them would double-count capacitance.
    """
    lines: list[str] = []
    if include_title:
        lines.append(f"* {circuit.title}")
    model_cards: dict[int, str] = {}
    model_lines: list[str] = []
    body: list[str] = []

    for device in circuit:
        if "#" in device.name:
            continue  # auto-generated parasitic of a MOSFET
        name = _sanitize(device.name)
        nodes = [_sanitize(n) if n != "0" else "0" for n in device.nodes]
        if isinstance(device, Resistor):
            body.append(f"{_element('r', name)} {nodes[0]} {nodes[1]} "
                        f"{_fmt(device.resistance)}")
        elif isinstance(device, Capacitor):
            body.append(f"{_element('c', name)} {nodes[0]} {nodes[1]} "
                        f"{_fmt(device.capacitance)}")
        elif isinstance(device, VoltageSource):
            body.append(f"{_element('v', name)} {nodes[0]} {nodes[1]} "
                        f"{_shape_text(device.shape)}")
        elif isinstance(device, CurrentSource):
            body.append(f"{_element('i', name)} {nodes[0]} {nodes[1]} "
                        f"{_shape_text(device.shape)}")
        elif isinstance(device, Inductor):
            body.append(f"{_element('l', name)} {nodes[0]} {nodes[1]} "
                        f"{_fmt(device.inductance)}")
        elif isinstance(device, Vcvs):
            body.append(f"{_element('e', name)} " + " ".join(nodes)
                        + f" {_fmt(device.gain)}")
        elif isinstance(device, Vccs):
            body.append(f"{_element('g', name)} " + " ".join(nodes)
                        + f" {_fmt(device.gm)}")
        elif isinstance(device, Diode):
            body.append(f"{_element('d', name)} {nodes[0]} {nodes[1]}")
        elif isinstance(device, Mosfet):
            card = device.params
            key = id(card)
            if key not in model_cards:
                model_name = f"mod{len(model_cards)}_{card.name}"
                model_cards[key] = _sanitize(model_name)
                mtype = "nmos" if card.polarity == "n" else "pmos"
                params = " ".join(
                    f"{field}={_fmt(getattr(card, field))}"
                    for field in ("vto", "n_slope", "u0", "tox",
                                  "lambda_clm", "gamma", "phi",
                                  "eta_dibl", "cgdo", "cgso", "cj",
                                  "ldiff", "gate_leak", "temperature"))
                model_lines.append(
                    f".model {model_cards[key]} {mtype} ({params})")
            body.append(f"{_element('m', name)} {nodes[0]} {nodes[1]} {nodes[2]} "
                        f"{nodes[3]} {model_cards[key]} "
                        f"W={_fmt(device.w)} L={_fmt(device.l)} "
                        f"M={device.m}")
        else:
            raise TypeError(
                f"cannot serialize device type {type(device).__name__}")

    lines.extend(model_lines)
    lines.extend(body)
    lines.append(".end")
    return "\n".join(lines) + "\n"
