"""Arrival-time propagation over NLDM tables.

Classic single-corner static timing: each net carries, per phase
(rising or falling signal on that net), an arrival time and a slew.
Each instance looks up its delay and output transition from the
characterized tables at (input slew, output load), where the load is
the sum of fanin pin capacitances plus wire capacitance. Inverting
cells swap the phase. Critical paths are recovered by backtracing the
max-arrival contributors.

This is the timing half of the SoC story: the level shifter at a
domain boundary is just another library cell with an arc, so crossing
paths can be timed end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.libchar import CellCharacterization
from repro.errors import AnalysisError
from repro.sta.netlist import GateNetlist
from repro.units import format_eng

RISE = "rise"
FALL = "fall"


@dataclass(frozen=True)
class TimingPoint:
    """Arrival and slew of one phase on one net."""

    net: str
    phase: str
    arrival: float
    slew: float
    #: (instance name, input phase) that set this arrival, for traces.
    cause: Optional[tuple] = None


@dataclass
class PathStep:
    instance: str
    cell: str
    input_net: str
    output_net: str
    input_phase: str
    output_phase: str
    delay: float
    arrival: float

    def pretty(self) -> str:
        return (f"{self.instance:>12s} ({self.cell:>16s}) "
                f"{self.input_net}/{self.input_phase[0].upper()} -> "
                f"{self.output_net}/{self.output_phase[0].upper()}  "
                f"+{format_eng(self.delay, 's', 3):>8s}  "
                f"@{format_eng(self.arrival, 's', 3):>8s}")


@dataclass
class TimingReport:
    """Worst arrival per primary output plus the critical path."""

    arrivals: dict            #: (net, phase) -> TimingPoint
    critical_path: list       #: list[PathStep]
    worst_output: str
    worst_phase: str
    worst_arrival: float

    def slack(self, required: float) -> float:
        """Setup slack against a required arrival time."""
        return required - self.worst_arrival

    def meets(self, required: float) -> bool:
        return self.slack(required) >= 0.0

    def output_arrival(self, net: str) -> float:
        """Worst arrival (either phase) at one net."""
        candidates = [p.arrival for (n, phase), p in
                      self.arrivals.items() if n == net]
        if not candidates:
            raise AnalysisError(f"no arrival recorded at {net!r}")
        return max(candidates)

    def pretty(self, required: float | None = None) -> str:
        lines = [f"Critical path to {self.worst_output} "
                 f"({self.worst_phase}), arrival "
                 f"{format_eng(self.worst_arrival, 's', 4)}:"]
        lines += ["  " + step.pretty() for step in self.critical_path]
        if required is not None:
            slack = self.slack(required)
            verdict = "MET" if slack >= 0 else "VIOLATED"
            lines.append(f"  required {format_eng(required, 's', 4)}: "
                         f"slack {format_eng(slack, 's', 4)} "
                         f"[{verdict}]")
        return "\n".join(lines)


class TimingLibrary:
    """Named collection of characterized cells."""

    def __init__(self):
        self.cells: dict[str, CellCharacterization] = {}

    def add(self, name: str, cell: CellCharacterization) -> None:
        self.cells[name] = cell

    def cell(self, name: str) -> CellCharacterization:
        try:
            return self.cells[name]
        except KeyError:
            raise AnalysisError(f"cell {name!r} not in library "
                                f"(have {sorted(self.cells)})") from None

    def input_capacitance(self, name: str) -> float:
        return self.cell(name).input_capacitance


class StaEngine:
    """Propagate arrivals through a :class:`GateNetlist`.

    Example::

        engine = StaEngine(netlist, library)
        report = engine.run(input_slew=50e-12)
        print(report.pretty())
    """

    def __init__(self, netlist: GateNetlist, library: TimingLibrary,
                 output_load: float = 1e-15):
        self.netlist = netlist
        self.library = library
        #: Capacitance on primary outputs [F].
        self.output_load = output_load

    # -- loading -----------------------------------------------------------

    def net_load(self, net: str) -> float:
        load = self.netlist.net_wire_cap.get(net, 0.0)
        for sink in self.netlist.loads_of(net):
            load += self.library.input_capacitance(sink.cell)
        if net in self.netlist.primary_outputs:
            load += self.output_load
        return load

    # -- propagation ------------------------------------------------------

    def run(self, input_slew: float = 50e-12,
            input_arrival: float = 0.0) -> TimingReport:
        netlist = self.netlist
        arrivals: dict = {}
        for net in netlist.primary_inputs:
            for phase in (RISE, FALL):
                arrivals[(net, phase)] = TimingPoint(
                    net, phase, input_arrival, input_slew)

        for inst in netlist.topological_instances():
            cell = self.library.cell(inst.cell)
            load = self.net_load(inst.output_net)
            for in_phase in (RISE, FALL):
                point = arrivals.get((inst.input_net, in_phase))
                if point is None:
                    continue
                out_phase, delay, out_slew = self._arc(
                    cell, in_phase, point.slew, load)
                arrival = point.arrival + delay
                key = (inst.output_net, out_phase)
                existing = arrivals.get(key)
                if existing is None or arrival > existing.arrival:
                    arrivals[key] = TimingPoint(
                        inst.output_net, out_phase, arrival, out_slew,
                        cause=(inst.name, in_phase))

        return self._report(arrivals)

    @staticmethod
    def _arc(cell: CellCharacterization, in_phase: str, slew: float,
             load: float):
        arc = cell.arc
        out_phase = ({RISE: FALL, FALL: RISE}[in_phase]
                     if arc.inverting else in_phase)
        if out_phase == RISE:
            delay = arc.cell_rise.lookup(slew, load)
            out_slew = arc.rise_transition.lookup(slew, load)
        else:
            delay = arc.cell_fall.lookup(slew, load)
            out_slew = arc.fall_transition.lookup(slew, load)
        return out_phase, delay, out_slew

    # -- reporting --------------------------------------------------------

    def _report(self, arrivals: dict) -> TimingReport:
        netlist = self.netlist
        outputs = netlist.primary_outputs or [
            inst.output_net for inst in netlist.instances.values()
            if not netlist.loads_of(inst.output_net)]
        if not outputs:
            raise AnalysisError("netlist has no outputs to report")
        worst = None
        for net in outputs:
            for phase in (RISE, FALL):
                point = arrivals.get((net, phase))
                if point is not None and (worst is None
                                          or point.arrival > worst.arrival):
                    worst = point
        if worst is None:
            raise AnalysisError("no arrival reached any output — check "
                                "connectivity")

        # Backtrace the critical path.
        path: list[PathStep] = []
        point = worst
        while point.cause is not None:
            inst_name, in_phase = point.cause
            inst = self.netlist.instances[inst_name]
            upstream = arrivals[(inst.input_net, in_phase)]
            path.append(PathStep(
                instance=inst.name, cell=inst.cell,
                input_net=inst.input_net, output_net=inst.output_net,
                input_phase=in_phase, output_phase=point.phase,
                delay=point.arrival - upstream.arrival,
                arrival=point.arrival))
            point = upstream
        path.reverse()
        return TimingReport(arrivals=arrivals, critical_path=path,
                            worst_output=worst.net,
                            worst_phase=worst.phase,
                            worst_arrival=worst.arrival)
