"""A small NLDM-based static-timing engine for crossing paths."""

from repro.sta.engine import (
    FALL, RISE, PathStep, StaEngine, TimingLibrary, TimingPoint,
    TimingReport,
)
from repro.sta.netlist import GateInstance, GateNetlist

__all__ = [
    "GateInstance",
    "GateNetlist",
    "StaEngine",
    "TimingLibrary",
    "TimingReport",
    "TimingPoint",
    "PathStep",
    "RISE",
    "FALL",
]
