"""Gate-level netlist model for the static-timing engine.

Instances are single-input, single-output cells (inverter-class gates
and the level shifters of this study); nets connect one driver to any
number of loads. This is deliberately the minimal structure needed to
time multi-voltage crossing paths — a driver chain, a level shifter at
the domain boundary, a receiver chain — with realistic fanout loading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import AnalysisError


@dataclass(frozen=True)
class GateInstance:
    """One placed cell: ``output = cell(input)``."""

    name: str
    cell: str        #: cell name in the timing library
    input_net: str
    output_net: str

    def __post_init__(self):
        if self.input_net == self.output_net:
            raise AnalysisError(f"{self.name}: input and output nets "
                                "must differ (no self-loop cells)")


class GateNetlist:
    """A DAG of single-input cells with named nets."""

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.instances: dict[str, GateInstance] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        #: Extra wire capacitance per net [F].
        self.net_wire_cap: dict[str, float] = {}
        # Net indexes kept in lockstep with ``instances`` so fanout
        # and driver lookups stay O(1); SoC-scale crossing netlists
        # (thousands of instances) would otherwise make validation
        # and load computation quadratic.
        self._net_loads: dict[str, list] = {}
        self._net_driver: dict[str, GateInstance] = {}

    # -- construction -----------------------------------------------------

    def add_instance(self, name: str, cell: str, input_net: str,
                     output_net: str) -> GateInstance:
        if name in self.instances:
            raise AnalysisError(f"duplicate instance {name!r}")
        driver = self._net_driver.get(output_net)
        if driver is not None:
            raise AnalysisError(
                f"net {output_net!r} already driven by "
                f"{driver.name!r}")
        instance = GateInstance(name, cell, input_net, output_net)
        self.instances[name] = instance
        self._net_loads.setdefault(input_net, []).append(instance)
        self._net_driver[output_net] = instance
        return instance

    def add_primary_input(self, net: str) -> None:
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)

    def add_primary_output(self, net: str) -> None:
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    def set_wire_cap(self, net: str, capacitance: float) -> None:
        if capacitance < 0:
            raise AnalysisError("wire capacitance must be >= 0")
        self.net_wire_cap[net] = capacitance

    # -- structure ----------------------------------------------------------

    def loads_of(self, net: str) -> list[GateInstance]:
        return list(self._net_loads.get(net, ()))

    def driver_of(self, net: str) -> GateInstance | None:
        return self._net_driver.get(net)

    def graph(self) -> "nx.DiGraph":
        """Instance-level DAG (edges follow nets)."""
        g = nx.DiGraph()
        for inst in self.instances.values():
            g.add_node(inst.name)
        for inst in self.instances.values():
            for load in self.loads_of(inst.output_net):
                g.add_edge(inst.name, load.name, net=inst.output_net)
        return g

    def validate(self) -> None:
        """Check the netlist is a drivable DAG."""
        if not self.primary_inputs:
            raise AnalysisError("netlist has no primary inputs")
        graph = self.graph()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise AnalysisError(f"combinational loop: {cycle}")
        for inst in self.instances.values():
            if (inst.input_net not in self.primary_inputs
                    and self.driver_of(inst.input_net) is None):
                raise AnalysisError(
                    f"{inst.name}: input net {inst.input_net!r} has no "
                    "driver and is not a primary input")

    def topological_instances(self) -> list[GateInstance]:
        self.validate()
        order = nx.topological_sort(self.graph())
        return [self.instances[name] for name in order]
