"""lv22: a scaled ultra-low-voltage model-card set (22 nm class).

Second calibrated node beside :mod:`repro.pdk.ptm90`, motivated by the
22 nm ultra-low-power level shifter of arXiv 2302.08553, which detects
input swings down to tens of millivolts — an operating regime that
lives *entirely* in the MOSFET subthreshold law. The node is therefore
calibrated to stress exactly the EKV behaviors that regime depends on:

* low thresholds (0.24 V / -0.22 V nominal) so a 0.5 V supply leaves
  usable overdrive, with a near-intrinsic subthreshold slope
  (n = 1.08/1.12, ~64-66 mV/dec at 300 K) — the steep slope is what
  makes millivolt-scale inputs produce decades of current change;
* strong DIBL (eta = 0.12): at 22 nm the drain couples visibly into
  the barrier, so off-state leakage is bias-dependent, which the
  leaderboard's leakage columns must resolve;
* thinner oxide (1.05 nm) and shorter extensions: per-um capacitances
  drop roughly with the pitch, keeping the fF-class loads of the
  benches meaningful at the smaller drive currents.

The numbers are calibrated against public 22 nm planar/early-FinFET
operating targets the same way ptm90 was calibrated against PTM-90
(drive strength, slope, Ioff class — not any specific foundry deck).
Cells built on this node keep their drawn geometries unless they size
explicitly; the drawn length default shrinks to 25 nm via the node's
:data:`LDRAWN`.

Temperature scaling reuses the first-order laws of the ptm90 module
with a smaller threshold tempco (thin-body channels are less doped).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.pdk.ptm90 import (
    FLAVORS, HIGH_VT, LOW_VT, NOMINAL, TNOM_K, _BaseCard,
    celsius_to_kelvin,
)

__all__ = ["LMIN", "LDRAWN", "VDD_NOMINAL", "THRESHOLDS", "make_card",
           "NOMINAL", "HIGH_VT", "LOW_VT", "FLAVORS"]
from repro.spice.devices.mosfet import MosfetParams

#: Process minimum channel length [m].
LMIN = 22e-9

#: Default drawn channel length used by the cell library on this node [m].
LDRAWN = 25e-9

#: Nominal supply of the node [V] (the ULPLS paper's output domain).
VDD_NOMINAL = 0.5

#: Threshold temperature coefficient [V/K] — lightly doped thin-body
#: channels drift less than the 90 nm bulk's 0.7 mV/K.
VT_TEMPCO = 0.45e-3

#: Mobility temperature exponent (phonon-limited, as at 90 nm).
MOBILITY_EXPONENT = -1.5

_NMOS_BASE = _BaseCard(
    polarity="n", n_slope=1.08, u0=0.0120, tox=1.05e-9, lambda_clm=0.22,
    gamma=0.0, phi=0.80, eta_dibl=0.12, cgdo=1.6e-10, cgso=1.6e-10,
    cj=0.8e-3, ldiff=4.0e-8, gate_leak=1.0e4,
)

_PMOS_BASE = _BaseCard(
    polarity="p", n_slope=1.12, u0=0.0060, tox=1.05e-9, lambda_clm=0.26,
    gamma=0.0, phi=0.80, eta_dibl=0.12, cgdo=1.6e-10, cgso=1.6e-10,
    cj=0.9e-3, ldiff=4.0e-8, gate_leak=1.0e4,
)

#: Zero-bias threshold magnitudes [V] per (polarity, flavor) at TNOM.
#: Nominal devices leave ~0.26 V of overdrive at the 0.5 V rail; the
#: low-Vt flavor (80 mV) is the near-native device the ULPLS input
#: stage needs to sense sub-100 mV swings.
THRESHOLDS = {
    ("n", NOMINAL): 0.24,
    ("n", HIGH_VT): 0.33,
    ("n", LOW_VT): 0.08,
    ("p", NOMINAL): 0.22,
    ("p", HIGH_VT): 0.30,
    ("p", LOW_VT): 0.10,
}


def make_card(polarity: str, flavor: str = NOMINAL,
              temperature_c: float = 27.0) -> MosfetParams:
    """Build a :class:`MosfetParams` card at the given temperature."""
    if polarity not in ("n", "p"):
        raise ModelError(f"polarity must be 'n' or 'p', got {polarity!r}")
    if flavor not in FLAVORS:
        raise ModelError(
            f"unknown flavor {flavor!r}; expected one of {FLAVORS}")
    base = _NMOS_BASE if polarity == "n" else _PMOS_BASE
    temp_k = celsius_to_kelvin(temperature_c)
    # The low-Vt flavor sits on a near-undoped channel: its slope is
    # essentially the 60 mV/dec ideal, which is what lets follower
    # stages pass levels with almost no slope-factor division.
    n_slope = 1.02 if flavor == LOW_VT else base.n_slope
    vto = THRESHOLDS[(polarity, flavor)] - VT_TEMPCO * (temp_k - TNOM_K)
    if vto <= 0.005:
        raise ModelError(
            f"threshold collapsed to {vto:.3f} V at {temperature_c} C")
    u0 = base.u0 * (temp_k / TNOM_K) ** MOBILITY_EXPONENT
    return MosfetParams(
        name=f"lv22_{polarity}mos_{flavor}",
        polarity=polarity,
        vto=vto,
        n_slope=n_slope,
        u0=u0,
        tox=base.tox,
        lambda_clm=base.lambda_clm,
        gamma=base.gamma,
        phi=base.phi,
        eta_dibl=base.eta_dibl,
        cgdo=base.cgdo,
        cgso=base.cgso,
        cj=base.cj,
        ldiff=base.ldiff,
        gate_leak=base.gate_leak,
        temperature=temp_k,
    )
