"""Named PDK-node registry: every layer resolves nodes through here.

A *node* is a complete model-card set plus the geometry and supply
conventions the cell library and benches need (minimum/drawn lengths,
nominal rail, the canonical up-shift operating pair). Registering a
:class:`PdkNode` makes it addressable everywhere at once:

* ``Pdk(node="lv22")`` — the device factory pulls its cards from the
  node's card builder (see :meth:`repro.pdk.ptm90.Pdk.card`);
* ``--pdk lv22`` on every campaign driver in the CLI;
* solve-cache keys and artifact manifests carry the node's
  :func:`node_fingerprint`, so two nodes can never alias into each
  other's cached or stored results;
* ``repro bench --leaderboard`` characterizes every registered cell on
  every registered node.

Built-in nodes (registered at import): ``ptm90`` (the paper's) and
``lv22`` (the ultra-low-voltage node of arXiv 2302.08553). Third-party
nodes register with :func:`register_node`; unknown names fail with the
live registry listing, not a hardcoded tuple.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Callable

from repro.errors import ModelError

#: Version tag mixed into nothing — fingerprints hash raw cards — but
#: recorded in manifests next to per-node fingerprints for readers.
REGISTRY_SCHEMA = "repro-pdk-registry-v1"

#: Default node: the paper's 90 nm PTM-like card set.
DEFAULT_NODE = "ptm90"


@dataclass(frozen=True)
class PdkNode:
    """Descriptor for one registered process node.

    Attributes:
        name: registry key (also ``Pdk.node`` and the ``--pdk`` value).
        description: one-line human summary for listings.
        make_card: ``(polarity, flavor, temperature_c) -> MosfetParams``
            card builder; its cards define the node's fingerprint.
        flavors: the threshold flavors the card builder accepts.
        lmin: process minimum channel length [m].
        ldrawn: default drawn channel length for cells on this node [m].
        vdd_nominal: nominal supply [V].
        vdd_min / vdd_max: working supply range for sweeps [V].
        default_pair: canonical (VDDI, VDDO) up-shift operating point —
            the leaderboard and ``repro check --cells`` characterize
            every cell here.
        provenance: where the calibration targets come from.
    """

    name: str
    description: str
    make_card: Callable
    flavors: tuple
    lmin: float
    ldrawn: float
    vdd_nominal: float
    vdd_min: float
    vdd_max: float
    default_pair: tuple
    provenance: str = ""


_NODES: dict[str, PdkNode] = {}


def register_node(node: PdkNode, replace: bool = False) -> PdkNode:
    """Register a node; re-registration requires ``replace=True``."""
    if not node.name:
        raise ModelError("PDK node name must be non-empty")
    if node.name in _NODES and not replace:
        raise ModelError(
            f"PDK node {node.name!r} is already registered; pass "
            f"replace=True to override it")
    _NODES[node.name] = node
    return node


def get_node(name: str) -> PdkNode:
    """Look a node up by name; unknown names list the live registry."""
    try:
        return _NODES[name]
    except KeyError:
        raise ModelError(
            f"unknown PDK node {name!r}; registered nodes: "
            f"{', '.join(node_names())}") from None


def node_names() -> tuple:
    """Registered node names, in registration order."""
    return tuple(_NODES)


def make_pdk(name: str = DEFAULT_NODE, temperature_c: float = 27.0):
    """Construct a device factory bound to a registered node."""
    from repro.pdk.ptm90 import Pdk
    get_node(name)  # fail early, with the registry listing
    return Pdk(temperature_c, node=name)


def node_fingerprint(name: str = DEFAULT_NODE) -> str:
    """Stable hash over every (polarity, flavor) card of one node.

    Byte-compatible with the historical single-node fingerprint for
    ``ptm90`` (same card iteration, same formatting), so pre-registry
    manifests and cache entries keep their identity.
    """
    node = get_node(name)
    parts = []
    for polarity in ("n", "p"):
        for flavor in node.flavors:
            card = node.make_card(polarity, flavor)
            values = ",".join(f"{f.name}={getattr(card, f.name)!r}"
                              for f in fields(card))
            parts.append(f"{polarity}/{flavor}:{values}")
    digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
    return digest[:16]


def resolve_node(pdk_or_name) -> str:
    """Node name for a Pdk instance, a name string, or None (default)."""
    if pdk_or_name is None:
        return DEFAULT_NODE
    if isinstance(pdk_or_name, str):
        return get_node(pdk_or_name).name
    node = getattr(pdk_or_name, "node", None)
    return str(node) if node else DEFAULT_NODE


def _register_builtin_nodes() -> None:
    from repro.pdk import lv22, ptm90

    register_node(PdkNode(
        name="ptm90",
        description="90 nm PTM-like cards calibrated to the paper's "
                    "Section 3 targets",
        make_card=ptm90.make_card,
        flavors=ptm90.FLAVORS,
        lmin=ptm90.LMIN,
        ldrawn=ptm90.LDRAWN,
        vdd_nominal=1.2,
        vdd_min=0.8,
        vdd_max=1.4,
        default_pair=(0.8, 1.2),
        provenance="A Single-supply True Voltage Level Shifter "
                   "(DATE 2008), Section 3/4 operating targets",
    ))
    register_node(PdkNode(
        name="lv22",
        description="22 nm-class ultra-low-voltage cards (near-ideal "
                    "subthreshold slope, strong DIBL)",
        make_card=lv22.make_card,
        flavors=lv22.FLAVORS,
        lmin=lv22.LMIN,
        ldrawn=lv22.LDRAWN,
        vdd_nominal=lv22.VDD_NOMINAL,
        vdd_min=0.30,
        vdd_max=0.80,
        default_pair=(0.35, 0.5),
        provenance="arXiv 2302.08553 (22 nm ULPLS) operating regime",
    ))


_register_builtin_nodes()
