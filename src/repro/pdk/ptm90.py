"""PTM-90nm-like model cards and the :class:`Pdk` device factory.

The paper simulates with 90 nm PTM (Predictive Technology Model) BSIM4
cards. We calibrate our EKV model to the same public operating targets:

* nominal thresholds 0.39 V (NMOS) / -0.35 V (PMOS), as stated in the
  paper's Section 3;
* high-Vt flavors at 0.49 V / -0.44 V, low-Vt NMOS at 0.19 V (M8);
* tox = 2.05 nm, drive currents around 1 mA/um (N) and 0.5 mA/um (P)
  at 1.2 V, subthreshold slope ~72-75 mV/dec, Ioff in the nA/um range at
  full drain bias (DIBL included).

Temperature scaling uses the standard first-order laws:

* ``Vt(T) = Vt(Tnom) - kvt (T - Tnom)`` with ``kvt = 0.7 mV/K``;
* ``u0(T) = u0(Tnom) (T / Tnom)^-1.5``;
* the thermal voltage scales inside the device model via
  ``MosfetParams.temperature``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.spice.devices.mosfet import Mosfet, MosfetParams

#: Process minimum channel length [m]; Monte Carlo sigmas reference it.
LMIN = 90e-9

#: Default drawn channel length used by the cell library [m].
LDRAWN = 100e-9

#: Nominal model-card temperature [K] (27 C).
TNOM_K = 300.15

#: Threshold temperature coefficient [V/K].
VT_TEMPCO = 0.7e-3

#: Mobility temperature exponent.
MOBILITY_EXPONENT = -1.5

NOMINAL = "nominal"
HIGH_VT = "high_vt"
LOW_VT = "low_vt"
FLAVORS = (NOMINAL, HIGH_VT, LOW_VT)


@dataclass(frozen=True)
class _BaseCard:
    """Flavor-independent electrical backbone of one polarity."""

    polarity: str
    n_slope: float
    u0: float
    tox: float
    lambda_clm: float
    gamma: float
    phi: float
    eta_dibl: float
    cgdo: float
    cgso: float
    cj: float
    ldiff: float
    gate_leak: float


_NMOS_BASE = _BaseCard(
    polarity="n", n_slope=1.20, u0=0.018, tox=2.05e-9, lambda_clm=0.11,
    gamma=0.0, phi=0.85, eta_dibl=0.05, cgdo=3.0e-10, cgso=3.0e-10,
    cj=1.0e-3, ldiff=1.0e-7, gate_leak=1.0e4,
)

_PMOS_BASE = _BaseCard(
    polarity="p", n_slope=1.25, u0=0.0080, tox=2.05e-9, lambda_clm=0.14,
    gamma=0.0, phi=0.85, eta_dibl=0.05, cgdo=3.0e-10, cgso=3.0e-10,
    cj=1.1e-3, ldiff=1.0e-7, gate_leak=1.0e4,
)

#: Zero-bias threshold magnitudes [V] per (polarity, flavor) at TNOM.
#: The nominal and high-Vt values are quoted directly in the paper
#: (Section 3). The low-Vt NMOS (the paper's M8: 0.19 V in BSIM terms)
#: is calibrated to 0.13 V here so that the EKV source-follower level
#: (Vg - Vt)/n matches the BSIM follower level Vg - Vt - body the
#: paper's ctrl-node expressions assume; see DESIGN.md.
THRESHOLDS = {
    ("n", NOMINAL): 0.39,
    ("n", HIGH_VT): 0.49,
    ("n", LOW_VT): 0.13,
    ("p", NOMINAL): 0.35,
    ("p", HIGH_VT): 0.44,
    ("p", LOW_VT): 0.17,
}


def celsius_to_kelvin(temperature_c: float) -> float:
    return temperature_c + 273.15


def make_card(polarity: str, flavor: str = NOMINAL,
              temperature_c: float = 27.0) -> MosfetParams:
    """Build a :class:`MosfetParams` card at the given temperature."""
    if polarity not in ("n", "p"):
        raise ModelError(f"polarity must be 'n' or 'p', got {polarity!r}")
    if flavor not in FLAVORS:
        raise ModelError(f"unknown flavor {flavor!r}; expected one of {FLAVORS}")
    base = _NMOS_BASE if polarity == "n" else _PMOS_BASE
    temp_k = celsius_to_kelvin(temperature_c)
    # Low-Vt devices sit on lightly doped channels: besides the lower
    # threshold they have a near-intrinsic subthreshold slope, which is
    # what lets the paper's M8 follower charge the ctrl node to
    # "VDDO - Vt_M8" rather than a slope-factor-divided fraction of it.
    n_slope = 1.05 if flavor == LOW_VT else base.n_slope
    vto = THRESHOLDS[(polarity, flavor)] - VT_TEMPCO * (temp_k - TNOM_K)
    if vto <= 0.01:
        raise ModelError(
            f"threshold collapsed to {vto:.3f} V at {temperature_c} C")
    u0 = base.u0 * (temp_k / TNOM_K) ** MOBILITY_EXPONENT
    return MosfetParams(
        name=f"{polarity}mos_{flavor}",
        polarity=polarity,
        vto=vto,
        n_slope=n_slope,
        u0=u0,
        tox=base.tox,
        lambda_clm=base.lambda_clm,
        gamma=base.gamma,
        phi=base.phi,
        eta_dibl=base.eta_dibl,
        cgdo=base.cgdo,
        cgso=base.cgso,
        cj=base.cj,
        ldiff=base.ldiff,
        gate_leak=base.gate_leak,
        temperature=temp_k,
    )


class Pdk:
    """Device factory binding one registered node's cards to a temperature.

    Cell builders ask the PDK for transistors instead of constructing
    :class:`Mosfet` objects directly; this single indirection point is
    what lets Monte Carlo and corner subclasses perturb every device
    independently without touching cell code. Which *cards* back the
    factory is the ``node`` name, resolved through
    :mod:`repro.pdk.registry` — ``Pdk()`` is the paper's 90 nm node,
    ``Pdk(node="lv22")`` the ultra-low-voltage one, with identical cell
    code on top.

    The node name is part of the factory's identity: it appears in
    ``repr`` (which the solve cache's canonical encoding uses for
    opaque objects), so two nodes can never produce colliding cache
    keys even when every other parameter matches.

    Example::

        pdk = Pdk(temperature_c=27.0)
        m1 = pdk.mosfet("m1", "out", "in", "0", "0", "n", w=0.2e-6)
    """

    def __init__(self, temperature_c: float = 27.0,
                 node: str | None = None):
        self.temperature_c = float(temperature_c)
        self.node = str(node) if node else "ptm90"
        self._cards: dict[tuple[str, str], MosfetParams] = {}

    def _node_spec(self):
        from repro.pdk.registry import get_node
        return get_node(self.node)

    @property
    def lmin(self) -> float:
        """Process minimum channel length of the bound node [m]."""
        return self._node_spec().lmin

    @property
    def ldrawn(self) -> float:
        """Default drawn channel length of the bound node [m]."""
        return self._node_spec().ldrawn

    def card(self, polarity: str, flavor: str = NOMINAL) -> MosfetParams:
        key = (polarity, flavor)
        if key not in self._cards:
            self._cards[key] = self._node_spec().make_card(
                polarity, flavor, self.temperature_c)
        return self._cards[key]

    def mosfet(self, name: str, drain: str, gate: str, source: str,
               bulk: str, polarity: str, w: float,
               l: float | None = None, flavor: str = NOMINAL,
               m: int = 1) -> Mosfet:
        """Create a transistor with this PDK's card for the flavor."""
        length = self.ldrawn if l is None else l
        return Mosfet(name, drain, gate, source, bulk,
                      self.card(polarity, flavor), w, length, m=m)

    def at_temperature(self, temperature_c: float) -> "Pdk":
        """A sibling PDK at a different temperature (same node)."""
        return Pdk(temperature_c, node=self.node)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} node={self.node} "
                f"T={self.temperature_c} C>")
