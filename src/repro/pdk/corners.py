"""Deterministic process corners (TT/FF/SS/FS/SF).

Corners shift every device's threshold by a fixed multiple of the
Monte Carlo sigma: *fast* devices get lower |Vt| (more current, more
leakage), *slow* devices higher |Vt|. This is the conventional digital
corner abstraction and is used by the extension benches to bracket the
Monte Carlo spread.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.pdk.ptm90 import Pdk
from repro.pdk.variation import VariationSpec
from repro.spice.devices.mosfet import Mosfet

#: Corner name -> (nmos shift, pmos shift) in units of sigma_Vt.
CORNER_SHIFTS = {
    "tt": (0.0, 0.0),
    "ff": (-3.0, -3.0),
    "ss": (3.0, 3.0),
    "fs": (-3.0, 3.0),
    "sf": (3.0, -3.0),
}


class CornerPdk(Pdk):
    """PDK applying a named corner's systematic Vt shift.

    Example::

        pdk = CornerPdk("ss", temperature_c=90.0)   # slow-slow, hot
    """

    def __init__(self, corner: str, temperature_c: float = 27.0,
                 spec: VariationSpec | None = None,
                 node: str | None = None):
        super().__init__(temperature_c, node=node)
        corner = corner.lower()
        if corner not in CORNER_SHIFTS:
            raise ModelError(
                f"unknown corner {corner!r}; expected {sorted(CORNER_SHIFTS)}")
        self.corner = corner
        self.spec = spec or VariationSpec()

    def at_temperature(self, temperature_c: float) -> "CornerPdk":
        """Same corner and node at a different temperature."""
        return CornerPdk(self.corner, temperature_c, self.spec,
                         node=self.node)

    def __repr__(self) -> str:
        return (f"<CornerPdk node={self.node} corner={self.corner} "
                f"T={self.temperature_c} C>")

    def mosfet(self, name: str, drain: str, gate: str, source: str,
               bulk: str, polarity: str, w: float,
               l: float | None = None, flavor: str = "nominal",
               m: int = 1) -> Mosfet:
        length = self.ldrawn if l is None else l
        card = self.card(polarity, flavor)
        shift_n, shift_p = CORNER_SHIFTS[self.corner]
        shift = shift_n if polarity == "n" else shift_p
        vto = max(card.vto * (1.0 + shift * self.spec.sigma_vt_fraction),
                  0.01)
        return Mosfet(name, drain, gate, source, bulk,
                      card.with_overrides(vto=vto), w, length, m=m)
