"""90 nm PTM-like process design kit: cards, variation, corners."""

from repro.pdk.ptm90 import (
    FLAVORS, HIGH_VT, LDRAWN, LMIN, LOW_VT, NOMINAL, Pdk, make_card,
)
from repro.pdk.variation import VariationSpec, VariedPdk
from repro.pdk.corners import CornerPdk, CORNER_SHIFTS

__all__ = [
    "Pdk",
    "make_card",
    "VariationSpec",
    "VariedPdk",
    "CornerPdk",
    "CORNER_SHIFTS",
    "FLAVORS",
    "NOMINAL",
    "HIGH_VT",
    "LOW_VT",
    "LMIN",
    "LDRAWN",
]
