"""Process design kits: registered nodes, cards, variation, corners.

Two nodes ship built-in — ``ptm90`` (the paper's 90 nm PTM-like cards)
and ``lv22`` (a 22 nm-class ultra-low-voltage set) — and every layer
resolves them by name through :mod:`repro.pdk.registry`.
"""

from repro.pdk.ptm90 import (
    FLAVORS, HIGH_VT, LDRAWN, LMIN, LOW_VT, NOMINAL, Pdk, make_card,
)
from repro.pdk.variation import VariationSpec, VariedPdk
from repro.pdk.corners import CornerPdk, CORNER_SHIFTS
from repro.pdk.registry import (
    DEFAULT_NODE, PdkNode, get_node, make_pdk, node_fingerprint,
    node_names, register_node, resolve_node,
)

__all__ = [
    "Pdk",
    "make_card",
    "VariationSpec",
    "VariedPdk",
    "CornerPdk",
    "CORNER_SHIFTS",
    "FLAVORS",
    "NOMINAL",
    "HIGH_VT",
    "LOW_VT",
    "LMIN",
    "LDRAWN",
    "DEFAULT_NODE",
    "PdkNode",
    "register_node",
    "get_node",
    "node_names",
    "make_pdk",
    "node_fingerprint",
    "resolve_node",
]
