"""Process variation: Monte Carlo sampling and a perturbing PDK.

The paper's methodology (Section 4): channel width, channel length and
threshold voltage of every device vary independently; W and L have
sigma = 3.34 % of Lmin (90 nm), Vt has sigma = 3.34 % of its nominal
value (so that 3 sigma = 10 %). Temperature is a separate, global knob.

:class:`VariedPdk` implements this by perturbing each transistor the
cell builders request. Because builders request one transistor per
physical device, per-device independence falls out naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.pdk.ptm90 import LMIN, Pdk
from repro.spice.devices.mosfet import Mosfet


@dataclass(frozen=True)
class VariationSpec:
    """Standard deviations for the Monte Carlo dimensions.

    Defaults follow the paper: sigma_WL = 3.34 % of Lmin (absolute
    meters), sigma_Vt = 3.34 % of the device's nominal Vt (relative).
    """

    sigma_wl_fraction_of_lmin: float = 0.0334
    sigma_vt_fraction: float = 0.0334

    @property
    def sigma_wl(self) -> float:
        """Absolute W/L standard deviation [m]."""
        return self.sigma_wl_fraction_of_lmin * LMIN

    def validate(self) -> None:
        if self.sigma_wl_fraction_of_lmin < 0 or self.sigma_vt_fraction < 0:
            raise ModelError("variation sigmas must be non-negative")


class VariedPdk(Pdk):
    """PDK that draws per-device W/L/Vt perturbations from a seeded RNG.

    Each call to :meth:`mosfet` consumes three normal draws, so two
    circuits built with the same seed and the same construction order
    get identical process instances — which makes Monte Carlo runs
    reproducible and lets paired comparisons share process samples.

    Example::

        rng = numpy.random.default_rng(1234)
        pdk = VariedPdk(rng, VariationSpec(), temperature_c=27.0)
        circuit = build_sstvs_testbench(pdk, ...)
    """

    def __init__(self, rng: np.random.Generator,
                 spec: VariationSpec | None = None,
                 temperature_c: float = 27.0,
                 node: str | None = None):
        super().__init__(temperature_c, node=node)
        self.rng = rng
        self.spec = spec or VariationSpec()
        self.spec.validate()
        #: Log of (device name -> (dW, dL, dVt)) for diagnostics.
        self.draw_log: dict[str, tuple[float, float, float]] = {}

    def mosfet(self, name: str, drain: str, gate: str, source: str,
               bulk: str, polarity: str, w: float,
               l: float | None = None, flavor: str = "nominal",
               m: int = 1) -> Mosfet:
        length = self.ldrawn if l is None else l
        card = self.card(polarity, flavor)
        d_w = float(self.rng.normal(0.0, self.spec.sigma_wl))
        d_l = float(self.rng.normal(0.0, self.spec.sigma_wl))
        d_vt = float(self.rng.normal(
            0.0, self.spec.sigma_vt_fraction * card.vto))
        self.draw_log[name] = (d_w, d_l, d_vt)
        w_eff = max(w + d_w, 0.2 * w)
        l_eff = max(length + d_l, 0.2 * length)
        vto_eff = max(card.vto + d_vt, 0.01)
        return Mosfet(name, drain, gate, source, bulk,
                      card.with_overrides(vto=vto_eff), w_eff, l_eff, m=m)
