"""Four-valued logic: 0, 1, X (unknown), Z (undriven).

The value algebra follows IEEE-1164-style pessimism: any gate seeing an
X or Z on a controlling input emits X unless another input forces the
output (e.g. a 0 on a NAND input forces 1 regardless of the rest).
"""

from __future__ import annotations

from repro.errors import AnalysisError

ZERO = "0"
ONE = "1"
UNKNOWN = "x"
HIGHZ = "z"

VALUES = (ZERO, ONE, UNKNOWN, HIGHZ)


def validate(value: str) -> str:
    value = str(value).lower()
    if value not in VALUES:
        raise AnalysisError(f"not a logic value: {value!r}")
    return value


def logic_not(value: str) -> str:
    value = validate(value)
    if value == ZERO:
        return ONE
    if value == ONE:
        return ZERO
    return UNKNOWN


def logic_and(*values: str) -> str:
    values = [validate(v) for v in values]
    if ZERO in values:
        return ZERO
    if all(v == ONE for v in values):
        return ONE
    return UNKNOWN


def logic_or(*values: str) -> str:
    values = [validate(v) for v in values]
    if ONE in values:
        return ONE
    if all(v == ZERO for v in values):
        return ZERO
    return UNKNOWN


def logic_nand(*values: str) -> str:
    return logic_not(logic_and(*values))


def logic_nor(*values: str) -> str:
    return logic_not(logic_or(*values))


def logic_xor(a: str, b: str) -> str:
    a, b = validate(a), validate(b)
    if a in (UNKNOWN, HIGHZ) or b in (UNKNOWN, HIGHZ):
        return UNKNOWN
    return ONE if a != b else ZERO


def resolve(a: str, b: str) -> str:
    """Wired resolution of two drivers (Z yields; conflicts are X)."""
    a, b = validate(a), validate(b)
    if a == HIGHZ:
        return b
    if b == HIGHZ:
        return a
    if a == b:
        return a
    return UNKNOWN
