"""Event-driven logic simulation with DVS events.

A classic discrete-event kernel: net changes schedule component
re-evaluation after the component's delay; a monotone event queue
(heapq with sequence-number tiebreak) drives time forward. Supply
changes (DVS events) re-evaluate every level shifter touching the
affected domain, which is how a flipped domain pair injects X into the
logic — the behavioral picture of the paper's motivation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.logicsim.components import Component, SupplyState
from repro.logicsim.values import HIGHZ, UNKNOWN, validate


@dataclass(frozen=True)
class NetChange:
    time: float
    net: str
    value: str


class LogicSimulator:
    """Discrete-event simulator over behavioral components.

    Example::

        sim = LogicSimulator()
        sim.add(inverter("u1", "a", "y"))
        sim.set_input("a", "0")
        sim.schedule_input(1e-9, "a", "1")
        sim.run(5e-9)
        assert sim.value("y") == "0"
    """

    def __init__(self, supplies: SupplyState | None = None):
        self.supplies = supplies or SupplyState()
        self.components: dict[str, Component] = {}
        self._fanout: dict[str, list[Component]] = {}
        self._values: dict[str, str] = {}
        self._queue: list = []
        self._sequence = itertools.count()
        self._now = 0.0
        #: Full change history per net, for assertions and traces.
        self.history: dict[str, list] = {}

    # -- construction -----------------------------------------------------

    def add(self, component: Component) -> Component:
        if component.name in self.components:
            raise AnalysisError(f"duplicate component {component.name!r}")
        drivers = [c for c in self.components.values()
                   if c.output == component.output]
        if drivers:
            raise AnalysisError(f"net {component.output!r} already "
                                f"driven by {drivers[0].name!r}")
        self.components[component.name] = component
        for net in component.inputs:
            self._fanout.setdefault(net, []).append(component)
        self._values.setdefault(component.output, UNKNOWN)
        for net in component.inputs:
            self._values.setdefault(net, UNKNOWN)
        return component

    # -- stimulus -----------------------------------------------------------

    def set_input(self, net: str, value: str) -> None:
        """Set a primary input immediately (at the current time)."""
        self._apply(net, validate(value))

    def schedule_input(self, time: float, net: str, value: str) -> None:
        if time < self._now:
            raise AnalysisError("cannot schedule in the past")
        heapq.heappush(self._queue, (time, next(self._sequence),
                                     "net", net, validate(value)))

    def schedule_supply(self, time: float, domain: str,
                        voltage: float) -> None:
        """A DVS event: the domain's supply changes at ``time``."""
        if time < self._now:
            raise AnalysisError("cannot schedule in the past")
        heapq.heappush(self._queue, (time, next(self._sequence),
                                     "supply", domain, voltage))

    # -- kernel --------------------------------------------------------------

    def _apply(self, net: str, value: str) -> None:
        if self._values.get(net) == value:
            return
        self._values[net] = value
        self.history.setdefault(net, []).append(
            NetChange(self._now, net, value))
        for component in self._fanout.get(net, ()):
            self._evaluate(component)

    def _evaluate(self, component: Component) -> None:
        inputs = [self._values.get(n, UNKNOWN) for n in component.inputs]
        new_value = validate(component.evaluate(inputs))
        heapq.heappush(self._queue,
                       (self._now + component.delay,
                        next(self._sequence), "net", component.output,
                        new_value))

    def run(self, t_stop: float) -> None:
        """Advance simulation time to ``t_stop``."""
        while self._queue and self._queue[0][0] <= t_stop:
            time, _, event_kind, target, payload = heapq.heappop(self._queue)
            self._now = time
            if event_kind == "net":
                self._apply(target, payload)
            else:
                self.supplies.set(target, payload)
                for component in self.components.values():
                    domains = getattr(component, "domains", None)
                    if domains and target in domains:
                        self._evaluate(component)
        self._now = t_stop

    # -- observation ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def value(self, net: str) -> str:
        return self._values.get(net, HIGHZ)

    def changes(self, net: str) -> list:
        return list(self.history.get(net, ()))

    def saw_unknown(self, net: str) -> bool:
        """Whether the net ever carried X after its first real value."""
        changes = self.history.get(net, ())
        seen_real = False
        for change in changes:
            if change.value in ("0", "1"):
                seen_real = True
            elif change.value == UNKNOWN and seen_real:
                return True
        return False
