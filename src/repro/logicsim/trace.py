"""Digital VCD export and activity statistics for logic simulations."""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.logicsim.simulator import LogicSimulator
from repro.spice.vcd import _identifier, _sanitize

#: VCD value codes per logic value.
_VCD_CODES = {"0": "0", "1": "1", "x": "x", "z": "z"}


def write_digital_vcd(sim: LogicSimulator, nets: list,
                      timescale: str = "1ps",
                      comment: str = "repro logicsim") -> str:
    """Serialize recorded net changes as a (digital) VCD dump."""
    if not nets:
        raise AnalysisError("need at least one net to dump")
    scale = {"1fs": 1e-15, "1ps": 1e-12, "1ns": 1e-9,
             "1us": 1e-6}.get(timescale)
    if scale is None:
        raise AnalysisError(f"unsupported timescale {timescale!r}")

    idents = {net: _identifier(i) for i, net in enumerate(nets)}
    lines = [f"$comment {comment} $end",
             f"$timescale {timescale} $end",
             "$scope module logicsim $end"]
    for net in nets:
        lines.append(f"$var wire 1 {idents[net]} {_sanitize(net)} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    events = []
    for net in nets:
        for change in sim.changes(net):
            events.append((change.time, net, change.value))
    events.sort(key=lambda e: e[0])

    last_tick = None
    for time, net, value in events:
        tick = int(round(time / scale))
        if tick != last_tick:
            lines.append(f"#{tick}")
            last_tick = tick
        lines.append(f"{_VCD_CODES[value]}{idents[net]}")
    return "\n".join(lines) + "\n"


def toggle_count(sim: LogicSimulator, net: str) -> int:
    """Number of clean 0<->1 transitions on a net."""
    count = 0
    previous = None
    for change in sim.changes(net):
        if change.value in ("0", "1"):
            if previous is not None and change.value != previous:
                count += 1
            previous = change.value
    return count


def unknown_time_fraction(sim: LogicSimulator, net: str,
                          t_stop: float) -> float:
    """Fraction of [0, t_stop] the net spent at X."""
    if t_stop <= 0:
        raise AnalysisError("t_stop must be positive")
    changes = sim.changes(net)
    if not changes:
        return 0.0
    total_x = 0.0
    for current, nxt in zip(changes, changes[1:]):
        if current.value == "x":
            total_x += nxt.time - current.time
    if changes[-1].value == "x":
        total_x += t_stop - changes[-1].time
    return min(total_x / t_stop, 1.0)
