"""Event-driven 4-value logic simulation with DVS-aware shifters."""

from repro.logicsim.components import (
    Component, SHIFTER_RULES, SupplyState, buffer, inverter,
    level_shifter, nand2, nor2,
)
from repro.logicsim.simulator import LogicSimulator, NetChange
from repro.logicsim.trace import (
    toggle_count, unknown_time_fraction, write_digital_vcd,
)
from repro.logicsim.values import (
    HIGHZ, ONE, UNKNOWN, VALUES, ZERO, logic_and, logic_nand, logic_nor,
    logic_not, logic_or, logic_xor, resolve,
)

__all__ = [
    "LogicSimulator",
    "NetChange",
    "write_digital_vcd",
    "toggle_count",
    "unknown_time_fraction",
    "Component",
    "SupplyState",
    "inverter",
    "buffer",
    "nand2",
    "nor2",
    "level_shifter",
    "SHIFTER_RULES",
    "ZERO",
    "ONE",
    "UNKNOWN",
    "HIGHZ",
    "VALUES",
    "logic_not",
    "logic_and",
    "logic_or",
    "logic_nand",
    "logic_nor",
    "logic_xor",
    "resolve",
]
