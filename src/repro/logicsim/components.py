"""Behavioral components for the event-driven simulator.

Besides ordinary gates, this includes **voltage-aware level-shifter
models**: each shifter kind declares under which supply relationship it
produces a valid output, so the SoC-level simulation shows *functional*
corruption (X propagation) when a DVS event flips a domain pair served
by a one-way shifter — the paper's motivation, demonstrated at the
logic level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import AnalysisError
from repro.logicsim.values import (
    UNKNOWN, logic_nand, logic_nor, logic_not, validate,
)


@dataclass
class Component:
    """A behavioral element: output = evaluate(inputs)."""

    name: str
    inputs: tuple
    output: str
    delay: float
    evaluate: Callable

    def __post_init__(self):
        if self.delay < 0:
            raise AnalysisError(f"{self.name}: delay must be >= 0")
        if self.output in self.inputs:
            raise AnalysisError(f"{self.name}: combinational self-loop")


def inverter(name: str, a: str, y: str, delay: float = 10e-12
             ) -> Component:
    return Component(name, (a,), y, delay,
                     lambda values: logic_not(values[0]))


def buffer(name: str, a: str, y: str, delay: float = 15e-12
           ) -> Component:
    return Component(name, (a,), y, delay,
                     lambda values: logic_not(logic_not(values[0])))


def nand2(name: str, a: str, b: str, y: str, delay: float = 15e-12
          ) -> Component:
    return Component(name, (a, b), y, delay,
                     lambda values: logic_nand(*values))


def nor2(name: str, a: str, b: str, y: str, delay: float = 15e-12
         ) -> Component:
    return Component(name, (a, b), y, delay,
                     lambda values: logic_nor(*values))


@dataclass
class SupplyState:
    """Mutable per-domain supply voltages, shared with shifter models."""

    voltages: dict = field(default_factory=dict)

    def set(self, domain: str, voltage: float) -> None:
        if voltage <= 0:
            raise AnalysisError("supply voltage must be positive")
        self.voltages[domain] = voltage

    def get(self, domain: str) -> float:
        try:
            return self.voltages[domain]
        except KeyError:
            raise AnalysisError(f"unknown domain {domain!r}") from None


#: Behavioral validity rules per shifter kind: given (vddi, vddo),
#: does the cell produce a clean output? The margins mirror the
#: circuit-level findings: an inverter corrupts once its input high
#: level sits a threshold below its supply; the one-way SS-VS family
#: breaks at low supply; the SS-TVS is valid everywhere in the range.
def _inverter_valid(vddi: float, vddo: float) -> bool:
    return vddi >= vddo - 0.35


def _ssvs_valid(vddi: float, vddo: float) -> bool:
    return vddo >= 0.95 or vddi <= vddo


def _true_valid(vddi: float, vddo: float) -> bool:
    return True


SHIFTER_RULES = {
    "inverter": _inverter_valid,
    "ssvs": _ssvs_valid,
    "cvs": _true_valid,       # dual supply: always valid, high cost
    "sstvs": _true_valid,
}


def level_shifter(name: str, kind: str, a: str, y: str,
                  supplies: SupplyState, in_domain: str,
                  out_domain: str, delay: float = 50e-12,
                  inverting: bool = True) -> Component:
    """Voltage-aware level-shifter model.

    Emits the (inverted) input when the current supply relationship is
    within the cell's validity rule, X otherwise.
    """
    if kind not in SHIFTER_RULES:
        raise AnalysisError(f"unknown shifter kind {kind!r}; expected "
                            f"one of {sorted(SHIFTER_RULES)}")
    rule = SHIFTER_RULES[kind]

    def evaluate(values: Sequence[str]) -> str:
        value = validate(values[0])
        if not rule(supplies.get(in_domain), supplies.get(out_domain)):
            return UNKNOWN
        return logic_not(value) if inverting else \
            logic_not(logic_not(value))

    component = Component(name, (a,), y, delay, evaluate)
    component.shifter_kind = kind
    component.domains = (in_domain, out_domain)
    return component
