"""Command-line interface: ``python -m repro <command> ...``.

Commands map one-to-one onto the library's experiment entry points:

* ``characterize`` — the six Table-1/2 metrics for one or more kinds;
* ``compare`` — SS-TVS vs combined VS side by side;
* ``sweep`` — Figures 8/9 delay surfaces as text;
* ``mc`` — Monte Carlo statistics (Tables 3/4);
* ``functional`` — the full-grid conversion check;
* ``temp`` — nominal characterization at the paper's temperatures;
* ``sens`` — finite-difference sizing sensitivities;
* ``area`` — Figure 7 cell-area estimates;
* ``liberty`` — NLDM characterization to a .lib-like file;
* ``vtc`` — DC transfer curve / noise margins;
* ``pvt`` — process-corner x temperature report;
* ``bench`` — timed benchmark workloads (appends to a trajectory file;
  ``--check`` is the regression guard; ``--leaderboard`` characterizes
  every registered cell x PDK node x corner into LEADERBOARD.json);
* ``floorplan`` — shifter-assignment floorplan campaign: synthesize or
  bridge a multi-voltage design, assign a registered shifter cell to
  every domain crossing per strategy, anneal a sequence-pair
  floorplan, and sign every incumbent off through the NLDM STA
  engine;
* ``check`` — fault-injected self-test of the resilient solver runtime
  (``--cells`` smokes the cell & PDK registries, ``--experiments``
  adds an engine/artifact-store smoke test, ``--golden`` runs the
  analytic golden test battery, ``--chaos`` the crash/corruption
  chaos battery, ``--floorplan`` the floorplanner battery);

Cell kinds and PDK nodes come from the live registries
(:mod:`repro.cells.registry`, :mod:`repro.pdk.registry`): a topology
or node registered at import time is immediately addressable from
every subcommand, and unknown names fail listing what *is* registered.
* ``serve`` — supervised campaign job service over a drop directory
  (durable journal, worker watchdog, crash requeue, SIGTERM-clean);
* ``cache`` — inspect/verify/clear a content-addressed solve cache;
* ``runs`` / ``show`` — list and inspect stored experiment runs;
* ``trace`` — convergence summary + outlier report of a traced run;
* ``vcd`` — dump a characterization transient as VCD.

Every campaign subcommand is a thin spec builder over the unified
experiment engine (:mod:`repro.runtime.experiment`) and shares these
flags: ``--workers N`` distributes samples over a process pool
(results identical to a serial run), ``--out DIR`` persists the run as
``DIR/<run-id>/manifest.json`` + ``rows.jsonl`` with full provenance,
``--resume RUN-ID`` reloads a stored (possibly partial) run and
computes only the missing points, and ``--trace`` / ``--profile``
record per-point solver telemetry into the manifest's
``repro-trace-v1`` section (rendered by ``repro trace <run-id>``).
"""

from __future__ import annotations

import argparse
import sys

from repro.cells.registry import cell_names
from repro.core.metrics import METRIC_FIELDS, METRIC_LABELS, METRIC_UNITS
from repro.pdk.registry import node_names
from repro.units import format_eng


def _add_voltage_args(parser) -> None:
    parser.add_argument("--vddi", type=float, default=0.8,
                        help="input-domain supply [V]")
    parser.add_argument("--vddo", type=float, default=1.2,
                        help="output-domain supply [V]")


def _add_pdk_arg(parser) -> None:
    parser.add_argument("--pdk", default="ptm90", choices=node_names(),
                        help="registered PDK node to run on (choices "
                             "come from the live node registry; see "
                             "README 'Cell & PDK zoo')")


def _add_backend_arg(parser) -> None:
    parser.add_argument("--backend", default=None,
                        choices=("serial", "pool", "batched"),
                        help="execution backend (default: pool when "
                             "--workers > 1, else serial; 'batched' "
                             "stacks same-topology points into SPMD "
                             "lanes, and with --workers > 1 shards "
                             "lane groups over the pool — see README "
                             "Performance)")
    parser.add_argument("--solver", default=None,
                        choices=("auto", "dense", "sparse"),
                        help="linear-solve kernel (default auto: dense "
                             "LAPACK below the size threshold, sparse "
                             "pattern-reuse LU above; an execution "
                             "knob — results and cache keys are "
                             "unaffected)")


def _add_campaign_args(parser, workers_default: int = 1) -> None:
    """The shared campaign flags: --workers / --out / --resume / --trace."""
    parser.add_argument("--workers", type=int, default=workers_default,
                        help="process-pool width (1 = serial)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="artifact-store root; persists the run as "
                             "DIR/<run-id>/ with a provenance manifest")
    parser.add_argument("--resume", default=None, metavar="RUN_ID",
                        help="reload this stored run and compute only "
                             "the missing points (implies --out, "
                             "default 'results')")
    parser.add_argument("--trace", action="store_true",
                        help="record per-point solver telemetry into the "
                             "run manifest (implies --out; see "
                             "'repro trace')")
    parser.add_argument("--profile", action="store_true",
                        help="like --trace plus a cProfile per point "
                             "(heavyweight; for digging into slow points)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="content-addressed solve cache root; "
                             "points already solved with identical "
                             "netlist/PDK/stimulus/tolerances are "
                             "served from the cache, bitwise identical "
                             "to a live solve")


def _campaign_io(args):
    """Resolve the shared flags into (store, resume, run_id, cache)."""
    from repro.runtime import telemetry
    from repro.runtime.cache import SolveCache
    from repro.runtime.experiment import ArtifactStore, DEFAULT_ROOT
    mode = None
    if getattr(args, "profile", False):
        mode = "profile"
    elif getattr(args, "trace", False):
        mode = "collect"
    if mode is not None:
        telemetry.set_campaign_trace_mode(mode)
    store = resume = None
    if (getattr(args, "out", None) or getattr(args, "resume", None)
            or mode is not None):
        store = ArtifactStore(getattr(args, "out", None) or DEFAULT_ROOT)
    if getattr(args, "resume", None):
        resume = store.load(args.resume)
    cache = None
    if getattr(args, "cache", None):
        cache = SolveCache(args.cache)
    return store, resume, getattr(args, "resume", None), cache


def _report_run(result) -> None:
    run_id = getattr(result, "run_id", None)
    if run_id:
        print(f"stored run: {run_id}")


def _print_metrics(metrics, title: str) -> None:
    print(metrics.pretty(title))


def cmd_characterize(args) -> int:
    from repro.core.characterize import characterize_kinds
    from repro.pdk import make_pdk
    store, resume, run_id, cache = _campaign_io(args)
    results = characterize_kinds(args.kinds, args.vddi, args.vddo,
                                 pdk=make_pdk(args.pdk, args.temp),
                                 workers=args.workers, resume=resume,
                                 store=store, run_id=run_id, cache=cache)
    for kind, metrics in results.items():
        _print_metrics(metrics, f"{kind} [{args.pdk}]: {args.vddi} V -> "
                                f"{args.vddo} V @ {args.temp} C")
    if store is not None and store.list_runs():
        print(f"stored run under {store.root}")
    return 0 if all(m.functional for m in results.values()) else 1


def cmd_compare(args) -> int:
    from repro.core.characterize import characterize_kinds
    results = characterize_kinds(("sstvs", "combined"), args.vddi,
                                 args.vddo)
    sstvs, combined = results["sstvs"], results["combined"]
    print(f"{'Performance Parameter':<24s} {'SS-TVS':>12s} "
          f"{'Combined':>12s} {'advantage':>10s}")
    for name in METRIC_FIELDS:
        a, b = getattr(sstvs, name), getattr(combined, name)
        print(f"{METRIC_LABELS[name]:<24s} "
              f"{format_eng(a, METRIC_UNITS[name], 3):>12s} "
              f"{format_eng(b, METRIC_UNITS[name], 3):>12s} "
              f"{(b / a if a else float('nan')):>9.2f}x")
    return 0


def cmd_sweep(args) -> int:
    from repro.analysis import (
        SweepGrid, render_surface_ascii, sweep_delay_surface,
    )
    from repro.pdk import make_pdk
    store, resume, run_id, cache = _campaign_io(args)
    surface = sweep_delay_surface(args.kind,
                                  SweepGrid.with_step(args.step),
                                  pdk=make_pdk(args.pdk, args.temp),
                                  workers=args.workers, resume=resume,
                                  store=store, run_id=run_id, cache=cache)
    print("Rising delay [ps]:")
    print(render_surface_ascii(surface, "rise"))
    print("\nFalling delay [ps]:")
    print(render_surface_ascii(surface, "fall"))
    print(f"\nfunctional fraction: {surface.functional_fraction:.3f}")
    _report_run(surface)
    return 0 if surface.functional_fraction == 1.0 else 1


def cmd_mc(args) -> int:
    from repro.analysis import MonteCarloConfig, run_monte_carlo
    store, resume, run_id, cache = _campaign_io(args)
    config = MonteCarloConfig(runs=args.runs, seed=args.seed,
                              temperature_c=args.temp,
                              workers=args.workers,
                              backend=getattr(args, "backend", None),
                              solver=getattr(args, "solver", None),
                              pdk_node=args.pdk)
    result = run_monte_carlo(args.kind, args.vddi, args.vddo, config,
                             resume=resume, store=store, run_id=run_id,
                             cache=cache)
    title = (f"{args.kind} MC, {args.vddi} -> {args.vddo} V, "
             f"{args.runs} runs, {args.temp} C")
    if result.statistics is not None:
        print(result.statistics.pretty(title))
    else:
        print(f"{title}\n  no successful samples")
    if result.failures or result.interrupted:
        print(result.failure_summary())
    _report_run(result)
    return 0 if result.functional_yield == 1.0 else 1


def cmd_functional(args) -> int:
    from repro.analysis import SweepGrid, validate_functionality
    from repro.pdk import make_pdk
    store, resume, run_id, cache = _campaign_io(args)
    report = validate_functionality(args.kind,
                                    SweepGrid.with_step(args.step),
                                    pdk=make_pdk(args.pdk, args.temp),
                                    workers=args.workers,
                                    backend=getattr(args, "backend", None),
                                    solver=getattr(args, "solver", None),
                                    resume=resume,
                                    store=store, run_id=run_id,
                                    cache=cache)
    print(report.summary())
    _report_run(report)
    return 0 if report.all_passed else 1


def cmd_temp(args) -> int:
    from repro.analysis import sweep_temperature
    store, resume, run_id, cache = _campaign_io(args)
    points = sweep_temperature(args.kind, args.vddi, args.vddo,
                               temperatures=tuple(args.temps),
                               workers=args.workers, resume=resume,
                               store=store, run_id=run_id, cache=cache,
                               pdk_node=args.pdk)
    print(f"{args.kind} [{args.pdk}], {args.vddi} V -> {args.vddo} V:")
    print(f"  {'T[C]':>6s} {'d_rise':>9s} {'d_fall':>9s} "
          f"{'leak_hi':>9s} {'func':>5s}")
    for p in points:
        m = p.metrics
        print(f"  {p.temperature_c:>6.1f} "
              f"{format_eng(m.delay_rise, 's', 3):>9s} "
              f"{format_eng(m.delay_fall, 's', 3):>9s} "
              f"{format_eng(m.leakage_high, 'A', 3):>9s} "
              f"{str(m.functional):>5s}")
    return 0 if all(p.metrics.functional for p in points) else 1


def cmd_sens(args) -> int:
    from repro.analysis import (
        SIZING_KNOBS, metric_sensitivities, render_sensitivity_table,
    )
    from repro.pdk import make_pdk
    store, resume, run_id, cache = _campaign_io(args)
    knobs = tuple(args.knobs) if args.knobs else SIZING_KNOBS
    sensitivities = metric_sensitivities(
        args.kind, args.vddi, args.vddo, knobs=knobs,
        pdk=make_pdk(args.pdk, args.temp),
        workers=args.workers, resume=resume, store=store, run_id=run_id,
        cache=cache)
    print(render_sensitivity_table(sensitivities))
    return 0


def cmd_area(args) -> int:
    from repro.cells.registry import get_cell
    from repro.layout import estimate_cell_area
    from repro.pdk import make_pdk
    pdk = make_pdk(args.pdk)
    for name in cell_names():
        spec = get_cell(name)
        if spec.area_probe is None:
            print(f"{name:12s} {'n/a':>10s} ({spec.device_count} devices, "
                  f"no area probe registered)")
            continue
        est = estimate_cell_area(spec.area_probe, pdk)
        print(f"{name:12s} {est.total_area_um2:6.2f} um^2 "
              f"({est.device_count} devices)")
    return 0


def cmd_liberty(args) -> int:
    from repro.core.libchar import characterize_cell, write_liberty
    from repro.pdk import make_pdk
    store, _, _, cache = _campaign_io(args)
    cells = [characterize_cell(kind, make_pdk(args.pdk, args.temp),
                               args.vddi, args.vddo, workers=args.workers,
                               store=store, cache=cache)
             for kind in args.kinds]
    text = write_liberty(cells)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(cells)} cells)")
    return 0


def cmd_vtc(args) -> int:
    from repro.analysis import vtc_report
    from repro.pdk import make_pdk
    store, resume, run_id, cache = _campaign_io(args)
    report = vtc_report(args.kind, pairs=((args.vddi, args.vddo),),
                        pdk=make_pdk(args.pdk, args.temp),
                        workers=args.workers, resume=resume,
                        store=store, run_id=run_id, cache=cache)
    if report.failures:
        for f in report.failures:
            print(f"VTC extraction failed at {f.index}: "
                  f"[{f.stage}] {f.error}")
        return 1
    vtc = report.results[(args.vddi, args.vddo)]
    print(f"{args.kind} VTC at ({args.vddi} V -> {args.vddo} V):")
    print(f"  VOH={vtc.voh:.3f} V  VOL={vtc.vol:.3f} V  "
          f"swing={vtc.output_swing:.3f} V")
    print(f"  VIL={vtc.vil:.3f} V  VIH={vtc.vih:.3f} V  "
          f"Vsw={vtc.switching_point:.3f} V")
    print(f"  NML={vtc.nml:.3f} V  NMH={vtc.nmh:.3f} V  "
          f"regenerative={vtc.regenerative()}")
    _report_run(report)
    return 0


def cmd_pvt(args) -> int:
    from repro.analysis import pvt_report
    store, resume, run_id, cache = _campaign_io(args)
    report = pvt_report(args.kind, args.vddi, args.vddo,
                        workers=args.workers, resume=resume,
                        store=store, run_id=run_id, cache=cache,
                        pdk_node=args.pdk)
    print(report.pretty())
    _report_run(report)
    return 0 if report.all_functional else 1


def _floorplan_design(args):
    """Resolve a bridged Verilog design, or None for the generator."""
    if not args.verilog:
        return None
    from repro.errors import AnalysisError
    from repro.floorplan import design_from_verilog
    from repro.verilog import parse_verilog
    with open(args.verilog) as handle:
        modules = parse_verilog(handle.read())
    if args.top:
        try:
            module = modules[args.top]
        except KeyError:
            raise AnalysisError(
                f"no module {args.top!r} in {args.verilog} "
                f"(have {sorted(modules)})") from None
    else:
        module = next(iter(modules.values()))
    domains = {}
    for entry in args.domain:
        name, _, volts = entry.partition("=")
        if not volts:
            raise AnalysisError(
                f"--domain wants NAME=VOLTS, got {entry!r}")
        domains[name] = float(volts)
    block_domains = {}
    for entry in args.block_domain:
        inst, _, domain = entry.partition("=")
        if not domain:
            raise AnalysisError(
                f"--block-domain wants INSTANCE=DOMAIN, got {entry!r}")
        block_domains[inst] = domain
    return design_from_verilog(module, block_domains, domains)


def cmd_floorplan(args) -> int:
    """Shifter-assignment floorplan campaign with STA sign-off."""
    from repro.floorplan import (
        best_by_strategy, floorplan_spec, leaderboard_leakage,
        run_floorplan_campaign,
    )
    store, resume, run_id, cache = _campaign_io(args)
    design = _floorplan_design(args)
    leakage = args.leakage
    if leakage == "leaderboard":
        from repro.analysis.leaderboard import load_leaderboard
        leakage = leaderboard_leakage(load_leaderboard(args.board),
                                      args.pdk)
    spec = floorplan_spec(
        design=design, blocks=args.blocks, domains=args.domains,
        design_seed=args.design_seed,
        crossing_factor=args.crossing_factor,
        strategies=tuple(args.strategies), seed=args.seed,
        restarts=args.restarts, moves=args.moves,
        required=args.required * 1e-9, timing=args.timing,
        node=args.pdk, leakage=leakage,
        require_signoff=args.require_signoff, workers=args.workers)
    result = run_floorplan_campaign(spec, resume=resume, store=store,
                                    run_id=run_id, cache=cache)
    print(f"floorplan campaign [{args.pdk}]: "
          f"{spec.metadata['blocks']} blocks, "
          f"{spec.metadata['moves']} moves/anneal, required "
          f"{args.required:g} ns ({args.timing} timing)")
    print(f"  {'point':>14s} {'cost':>12s} {'bbox[um2]':>11s} "
          f"{'rails[um]':>10s} {'slack[ps]':>10s} {'signoff':>8s}")
    for row in result.rows:
        if not row.ok:
            print(f"  {str(row.index):>14s} [{row.stage}] {row.error}")
            continue
        p = row.value
        verdict = "MET" if p["signoff_ok"] else "VIOLATED"
        print(f"  {str(row.index):>14s} {p['cost']:>12.1f} "
              f"{p['area']:>11.0f} {p['rail_length']:>10.0f} "
              f"{p['worst_slack'] * 1e12:>10.1f} {verdict:>8s}")
    best = best_by_strategy(result)
    for strategy, payload in best.items():
        print(f"  best {strategy:>8s}: cost {payload['cost']:.1f} "
              f"(seed {payload['seed']}, digest "
              f"{payload['placement_digest'][:12]})")
    if "sstvs" in best and "cvs" in best:
        ratio = best["cvs"]["cost"] / best["sstvs"]["cost"]
        print(f"  sstvs vs cvs objective: {ratio:.3f}x "
              f"({'sstvs wins' if ratio > 1 else 'cvs wins'} — CVS "
              f"pays {best['cvs']['rail_length']:.0f} um of extra "
              f"supply rail)")
    if result.interrupted:
        print("interrupted — partial results stored")
    _report_run(result)
    failures = result.counts["err"]
    return 0 if failures == 0 and not result.interrupted else 1


def cmd_runs(args) -> int:
    """List stored experiment runs (``results/<run-id>/``)."""
    from repro.runtime.experiment import ArtifactStore, DEFAULT_ROOT
    store = ArtifactStore(args.out or DEFAULT_ROOT)
    manifests = store.list_runs()
    if not manifests:
        print(f"no stored runs under {store.root}")
        return 0
    print(f"{'run id':<36s} {'name':<14s} {'ok':>5s} {'err':>4s} "
          f"{'written (UTC)':<20s}")
    for manifest in manifests:
        counts = manifest.get("counts", {})
        written = str(manifest.get("provenance", {})
                      .get("written_utc", ""))[:19]
        flags = " interrupted" if counts.get("interrupted") else ""
        print(f"{manifest.get('run_id', '?'):<36s} "
              f"{manifest.get('name', '?'):<14s} "
              f"{counts.get('ok', 0):>5d} {counts.get('err', 0):>4d} "
              f"{written:<20s}{flags}")
    return 0


def cmd_show(args) -> int:
    """Show one stored run: provenance manifest plus row summary."""
    from repro.runtime.experiment import ArtifactStore, DEFAULT_ROOT
    store = ArtifactStore(args.out or DEFAULT_ROOT)
    manifest = store.manifest(args.run_id)
    prov = manifest.get("provenance", {})
    print(f"run {manifest.get('run_id')}: {manifest.get('name')}")
    for key in ("written_utc", "git_sha", "pdk_fingerprint", "seed",
                "workers", "wall_s", "python", "numpy"):
        value = prov.get(key)
        if value is not None:
            print(f"  {key:16s} {value}")
    metadata = manifest.get("metadata", {})
    if metadata:
        print("  metadata:")
        for key in sorted(metadata):
            print(f"    {key:14s} {metadata[key]}")
    resultset = store.load(args.run_id)
    print(resultset.pretty(limit=args.limit or len(resultset.rows)))
    counts = manifest.get("counts", {})
    expected = int(counts.get("total", len(resultset.rows)))
    if (len(resultset.rows) < expected
            and not counts.get("interrupted")):
        print(f"ERROR: rows.jsonl for run {args.run_id!r} is truncated: "
              f"the manifest records {expected} rows but only "
              f"{len(resultset.rows)} could be read. The store is "
              f"damaged — resume the campaign with --resume "
              f"{args.run_id} to heal it, or re-run with --out.")
        return 1
    return 0


def cmd_trace(args) -> int:
    """Render the ``repro-trace-v1`` section of a stored run."""
    from repro.runtime.experiment import ArtifactStore, DEFAULT_ROOT
    from repro.runtime.telemetry import render_trace
    store = ArtifactStore(args.out or DEFAULT_ROOT)
    manifest = store.manifest(args.run_id)
    document = manifest.get("trace")
    if not document:
        print(f"run {args.run_id!r} has no trace section; rerun the "
              f"campaign with --trace (or --profile)")
        return 1
    print(f"run {manifest.get('run_id')}: {manifest.get('name')}")
    print(render_trace(document, limit=args.limit))
    return 0


def cmd_vcd(args) -> int:
    from repro.core.characterize import StimulusPlan, run_stimulus
    from repro.pdk import make_pdk
    from repro.spice.vcd import write_vcd
    result, probes = run_stimulus(make_pdk(args.pdk, args.temp),
                                  args.kind, args.vddi,
                                  args.vddo, StimulusPlan())
    nodes = [probes.in_node, probes.out_node]
    nodes += list(probes.internal.get("nodes", {}).values())
    text = write_vcd(result, nodes,
                     comment=f"{args.kind} {args.vddi}->{args.vddo}")
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(nodes)} signals, "
          f"{result.sample_count} samples)")
    return 0


def cmd_serve(args) -> int:
    """Supervised campaign service over a job drop directory.

    Watches ``--jobs DIR`` for ``*.json`` job files, runs each through
    the supervised :class:`~repro.runtime.service.CampaignService`
    (durable journal, worker watchdog, crash requeue with backoff,
    SIGTERM-clean shutdown) and finishes it as ``<name>.done.json`` /
    ``<name>.failed.json``. ``--once`` drains the directory and exits.
    """
    from repro.runtime.experiment import ArtifactStore, DEFAULT_ROOT
    from repro.runtime.service import ServiceConfig, serve_jobs
    config = ServiceConfig(workers=args.workers,
                           chunk_size=args.chunk_size,
                           heartbeat_timeout_s=args.heartbeat)
    store = ArtifactStore(args.out or DEFAULT_ROOT)
    processed = serve_jobs(args.jobs, store, cache=args.cache,
                           config=config, once=args.once,
                           poll_s=args.poll)
    print(f"serve: {processed} job(s) processed")
    return 0


def cmd_cache(args) -> int:
    """Inspect or maintain a content-addressed solve cache."""
    from repro.runtime.cache import SolveCache
    cache = SolveCache(args.root)
    if args.action == "stats":
        report = cache.verify()
        print(f"cache {cache.root}:")
        print(f"  entries      {report['entries']}")
        print(f"  ok           {report['ok']}")
        print(f"  corrupt      {report['corrupt']}")
        print(f"  stray tmp    {report['stray_tmp']}")
        print(f"  quarantined  {report['quarantined_total']}")
        print(f"  bytes        {cache.total_bytes()}")
        return 0
    if args.action == "verify":
        report = cache.verify()
        print(f"cache {cache.root}: {report['entries']} entries, "
              f"{report['corrupt']} corrupt, "
              f"{report['stray_tmp']} stray tmp")
        if report["corrupt"]:
            print("corrupt entries were quarantined; they will be "
                  "recomputed on next use")
        return 1 if report["corrupt"] else 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cache {cache.root}: removed {removed} entries")
        return 0
    raise AssertionError(f"unhandled cache action {args.action!r}")


def cmd_bench(args) -> int:
    """Timed benchmark workloads; appends to a trajectory file.

    Each run appends one entry to ``--out`` (default ``BENCH.json``),
    converting a legacy single-record file in place. With ``--check``,
    instead compares a fresh run against the latest stored entry and
    exits nonzero when solves/sec regressed more than 30% on any
    workload.
    """
    import os

    from repro.analysis.bench import (
        append_trajectory, check_pool_efficiency, check_regression,
        check_tracer_overhead, load_trajectory, run_bench_suite,
        validate_baseline,
    )
    if args.leaderboard:
        return _bench_leaderboard(args)
    record = run_bench_suite(mc_runs=args.runs, sweep_step=args.step,
                             workers=args.workers)
    for name, workload in record["workloads"].items():
        line = f"  {name:12s} {workload['wall_s']:8.2f} s"
        if workload.get("solves_per_s"):
            line += f"  ({workload['solves_per_s']:7.1f} solves/s)"
        print(line)
    for name, ratio in record["speedups"].items():
        print(f"  speedup {name}: {ratio:.2f}x")
    tracer = record["workloads"].get("tracer", {})
    if tracer.get("null_overhead") is not None:
        print(f"  tracer overhead: null {tracer['null_overhead']:+.2%}, "
              f"collecting {tracer['collecting_overhead']:+.2%}")
    cache_hit = record["workloads"].get("cache_hit", {})
    if cache_hit.get("warm_hit_rate") is not None:
        print(f"  cache warm pass: {cache_hit['warm_hit_rate']:.0%} hit "
              f"rate, {cache_hit['warm_speedup']:.1f}x over cold")
    crossover = record["workloads"].get("sparse_crossover", {})
    if crossover.get("sizes"):
        measured = crossover.get("measured_crossover_size")
        print(f"  sparse crossover: "
              f"{'n=' + str(measured) if measured else 'not reached'} "
              f"(auto threshold n={crossover['auto_threshold']}, "
              f"largest tested n={crossover['sizes'][-1]['size']})")
    floorplan = record["workloads"].get("floorplan_scale", {})
    for entry in floorplan.get("sizes", []):
        print(f"  floorplan {entry['blocks']:4d} blocks: "
              f"{entry['moves_per_s']:7.0f} moves/s, sign-off "
              f"{entry['signoff_s']:.2f} s over {entry['crossings']} "
              f"crossings")
    for name, label in (("mc_parallel", "parallel"),
                        ("mc_batched", "batched"),
                        ("mc_batched_sharded", "sharded-batched")):
        workload = record["workloads"].get(name, {})
        if not workload.get("identical_to_serial", True):
            print(f"FAIL: {label} MC samples differ from serial run")
            return 1
    if not cache_hit.get("warm_identical_to_cold", True):
        print("FAIL: cache-served MC samples differ from cold solves")
        return 1
    overhead_problems = check_tracer_overhead(record)
    overhead_problems += check_pool_efficiency(record)
    for problem in overhead_problems:
        print(f"FAIL: {problem}")
    if overhead_problems:
        return 1
    if args.check:
        baseline_path = args.out
        if not os.path.exists(baseline_path) \
                and os.path.exists("BENCH_PR2.json"):
            baseline_path = "BENCH_PR2.json"
        if not os.path.exists(baseline_path):
            print(f"no baseline file at {baseline_path}; record one "
                  f"first with 'repro bench --out {baseline_path}'")
            return 1
        try:
            baseline = load_trajectory(baseline_path)
        except OSError as exc:
            print(f"cannot load baseline {baseline_path}: {exc}")
            return 1
        except ValueError as exc:
            print(f"baseline {baseline_path} is not valid JSON: {exc}; "
                  f"re-record it with 'repro bench --out "
                  f"{baseline_path}'")
            return 1
        problem = validate_baseline(baseline)
        if problem is not None:
            print(f"baseline {baseline_path}: {problem}")
            return 1
        problems = check_regression(record, baseline)
        for problem in problems:
            print(f"REGRESSION: {problem}")
        if problems:
            return 1
        print(f"no throughput regression vs {baseline_path}")
        return 0
    entries = append_trajectory(record, args.out)
    print(f"appended to {args.out} ({entries} entr"
          f"{'y' if entries == 1 else 'ies'})")
    return 0


def _bench_leaderboard(args) -> int:
    """Characterize cells x nodes x corners into the standing artifact."""
    from repro.analysis.leaderboard import (
        build_leaderboard, render_leaderboard, write_leaderboard,
    )
    out = args.out if args.out != "BENCH.json" else "LEADERBOARD.json"

    def progress(label: str) -> None:
        print(f"\r  {label:<44s}", end="", flush=True)

    board = build_leaderboard(cells=args.cells, nodes=args.nodes,
                              corners=args.corners, progress=progress)
    print("\r" + " " * 48 + "\r", end="")
    board = write_leaderboard(board, out)
    print(render_leaderboard(board))
    entries = len(board["entries"])
    print(f"wrote {out} (version {board['version']}, "
          f"{entries} corner entries)")
    return 0


def _check_cells(check) -> None:
    """Registry smoke: every cell characterizes on every node."""
    from repro.core.characterize import characterize
    from repro.pdk.registry import get_node, make_pdk
    print("cell & PDK registry smoke (every cell x node, canonical "
          "pair):")
    for node_name in node_names():
        node = get_node(node_name)
        vddi, vddo = node.default_pair
        for cell in cell_names():
            label = (f"{cell}@{node_name} converts "
                     f"{vddi:g} V -> {vddo:g} V")
            try:
                metrics = characterize(make_pdk(node_name), cell,
                                       vddi, vddo)
            except Exception as exc:
                check(f"{label} ({type(exc).__name__}: {exc})", False)
            else:
                check(label, metrics.functional)


def _check_experiments(check) -> None:
    """Engine + artifact-store smoke: run, persist, reload, resume."""
    import tempfile

    from repro.runtime.experiment import (
        ArtifactStore, ExperimentPoint, ExperimentSpec, run_experiment,
    )

    print("experiment engine / artifact store:")
    spec = ExperimentSpec(
        name="smoke", measure=_smoke_measure,
        points=[ExperimentPoint(i, float(i)) for i in range(6)],
        codec="json", seed=1234, metadata={"experiment": "smoke"})
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        resultset = run_experiment(spec, store=store)
        check("engine computes every point",
              resultset.values() == [float(i) ** 2 for i in range(6)])
        check("store assigns a run id",
              bool(resultset.run_id)
              and store.path(resultset.run_id).is_dir())

        manifest = store.manifest(resultset.run_id)
        prov = manifest.get("provenance", {})
        check("manifest records provenance",
              manifest.get("schema", "").startswith("repro-manifest")
              and prov.get("seed") == 1234
              and bool(prov.get("pdk_fingerprint"))
              and "retry_policy" in prov)

        reloaded = store.load(resultset.run_id)
        check("stored rows reload bitwise",
              reloaded.values() == resultset.values())

        # Truncate the row file mid-line and resume from the survivor.
        rows_path = store.path(resultset.run_id) / "rows.jsonl"
        text = rows_path.read_text()
        rows_path.write_text(text[: len(text) * 2 // 3])
        partial = store.load(resultset.run_id)
        check("truncated run loads as interrupted partial",
              partial.interrupted
              and 0 < len(partial.rows) < len(resultset.rows))
        resumed = run_experiment(spec, resume=partial)
        check("resume completes only the missing points",
              resumed.values() == resultset.values()
              and not resumed.interrupted)


def _smoke_measure(x: float) -> float:
    """Trivial measurement for the ``check --experiments`` smoke."""
    return x * x


def _check_golden(check) -> None:
    """Run the analytic golden battery (``pytest -m golden``)."""
    import os
    import subprocess
    from pathlib import Path

    src = Path(__file__).resolve().parents[1]
    root = src.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    print("analytic golden battery (pytest -m golden):")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-m", "golden", "-q"],
        cwd=root, env=env, capture_output=True, text=True)
    tail = (proc.stdout or "").strip().splitlines()[-3:]
    for line in tail:
        print(f"  {line}")
    check("golden battery passes", proc.returncode == 0)


def _check_batch(check) -> None:
    """Run the batched-backend equivalence harness (``pytest -m batch``)."""
    import os
    import subprocess
    from pathlib import Path

    src = Path(__file__).resolve().parents[1]
    root = src.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    print("batched-backend equivalence harness (pytest -m batch):")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-m", "batch", "-q"],
        cwd=root, env=env, capture_output=True, text=True)
    tail = (proc.stdout or "").strip().splitlines()[-3:]
    for line in tail:
        print(f"  {line}")
    check("batch equivalence harness passes", proc.returncode == 0)


def _check_chaos(check) -> None:
    """Run the chaos battery (``pytest -m chaos``)."""
    import os
    import subprocess
    from pathlib import Path

    src = Path(__file__).resolve().parents[1]
    root = src.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    print("crash/corruption chaos battery (pytest -m chaos):")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-m", "chaos", "-q"],
        cwd=root, env=env, capture_output=True, text=True)
    tail = (proc.stdout or "").strip().splitlines()[-3:]
    for line in tail:
        print(f"  {line}")
    check("chaos battery passes", proc.returncode == 0)


def _check_floorplan(check) -> None:
    """Run the floorplanner test battery (``pytest -m floorplan``)."""
    import os
    import subprocess
    from pathlib import Path

    src = Path(__file__).resolve().parents[1]
    root = src.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    print("floorplanner battery (pytest -m floorplan):")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-m", "floorplan", "-q"],
        cwd=root, env=env, capture_output=True, text=True)
    tail = (proc.stdout or "").strip().splitlines()[-3:]
    for line in tail:
        print(f"  {line}")
    check("floorplan battery passes", proc.returncode == 0)


def _check_coverage(check) -> None:
    """Enforce the solver-core + floorplan coverage floor.

    The floor itself (over ``src/repro/spice`` plus the floorplanning
    stack ``src/repro/{floorplan,soc,sta}``) lives in pyproject.toml
    under ``[tool.coverage.report] fail_under``; this check runs the
    spice + golden + floorplan/soc/sta suites under ``coverage`` and
    lets ``coverage report`` apply it. When the ``coverage`` package is
    not installed the check is skipped loudly rather than failed — the
    floor is config, the tool is optional.
    """
    import importlib.util
    import os
    import subprocess
    from pathlib import Path

    if importlib.util.find_spec("coverage") is None:
        print("  [SKIP] spice coverage floor ('coverage' package not "
              "installed; floor configured in pyproject.toml)")
        return
    src = Path(__file__).resolve().parents[1]
    root = src.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    print("coverage floor (coverage run -m pytest tests/spice "
          "tests/golden tests/floorplan tests/soc tests/sta):")
    proc = subprocess.run(
        [sys.executable, "-m", "coverage", "run", "-m", "pytest",
         "tests/spice", "tests/golden", "tests/floorplan", "tests/soc",
         "tests/sta", "-q"],
        cwd=root, env=env, capture_output=True, text=True)
    check("coverage test run passes", proc.returncode == 0)
    report = subprocess.run(
        [sys.executable, "-m", "coverage", "report"],
        cwd=root, env=env, capture_output=True, text=True)
    tail = (report.stdout or "").strip().splitlines()[-2:]
    for line in tail:
        print(f"  {line}")
    check("spice + floorplan-stack coverage >= pyproject floor",
          report.returncode == 0)


def cmd_check(args) -> int:
    """Fault-injected self-test of the resilient solver runtime.

    Exercises every fallback rung with deterministic faults, then runs
    a small fault-injected Monte Carlo smoke campaign; exits nonzero if
    any solver escape goes uncaught or the quarantine bookkeeping is
    wrong. ``--experiments`` adds an engine/artifact-store round-trip
    (persist, reload, truncate, resume).
    """
    from repro.analysis import MonteCarloConfig, run_monte_carlo
    from repro.core import StimulusPlan
    from repro.errors import ConvergenceError
    from repro.runtime import FaultPlan, FaultSpec
    from repro.spice import Circuit
    from repro.spice.devices import Diode, Resistor, VoltageSource
    from repro.spice.newton import solve_dc_report

    failures: list[str] = []

    def _check(label: str, ok: bool) -> None:
        print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures.append(label)

    def _diode_circuit():
        ckt = Circuit("check")
        ckt.add(VoltageSource("v", "a", "0", dc=5.0))
        ckt.add(Resistor("r", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", "0"))
        ckt.finalize()
        return ckt

    print("solver retry ladder:")
    plan = FaultPlan([FaultSpec("iteration_exhaustion", strategy="newton")])
    try:
        _, report = solve_dc_report(_diode_circuit(), faults=plan)
        _check("gmin ladder rescues an injected Newton failure",
               report.converged and report.winning_strategy == "gmin"
               and not report.attempts[0].converged)
    except ConvergenceError:
        _check("gmin ladder rescues an injected Newton failure", False)

    plan = FaultPlan([FaultSpec("iteration_exhaustion", strategy="newton"),
                      FaultSpec("singular_jacobian", strategy="gmin",
                                count=None)])
    try:
        _, report = solve_dc_report(_diode_circuit(), faults=plan)
        _check("source stepping rescues an injected gmin failure",
               report.converged and report.winning_strategy == "source")
    except ConvergenceError:
        _check("source stepping rescues an injected gmin failure", False)

    plan = FaultPlan([FaultSpec("iteration_exhaustion", count=None)])
    try:
        solve_dc_report(_diode_circuit(), faults=plan)
        _check("exhausted ladder raises with attempt history", False)
    except ConvergenceError as exc:
        _check("exhausted ladder raises with attempt history",
               exc.report is not None and len(exc.attempts) >= 3
               and exc.iterations is not None)

    print("fault-injected Monte Carlo smoke campaign:")
    bad = sorted({1, 3, args.runs - 1} & set(range(args.runs)))
    config = MonteCarloConfig(
        runs=args.runs, seed=7,
        plan=StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9),
        faults=FaultPlan.fail_samples(bad))
    try:
        result = run_monte_carlo("sstvs", 0.8, 1.2, config)
    except Exception as exc:
        _check(f"campaign survives injected sample failures "
               f"({type(exc).__name__} escaped: {exc})", False)
    else:
        _check("campaign survives injected sample failures", True)
        _check("quarantine names exactly the injected indices",
               result.quarantined == bad)
        good = sum(1 for s in result.samples if s.functional)
        expected = good / args.runs
        _check("functional_yield reflects quarantined samples",
               abs(result.functional_yield - expected) < 1e-12
               and result.functional_yield < 1.0)
        print("  " + result.failure_summary().replace("\n", "\n  "))

    if args.cells:
        try:
            _check_cells(_check)
        except Exception as exc:
            _check(f"registry smoke raised {type(exc).__name__}: {exc}",
                   False)

    if args.experiments:
        try:
            _check_experiments(_check)
        except Exception as exc:
            _check(f"experiment smoke raised {type(exc).__name__}: {exc}",
                   False)

    if args.golden:
        try:
            _check_golden(_check)
        except Exception as exc:
            _check(f"golden battery raised {type(exc).__name__}: {exc}",
                   False)

    if args.batch:
        try:
            _check_batch(_check)
        except Exception as exc:
            _check(f"batch harness raised {type(exc).__name__}: {exc}",
                   False)

    if args.chaos:
        try:
            _check_chaos(_check)
        except Exception as exc:
            _check(f"chaos battery raised {type(exc).__name__}: {exc}",
                   False)

    if args.floorplan:
        try:
            _check_floorplan(_check)
        except Exception as exc:
            _check(f"floorplan battery raised {type(exc).__name__}: {exc}",
                   False)

    if args.coverage:
        try:
            _check_coverage(_check)
        except Exception as exc:
            _check(f"coverage floor raised {type(exc).__name__}: {exc}",
                   False)

    if failures:
        print(f"check FAILED: {len(failures)} problem(s)")
        return 1
    print("check passed: solver runtime contains all injected faults")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SS-TVS reproduction (DATE 2008) command line")
    parser.add_argument("--temp", type=float, default=27.0,
                        help="temperature [C]")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="six-metric characterization")
    p.add_argument("kinds", nargs="+", choices=cell_names(),
                   metavar="kind")
    _add_voltage_args(p)
    _add_pdk_arg(p)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("compare", help="SS-TVS vs combined VS")
    _add_voltage_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="delay surfaces (Figures 8/9)")
    p.add_argument("kind", nargs="?", default="sstvs",
                   choices=cell_names(), metavar="kind")
    p.add_argument("--step", type=float, default=0.2)
    _add_pdk_arg(p)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("mc", help="Monte Carlo statistics (Tables 3/4)")
    p.add_argument("kind", nargs="?", default="sstvs",
                   choices=cell_names(), metavar="kind")
    _add_voltage_args(p)
    p.add_argument("--runs", type=int, default=25)
    p.add_argument("--seed", type=int, default=20080310)
    _add_pdk_arg(p)
    _add_campaign_args(p)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_mc)

    p = sub.add_parser("functional", help="full-grid conversion check")
    p.add_argument("kind", nargs="?", default="sstvs",
                   choices=cell_names(), metavar="kind")
    p.add_argument("--step", type=float, default=0.2)
    _add_pdk_arg(p)
    _add_campaign_args(p)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_functional)

    p = sub.add_parser("temp", help="characterization vs temperature")
    p.add_argument("kind", nargs="?", default="sstvs",
                   choices=cell_names(), metavar="kind")
    _add_voltage_args(p)
    p.add_argument("--temps", type=float, nargs="+",
                   default=[27.0, 60.0, 90.0],
                   help="temperatures [C] (paper: 27 60 90)")
    _add_pdk_arg(p)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_temp)

    p = sub.add_parser("sens", help="sizing-knob sensitivities (sstvs)")
    p.add_argument("kind", nargs="?", default="sstvs",
                   choices=cell_names(), metavar="kind")
    _add_voltage_args(p)
    p.add_argument("--knobs", nargs="+", default=None,
                   help="sizing knobs to perturb (default: all)")
    _add_pdk_arg(p)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_sens)

    p = sub.add_parser("area", help="cell-area estimates (Figure 7)")
    _add_pdk_arg(p)
    p.set_defaults(func=cmd_area)

    p = sub.add_parser("liberty", help="NLDM characterization -> .lib")
    p.add_argument("kinds", nargs="+", choices=cell_names(),
                   metavar="kind")
    _add_voltage_args(p)
    p.add_argument("--output", "-o", default="-")
    _add_pdk_arg(p)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_liberty)

    p = sub.add_parser("vtc", help="DC transfer curve / noise margins")
    p.add_argument("kind", choices=cell_names(), metavar="kind")
    _add_voltage_args(p)
    _add_pdk_arg(p)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_vtc)

    p = sub.add_parser("pvt", help="process-corner x temperature report")
    p.add_argument("kind", nargs="?", default="sstvs",
                   choices=cell_names(), metavar="kind")
    _add_voltage_args(p)
    _add_pdk_arg(p)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_pvt)

    p = sub.add_parser("floorplan",
                       help="shifter-assignment floorplan campaign")
    from repro.floorplan import FLOORPLAN_STRATEGIES
    p.add_argument("--blocks", type=int, default=64,
                   help="synthetic design: block count")
    p.add_argument("--domains", type=int, default=4,
                   help="synthetic design: voltage-domain count")
    p.add_argument("--design-seed", type=int, default=0,
                   help="synthetic design: generator seed")
    p.add_argument("--crossing-factor", type=float, default=1.5,
                   help="synthetic design: nets per block")
    p.add_argument("--verilog", default=None, metavar="FILE",
                   help="floorplan a structural Verilog design instead "
                        "of the synthetic generator")
    p.add_argument("--top", default=None,
                   help="Verilog: top module (default: first parsed)")
    p.add_argument("--domain", action="append", default=[],
                   metavar="NAME=VOLTS",
                   help="Verilog: declare a voltage domain (repeat)")
    p.add_argument("--block-domain", action="append", default=[],
                   metavar="INSTANCE=DOMAIN",
                   help="Verilog: pin an instance to a domain (repeat)")
    p.add_argument("--strategies", nargs="+",
                   default=list(FLOORPLAN_STRATEGIES),
                   choices=list(FLOORPLAN_STRATEGIES), metavar="strategy",
                   help="shifter strategies to floorplan "
                        f"(default: {' '.join(FLOORPLAN_STRATEGIES)})")
    p.add_argument("--seed", type=int, default=0,
                   help="annealing seed (same seed => bitwise-identical "
                        "floorplan)")
    p.add_argument("--restarts", type=int, default=1,
                   help="independent annealing restarts per strategy")
    p.add_argument("--moves", type=int, default=None,
                   help="annealing moves (default: scaled to design)")
    p.add_argument("--required", type=float, default=2.0,
                   help="sign-off required arrival [ns]")
    p.add_argument("--timing", choices=("synthetic", "spice"),
                   default="synthetic",
                   help="crossing-path NLDM source: deterministic "
                        "synthetic tables or SPICE characterization")
    p.add_argument("--leakage", choices=("none", "spice", "leaderboard"),
                   default="none",
                   help="shifter leakage costing: none, SPICE "
                        "characterization, or the standing leaderboard")
    p.add_argument("--board", default="LEADERBOARD.json",
                   help="leaderboard artifact for --leakage leaderboard")
    p.add_argument("--require-signoff", action="store_true",
                   help="treat an STA violation as a point failure")
    _add_pdk_arg(p)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_floorplan)

    p = sub.add_parser("runs", help="list stored experiment runs")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="artifact-store root (default: results)")
    p.set_defaults(func=cmd_runs)

    p = sub.add_parser("show", help="inspect one stored experiment run")
    p.add_argument("run_id")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="artifact-store root (default: results)")
    p.add_argument("--limit", type=int, default=20,
                   help="rows to print (0 = all)")
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("serve", help="supervised campaign job service")
    p.add_argument("--jobs", required=True, metavar="DIR",
                   help="job drop directory (*.json job files)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="artifact-store root (default: results)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="content-addressed solve cache root")
    p.add_argument("--once", action="store_true",
                   help="drain the directory and exit instead of "
                        "polling until SIGTERM")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent worker processes")
    p.add_argument("--chunk-size", type=int, default=4,
                   help="points per worker chunk")
    p.add_argument("--heartbeat", type=float, default=30.0,
                   help="seconds without worker progress before the "
                        "watchdog kills and requeues it")
    p.add_argument("--poll", type=float, default=0.5,
                   help="job-directory poll interval [s]")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("cache", help="inspect a solve cache")
    p.add_argument("action", choices=("stats", "verify", "clear"))
    p.add_argument("--root", default="cache", metavar="DIR",
                   help="cache root directory (default: cache)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("bench", help="timed benchmark workloads")
    p.add_argument("--runs", type=int, default=100,
                   help="Monte Carlo workload sample count")
    p.add_argument("--step", type=float, default=0.1,
                   help="sweep workload grid step [V]")
    p.add_argument("--out", "--output", "-o", dest="out",
                   default="BENCH.json",
                   help="trajectory file to append to (or compare "
                        "against)")
    p.add_argument("--check", action="store_true",
                   help="compare against the stored trajectory instead "
                        "of appending; fail on >30%% solves/sec "
                        "regression")
    p.add_argument("--workers", type=int, default=4,
                   help="pool width for the parallel MC workload")
    p.add_argument("--leaderboard", action="store_true",
                   help="instead of the timed workloads, characterize "
                        "every registered cell on every registered PDK "
                        "node at every process corner and write the "
                        "standing leaderboard artifact (--out defaults "
                        "to LEADERBOARD.json in this mode)")
    p.add_argument("--cells", nargs="+", default=None,
                   choices=cell_names(), metavar="cell",
                   help="leaderboard: restrict to these cells")
    p.add_argument("--nodes", nargs="+", default=None,
                   choices=node_names(), metavar="node",
                   help="leaderboard: restrict to these PDK nodes")
    p.add_argument("--corners", nargs="+", default=None,
                   help="leaderboard: restrict to these corners "
                        "(default: all)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("check", help="fault-injected solver self-test")
    p.add_argument("--runs", type=int, default=6,
                   help="smoke-campaign sample count")
    p.add_argument("--cells", action="store_true",
                   help="also smoke-test the cell & PDK registries: "
                        "characterize every registered cell on every "
                        "registered node at its canonical pair")
    p.add_argument("--experiments", action="store_true",
                   help="also smoke-test the experiment engine and "
                        "artifact store (persist, reload, resume)")
    p.add_argument("--golden", action="store_true",
                   help="also run the analytic golden test battery "
                        "(pytest -m golden)")
    p.add_argument("--coverage", action="store_true",
                   help="also enforce the >=88%% solver-core coverage "
                        "floor (skipped when 'coverage' is not installed)")
    p.add_argument("--batch", action="store_true",
                   help="also run the batched-backend equivalence "
                        "harness (pytest -m batch)")
    p.add_argument("--chaos", action="store_true",
                   help="also run the crash/corruption chaos battery "
                        "(pytest -m chaos: worker kills, bit-flips, "
                        "stale locks, torn writes)")
    p.add_argument("--floorplan", action="store_true",
                   help="also run the floorplanner battery (pytest -m "
                        "floorplan: annealer invariants, golden "
                        "benchmark, STA negative controls, SoC-scale "
                        "campaign)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("trace", help="convergence summary of a traced run")
    p.add_argument("run_id")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="artifact-store root (default: results)")
    p.add_argument("--limit", type=int, default=10,
                   help="outlier rows to print")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("vcd", help="dump a characterization transient")
    p.add_argument("kind", choices=cell_names(), metavar="kind")
    _add_voltage_args(p)
    _add_pdk_arg(p)
    p.add_argument("--output", "-o", default="shifter.vcd")
    p.set_defaults(func=cmd_vcd)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into head); exit quietly, and
        # redirect the fd so interpreter shutdown doesn't re-raise.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
