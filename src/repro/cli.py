"""Command-line interface: ``python -m repro <command> ...``.

Commands map one-to-one onto the library's experiment entry points:

* ``characterize`` — the six Table-1/2 metrics for one shifter kind;
* ``compare`` — SS-TVS vs combined VS side by side;
* ``sweep`` — Figures 8/9 delay surfaces as text;
* ``mc`` — Monte Carlo statistics (Tables 3/4);
* ``functional`` — the full-grid conversion check;
* ``area`` — Figure 7 cell-area estimates;
* ``liberty`` — NLDM characterization to a .lib-like file;
* ``bench`` — timed benchmark workloads (and ``--check`` regression guard);
* ``check`` — fault-injected self-test of the resilient solver runtime;
* ``vcd`` — dump a characterization transient as VCD.

Campaign commands (``sweep``, ``mc``, ``functional``, ``pvt``) accept
``--workers N`` to distribute samples over a process pool; results are
identical to a serial run.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.metrics import METRIC_FIELDS, METRIC_LABELS, METRIC_UNITS
from repro.core.testbench import KINDS
from repro.units import format_eng


def _add_voltage_args(parser) -> None:
    parser.add_argument("--vddi", type=float, default=0.8,
                        help="input-domain supply [V]")
    parser.add_argument("--vddo", type=float, default=1.2,
                        help="output-domain supply [V]")


def _add_workers_arg(parser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width (1 = serial)")


def _print_metrics(metrics, title: str) -> None:
    print(metrics.pretty(title))


def cmd_characterize(args) -> int:
    from repro.core import LevelShifter
    metrics = LevelShifter(args.kind).characterize(args.vddi, args.vddo)
    _print_metrics(metrics, f"{args.kind}: {args.vddi} V -> "
                            f"{args.vddo} V @ {args.temp} C")
    return 0 if metrics.functional else 1


def cmd_compare(args) -> int:
    from repro.core import LevelShifter
    sstvs = LevelShifter("sstvs").characterize(args.vddi, args.vddo)
    combined = LevelShifter("combined").characterize(args.vddi,
                                                     args.vddo)
    print(f"{'Performance Parameter':<24s} {'SS-TVS':>12s} "
          f"{'Combined':>12s} {'advantage':>10s}")
    for name in METRIC_FIELDS:
        a, b = getattr(sstvs, name), getattr(combined, name)
        print(f"{METRIC_LABELS[name]:<24s} "
              f"{format_eng(a, METRIC_UNITS[name], 3):>12s} "
              f"{format_eng(b, METRIC_UNITS[name], 3):>12s} "
              f"{(b / a if a else float('nan')):>9.2f}x")
    return 0


def cmd_sweep(args) -> int:
    from repro.analysis import (
        SweepGrid, render_surface_ascii, sweep_delay_surface,
    )
    surface = sweep_delay_surface(args.kind,
                                  SweepGrid.with_step(args.step),
                                  workers=args.workers)
    print("Rising delay [ps]:")
    print(render_surface_ascii(surface, "rise"))
    print("\nFalling delay [ps]:")
    print(render_surface_ascii(surface, "fall"))
    print(f"\nfunctional fraction: {surface.functional_fraction:.3f}")
    return 0 if surface.functional_fraction == 1.0 else 1


def cmd_mc(args) -> int:
    from repro.analysis import MonteCarloConfig, run_monte_carlo
    config = MonteCarloConfig(runs=args.runs, seed=args.seed,
                              temperature_c=args.temp,
                              workers=args.workers)
    result = run_monte_carlo(args.kind, args.vddi, args.vddo, config)
    title = (f"{args.kind} MC, {args.vddi} -> {args.vddo} V, "
             f"{args.runs} runs, {args.temp} C")
    if result.statistics is not None:
        print(result.statistics.pretty(title))
    else:
        print(f"{title}\n  no successful samples")
    if result.failures or result.interrupted:
        print(result.failure_summary())
    return 0 if result.functional_yield == 1.0 else 1


def cmd_functional(args) -> int:
    from repro.analysis import SweepGrid, validate_functionality
    report = validate_functionality(args.kind,
                                    SweepGrid.with_step(args.step),
                                    workers=args.workers)
    print(report.summary())
    return 0 if report.all_passed else 1


def cmd_area(args) -> int:
    from repro.cells import (
        add_combined_vs, add_cvs, add_inverter, add_ssvs_khan, add_sstvs,
    )
    from repro.layout import estimate_cell_area
    from repro.pdk import Pdk
    pdk = Pdk()
    for name, builder in (("inverter", add_inverter), ("cvs", add_cvs),
                          ("ssvs_khan", add_ssvs_khan),
                          ("combined_vs", add_combined_vs),
                          ("sstvs", add_sstvs)):
        est = estimate_cell_area(builder, pdk)
        print(f"{name:12s} {est.total_area_um2:6.2f} um^2 "
              f"({est.device_count} devices)")
    return 0


def cmd_liberty(args) -> int:
    from repro.core.libchar import characterize_cell, write_liberty
    from repro.pdk import Pdk
    cells = [characterize_cell(kind, Pdk(args.temp), args.vddi,
                               args.vddo)
             for kind in args.kinds]
    text = write_liberty(cells)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(cells)} cells)")
    return 0


def cmd_vtc(args) -> int:
    from repro.analysis import extract_vtc
    vtc = extract_vtc(args.kind, args.vddi, args.vddo)
    print(f"{args.kind} VTC at ({args.vddi} V -> {args.vddo} V):")
    print(f"  VOH={vtc.voh:.3f} V  VOL={vtc.vol:.3f} V  "
          f"swing={vtc.output_swing:.3f} V")
    print(f"  VIL={vtc.vil:.3f} V  VIH={vtc.vih:.3f} V  "
          f"Vsw={vtc.switching_point:.3f} V")
    print(f"  NML={vtc.nml:.3f} V  NMH={vtc.nmh:.3f} V  "
          f"regenerative={vtc.regenerative()}")
    return 0


def cmd_pvt(args) -> int:
    from repro.analysis import pvt_report
    report = pvt_report(args.kind, args.vddi, args.vddo,
                        workers=args.workers)
    print(report.pretty())
    return 0 if report.all_functional else 1


def cmd_vcd(args) -> int:
    from repro.core.characterize import StimulusPlan, run_stimulus
    from repro.pdk import Pdk
    from repro.spice.vcd import write_vcd
    result, probes = run_stimulus(Pdk(args.temp), args.kind, args.vddi,
                                  args.vddo, StimulusPlan())
    nodes = [probes.in_node, probes.out_node]
    nodes += list(probes.internal.get("nodes", {}).values())
    text = write_vcd(result, nodes,
                     comment=f"{args.kind} {args.vddi}->{args.vddo}")
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(nodes)} signals, "
          f"{result.sample_count} samples)")
    return 0


def cmd_bench(args) -> int:
    """Timed benchmark workloads; writes a BENCH_*.json trajectory.

    With ``--check``, instead compares a fresh run against the stored
    trajectory and exits nonzero when solves/sec regressed more than
    30% on any workload.
    """
    from repro.analysis.bench import (
        check_regression, load_trajectory, run_bench_suite,
        write_trajectory,
    )
    record = run_bench_suite(mc_runs=args.runs, sweep_step=args.step,
                             workers=args.workers)
    for name, workload in record["workloads"].items():
        line = f"  {name:12s} {workload['wall_s']:8.2f} s"
        if workload.get("solves_per_s"):
            line += f"  ({workload['solves_per_s']:7.1f} solves/s)"
        print(line)
    for name, ratio in record["speedups"].items():
        print(f"  speedup {name}: {ratio:.2f}x")
    if not record["workloads"]["mc_parallel"]["identical_to_serial"]:
        print("FAIL: parallel MC samples differ from serial run")
        return 1
    if args.check:
        try:
            baseline = load_trajectory(args.output)
        except OSError as exc:
            print(f"cannot load baseline {args.output}: {exc}")
            return 1
        problems = check_regression(record, baseline)
        for problem in problems:
            print(f"REGRESSION: {problem}")
        if problems:
            return 1
        print(f"no throughput regression vs {args.output}")
        return 0
    write_trajectory(record, args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_check(args) -> int:
    """Fault-injected self-test of the resilient solver runtime.

    Exercises every fallback rung with deterministic faults, then runs
    a small fault-injected Monte Carlo smoke campaign; exits nonzero if
    any solver escape goes uncaught or the quarantine bookkeeping is
    wrong.
    """
    from repro.analysis import MonteCarloConfig, run_monte_carlo
    from repro.core import StimulusPlan
    from repro.errors import ConvergenceError
    from repro.runtime import FaultPlan, FaultSpec
    from repro.spice import Circuit
    from repro.spice.devices import Diode, Resistor, VoltageSource
    from repro.spice.newton import solve_dc_report

    failures: list[str] = []

    def _check(label: str, ok: bool) -> None:
        print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures.append(label)

    def _diode_circuit():
        ckt = Circuit("check")
        ckt.add(VoltageSource("v", "a", "0", dc=5.0))
        ckt.add(Resistor("r", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", "0"))
        ckt.finalize()
        return ckt

    print("solver retry ladder:")
    plan = FaultPlan([FaultSpec("iteration_exhaustion", strategy="newton")])
    try:
        _, report = solve_dc_report(_diode_circuit(), faults=plan)
        _check("gmin ladder rescues an injected Newton failure",
               report.converged and report.winning_strategy == "gmin"
               and not report.attempts[0].converged)
    except ConvergenceError:
        _check("gmin ladder rescues an injected Newton failure", False)

    plan = FaultPlan([FaultSpec("iteration_exhaustion", strategy="newton"),
                      FaultSpec("singular_jacobian", strategy="gmin",
                                count=None)])
    try:
        _, report = solve_dc_report(_diode_circuit(), faults=plan)
        _check("source stepping rescues an injected gmin failure",
               report.converged and report.winning_strategy == "source")
    except ConvergenceError:
        _check("source stepping rescues an injected gmin failure", False)

    plan = FaultPlan([FaultSpec("iteration_exhaustion", count=None)])
    try:
        solve_dc_report(_diode_circuit(), faults=plan)
        _check("exhausted ladder raises with attempt history", False)
    except ConvergenceError as exc:
        _check("exhausted ladder raises with attempt history",
               exc.report is not None and len(exc.attempts) >= 3
               and exc.iterations is not None)

    print("fault-injected Monte Carlo smoke campaign:")
    bad = sorted({1, 3, args.runs - 1} & set(range(args.runs)))
    config = MonteCarloConfig(
        runs=args.runs, seed=7,
        plan=StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9),
        faults=FaultPlan.fail_samples(bad))
    try:
        result = run_monte_carlo("sstvs", 0.8, 1.2, config)
    except Exception as exc:
        _check(f"campaign survives injected sample failures "
               f"({type(exc).__name__} escaped: {exc})", False)
    else:
        _check("campaign survives injected sample failures", True)
        _check("quarantine names exactly the injected indices",
               result.quarantined == bad)
        good = sum(1 for s in result.samples if s.functional)
        expected = good / args.runs
        _check("functional_yield reflects quarantined samples",
               abs(result.functional_yield - expected) < 1e-12
               and result.functional_yield < 1.0)
        print("  " + result.failure_summary().replace("\n", "\n  "))

    if failures:
        print(f"check FAILED: {len(failures)} problem(s)")
        return 1
    print("check passed: solver runtime contains all injected faults")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SS-TVS reproduction (DATE 2008) command line")
    parser.add_argument("--temp", type=float, default=27.0,
                        help="temperature [C]")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="six-metric characterization")
    p.add_argument("kind", choices=KINDS)
    _add_voltage_args(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("compare", help="SS-TVS vs combined VS")
    _add_voltage_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="delay surfaces (Figures 8/9)")
    p.add_argument("kind", nargs="?", default="sstvs", choices=KINDS)
    p.add_argument("--step", type=float, default=0.2)
    _add_workers_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("mc", help="Monte Carlo statistics (Tables 3/4)")
    p.add_argument("kind", nargs="?", default="sstvs", choices=KINDS)
    _add_voltage_args(p)
    p.add_argument("--runs", type=int, default=25)
    p.add_argument("--seed", type=int, default=20080310)
    _add_workers_arg(p)
    p.set_defaults(func=cmd_mc)

    p = sub.add_parser("functional", help="full-grid conversion check")
    p.add_argument("kind", nargs="?", default="sstvs", choices=KINDS)
    p.add_argument("--step", type=float, default=0.2)
    _add_workers_arg(p)
    p.set_defaults(func=cmd_functional)

    p = sub.add_parser("area", help="cell-area estimates (Figure 7)")
    p.set_defaults(func=cmd_area)

    p = sub.add_parser("liberty", help="NLDM characterization -> .lib")
    p.add_argument("kinds", nargs="+", choices=KINDS)
    _add_voltage_args(p)
    p.add_argument("--output", "-o", default="-")
    p.set_defaults(func=cmd_liberty)

    p = sub.add_parser("vtc", help="DC transfer curve / noise margins")
    p.add_argument("kind", choices=KINDS)
    _add_voltage_args(p)
    p.set_defaults(func=cmd_vtc)

    p = sub.add_parser("pvt", help="process-corner x temperature report")
    p.add_argument("kind", nargs="?", default="sstvs", choices=KINDS)
    _add_voltage_args(p)
    _add_workers_arg(p)
    p.set_defaults(func=cmd_pvt)

    p = sub.add_parser("bench", help="timed benchmark workloads")
    p.add_argument("--runs", type=int, default=100,
                   help="Monte Carlo workload sample count")
    p.add_argument("--step", type=float, default=0.1,
                   help="sweep workload grid step [V]")
    p.add_argument("--output", "-o", default="BENCH_PR2.json",
                   help="trajectory file to write (or compare against)")
    p.add_argument("--check", action="store_true",
                   help="compare against the stored trajectory instead "
                        "of overwriting it; fail on >30%% solves/sec "
                        "regression")
    p.add_argument("--workers", type=int, default=4,
                   help="pool width for the parallel MC workload")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("check", help="fault-injected solver self-test")
    p.add_argument("--runs", type=int, default=6,
                   help="smoke-campaign sample count")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("vcd", help="dump a characterization transient")
    p.add_argument("kind", choices=KINDS)
    _add_voltage_args(p)
    p.add_argument("--output", "-o", default="shifter.vcd")
    p.set_defaults(func=cmd_vcd)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
