"""Seed-deterministic simulated-annealing floorplanner.

Placement state is a *sequence pair* (Gamma+, Gamma-): block ``b`` is
left of ``c`` iff ``b`` precedes ``c`` in both sequences, and below
``c`` iff ``b`` follows ``c`` in Gamma+ but precedes it in Gamma-.
Any pair of permutations therefore encodes a non-overlapping packing
of all blocks — the annealer can never propose an illegal floorplan.
Coordinates are recovered with the longest-weighted-common-subsequence
evaluation on a Fenwick prefix-max tree, ``O(n log n)`` per candidate,
which is what lets thousand-block designs anneal in seconds.

The objective (see :class:`ObjectiveWeights`) folds the paper's
wiring argument into classic floorplanning cost: bounding-box area and
half-perimeter wirelength, plus the *routed extra-rail length* a
dual-supply (CVS) assignment drags in and the control-wire length a
combined VS needs, plus the assigned shifters' cell area and static
leakage. All randomness flows from one ``numpy`` generator seeded by
the caller: the same seed gives a bitwise-identical floorplan on every
run, machine, and worker count.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.floorplan.assign import ShifterAssignment
from repro.floorplan.design import SocDesign
from repro.soc.planner import POWER_RAIL_WIDTH, SIGNAL_WIDTH


@dataclass(frozen=True)
class ObjectiveWeights:
    """Weights folding every cost term into um^2-equivalent units.

    ``area`` multiplies the packed bounding box [um^2]; ``wirelength``
    and ``control`` convert routed signal length [um] to metal area at
    the planner's signal width; ``rail`` prices the paper's extra
    supply rails at power-rail width; ``leakage`` converts amps to
    um^2-equivalents (1 nA ~ 1 um^2 by default) so strategy choice
    feels static power.
    """

    area: float = 1.0
    wirelength: float = SIGNAL_WIDTH
    rail: float = POWER_RAIL_WIDTH
    control: float = SIGNAL_WIDTH
    leakage: float = 1e9


@dataclass(frozen=True)
class CostBreakdown:
    """One floorplan's cost, term by term (all um^2-equivalent except
    the raw lengths)."""

    total: float
    width: float            #: packed bounding box [um]
    height: float
    area: float             #: width * height [um^2]
    hpwl: float             #: signal-weighted wirelength [um]
    rail_length: float      #: routed extra supply rails [um]
    control_length: float   #: routed direction controls [um]
    shifter_area: float     #: [um^2]
    leakage: float          #: [A]


@dataclass
class FloorplanResult:
    """The incumbent floorplan of one annealing run."""

    design: SocDesign
    assignment: ShifterAssignment
    seed: int
    moves: int
    positions: dict          #: block name -> (x, y, width, height)
    cost: float
    breakdown: CostBreakdown
    accepted: int
    evaluated: int
    incumbent_move: int      #: move index that produced the incumbent

    def digest(self) -> str:
        """SHA-256 over exact (``float.hex``) placement geometry."""
        parts = []
        for name in sorted(self.positions):
            x, y, width, height = self.positions[name]
            parts.append(f"{name}:{x.hex()}:{y.hex()}:"
                         f"{width.hex()}:{height.hex()}")
        blob = "|".join(parts) + f"|{self.cost.hex()}"
        return hashlib.sha256(blob.encode()).hexdigest()


def pack_sequence_pair(gamma_pos, gamma_neg, widths, heights):
    """Pack a sequence pair into coordinates.

    Returns ``(x, y, total_width, total_height)`` with ``x``/``y``
    lists indexed by block. Longest-weighted-common-subsequence
    evaluation: a Fenwick tree keyed by each block's position in
    Gamma- holds the running prefix-max of ``coord + extent``, giving
    ``O(n log n)`` per axis.
    """
    n = len(gamma_pos)
    pos_neg = [0] * n
    for index, block in enumerate(gamma_neg):
        pos_neg[block] = index
    x = _pack_axis(gamma_pos, pos_neg, widths, n)
    y = _pack_axis(reversed(gamma_pos), pos_neg, heights, n)
    total_w = max(x[b] + widths[b] for b in range(n))
    total_h = max(y[b] + heights[b] for b in range(n))
    return x, y, total_w, total_h


def _pack_axis(order, keys, extents, n):
    """Longest-path coordinates along one axis (Fenwick prefix max)."""
    tree = [0.0] * (n + 1)
    coords = [0.0] * n
    for block in order:
        index = keys[block] + 1
        best = 0.0
        i = index
        while i > 0:
            if tree[i] > best:
                best = tree[i]
            i -= i & -i
        coords[block] = best
        reach = best + extents[block]
        i = index
        while i <= n:
            if tree[i] < reach:
                tree[i] = reach
            i += i & -i
    return coords


class _CostModel:
    """Vectorized objective evaluation over a fixed design/assignment."""

    def __init__(self, design: SocDesign, assignment: ShifterAssignment,
                 weights: ObjectiveWeights):
        self.weights = weights
        names = [m.name for m in design.modules]
        self.index = {name: i for i, name in enumerate(names)}
        self.src = np.asarray([self.index[net.source]
                               for net in design.nets], dtype=np.intp)
        self.dst = np.asarray([self.index[net.destination]
                               for net in design.nets], dtype=np.intp)
        self.signals = np.asarray([net.signals for net in design.nets],
                                  dtype=float)
        # Placement-independent terms.
        self.shifter_area = assignment.shifter_area
        self.leakage = assignment.leakage
        self.static = (weights.leakage * self.leakage
                       + self.shifter_area)

        # Extra-rail / control-wire groups: one routed wire per unique
        # (source domain, destination block), run from the *nearest*
        # crossing source sharing it. Both reduce to a segment-min over
        # per-crossing distances.
        by_name = design.module_map()
        rails: dict = {}
        self.rail_net = []      #: positions into design.nets
        self.rail_group = []    #: group id per entry
        for position, net in enumerate(design.nets):
            src_dom = by_name[net.source].domain.name
            dst_dom = by_name[net.destination].domain.name
            if src_dom == dst_dom:
                continue
            group = rails.setdefault((src_dom, net.destination),
                                     len(rails))
            self.rail_net.append(position)
            self.rail_group.append(group)
        self.rail_net = np.asarray(self.rail_net, dtype=np.intp)
        self.rail_group = np.asarray(self.rail_group, dtype=np.intp)
        self.rail_count = len(rails)
        self.price_rails = (assignment.uses_vddi_rail
                            and self.rail_count > 0)
        self.price_controls = (assignment.needs_select
                               and self.rail_count > 0)

    def breakdown(self, cx, cy, total_w, total_h) -> CostBreakdown:
        dist = (np.abs(cx[self.src] - cx[self.dst])
                + np.abs(cy[self.src] - cy[self.dst]))
        hpwl = float(np.dot(self.signals, dist))
        rail_length = control_length = 0.0
        if self.price_rails or self.price_controls:
            group_min = np.full(self.rail_count, np.inf)
            np.minimum.at(group_min, self.rail_group,
                          dist[self.rail_net])
            routed = float(group_min.sum())
            if self.price_rails:
                rail_length = routed
            if self.price_controls:
                control_length = routed
        weights = self.weights
        area = total_w * total_h
        total = (weights.area * area
                 + weights.wirelength * hpwl
                 + weights.rail * rail_length
                 + weights.control * control_length
                 + self.static)
        return CostBreakdown(total=total, width=total_w, height=total_h,
                             area=area, hpwl=hpwl,
                             rail_length=rail_length,
                             control_length=control_length,
                             shifter_area=self.shifter_area,
                             leakage=self.leakage)


def default_moves(blocks: int) -> int:
    """Move budget scaling gently with design size."""
    return max(2000, 4 * blocks)


def anneal_floorplan(design: SocDesign, assignment: ShifterAssignment,
                     seed: int = 0, moves: int | None = None,
                     t0_fraction: float = 0.05,
                     t_final_fraction: float = 1e-4,
                     weights: ObjectiveWeights | None = None
                     ) -> FloorplanResult:
    """Anneal a sequence-pair floorplan of ``design``.

    Deterministic in ``(design, assignment, seed, moves, weights)``:
    every random choice — initial permutations, move selection,
    Metropolis acceptance — draws from one ``default_rng(seed)``.
    Geometric cooling runs from ``t0_fraction`` of the initial cost
    down to ``t_final_fraction`` of it over the move budget. Returns
    the incumbent (best-ever accepted) floorplan, re-packed.
    """
    if assignment.needs_select and assignment.uses_vddi_rail:
        raise AnalysisError("assignment cannot both be dual-rail and "
                            "externally selected")
    blocks = list(design.modules)
    n = len(blocks)
    if n < 2:
        raise AnalysisError("need at least 2 blocks to floorplan")
    if moves is None:
        moves = default_moves(n)
    weights = weights or ObjectiveWeights()
    rng = np.random.default_rng(seed)
    model = _CostModel(design, assignment, weights)

    widths = [float(m.width) for m in blocks]
    heights = [float(m.height) for m in blocks]
    gamma_pos = list(rng.permutation(n))
    gamma_neg = list(rng.permutation(n))
    rotated = [False] * n

    def evaluate():
        x, y, total_w, total_h = pack_sequence_pair(
            gamma_pos, gamma_neg, widths, heights)
        cx = np.asarray(x) + np.asarray(widths) / 2.0
        cy = np.asarray(y) + np.asarray(heights) / 2.0
        return model.breakdown(cx, cy, total_w, total_h)

    current = evaluate()
    best = current
    best_state = (list(gamma_pos), list(gamma_neg), list(rotated))
    best_move = 0
    accepted = 0
    evaluated = 1

    t0 = max(t0_fraction * current.total, 1e-12)
    alpha = (t_final_fraction / t0_fraction) ** (1.0 / max(moves, 1))
    temperature = t0
    for move in range(1, moves + 1):
        move_kind = int(rng.integers(4))
        if move_kind == 3:
            block = int(rng.integers(n))
            widths[block], heights[block] = (heights[block],
                                             widths[block])
            rotated[block] = not rotated[block]
            undo = ("rot", block)
        else:
            i = int(rng.integers(n))
            j = (i + 1 + int(rng.integers(n - 1))) % n
            if move_kind in (0, 2):
                gamma_pos[i], gamma_pos[j] = gamma_pos[j], gamma_pos[i]
            if move_kind in (1, 2):
                gamma_neg[i], gamma_neg[j] = gamma_neg[j], gamma_neg[i]
            undo = ("swap", move_kind, i, j)

        candidate = evaluate()
        evaluated += 1
        delta = candidate.total - current.total
        accept = (delta <= 0.0
                  or rng.random() < np.exp(-delta / temperature))
        if accept:
            current = candidate
            accepted += 1
            if candidate.total < best.total:
                best = candidate
                best_state = (list(gamma_pos), list(gamma_neg),
                              list(rotated))
                best_move = move
        else:
            if undo[0] == "rot":
                block = undo[1]
                widths[block], heights[block] = (heights[block],
                                                 widths[block])
                rotated[block] = not rotated[block]
            else:
                _, move_kind, i, j = undo
                if move_kind in (0, 2):
                    gamma_pos[i], gamma_pos[j] = (gamma_pos[j],
                                                  gamma_pos[i])
                if move_kind in (1, 2):
                    gamma_neg[i], gamma_neg[j] = (gamma_neg[j],
                                                  gamma_neg[i])
        temperature *= alpha

    gamma_pos, gamma_neg, rotated = best_state
    widths = [float(m.height) if rotated[i] else float(m.width)
              for i, m in enumerate(blocks)]
    heights = [float(m.width) if rotated[i] else float(m.height)
               for i, m in enumerate(blocks)]
    x, y, _, _ = pack_sequence_pair(gamma_pos, gamma_neg, widths,
                                    heights)
    positions = {m.name: (float(x[i]), float(y[i]), widths[i],
                          heights[i])
                 for i, m in enumerate(blocks)}
    return FloorplanResult(design=design, assignment=assignment,
                           seed=seed, moves=moves, positions=positions,
                           cost=best.total, breakdown=best,
                           accepted=accepted, evaluated=evaluated,
                           incumbent_move=best_move)
