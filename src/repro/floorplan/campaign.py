"""Floorplanning as a first-class experiment-engine campaign.

One campaign point = one (strategy, annealing seed) pair: the measure
regenerates the design from its seeded parameters (or unpacks a
bridged design), assigns shifters, anneals, signs the incumbent off
through :mod:`repro.sta`, and returns a plain-JSON payload — so
floorplans inherit everything other campaigns have: process-pool
workers with bitwise serial parity, Ctrl-C partial results,
ArtifactStore manifests with PDK fingerprints, seed-stable resume,
and content-addressed :class:`SolveCache` hits keyed on the full
parameter tuple.

The measure derives *everything* from its params tuple — design,
assignment, annealing randomness — which is what makes worker count
irrelevant to the bits of the result.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.floorplan.anneal import (
    ObjectiveWeights, anneal_floorplan, default_moves,
)
from repro.floorplan.assign import (
    FLOORPLAN_STRATEGIES, assign_shifters,
)
from repro.floorplan.design import SocDesign, generate_design
from repro.floorplan.signoff import (
    build_crossing_netlist, build_timing_library, signoff_floorplan,
)

#: Experiment name for floorplan campaigns.
FLOORPLAN_EXPERIMENT = "floorplan"

#: Default required arrival for crossing-path sign-off [s].
DEFAULT_REQUIRED = 2e-9


def _resolve_design(source) -> SocDesign:
    tag = source[0]
    if tag == "generate":
        _, blocks, domains, seed, crossing_factor, dvs_fraction = source
        return generate_design(blocks=blocks, domains=domains,
                               seed=seed,
                               crossing_factor=crossing_factor,
                               dvs_fraction=dvs_fraction)
    if tag == "design":
        return source[1]
    raise AnalysisError(f"unknown design source {tag!r}")


def _floorplan_measure(params: tuple) -> dict:
    """Plan, anneal and sign off one floorplan point."""
    (source, strategy, seed, moves, required, timing, node,
     leakage, require_signoff, weights_tuple) = params
    design = _resolve_design(source)
    pdk = None
    if timing == "spice" or leakage == "spice":
        from repro.pdk.registry import make_pdk
        pdk = make_pdk(node)
    leakage_table = None
    if isinstance(leakage, tuple):
        leakage_table = dict(leakage[1])
    assignment = assign_shifters(
        design, strategy, pdk=pdk,
        characterize_leakage=(leakage == "spice"),
        leakage_table=leakage_table)
    weights = ObjectiveWeights(*weights_tuple)
    result = anneal_floorplan(design, assignment, seed=seed,
                              moves=moves, weights=weights)
    netlist, paths = build_crossing_netlist(design, assignment,
                                            result.positions)
    library = build_timing_library(design, assignment, pdk=pdk,
                                   mode=timing)
    signoff = signoff_floorplan(netlist, paths, library, required)
    if require_signoff and not signoff.ok:
        raise AnalysisError(
            f"floorplan {strategy}/s{seed} failed timing sign-off: "
            + signoff.summary())
    breakdown = result.breakdown
    return {
        "strategy": strategy,
        "seed": seed,
        "blocks": len(design.modules),
        "crossings": len(assignment.crossings),
        "shifter_count": assignment.shifter_count,
        "cost": result.cost,
        "width": breakdown.width,
        "height": breakdown.height,
        "area": breakdown.area,
        "hpwl": breakdown.hpwl,
        "rail_length": breakdown.rail_length,
        "control_length": breakdown.control_length,
        "shifter_area": breakdown.shifter_area,
        "leakage": breakdown.leakage,
        "accepted": result.accepted,
        "evaluated": result.evaluated,
        "incumbent_move": result.incumbent_move,
        "signoff_ok": signoff.ok,
        "worst_slack": signoff.worst_slack,
        "violations": len(signoff.violations),
        "required": required,
        "placement_digest": result.digest(),
    }


def floorplan_spec(source=None, design: SocDesign | None = None,
                   blocks: int = 64, domains: int = 4,
                   design_seed: int = 0, crossing_factor: float = 1.5,
                   dvs_fraction: float = 0.25, strategies=None,
                   seed: int = 0, restarts: int = 1,
                   moves: int | None = None,
                   required: float = DEFAULT_REQUIRED,
                   timing: str = "synthetic", node: str = "ptm90",
                   leakage: str = "none",
                   require_signoff: bool = False,
                   weights: ObjectiveWeights | None = None,
                   workers: int = 1, chunk_size: int | None = None):
    """Describe a floorplan campaign declaratively.

    Points span ``strategies`` x ``restarts`` annealing seeds
    (``seed .. seed + restarts - 1``). Pass ``design=`` to floorplan a
    bridged (e.g. Verilog) design, otherwise the synthetic generator's
    parameters travel in the params tuple and every worker regenerates
    the identical design from them.
    """
    from repro.runtime.experiment import ExperimentPoint, ExperimentSpec
    strategies = tuple(strategies or FLOORPLAN_STRATEGIES)
    for strategy in strategies:
        if strategy not in FLOORPLAN_STRATEGIES:
            raise AnalysisError(
                f"unknown floorplan strategy {strategy!r}; expected "
                f"one of {FLOORPLAN_STRATEGIES}")
    if timing not in ("synthetic", "spice"):
        raise AnalysisError(f"unknown timing mode {timing!r}")
    if isinstance(leakage, dict):
        # A per-cell leakage table (e.g. leaderboard_leakage output)
        # travels in the params as a sorted tuple so cache keys and
        # worker pickles stay canonical.
        leakage = ("table", tuple(sorted(leakage.items())))
    elif leakage not in ("none", "spice"):
        raise AnalysisError(f"unknown leakage mode {leakage!r}")
    if restarts < 1:
        raise AnalysisError("need at least one annealing restart")
    if source is None:
        if design is not None:
            source = ("design", design)
        else:
            source = ("generate", blocks, domains, design_seed,
                      crossing_factor, dvs_fraction)
    block_count = (len(design.modules) if design is not None
                   else blocks)
    if moves is None:
        moves = default_moves(block_count)
    weights = weights or ObjectiveWeights()
    weights_tuple = (weights.area, weights.wirelength, weights.rail,
                     weights.control, weights.leakage)
    points = []
    for strategy in strategies:
        for restart in range(restarts):
            anneal_seed = seed + restart
            points.append(ExperimentPoint(
                f"{strategy}/s{anneal_seed}",
                (source, strategy, anneal_seed, moves, required,
                 timing, node, leakage, require_signoff,
                 weights_tuple)))
    return ExperimentSpec(
        name=FLOORPLAN_EXPERIMENT, measure=_floorplan_measure,
        points=points, stage="floorplan", codec="json",
        workers=workers, chunk_size=chunk_size,
        metadata={"experiment": FLOORPLAN_EXPERIMENT,
                  "pdk_node": node, "blocks": block_count,
                  "strategies": list(strategies), "seed": seed,
                  "restarts": restarts, "moves": moves,
                  "required": required, "timing": timing,
                  "leakage": leakage,
                  "require_signoff": require_signoff})


def run_floorplan_campaign(spec, progress=None, resume=None,
                           store=None, run_id=None, cache=None):
    """Run a floorplan spec through the unified experiment engine."""
    from repro.runtime.experiment import run_experiment
    return run_experiment(spec, progress=progress, resume=resume,
                          store=store, run_id=run_id, cache=cache)


def best_by_strategy(resultset) -> dict:
    """strategy -> lowest-cost successful payload of the campaign."""
    best: dict = {}
    for row in resultset.rows:
        if not row.ok:
            continue
        payload = row.value
        strategy = payload["strategy"]
        incumbent = best.get(strategy)
        if incumbent is None or payload["cost"] < incumbent["cost"]:
            best[strategy] = payload
    return best
