"""Shifter-cell assignment for every domain crossing of a design.

One strategy — SS-TVS, combined VS, or CVS — maps onto one registered
cell from :mod:`repro.cells.registry`; the registry's declarative
flags then drive the floorplan objective with no cell-kind dispatch
here:

* ``uses_vddi_rail`` (CVS): every destination block needs the source
  domain's supply rail routed to it — the paper's Figure 2 penalty,
  priced by the annealer as placement-dependent routed rail length;
* ``needs_select`` (combined VS): a direction-control wire per
  (source domain, destination block) — Figure 3;
* neither (SS-TVS): no extra routing at all.

Per-crossing costs come from cached characterizations
(:func:`repro.core.worst_leakage` through a :class:`SolveCache`) or,
when a ``LEADERBOARD.json``-style artifact is supplied, from its
per-node typical-corner entries — so assignment never pays a SPICE
solve the leaderboard already recorded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.registry import get_cell
from repro.errors import AnalysisError
from repro.floorplan.design import SocDesign

#: Floorplan strategy -> registered cell kind.
STRATEGY_CELLS = {"sstvs": "sstvs", "combined": "combined",
                  "cvs": "cvs"}
FLOORPLAN_STRATEGIES = tuple(STRATEGY_CELLS)


@dataclass(frozen=True)
class CrossingAssignment:
    """One shifted crossing: which cell, at which voltages, at what
    static cost."""

    source: str
    destination: str
    signals: int
    cell: str
    vddi: float
    vddo: float
    area_um2: float        #: one shifter instance
    leakage_a: float       #: one shifter instance, worst state


@dataclass(frozen=True)
class ShifterAssignment:
    """Every crossing of one design assigned to one strategy's cell."""

    strategy: str
    cell: str
    crossings: tuple              #: tuple[CrossingAssignment]
    uses_vddi_rail: bool
    needs_select: bool

    @property
    def shifter_count(self) -> int:
        return sum(c.signals for c in self.crossings)

    @property
    def shifter_area(self) -> float:
        """Total shifter cell area [um^2]."""
        return sum(c.signals * c.area_um2 for c in self.crossings)

    @property
    def leakage(self) -> float:
        """Total worst-state shifter leakage [A]."""
        return sum(c.signals * c.leakage_a for c in self.crossings)


def leaderboard_leakage(board: dict, node: str) -> dict:
    """cell kind -> worst typical-corner leakage [A] on one node.

    Accepts a ``LEADERBOARD.json``-style artifact (see
    :mod:`repro.analysis.leaderboard`); functional ``tt`` entries only.
    """
    out: dict = {}
    for entry in board.get("entries", ()):
        if (entry.get("node") != node or entry.get("corner") != "tt"
                or not entry.get("functional")):
            continue
        worst = max(entry["leakage_high"], entry["leakage_low"])
        out[entry["cell"]] = worst
    return out


def assign_shifters(design: SocDesign, strategy: str, pdk=None,
                    cache=None, characterize_leakage: bool = True,
                    leakage_table: dict | None = None
                    ) -> ShifterAssignment:
    """Assign ``strategy``'s registered cell to every domain crossing.

    Leakage per crossing comes from ``leakage_table`` (a
    :func:`leaderboard_leakage` lookup) when given, else from cached
    SPICE characterizations when ``characterize_leakage`` is on, else
    zero (pure-geometry costing for fast sweeps). Area always comes
    from the registry's area probe through :mod:`repro.layout`.
    """
    if strategy not in STRATEGY_CELLS:
        raise AnalysisError(
            f"unknown floorplan strategy {strategy!r}; expected one "
            f"of {FLOORPLAN_STRATEGIES}")
    kind = STRATEGY_CELLS[strategy]
    spec = get_cell(kind)
    if pdk is None:
        from repro.pdk import Pdk
        pdk = Pdk()
    from repro.layout import estimate_cell_area
    area = estimate_cell_area(spec.area_probe, pdk).total_area_um2

    leakage_at: dict = {}

    def _leakage(vddi: float, vddo: float) -> float:
        if leakage_table is not None:
            return leakage_table.get(kind, 0.0)
        if not characterize_leakage:
            return 0.0
        key = (round(vddi, 6), round(vddo, 6))
        if key not in leakage_at:
            from repro.core import worst_leakage
            leakage_at[key] = worst_leakage(pdk, kind, vddi, vddo,
                                            cache=cache)
        return leakage_at[key]

    by_name = design.module_map()
    crossings = []
    for net in design.domain_crossings():
        src = by_name[net.source].domain
        dst = by_name[net.destination].domain
        vddi = src.schedule.voltage_at(0.0)
        vddo = dst.schedule.voltage_at(0.0)
        crossings.append(CrossingAssignment(
            source=net.source, destination=net.destination,
            signals=net.signals, cell=kind, vddi=vddi, vddo=vddo,
            area_um2=area, leakage_a=_leakage(vddi, vddo)))
    return ShifterAssignment(strategy=strategy, cell=kind,
                             crossings=tuple(crossings),
                             uses_vddi_rail=spec.uses_vddi_rail,
                             needs_select=spec.needs_select)
