"""Multi-voltage SoC designs the floorplanner operates on.

A :class:`SocDesign` is the *pre-placement* counterpart of
:class:`repro.soc.Soc`: a bag of voltage-island blocks (reusing the
:class:`repro.soc.domain.Module` model, positions ignored) plus the
directed inter-block nets. Nets whose endpoints sit in different
voltage domains are *domain crossings* and must receive a level
shifter; same-domain nets only contribute wirelength.

Two front doors produce designs:

* :func:`generate_design` — a seeded synthetic generator scaling to
  thousands of blocks, with DVS schedules on a configurable fraction
  of domains so the paper's bidirectional-shift scenario is always
  represented;
* :func:`design_from_verilog` — the structural-Verilog bridge: every
  instance of a parsed :class:`repro.verilog.VerilogModule` becomes a
  block, and every driver-to-load net arc between blocks of different
  domains becomes a crossing.

Both are plain frozen data, picklable and canonicalizable, so designs
travel through the experiment engine's process pool and content-
addressed cache keys unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.soc.domain import Crossing, Module, VoltageDomain
from repro.soc.dvs import DEFAULT_LADDER, periodic_schedule

#: Synthetic block edge lengths [um] (log-uniform between these).
MIN_BLOCK_EDGE = 40.0
MAX_BLOCK_EDGE = 160.0


@dataclass(frozen=True)
class SocDesign:
    """An unplaced multi-voltage SoC: blocks plus directed nets."""

    name: str
    modules: tuple          #: tuple[Module] (x/y ignored until placed)
    nets: tuple             #: tuple[Crossing] — all inter-block nets

    def __post_init__(self):
        names = [m.name for m in self.modules]
        if len(set(names)) != len(names):
            raise AnalysisError("block names must be unique")
        known = set(names)
        for net in self.nets:
            for end in (net.source, net.destination):
                if end not in known:
                    raise AnalysisError(f"unknown block {end!r}")

    # -- lookups -----------------------------------------------------------

    def module_map(self) -> dict:
        return {m.name: m for m in self.modules}

    def domains(self) -> dict:
        """name -> VoltageDomain, in first-appearance order."""
        out: dict = {}
        for module in self.modules:
            out.setdefault(module.domain.name, module.domain)
        return out

    def domain_crossings(self) -> tuple:
        """The nets whose endpoints live in different domains."""
        by_name = self.module_map()
        return tuple(
            net for net in self.nets
            if by_name[net.source].domain.name
            != by_name[net.destination].domain.name)

    def crossing_domain_pairs(self) -> dict:
        """(src domain, dst domain) -> (VoltageDomain, VoltageDomain)."""
        by_name = self.module_map()
        pairs: dict = {}
        for net in self.domain_crossings():
            src = by_name[net.source].domain
            dst = by_name[net.destination].domain
            pairs.setdefault((src.name, dst.name), (src, dst))
        return pairs

    # -- bridges -----------------------------------------------------------

    def placed_soc(self, positions: dict):
        """A :class:`repro.soc.Soc` at ``positions`` (name -> x,y,w,h).

        Only the domain crossings are handed over — the planner costs
        shifter insertion, and same-domain nets need none.
        """
        from repro.soc.planner import Soc
        modules = []
        for module in self.modules:
            x, y, width, height = positions[module.name]
            modules.append(Module(module.name, module.domain,
                                  x=x, y=y, width=width, height=height))
        return Soc(modules, list(self.domain_crossings()))


def _domain_ladder(count: int) -> tuple:
    """``count`` distinct supply levels, extending the paper's ladder."""
    levels = list(DEFAULT_LADDER)
    step = DEFAULT_LADDER[1] - DEFAULT_LADDER[0]
    while len(levels) < count:
        levels.append(round(levels[-1] + step, 3))
    return tuple(levels[:count])


def generate_design(blocks: int = 64, domains: int = 4, seed: int = 0,
                    crossing_factor: float = 1.5,
                    dvs_fraction: float = 0.25,
                    name: str | None = None) -> SocDesign:
    """Seed-deterministic synthetic multi-voltage SoC.

    ``blocks`` rectangular voltage-island blocks over ``domains``
    supply domains (voltages from the paper's DVS ladder), connected
    by ``round(blocks * crossing_factor)`` directed nets laid out as a
    random spanning arborescence plus extra random arcs, so the design
    is connected and roughly ``crossing_factor`` nets per block. The
    top ``round(domains * dvs_fraction)`` domains run a periodic DVS
    schedule whose low phase dips to the next ladder level down —
    creating pairs whose up/down relationship flips (or degenerates to
    equality), the scenario that mandates true (bidirectional)
    shifters.
    """
    if blocks < 2:
        raise AnalysisError("need at least 2 blocks")
    if not 2 <= domains <= blocks:
        raise AnalysisError("need 2 <= domains <= blocks")
    rng = np.random.default_rng(seed)
    levels = _domain_ladder(domains)
    dvs_count = int(round(domains * dvs_fraction))
    domain_objs = []
    for index, level in enumerate(levels):
        domain_name = f"d{level:.1f}".replace(".", "p")
        # DVS lives at the top of the ladder: the lowest level has
        # nowhere to dip to (low would clamp to high — no swing).
        if index >= domains - dvs_count:
            low = max(levels[0], round(level - 0.2, 3))
            schedule = periodic_schedule(level, low, period=10.0,
                                         cycles=4)
            domain_objs.append(VoltageDomain(domain_name, schedule))
        else:
            domain_objs.append(VoltageDomain.fixed(domain_name, level))

    modules = []
    log_lo, log_hi = np.log(MIN_BLOCK_EDGE), np.log(MAX_BLOCK_EDGE)
    for index in range(blocks):
        domain = domain_objs[int(rng.integers(domains))]
        width = float(np.exp(rng.uniform(log_lo, log_hi)))
        height = float(np.exp(rng.uniform(log_lo, log_hi)))
        modules.append(Module(f"b{index:04d}", domain,
                              width=round(width, 3),
                              height=round(height, 3)))

    net_count = max(blocks - 1, int(round(blocks * crossing_factor)))
    nets = []
    for index in range(1, blocks):
        other = int(rng.integers(index))
        signals = int(rng.integers(1, 9))
        nets.append(Crossing(modules[index].name, modules[other].name,
                             signals=signals))
    while len(nets) < net_count:
        a, b = (int(v) for v in rng.integers(0, blocks, size=2))
        if a == b:
            continue
        signals = int(rng.integers(1, 9))
        nets.append(Crossing(modules[a].name, modules[b].name,
                             signals=signals))

    return SocDesign(name or f"synthetic{blocks}", tuple(modules),
                     tuple(nets))


def design_from_verilog(module, block_domains: dict, domains: dict,
                        default_width: float = 100.0,
                        default_height: float = 100.0) -> SocDesign:
    """Bridge a parsed structural-Verilog module into a design.

    Every instance of ``module`` (a
    :class:`repro.verilog.VerilogModule`) becomes one block;
    ``block_domains`` maps instance name -> domain name and ``domains``
    maps domain name -> :class:`VoltageDomain` (or a float, taken as a
    fixed supply). Each net arc from a driving instance (port ``Y``)
    to a loading instance (port ``A``) becomes one single-signal net;
    parallel arcs between the same block pair merge, summing signals.
    Top-level port connections carry no placement cost and are ignored.
    """
    resolved = {}
    for domain_name, domain in domains.items():
        if not isinstance(domain, VoltageDomain):
            domain = VoltageDomain.fixed(domain_name, float(domain))
        resolved[domain_name] = domain

    blocks = []
    for inst in module.instances:
        try:
            domain_name = block_domains[inst.name]
        except KeyError:
            raise AnalysisError(
                f"instance {inst.name!r} has no domain assignment"
            ) from None
        try:
            domain = resolved[domain_name]
        except KeyError:
            raise AnalysisError(
                f"{inst.name}: unknown domain {domain_name!r} "
                f"(have {sorted(resolved)})") from None
        blocks.append(Module(inst.name, domain, width=default_width,
                             height=default_height))

    drivers: dict = {}
    for inst in module.instances:
        for port, net in inst.connections.items():
            if port == "Y":
                drivers.setdefault(net, inst.name)
    arcs: dict = {}
    for inst in module.instances:
        for port, net in inst.connections.items():
            if port != "A":
                continue
            driver = drivers.get(net)
            if driver is None or driver == inst.name:
                continue
            arcs[(driver, inst.name)] = arcs.get((driver, inst.name),
                                                 0) + 1
    nets = tuple(Crossing(src, dst, signals=count)
                 for (src, dst), count in sorted(arcs.items()))
    return SocDesign(module.name, tuple(blocks), nets)
