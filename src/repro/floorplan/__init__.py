"""Closed-loop level-shifter-aware floorplanning.

The paper's wiring argument, made placement-quantitative: generate or
bridge a multi-voltage SoC (:mod:`repro.floorplan.design`), assign a
registered shifter cell to every domain crossing
(:mod:`repro.floorplan.assign`), anneal a sequence-pair floorplan
whose objective prices the extra rails and control wires each
strategy drags in (:mod:`repro.floorplan.anneal`), and gate every
candidate through NLDM static timing
(:mod:`repro.floorplan.signoff`). The whole loop runs as a standard
experiment-engine campaign (:mod:`repro.floorplan.campaign`,
``repro floorplan``).
"""

from repro.floorplan.anneal import (
    CostBreakdown, FloorplanResult, ObjectiveWeights, anneal_floorplan,
    default_moves, pack_sequence_pair,
)
from repro.floorplan.assign import (
    FLOORPLAN_STRATEGIES, STRATEGY_CELLS, CrossingAssignment,
    ShifterAssignment, assign_shifters, leaderboard_leakage,
)
from repro.floorplan.campaign import (
    DEFAULT_REQUIRED, FLOORPLAN_EXPERIMENT, best_by_strategy,
    floorplan_spec, run_floorplan_campaign,
)
from repro.floorplan.design import (
    SocDesign, design_from_verilog, generate_design,
)
from repro.floorplan.signoff import (
    CrossingPath, SignoffReport, build_crossing_netlist,
    build_timing_library, derated_characterization, signoff_floorplan,
    synthetic_characterization, verify_crossing_paths,
)

__all__ = [
    "SocDesign",
    "generate_design",
    "design_from_verilog",
    "STRATEGY_CELLS",
    "FLOORPLAN_STRATEGIES",
    "CrossingAssignment",
    "ShifterAssignment",
    "assign_shifters",
    "leaderboard_leakage",
    "ObjectiveWeights",
    "CostBreakdown",
    "FloorplanResult",
    "pack_sequence_pair",
    "anneal_floorplan",
    "default_moves",
    "CrossingPath",
    "SignoffReport",
    "build_crossing_netlist",
    "build_timing_library",
    "synthetic_characterization",
    "derated_characterization",
    "verify_crossing_paths",
    "signoff_floorplan",
    "FLOORPLAN_EXPERIMENT",
    "DEFAULT_REQUIRED",
    "floorplan_spec",
    "run_floorplan_campaign",
    "best_by_strategy",
]
