"""STA sign-off of a floorplan's domain-crossing paths.

Every candidate floorplan is gated through :mod:`repro.sta`: each
domain crossing becomes a three-stage path — a driver inverter in the
source domain, the assigned level shifter at the destination boundary,
a receiver inverter in the destination domain — and the crossing wire
picks up capacitance proportional to the *placed* Manhattan distance
between the two blocks, so the annealer's placement directly moves
arrival times. Sign-off fails a floorplan when any crossing path
misses the required arrival, and *rejects* one whose netlist lost a
required shifter (a crossing wired straight across the boundary), so
timing and electrical legality gate acceptance rather than decorate
it.

Timing libraries come in two flavours:

* ``mode="spice"`` — NLDM tables from
  :func:`repro.core.libchar.characterize_cell` (cache-aware, real
  transistor arcs);
* ``mode="synthetic"`` — analytic linear-in-(slew, load) tables
  derived from each registered cell's device count and supplies.
  Bilinear NLDM interpolation reproduces a linear model exactly, so
  synthetic sign-off is deterministic, SPICE-free, and fast enough
  for thousand-block campaigns and golden pinning.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cells.registry import get_cell
from repro.core.libchar import (
    CellCharacterization, NldmTable, TimingArc,
)
from repro.errors import AnalysisError
from repro.floorplan.assign import ShifterAssignment
from repro.floorplan.design import SocDesign
from repro.sta import GateNetlist, StaEngine, TimingLibrary

#: Crossing-wire capacitance per routed micron [F/um].
WIRE_CAP_PER_UM = 0.02e-15

#: Synthetic-table axes; wide enough that long-wire loads interpolate
#: rather than clamp.
SYNTHETIC_SLEWS = (10e-12, 400e-12)
SYNTHETIC_LOADS = (0.5e-15, 400e-15)


@dataclass(frozen=True)
class CrossingPath:
    """The timed three-stage path of one domain crossing."""

    index: int
    source: str
    destination: str
    shifter_cell: str        #: library cell name of the shifter stage
    shifter_instance: str
    input_net: str
    crossing_net: str        #: the placed long wire (source -> shifter)
    output_net: str


@dataclass
class SignoffReport:
    """Pass/fail verdict of one floorplan's crossing paths."""

    ok: bool
    required: float
    worst_slack: float
    worst_path: CrossingPath | None
    violations: tuple        #: tuple[(CrossingPath, arrival, slack)]
    arrivals: dict           #: crossing index -> arrival [s]

    def summary(self) -> str:
        verdict = "MET" if self.ok else "VIOLATED"
        return (f"signoff {verdict}: {len(self.arrivals)} crossing "
                f"paths, worst slack {self.worst_slack * 1e12:+.1f} ps"
                + (f", {len(self.violations)} violation(s)"
                   if self.violations else ""))


def _domain_voltage(domain) -> float:
    return domain.schedule.voltage_at(0.0)


def inverter_cell_name(domain_name: str) -> str:
    return f"inv@{domain_name}"


def shifter_cell_name(kind: str, src_domain: str,
                      dst_domain: str) -> str:
    return f"{kind}@{src_domain}>{dst_domain}"


def synthetic_characterization(name: str, kind: str, vddi: float,
                               vddo: float) -> CellCharacterization:
    """Analytic NLDM stand-in for one registered cell.

    Delay grows with the registered device count and shrinks with
    drive supply; rise/fall and the transition tables follow the same
    linear-in-(slew, load) law, so bilinear lookups are exact and the
    tables are bitwise-stable for golden pinning.
    """
    spec = get_cell(kind)
    devices = max(spec.device_count, 2)
    drive = max(vddi, 0.4)
    base = 12e-12 * (1.0 + devices / 8.0) / drive
    slew_gain = 1.0 / 8.0
    load_gain = 5e3 / drive           #: ~5 ps per fF at 1 V
    slews = np.asarray(SYNTHETIC_SLEWS)
    loads = np.asarray(SYNTHETIC_LOADS)
    delay = np.asarray([[base + s * slew_gain + l * load_gain
                         for l in loads] for s in slews])
    transition = np.asarray([[15e-12 + s * 0.1 + l * 2e3
                              for l in loads] for s in slews])
    tables = dict(
        cell_rise=NldmTable(slews, loads, delay),
        cell_fall=NldmTable(slews, loads, delay * 1.1),
        rise_transition=NldmTable(slews, loads, transition),
        fall_transition=NldmTable(slews, loads, transition))
    return CellCharacterization(
        name=name, kind=kind, vddi=vddi, vddo=vddo,
        arc=TimingArc(**tables, inverting=spec.inverting),
        input_capacitance=0.4e-15 * (1.0 + devices / 10.0),
        slews=tuple(slews), loads=tuple(loads))


def derated_characterization(cell: CellCharacterization,
                             factor: float) -> CellCharacterization:
    """The same cell with every delay/transition table scaled.

    The differential negative control slows a shifter arc through
    here; it is also how a pessimism factor would be applied.
    """
    if factor <= 0:
        raise AnalysisError("derating factor must be positive")
    arc = cell.arc
    scaled = {key: NldmTable(table.slews, table.loads,
                             table.values * factor)
              for key, table in (("cell_rise", arc.cell_rise),
                                 ("cell_fall", arc.cell_fall),
                                 ("rise_transition", arc.rise_transition),
                                 ("fall_transition", arc.fall_transition))}
    return replace(cell, arc=TimingArc(**scaled,
                                       inverting=arc.inverting))


def build_timing_library(design: SocDesign,
                         assignment: ShifterAssignment,
                         pdk=None, mode: str = "synthetic",
                         cache=None,
                         slews=(20e-12, 150e-12),
                         loads=(0.5e-15, 4e-15)) -> TimingLibrary:
    """Characterize every cell the crossing netlist instantiates.

    One inverter per domain (driver/receiver at that domain's supply)
    plus the assigned shifter per crossed domain pair.
    """
    if mode not in ("synthetic", "spice"):
        raise AnalysisError(f"unknown timing mode {mode!r}")
    if mode == "spice" and pdk is None:
        from repro.pdk import Pdk
        pdk = Pdk()
    library = TimingLibrary()

    def _characterize(name, kind, vddi, vddo):
        if mode == "synthetic":
            cell = synthetic_characterization(name, kind, vddi, vddo)
        else:
            from repro.core.libchar import characterize_cell
            cell = characterize_cell(kind, pdk, vddi, vddo,
                                     slews=slews, loads=loads,
                                     cache=cache)
        library.add(name, cell)

    for domain_name, domain in design.domains().items():
        supply = _domain_voltage(domain)
        _characterize(inverter_cell_name(domain_name), "inverter",
                      supply, supply)
    by_name = design.module_map()
    seen = set()
    for crossing in assignment.crossings:
        src = by_name[crossing.source].domain
        dst = by_name[crossing.destination].domain
        name = shifter_cell_name(crossing.cell, src.name, dst.name)
        if name in seen:
            continue
        seen.add(name)
        _characterize(name, crossing.cell, crossing.vddi,
                      crossing.vddo)
    return library


def build_crossing_netlist(design: SocDesign,
                           assignment: ShifterAssignment,
                           positions: dict | None = None,
                           cap_per_um: float = WIRE_CAP_PER_UM):
    """(netlist, paths) timing every assigned crossing end-to-end.

    Crossing ``k`` becomes ``x{k}i -> drv -> x{k}s -> shifter ->
    x{k}d -> rx -> x{k}o``; with ``positions`` the source-to-shifter
    wire ``x{k}s`` carries ``distance * cap_per_um`` of capacitance,
    tying sign-off to the annealed placement.
    """
    by_name = design.module_map()
    netlist = GateNetlist(f"{design.name}-crossings")
    paths = []
    for index, crossing in enumerate(assignment.crossings):
        src = by_name[crossing.source].domain
        dst = by_name[crossing.destination].domain
        nets = tuple(f"x{index}{tag}" for tag in "isdo")
        in_net, src_net, dst_net, out_net = nets
        netlist.add_primary_input(in_net)
        netlist.add_primary_output(out_net)
        shifter = shifter_cell_name(crossing.cell, src.name, dst.name)
        netlist.add_instance(f"u{index}_drv",
                             inverter_cell_name(src.name),
                             in_net, src_net)
        netlist.add_instance(f"u{index}_ls", shifter, src_net, dst_net)
        netlist.add_instance(f"u{index}_rx",
                             inverter_cell_name(dst.name),
                             dst_net, out_net)
        if positions is not None:
            sx, sy, sw, sh = positions[crossing.source]
            dx, dy, dw, dh = positions[crossing.destination]
            distance = (abs((sx + sw / 2) - (dx + dw / 2))
                        + abs((sy + sh / 2) - (dy + dh / 2)))
            netlist.set_wire_cap(src_net, distance * cap_per_um)
        paths.append(CrossingPath(
            index=index, source=crossing.source,
            destination=crossing.destination, shifter_cell=shifter,
            shifter_instance=f"u{index}_ls", input_net=in_net,
            crossing_net=src_net, output_net=out_net))
    return netlist, tuple(paths)


def verify_crossing_paths(netlist: GateNetlist, paths) -> None:
    """Reject a netlist whose crossings lost their required shifter.

    Walks each crossing path backwards from its output net and demands
    the assigned shifter instance, with the assigned cell, on the way
    to the input net. A crossing wired straight across the domain
    boundary — or through a renamed/retyped instance — raises
    :class:`AnalysisError` before any timing is reported.
    """
    for path in paths:
        instance = netlist.instances.get(path.shifter_instance)
        if instance is None or instance.cell != path.shifter_cell:
            raise AnalysisError(
                f"crossing {path.source}->{path.destination}: required "
                f"shifter {path.shifter_instance!r} "
                f"({path.shifter_cell}) is missing from the netlist")
        net = path.output_net
        through_shifter = False
        hops = 0
        while net != path.input_net:
            driver = netlist.driver_of(net)
            if driver is None:
                raise AnalysisError(
                    f"crossing {path.source}->{path.destination}: net "
                    f"{net!r} is undriven on the crossing path")
            if driver.name == path.shifter_instance:
                through_shifter = True
            net = driver.input_net
            hops += 1
            if hops > len(netlist.instances):
                raise AnalysisError("crossing path does not reach its "
                                    "input (cycle?)")
        if not through_shifter:
            raise AnalysisError(
                f"crossing {path.source}->{path.destination}: path "
                f"bypasses the required level shifter "
                f"{path.shifter_instance!r}")


def signoff_floorplan(netlist: GateNetlist, paths,
                      library: TimingLibrary, required: float,
                      input_slew: float = 50e-12,
                      output_load: float = 1e-15) -> SignoffReport:
    """Time every crossing path and gate it against ``required``.

    Electrical legality first (:func:`verify_crossing_paths`), then a
    single STA pass; every path's worst arrival is compared against
    the required time and all misses are reported as violations.
    """
    verify_crossing_paths(netlist, paths)
    engine = StaEngine(netlist, library, output_load=output_load)
    report = engine.run(input_slew=input_slew)
    arrivals = {}
    violations = []
    worst_slack = float("inf")
    worst_path = None
    for path in paths:
        arrival = report.output_arrival(path.output_net)
        arrivals[path.index] = arrival
        slack = required - arrival
        if slack < worst_slack:
            worst_slack = slack
            worst_path = path
        if slack < 0.0:
            violations.append((path, arrival, slack))
    return SignoffReport(ok=not violations, required=required,
                         worst_slack=worst_slack, worst_path=worst_path,
                         violations=tuple(violations),
                         arrivals=arrivals)
