"""End-to-end checks of the paper's central claims.

These are the claims a reader would take away from the abstract and
Section 4, checked against full characterizations of the reproduced
designs. Where our substrate cannot reproduce a claim (two delay rows;
see EXPERIMENTS.md), the corresponding check is deliberately absent
rather than weakened to vacuity.
"""

import pytest

from repro.core import LevelShifter

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def table1():
    return (LevelShifter("sstvs").characterize(0.8, 1.2),
            LevelShifter("combined").characterize(0.8, 1.2))


@pytest.fixture(scope="module")
def table2():
    return (LevelShifter("sstvs").characterize(1.2, 0.8),
            LevelShifter("combined").characterize(1.2, 0.8))


class TestTrueShifting:
    """One cell, both directions, no control signal."""

    def test_low_to_high_functional(self, table1):
        assert table1[0].functional

    def test_high_to_low_functional(self, table2):
        assert table2[0].functional

    def test_equal_rails_functional(self):
        metrics = LevelShifter("sstvs").characterize(1.0, 1.0)
        assert metrics.functional


class TestLeakageClaims:
    def test_sstvs_beats_combined_high_state_both_directions(
            self, table1, table2):
        for sstvs, combined in (table1, table2):
            assert sstvs.leakage_high < combined.leakage_high

    def test_low_to_high_low_state_headline(self, table1):
        # Paper: 19.5x; our combined VS's idle inverter leaks at
        # contention level, so the factor is far larger.
        sstvs, combined = table1
        assert combined.leakage_low / sstvs.leakage_low > 10

    def test_sstvs_leakage_nanoamp_scale(self, table1, table2):
        # The paper reports single- to tens-of-nA leakage.
        for sstvs, _ in (table1, table2):
            assert sstvs.leakage_high < 50e-9
            assert sstvs.leakage_low < 50e-9

    def test_inverter_unusable_low_to_high(self):
        inverter = LevelShifter("inverter").characterize(0.8, 1.2)
        sstvs = LevelShifter("sstvs").characterize(0.8, 1.2)
        assert inverter.leakage_low > 50 * sstvs.leakage_low


class TestDelayClaims:
    def test_high_to_low_fall_advantage(self, table2):
        # Paper: 2.2x faster falling output.
        sstvs, combined = table2
        assert sstvs.delay_fall < combined.delay_fall

    def test_delays_same_order_of_magnitude(self, table1, table2):
        # Even where the ordering does not reproduce, the SS-TVS must
        # stay within a small factor of the combined VS.
        for sstvs, combined in (table1, table2):
            assert sstvs.delay_rise < 3 * combined.delay_rise
            assert sstvs.delay_fall < 3 * combined.delay_fall


class TestSingleSupplyProperty:
    def test_sstvs_references_only_vddo(self):
        from repro.cells import add_sstvs
        from repro.pdk import Pdk
        from repro.spice import Circuit
        from repro.spice.devices import Mosfet
        ckt = Circuit("t")
        add_sstvs(ckt, Pdk(), "dut", "in", "out", "vddo")
        supplies = set()
        for device in ckt.devices_of_type(Mosfet):
            supplies.update(n for n in device.nodes
                            if n.startswith("vdd"))
        assert supplies == {"vddo"}

    def test_cvs_references_both_supplies(self):
        from repro.cells import add_cvs
        from repro.pdk import Pdk
        from repro.spice import Circuit
        from repro.spice.devices import Mosfet
        ckt = Circuit("t")
        add_cvs(ckt, Pdk(), "dut", "in", "out", "vddi", "vddo")
        supplies = set()
        for device in ckt.devices_of_type(Mosfet):
            supplies.update(n for n in device.nodes
                            if n.startswith("vdd"))
        assert supplies == {"vddi", "vddo"}


class TestPowerBudget:
    def test_switching_power_microwatt_scale(self, table1, table2):
        for sstvs, _ in (table1, table2):
            assert 1e-7 < sstvs.power_rise < 1e-4
            assert 1e-8 < abs(sstvs.power_fall) < 1e-4
