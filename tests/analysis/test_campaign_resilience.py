"""Quarantine behaviour of the sweep, corner, and functional drivers."""

import numpy as np
import pytest

import repro.analysis.corners as corners_module
import repro.analysis.functional as functional_module
import repro.analysis.sweep as sweep_module
from repro.analysis import (
    SweepGrid, pvt_report, sweep_delay_surface, validate_functionality,
)
from repro.core import QuickDelays
from repro.errors import ConvergenceError

pytestmark = pytest.mark.resilience

GRID = SweepGrid(vddi_values=np.array([0.8, 1.2]),
                 vddo_values=np.array([0.8, 1.2]))


def exploding_quick_delays(target_calls):
    """quick_delays stand-in that escapes the ladder on chosen calls."""
    state = {"n": 0}

    def fake(pdk, kind, vddi, vddo, sizing=None, **kwargs):
        call = state["n"]
        state["n"] += 1
        if call in target_calls:
            raise ConvergenceError("synthetic solver escape")
        return QuickDelays(1e-9, 1e-9, True)

    return fake


class TestSweepQuarantine:
    def test_escaped_point_is_quarantined(self, monkeypatch):
        monkeypatch.setattr(sweep_module, "quick_delays",
                            exploding_quick_delays({2}))
        surface = sweep_delay_surface("sstvs", GRID)
        assert surface.quarantined == [(1, 0)]
        assert not surface.functional[1, 0]
        assert np.isnan(surface.rise[1, 0])
        # The remaining three points are untouched.
        assert surface.functional.sum() == 3
        assert "1 quarantined" in surface.failure_summary()

    def test_progress_errors_isolated(self, monkeypatch):
        monkeypatch.setattr(sweep_module, "quick_delays",
                            exploding_quick_delays(set()))
        calls = []

        def bad_progress(i, j, q):
            calls.append((i, j))
            raise ValueError("observer bug")

        with pytest.warns(RuntimeWarning, match="progress callback"):
            surface = sweep_delay_surface("sstvs", GRID,
                                          progress=bad_progress)
        assert calls == [(0, 0)]
        assert surface.functional.all()


class TestPvtQuarantine:
    def test_escaped_corner_kept_as_nonfunctional_point(self,
                                                        monkeypatch):
        state = {"n": 0}

        def fake(pdk, kind, vddi, vddo, plan=None, sizing=None):
            call = state["n"]
            state["n"] += 1
            if call == 1:
                raise ConvergenceError("synthetic solver escape")
            from repro.core import ShifterMetrics
            return ShifterMetrics(1e-9, 1e-9, 1e-6, 1e-6, 1e-9, 1e-9)

        monkeypatch.setattr(corners_module, "characterize", fake)
        report = pvt_report("sstvs", 0.8, 1.2, corners=("tt", "ss"),
                            temperatures=(27.0,))
        assert len(report.points) == 2  # every PVT point still present
        assert report.quarantined == [("tt", 27.0)] or \
            report.quarantined == [("ss", 27.0)]
        assert not report.all_functional
        assert "quarantined" in report.pretty()


class TestFunctionalQuarantine:
    def test_escaped_pair_counts_as_failure(self, monkeypatch):
        monkeypatch.setattr(functional_module, "quick_delays",
                            exploding_quick_delays({0}))
        report = validate_functionality("sstvs", GRID)
        assert report.total == 4
        assert report.passed == 3
        assert len(report.failures) == 1
        assert len(report.solver_escapes) == 1
        assert "quarantined after solver escape" in report.summary()
