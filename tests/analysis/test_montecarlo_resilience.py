"""Fault-tolerant Monte Carlo: quarantine, callback isolation, resume.

The 200-sample campaigns stub out ``characterize`` (the machinery under
test is the campaign runtime, not the device physics); a small
real-solver campaign lives in the CLI ``check`` self-test.
"""

import warnings

import pytest

import repro.analysis.montecarlo as mc_module
from repro.analysis import MonteCarloConfig, run_monte_carlo
from repro.core import ShifterMetrics, StimulusPlan
from repro.errors import AnalysisError
from repro.runtime import FaultPlan, FaultSpec

pytestmark = pytest.mark.resilience

FAST_PLAN = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)

#: Sample indices sabotaged in the acceptance-criteria campaign.
INJECTED = [5, 50, 99, 150, 199]


def fake_characterize(pdk, kind, vddi, vddo, plan=None, sizing=None):
    """Cheap, deterministic stand-in: metrics derived from the PDK's
    per-sample RNG stream (so resumed samples match straight runs)."""
    value = float(pdk.rng.normal(1e-9, 1e-11))
    return ShifterMetrics(value, value, 1e-6, 1e-6, 1e-9, 1e-9,
                          functional=True)


@pytest.fixture
def stub_characterize(monkeypatch):
    monkeypatch.setattr(mc_module, "characterize", fake_characterize)


class TestAcceptanceCampaign:
    """The issue's acceptance criteria, verbatim: 200 samples, faults
    at >= 5 indices, no raise, exact quarantine, reflected yield."""

    @pytest.fixture(scope="class")
    def result(self):
        # Class-scoped monkeypatching by hand (fixture-based
        # monkeypatch is function-scoped).
        original = mc_module.characterize
        mc_module.characterize = fake_characterize
        try:
            config = MonteCarloConfig(
                runs=200, seed=11, plan=FAST_PLAN,
                faults=FaultPlan.fail_samples(INJECTED))
            yield run_monte_carlo("sstvs", 0.8, 1.2, config)
        finally:
            mc_module.characterize = original

    def test_completes_without_raising(self, result):
        assert not result.interrupted
        assert len(result.samples) == 200 - len(INJECTED)

    def test_quarantine_names_exact_indices(self, result):
        assert result.quarantined == INJECTED
        assert all(f.stage == "injected" for f in result.failures)

    def test_yield_reflects_quarantine(self, result):
        assert result.functional_yield == pytest.approx(
            (200 - len(INJECTED)) / 200)

    def test_statistics_cover_survivors_only(self, result):
        assert result.statistics is not None
        assert result.statistics.runs == 200 - len(INJECTED)

    def test_completed_indices_skip_quarantined(self, result):
        assert set(result.completed_indices) == \
            set(range(200)) - set(INJECTED)

    def test_failure_summary_mentions_counts(self, result):
        text = result.failure_summary()
        assert "195/200" in text
        assert "5 quarantined" in text


class TestQuarantine:
    def test_characterize_exception_quarantined(self, monkeypatch):
        calls = []

        def exploding(pdk, kind, vddi, vddo, plan=None, sizing=None):
            calls.append(len(calls))
            if len(calls) == 2:  # second sample dies hard
                raise RuntimeError("disk on fire")
            return fake_characterize(pdk, kind, vddi, vddo)

        monkeypatch.setattr(mc_module, "characterize", exploding)
        result = run_monte_carlo("sstvs", 0.8, 1.2,
                                 MonteCarloConfig(runs=4, seed=1))
        assert result.quarantined == [1]
        assert result.failures[0].stage == "characterize"
        assert "disk on fire" in result.failures[0].error
        assert len(result.samples) == 3

    def test_all_samples_failing_returns_empty_result(self,
                                                      stub_characterize):
        config = MonteCarloConfig(runs=3, seed=1,
                                  faults=FaultPlan.fail_samples([0, 1, 2]))
        result = run_monte_carlo("sstvs", 0.8, 1.2, config)
        assert result.samples == []
        assert result.statistics is None
        assert result.functional_yield == 0.0
        assert result.quarantined == [0, 1, 2]

    def test_max_failures_aborts(self, stub_characterize):
        config = MonteCarloConfig(runs=10, seed=1, max_failures=1,
                                  faults=FaultPlan.fail_samples([0, 1, 2]))
        with pytest.raises(AnalysisError, match="max_failures"):
            run_monte_carlo("sstvs", 0.8, 1.2, config)

    def test_solver_fault_degrades_to_nonfunctional(self):
        # A solver-level fault inside one sample is absorbed by
        # characterize (non-functional NaN metrics), not quarantined —
        # but the yield still reflects it.
        plan = FaultPlan([FaultSpec(kind, sample_index=2, count=None)
                          for kind in ("iteration_exhaustion",)])
        config = MonteCarloConfig(runs=3, seed=99, plan=FAST_PLAN,
                                  faults=plan)
        result = run_monte_carlo("sstvs", 0.8, 1.2, config)
        assert result.quarantined == []
        assert len(result.samples) == 3
        assert not result.samples[2].functional
        assert result.functional_yield == pytest.approx(2 / 3)


class TestProgressIsolation:
    def test_progress_exception_does_not_abort(self, stub_characterize):
        seen = []

        def bad_progress(index, metrics):
            seen.append(index)
            raise ValueError("observer bug")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_monte_carlo(
                "sstvs", 0.8, 1.2, MonteCarloConfig(runs=5, seed=1),
                progress=bad_progress)
        assert len(result.samples) == 5
        assert seen == [0]  # disabled after the first explosion
        runtime_warnings = [w for w in caught
                            if issubclass(w.category, RuntimeWarning)]
        assert len(runtime_warnings) == 1
        assert "progress callback" in str(runtime_warnings[0].message)

    def test_healthy_progress_still_called_every_sample(
            self, stub_characterize):
        seen = []
        run_monte_carlo("sstvs", 0.8, 1.2,
                        MonteCarloConfig(runs=3, seed=1),
                        progress=lambda i, m: seen.append(i))
        assert seen == [0, 1, 2]


class TestInterruptionAndResume:
    def test_interrupt_returns_partial(self, stub_characterize):
        def interrupting(index, metrics):
            if index == 1:
                raise KeyboardInterrupt

        result = run_monte_carlo("sstvs", 0.8, 1.2,
                                 MonteCarloConfig(runs=6, seed=3),
                                 progress=interrupting)
        assert result.interrupted
        assert result.completed_indices == [0, 1]
        assert len(result.samples) == 2

    def test_resume_is_seed_stable(self, stub_characterize):
        config = MonteCarloConfig(runs=6, seed=3)
        straight = run_monte_carlo("sstvs", 0.8, 1.2, config)

        def interrupting(index, metrics):
            if index == 1:
                raise KeyboardInterrupt

        partial = run_monte_carlo("sstvs", 0.8, 1.2, config,
                                  progress=interrupting)
        resumed = run_monte_carlo("sstvs", 0.8, 1.2, config,
                                  resume=partial)
        assert not resumed.interrupted
        assert resumed.completed_indices == list(range(6))
        assert [s.delay_rise for s in resumed.samples] == \
            [s.delay_rise for s in straight.samples]

    def test_resume_skips_quarantined(self, stub_characterize):
        config = MonteCarloConfig(runs=4, seed=3,
                                  faults=FaultPlan.fail_samples([2]))
        partial = run_monte_carlo("sstvs", 0.8, 1.2, config)
        resumed = run_monte_carlo("sstvs", 0.8, 1.2, config,
                                  resume=partial)
        # The quarantined sample is carried over, not retried.
        assert resumed.quarantined == [2]
        assert len(resumed.failures) == 1
        assert resumed.completed_indices == [0, 1, 3]
