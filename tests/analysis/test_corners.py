"""Tests for the PVT corner report."""

import pytest

from repro.analysis import PvtReport, pvt_report
from repro.core.characterize import StimulusPlan
from repro.core.metrics import ShifterMetrics
from repro.errors import AnalysisError

FAST = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


def metrics(scale=1.0, functional=True):
    return ShifterMetrics(100e-12 * scale, 50e-12 * scale, 1e-6, 1e-6,
                          1e-9 * scale, 1e-9, functional=functional)


class TestReportMechanics:
    def _report(self):
        from repro.analysis.corners import PvtPoint
        report = PvtReport(kind="sstvs", vddi=0.8, vddo=1.2)
        report.points = [
            PvtPoint("tt", 27.0, metrics(1.0)),
            PvtPoint("ss", 27.0, metrics(2.0)),
            PvtPoint("ff", 27.0, metrics(0.5, functional=False)),
        ]
        return report

    def test_all_functional_flag(self):
        assert not self._report().all_functional

    def test_worst_skips_nonfunctional(self):
        worst = self._report().worst("delay_rise")
        assert worst.corner == "ss"

    def test_spread(self):
        assert self._report().spread("delay_rise") == pytest.approx(2.0)

    def test_unknown_metric(self):
        with pytest.raises(AnalysisError):
            self._report().worst("charisma")

    def test_pretty_contains_rows(self):
        text = self._report().pretty()
        assert "tt" in text and "ss" in text and "False" in text


class TestRealCorners:
    @pytest.fixture(scope="class")
    def report(self):
        return pvt_report("sstvs", 1.2, 0.8, corners=("tt", "ff"),
                          temperatures=(27.0,), plan=FAST)

    def test_tt_functional(self, report):
        tt = [p for p in report.points if p.corner == "tt"][0]
        assert tt.metrics.functional

    def test_ff_faster_than_tt(self, report):
        tt = [p for p in report.points if p.corner == "tt"][0]
        ff = [p for p in report.points if p.corner == "ff"][0]
        assert ff.metrics.functional
        assert ff.metrics.delay_fall < tt.metrics.delay_fall

    def test_ff_leaks_more(self, report):
        tt = [p for p in report.points if p.corner == "tt"][0]
        ff = [p for p in report.points if p.corner == "ff"][0]
        assert ff.metrics.leakage_high > tt.metrics.leakage_high

    def test_point_grid_complete(self, report):
        assert len(report.points) == 2

    def test_ss_corner_documented_weakness(self):
        # The +3-sigma systematic SS corner starves M1's overdrive in
        # the low-to-high direction; the report must *flag* this rather
        # than hide it (see EXPERIMENTS.md known deviations).
        report = pvt_report("sstvs", 0.8, 1.2, corners=("ss",),
                            temperatures=(27.0,), plan=FAST)
        point = report.points[0]
        assert (not point.metrics.functional
                or point.metrics.delay_rise > 400e-12)
