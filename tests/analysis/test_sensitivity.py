"""Tests for finite-difference sizing sensitivities."""

import pytest

from repro.analysis.sensitivity import (
    SIZING_KNOBS, metric_sensitivities, render_sensitivity_table,
)
from repro.core.characterize import StimulusPlan
from repro.errors import AnalysisError

FAST = StimulusPlan(settle=3e-9, hold=2e-9, short=0.8e-9)


class TestKnobDiscovery:
    def test_knob_list_covers_widths(self):
        assert "w_m1" in SIZING_KNOBS
        assert "w_mc" in SIZING_KNOBS
        assert "l_m3" in SIZING_KNOBS

    def test_flavor_overrides_not_a_knob(self):
        assert "flavor_overrides" not in SIZING_KNOBS


class TestSensitivities:
    @pytest.fixture(scope="class")
    def mc_sensitivity(self):
        return metric_sensitivities("sstvs", 0.8, 1.2, knobs=("w_mc",),
                                    plan=FAST)["w_mc"]

    def test_mc_width_affects_leakage(self, mc_sensitivity):
        # MC's gate leakage scales with its area: leakage-low moves
        # with w_mc.
        assert mc_sensitivity.values["leakage_low"] > 0.05

    def test_values_cover_all_metrics(self, mc_sensitivity):
        from repro.core.metrics import METRIC_FIELDS
        assert set(mc_sensitivity.values) == set(METRIC_FIELDS)

    def test_dominant_metric(self, mc_sensitivity):
        assert mc_sensitivity.dominant_metric() in mc_sensitivity.values

    def test_render_table(self, mc_sensitivity):
        text = render_sensitivity_table({"w_mc": mc_sensitivity})
        assert "w_mc" in text
        assert "delay_rise" in text


class TestValidation:
    def test_only_sstvs(self):
        with pytest.raises(AnalysisError):
            metric_sensitivities("inverter", 0.8, 1.2)

    def test_unknown_knob(self):
        with pytest.raises(AnalysisError):
            metric_sensitivities("sstvs", 0.8, 1.2, knobs=("w_ghost",))

    def test_bad_step(self):
        with pytest.raises(AnalysisError):
            metric_sensitivities("sstvs", 0.8, 1.2, knobs=("w_m1",),
                                 relative_step=0.9)
