"""Tests for the delay-surface sweep (coarse grids for speed)."""

import numpy as np
import pytest

from repro.analysis import (
    SweepGrid, VDD_MAX, VDD_MIN, render_surface_ascii,
    sweep_delay_surface,
)
from repro.analysis.sweep import DelaySurface
from repro.errors import AnalysisError


class TestSweepGrid:
    def test_default_range(self):
        grid = SweepGrid()
        assert grid.vddi_values[0] == pytest.approx(VDD_MIN)
        assert grid.vddi_values[-1] == pytest.approx(VDD_MAX)

    def test_with_step(self):
        grid = SweepGrid.with_step(0.3)
        np.testing.assert_allclose(grid.vddi_values, [0.8, 1.1, 1.4])

    def test_bad_step(self):
        with pytest.raises(AnalysisError):
            SweepGrid.with_step(0.0)


class TestSweepSurface:
    @pytest.fixture(scope="class")
    def surface(self):
        return sweep_delay_surface("sstvs", SweepGrid.with_step(0.3))

    def test_shape(self, surface):
        assert surface.rise.shape == (3, 3)
        assert surface.fall.shape == (3, 3)

    def test_all_functional_on_paper_grid(self, surface):
        assert surface.functional_fraction == 1.0

    def test_delays_finite_where_functional(self, surface):
        assert np.all(np.isfinite(surface.rise[surface.functional]))
        assert np.all(np.isfinite(surface.fall[surface.functional]))

    def test_smoothness_check(self, surface):
        assert surface.is_smooth(factor=6.0)

    def test_worst_delays(self, surface):
        assert surface.worst_rise() >= np.nanmax(surface.rise) * 0.999
        assert surface.worst_fall() > 0

    def test_progress_callback(self):
        calls = []
        sweep_delay_surface("inverter", SweepGrid.with_step(0.6),
                            progress=lambda i, j, q: calls.append((i, j)))
        assert len(calls) == 4

    def test_ascii_render(self, surface):
        text = render_surface_ascii(surface, "rise")
        assert "VDDI\\VDDO" in text
        assert len(text.splitlines()) == 4


class TestSurfaceHelpers:
    def _surface(self, rise):
        values = np.asarray([0.8, 1.1])
        return DelaySurface(values, values, rise, rise.copy(),
                            np.isfinite(rise))

    def test_functional_fraction(self):
        rise = np.asarray([[1e-12, np.nan], [1e-12, 1e-12]])
        assert self._surface(rise).functional_fraction == 0.75

    def test_smoothness_violation_detected(self):
        rise = np.asarray([[1e-12, 1e-12], [1e-12, 50e-12]])
        assert not self._surface(rise).is_smooth(factor=4.0)
