"""Tests for the Monte Carlo engine (small run counts for speed)."""

import pytest

from repro.analysis import MonteCarloConfig, run_monte_carlo
from repro.core import StimulusPlan
from repro.errors import AnalysisError

FAST = MonteCarloConfig(runs=4, seed=99,
                        plan=StimulusPlan(settle=3e-9, hold=2e-9,
                                          short=0.8e-9))


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return run_monte_carlo("sstvs", 0.8, 1.2, FAST)

    def test_sample_count(self, result):
        assert len(result.samples) == 4
        assert result.statistics.runs == 4

    def test_all_functional(self, result):
        # The paper: every MC sample converts correctly.
        assert result.functional_yield == 1.0

    def test_samples_differ(self, result):
        delays = {s.delay_rise for s in result.samples}
        assert len(delays) == 4, "process variation had no effect"

    def test_std_positive(self, result):
        assert result.statistics.std.delay_rise > 0

    def test_reproducible(self, result):
        again = run_monte_carlo("sstvs", 0.8, 1.2, FAST)
        assert [s.delay_rise for s in again.samples] == \
            [s.delay_rise for s in result.samples]

    def test_different_seed_differs(self, result):
        config = MonteCarloConfig(runs=4, seed=100, plan=FAST.plan)
        other = run_monte_carlo("sstvs", 0.8, 1.2, config)
        assert [s.delay_rise for s in other.samples] != \
            [s.delay_rise for s in result.samples]

    def test_progress_callback(self):
        seen = []
        config = MonteCarloConfig(runs=2, seed=1, plan=FAST.plan)
        run_monte_carlo("sstvs", 1.2, 0.8, config,
                        progress=lambda i, m: seen.append(i))
        assert seen == [0, 1]

    def test_zero_runs_rejected(self):
        with pytest.raises(AnalysisError):
            run_monte_carlo("sstvs", 0.8, 1.2,
                            MonteCarloConfig(runs=0))

    def test_result_metadata(self, result):
        assert result.kind == "sstvs"
        assert result.vddi == 0.8
        assert result.vddo == 1.2
